"""Benchmark-session configuration."""

import sys
from pathlib import Path

# Allow `from benchmarks.common import ...` regardless of invocation dir.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))


def pytest_configure(config):
    # Default bench smoke: skip the full-sweep benches unless the user
    # picked their own -m expression.  Run everything with
    # ``-m "slow or not slow"``.
    if not config.option.markexpr:
        config.option.markexpr = "not slow"

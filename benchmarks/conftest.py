"""Benchmark-session configuration."""

import sys
from pathlib import Path

# Allow `from benchmarks.common import ...` regardless of invocation dir.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

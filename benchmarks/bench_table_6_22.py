"""Table 6.22 — PIV: % of peak at fixed data-register counts and
thread counts.

Same presentation as Table 6.21 for the PIV (rb, threads) space over
the mask-size sets: fixing either knob forfeits peak performance on
some problems, on either device.
"""

import pytest

from benchmarks.common import BENCH_CACHE, DEVICES, piv_images
from repro.apps.piv.problems import MASK_SET, SCALE_NOTE
from repro.reporting import emit, format_table
from repro.tuning import best_record, piv_sweep
from repro.tuning.grids import percent_of_peak

RBS = [1, 2, 4, 8]
THREADS = [32, 64, 128]


def sweep_mask_sets():
    """(problem, device) -> sweep records; shared with Figures 6.1/6.2."""
    out = {}
    for problem in MASK_SET:
        img_a, img_b = piv_images(problem)
        for device in DEVICES:
            out[(problem.name, device.name)] = piv_sweep(
                problem, device, img_a, img_b, RBS, THREADS,
                cache=BENCH_CACHE)
    return out


def _build():
    headers = ["set", "device"] + [f"rb={rb}/{t}" for rb in RBS
                                   for t in THREADS]
    rows = []
    fractions = []
    sweeps = sweep_mask_sets()
    for problem in MASK_SET:
        for device in DEVICES:
            records = sweeps[(problem.name, device.name)]
            _, _, grid = percent_of_peak(records, "rb", "threads")
            row = [problem.name, device.name]
            for i, rb in enumerate(RBS):
                for j, t in enumerate(THREADS):
                    cell = grid[i][j]
                    if cell is None:
                        row.append("-")
                    else:
                        fractions.append(cell)
                        row.append(f"{cell:.0f}%")
            rows.append(row)
    return format_table(
        headers, rows,
        title="Table 6.22: PIV — % of peak at fixed register counts "
              "and thread counts (mask-size sets)",
        note=SCALE_NOTE), fractions


@pytest.mark.slow
def test_table_6_22(benchmark):
    text, fractions = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_22", text)
    assert max(fractions) == pytest.approx(100.0)
    assert min(fractions) < 80.0

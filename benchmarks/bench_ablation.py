"""Ablation — which optimization buys the specialization speedup?

Compiles the specialized PIV kernel with parts of the pipeline
disabled and measures each variant on the same problem:

* RE                — no specialization at all (baseline);
* SK -O1 no-unroll  — constants folded, loops kept, no strength
                      reduction / magic division / CSE, accumulators
                      stay in local memory (no scalarization at rolled
                      loops);
* SK -O1            — plus full unrolling and scalarization;
* SK -O3            — plus strength reduction, magic division and CSE
                      (the shipped pipeline).

This decomposes §6.2's RE-vs-SK gaps into the §2.4 optimization list.
"""

import numpy as np
import pytest

from benchmarks.common import piv_images, ms
from repro.apps.piv import PIVProblem
from repro.apps.piv.host import RB_MAX
from repro.apps.piv.kernels import TREE_SRC
from repro.gpusim import GPU, TESLA_C2070
from repro.kernelc import nvcc
from repro.kernelc.templates import specialization_defines
from repro.reporting import emit, format_table

PROBLEM = PIVProblem("abl", 120, 160, mask=16, offs=9)
RB, THREADS = 4, 64

VARIANTS = [
    ("RE", {}, dict(opt_level=3, unroll=True)),
    ("SK -O1 no-unroll", None, dict(opt_level=1, unroll=False)),
    ("SK -O1 (unrolled)", None, dict(opt_level=1, unroll=True)),
    ("SK -O3 (full)", None, dict(opt_level=3, unroll=True)),
]


def _sk_defines():
    d = {"RB_MAX": RB_MAX}
    d.update(specialization_defines({
        "MASK_W": PROBLEM.mask, "MASK_H": PROBLEM.mask,
        "OFFS_W": PROBLEM.offs, "OFFS_H": PROBLEM.offs,
        "RB": RB, "THREADS": THREADS}))
    return d


def _run(kernel, gpu, img_a, img_b):
    xs, ys = PROBLEM.window_origins()
    d_a = gpu.alloc_array(img_a)
    d_b = gpu.alloc_array(img_b)
    d_xs = gpu.alloc_array(xs)
    d_ys = gpu.alloc_array(ys)
    d_scores = gpu.zeros(len(xs) * PROBLEM.n_offsets, np.float32)
    center = PROBLEM.offs // 2
    result = gpu.launch(
        kernel, grid=len(xs), block=THREADS,
        args=[d_a, d_b, d_xs, d_ys, d_scores, PROBLEM.img_w,
              PROBLEM.mask, PROBLEM.mask, PROBLEM.offs, PROBLEM.offs,
              center, center, RB],
        functional=False, sample_blocks=2)
    for addr in (d_a, d_b, d_xs, d_ys, d_scores):
        gpu.free(addr)
    return result


def _build():
    img_a, img_b = piv_images(PROBLEM)
    img_a = img_a.astype(np.float32)
    rows = []
    baseline = None
    for label, defines, options in VARIANTS:
        defines = dict(defines) if defines is not None else _sk_defines()
        defines.setdefault("RB_MAX", RB_MAX)
        module = nvcc(TREE_SRC, defines=defines,
                      arch=TESLA_C2070.arch, **options)
        kernel = module.kernel("pivScores")
        gpu = GPU(TESLA_C2070)
        result = _run(kernel, gpu, img_a, img_b)
        seconds = result.seconds
        if baseline is None:
            baseline = seconds
        in_regs = "yes" if not kernel.ir.local_arrays else "no"
        rows.append([label, kernel.static_instructions,
                     kernel.reg_count, in_regs,
                     f"{ms(seconds):.3f}",
                     f"{baseline / seconds:.2f}x"])
    return format_table(
        ["variant", "static instrs", "regs", "acc in regs",
         "time (ms)", "vs RE"],
        rows,
        title="Ablation: optimization contributions to the PIV "
              f"specialization speedup (C2070, mask 16, offs 9, rb={RB})",
        note="each row adds pipeline stages; 'acc in regs' = register "
             "blocking scalarized")


def test_ablation(benchmark):
    text = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("ablation_optimizations", text)
    lines = [l for l in text.splitlines()[3:-1]]
    times = [float(l.split("|")[4].strip()) for l in lines]
    # Full SK must be the fastest variant.
    assert times[-1] == min(times)

"""Warm-pool service throughput vs per-request context rebuilds.

The daemon's reason to exist is §4.3's amortization argument: a warm
worker keeps its :class:`ExecutionContext` — compiled-binary, launch
plan, gang, and trace caches — across requests, so only the *first*
request per distinct config pays specialization cost.  This bench
times the same request stream three ways:

* **cold** — ``run_request`` with a fresh context per request (what a
  batch harness without the daemon does);
* **warm** — the in-process service with one worker, heartbeats at
  the production default, and a ``health()`` poll per request (the
  full supervision + reporting tax included);
* **warm, reporting muted** — the same service with heartbeats
  effectively off and no health polls, to price the supervision tax
  by difference.

Writes ``BENCH_serve.json`` at the repo root.  The pytest smoke
asserts the warm pool beats cold rebuilds and the health/heartbeat
overhead stays under 2%.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import timed, write_bench_json
from repro.apps.harness import ProblemSpec, RunRequest, run_request
from repro.apps.template_matching import MatchConfig, MatchProblem
from repro.serve import ServiceConfig, SpecializationService

SPEC = ProblemSpec(
    app="template_matching",
    problem=MatchProblem("bench", frame_h=60, frame_w=80, tmpl_h=16,
                         tmpl_w=12, shift_h=5, shift_w=5, n_frames=1),
    seed=11, device="c2070", memory_bytes=16 << 20)

#: Three distinct configs cycled over the stream: the warm pool
#: compiles each once; cold rebuilds compile every single request.
CONFIGS = [MatchConfig(tile_w=8, tile_h=8, threads=32),
           MatchConfig(tile_w=16, tile_h=8, threads=32),
           MatchConfig(tile_w=8, tile_h=8, threads=64)]

REQUESTS = 18
REPEATS = 3


def request_stream():
    return [RunRequest(spec=SPEC, config=CONFIGS[i % len(CONFIGS)])
            for i in range(REQUESTS)]


def run_cold() -> float:
    def once():
        for request in request_stream():
            run_request(request)  # fresh context per request

    return min(timed(once)[0] for _ in range(REPEATS))


def run_warm(heartbeat: float, poll_health: bool) -> float:
    config = ServiceConfig(workers=1, queue_capacity=REQUESTS + 2,
                           heartbeat_interval=heartbeat, tick=0.01)

    def once():
        with SpecializationService(config) as service:
            for request in request_stream():
                service.run(request)
                if poll_health:
                    service.health()

    return min(timed(once)[0] for _ in range(REPEATS))


def run_serve_bench() -> dict:
    wall_cold = run_cold()
    wall_warm = run_warm(heartbeat=0.1, poll_health=True)
    wall_muted = run_warm(heartbeat=60.0, poll_health=False)
    overhead = max(0.0, (wall_warm - wall_muted) / wall_muted)
    payload = {
        "bench": "serve",
        "app": SPEC.app,
        "requests": REQUESTS,
        "distinct_configs": len(CONFIGS),
        "repeats_best_of": REPEATS,
        "cpu_count": os.cpu_count(),
        "wall_cold_s": wall_cold,
        "wall_warm_s": wall_warm,
        "wall_warm_muted_s": wall_muted,
        "warm_speedup": wall_cold / wall_warm,
        "health_heartbeat_overhead_frac": overhead,
        "requests_per_s_cold": REQUESTS / wall_cold,
        "requests_per_s_warm": REQUESTS / wall_warm,
    }
    write_bench_json("BENCH_serve.json", payload)
    return payload


def test_warm_pool_beats_cold_rebuilds():
    payload = run_serve_bench()
    # The warm pool must amortize specialization: strictly faster than
    # rebuilding a context (and recompiling) per request, even paying
    # process hops, supervision, and health polls.
    assert payload["warm_speedup"] > 1.0
    # Heartbeats + health reporting price in under 2%.
    assert payload["health_heartbeat_overhead_frac"] < 0.02


if __name__ == "__main__":
    p = run_serve_bench()
    print(f"{p['requests']} requests over {p['distinct_configs']} "
          f"configs (best of {p['repeats_best_of']})")
    print(f"cold rebuilds {p['wall_cold_s']:6.2f}s "
          f"({p['requests_per_s_cold']:.1f} req/s)")
    print(f"warm service  {p['wall_warm_s']:6.2f}s "
          f"({p['requests_per_s_warm']:.1f} req/s, "
          f"{p['warm_speedup']:.2f}x)")
    print(f"health/heartbeat overhead "
          f"{100 * p['health_heartbeat_overhead_frac']:.2f}%")

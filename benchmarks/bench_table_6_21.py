"""Table 6.21 — template matching: % of peak at fixed tile/thread
choices.

The tile/thread sweep runs per (patient, device); each cell reports the
percentage of that sweep's peak a *fixed* configuration achieves.  The
paper's argument: every fixed choice leaves performance behind on some
problem/device, so configurations must be selected — and specialized —
at run time.
"""

import pytest

from benchmarks.common import BENCH_CACHE, DEVICES, tm_frames
from repro.apps.template_matching.problems import PATIENTS_FULL
from repro.reporting import emit, format_table
from repro.tuning import best_record, tm_sweep

TILES = [(8, 8), (16, 8), (16, 16)]
THREADS = [64, 128]


def _build():
    headers = ["patient", "device"] + [
        f"{tw}x{th}/{t}" for (tw, th) in TILES for t in THREADS]
    rows = []
    fractions = []
    for problem in PATIENTS_FULL[:2]:
        frames, template, _ = tm_frames(problem)
        for device in DEVICES:
            records = tm_sweep(problem, template, frames[0], TILES,
                               THREADS, device, cache=BENCH_CACHE)
            peak = best_record(records).seconds
            row = [problem.name, device.name]
            for (tw, th) in TILES:
                for t in THREADS:
                    rec = next(r for r in records
                               if r.config["tile"] == (tw, th)
                               and r.config["threads"] == t)
                    if rec.valid:
                        pct = 100.0 * peak / rec.seconds
                        fractions.append(pct)
                        row.append(f"{pct:.0f}%")
                    else:
                        row.append("-")
            rows.append(row)
    return format_table(
        headers, rows,
        title="Table 6.21: template matching — % of peak at fixed "
              "main tile sizes and thread counts",
        note="100% marks each row's own sweep optimum"), fractions


@pytest.mark.slow
def test_table_6_21(benchmark):
    text, fractions = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_21", text)
    assert max(fractions) == pytest.approx(100.0)
    # Some fixed choice must be measurably suboptimal somewhere.
    assert min(fractions) < 90.0

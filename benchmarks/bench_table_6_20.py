"""Table 6.20 — occupancy and execution data, C1060, PIV V2 set.

For a spread of (rb, threads) configurations of the specialized PIV
kernel on the V2 problem: per-thread registers, shared memory,
blocks/SM, occupancy, the limiting resource, and measured time.  The
dissertation's point (§6.3, after Volkov): maximum performance does
*not* coincide with maximum occupancy — resource-heavy low-thread
blocks with high ILP can win.
"""

import pytest

from benchmarks.common import BENCH_CACHE, piv_images, ms
from repro.apps.piv import PIVConfig, PIVProcessor
from repro.apps.piv.problems import MASK_SET, SCALE_NOTE
from repro.gpusim import TESLA_C1060
from repro.gpusim.occupancy import occupancy
from repro.reporting import emit, format_table

V2 = MASK_SET[1]
CONFIGS = [(1, 64), (1, 256), (4, 64), (4, 128), (8, 32), (8, 64)]


def _build():
    img_a, img_b = piv_images(V2)
    rows = []
    measured = {}
    for rb, threads in CONFIGS:
        cfg = PIVConfig(variant="tree", rb=rb, threads=threads,
                        specialize=True, functional=False,
                        sample_blocks=2)
        proc = PIVProcessor(V2, cfg, device=TESLA_C1060,
                            cache=BENCH_CACHE)
        result = proc.run(img_a, img_b)
        occ = occupancy(TESLA_C1060, threads,
                        proc.kernel.reg_count,
                        proc.kernel.shared_bytes)
        measured[(rb, threads)] = result.kernel_seconds
        rows.append([
            f"rb={rb}", threads, proc.kernel.reg_count,
            proc.kernel.shared_bytes, occ.blocks_per_sm,
            f"{occ.fraction(TESLA_C1060):.2f}", occ.limited_by,
            f"{ms(result.kernel_seconds):.3f}"])
    return format_table(
        ["config", "threads", "regs/thr", "smem (B)", "blocks/SM",
         "occupancy", "limited by", "time (ms)"],
        rows,
        title="Table 6.20: occupancy and execution data — C1060, "
              "PIV V2 set",
        note=SCALE_NOTE), measured


def test_table_6_20(benchmark):
    text, measured = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_20", text)
    # Shape: the fastest configuration is not the max-occupancy one.
    best = min(measured, key=measured.get)
    assert best != (1, 256), "peak should not sit at max occupancy"

"""Table 6.12 — backprojection: OpenMP CPU (4 threads) vs both GPUs.

Paper shape: both GPUs are an order of magnitude ahead of the CPU; the
C2070's higher throughput puts it in front.
"""

import pytest

from benchmarks.common import BENCH_CACHE, DEVICES, bp_projs, ms
from repro.apps.backprojection import cpu_backproject_seconds
from repro.apps.backprojection.problems import (BLOCK_SHAPES, PROBLEMS,
                                                SCALE_NOTE, ZB_VALUES)
from repro.reporting import emit, format_table, speedup
from repro.tuning import best_record, bp_sweep

SWEEP_BLOCKS = [(16, 8), (16, 16)]
SWEEP_ZB = [2, 4]


def _build():
    from repro.apps.backprojection import BPProblem

    rows = []
    # B3: a larger volume (single configuration, no sweep) to show the
    # speedup growing toward the paper's order of magnitude with size.
    big = BPProblem("B3", nx=96, ny=96, nz=64, n_proj=48, det_u=128,
                    det_v=96)
    for problem in list(PROBLEMS) + [big]:
        projections = bp_projs(problem)
        cpu_s = cpu_backproject_seconds(problem.nx, problem.ny,
                                        problem.nz, problem.n_proj)
        row = [problem.name,
               f"{problem.nx}x{problem.ny}x{problem.nz}",
               problem.n_proj, f"{ms(cpu_s):.3f}"]
        blocks = SWEEP_BLOCKS if problem.name != "B3" else [(16, 16)]
        zbs = SWEEP_ZB if problem.name != "B3" else [4]
        for device in DEVICES:
            records = bp_sweep(problem, projections, blocks, zbs,
                               device, cache=BENCH_CACHE)
            best = best_record(records)
            row += [f"{ms(best.seconds):.3f}",
                    f"{speedup(cpu_s, best.seconds):.1f}x"]
        rows.append(row)
    return format_table(
        ["set", "volume", "projections", "CPU OpenMP (ms)",
         "C1060 (ms)", "speedup", "C2070 (ms)", "speedup"],
        rows,
        title="Table 6.12: backprojection — OpenMP CPU vs best GPU",
        note=SCALE_NOTE)


def test_table_6_12(benchmark):
    text = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_12", text)
    for line in text.splitlines()[3:-1]:
        cells = [c.strip() for c in line.split("|")]
        assert float(cells[4]) < float(cells[3]), line
        assert float(cells[6]) < float(cells[3]), line

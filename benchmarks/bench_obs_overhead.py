"""Tracing overhead: traced vs untraced wall time on a real workload.

The observability contract is that tracing off costs nothing (one
``ctx.tracer is None`` test per instrumented site — no tracer or span
objects exist) and tracing on stays in the noise for simulator-bound
work (a traced template-matching run records tens of spans over
~140 ms of simulation).  This bench measures both claims on the harness
run protocol.  Scheduler noise on a shared box dwarfs the effect being
measured, so single timed blocks are useless: each round interleaves
one untraced-A, one traced, and one untraced-B run (drift hits all
three modes equally) and each mode keeps its minimum over all rounds.
The two untraced series run identical code — their min-vs-min delta is
the noise floor the <1%-off claim is judged against — so rounds are
added until those two mins agree to :data:`CONVERGED` (or the
:data:`MAX_ROUNDS` cap, on a hopelessly noisy box).  Results land in
``BENCH_obs.json``.

Run directly with ``python benchmarks/bench_obs_overhead.py`` or via
pytest (part of the CI ``obs`` job; ~15 s).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import write_bench_json
from repro.apps.harness import ProblemSpec, RunRequest, run_request
from repro.apps.template_matching import MatchConfig, MatchProblem

PROBLEM = MatchProblem("obs-bench", frame_h=60, frame_w=80, tmpl_h=16,
                       tmpl_w=12, shift_h=5, shift_w=5, n_frames=1)
SPEC = ProblemSpec("template_matching", PROBLEM, seed=11,
                   memory_bytes=8 << 20)
CONFIG = MatchConfig(tile_w=8, tile_h=8, threads=32)

#: Interleaved-round budget: at least MIN_ROUNDS, then keep going until
#: the two untraced series' mins agree to CONVERGED, up to MAX_ROUNDS.
MIN_ROUNDS = 15
MAX_ROUNDS = 80
CONVERGED = 0.01


def _run(trace: bool) -> float:
    """Wall seconds for one fresh-context harness run."""
    t0 = time.perf_counter()
    run_request(RunRequest(SPEC, CONFIG, trace=trace))
    return time.perf_counter() - t0


def run_obs_bench() -> dict:
    _run(False)  # warm imports and the template codegen paths
    _run(True)
    off_a, on, off_b = [], [], []
    rounds = 0
    while rounds < MAX_ROUNDS:
        off_a.append(_run(False))
        on.append(_run(True))
        off_b.append(_run(False))
        rounds += 1
        if rounds >= MIN_ROUNDS:
            floor = min(min(off_a), min(off_b))
            if abs(min(off_a) - min(off_b)) / floor < CONVERGED:
                break
    wall_off_a, wall_on, wall_off_b = min(off_a), min(on), min(off_b)
    base = min(wall_off_a, wall_off_b)
    # Span/profile volume of one traced run, for the record.
    traced = run_request(RunRequest(SPEC, CONFIG, trace=True))
    payload = {
        "bench": "obs_overhead",
        "app": "template_matching",
        "problem": PROBLEM.name,
        "rounds": rounds,
        "wall_untraced_a_s": wall_off_a,
        "wall_untraced_b_s": wall_off_b,
        "wall_traced_s": wall_on,
        "spans_per_run": len(traced.trace["spans"]),
        "profiles_per_run": len(traced.profiles),
        # Two identical untraced series: their delta is the noise
        # floor, i.e. the measured cost of tracing being *available*
        # but off is indistinguishable from zero below it.
        "untraced_delta": abs(wall_off_a - wall_off_b) / base,
        "traced_overhead": wall_on / base - 1.0,
    }
    write_bench_json("BENCH_obs.json", payload)
    return payload


def test_tracing_overhead_bounds():
    payload = run_obs_bench()
    # Off must be indistinguishable from off (same code path — the
    # delta is pure timing noise); on must stay under 5%.
    assert payload["untraced_delta"] < 0.02
    assert payload["traced_overhead"] < 0.05
    assert payload["profiles_per_run"] > 0


if __name__ == "__main__":
    p = run_obs_bench()
    print(f"min over {p['rounds']} interleaved rounds")
    print(f"untraced   {p['wall_untraced_a_s'] * 1000:7.1f}ms / "
          f"{p['wall_untraced_b_s'] * 1000:7.1f}ms "
          f"(delta {p['untraced_delta'] * 100:.2f}%)")
    print(f"traced     {p['wall_traced_s'] * 1000:7.1f}ms "
          f"(overhead {p['traced_overhead'] * 100:.2f}%, "
          f"{p['spans_per_run']} spans, "
          f"{p['profiles_per_run']} profiles per run)")

"""Telemetry overhead: traced vs untraced wall time, plus instrument
micro-costs.

The observability contract is that tracing off costs nothing (one
``ctx.tracer is None`` test per instrumented site — no tracer or span
objects exist) and tracing on stays in the noise for simulator-bound
work (a traced template-matching run records tens of spans over
~140 ms of simulation).  This bench measures both claims on the harness
run protocol.  Scheduler noise on a shared box dwarfs the effect being
measured, so single timed blocks are useless: each round interleaves
one untraced-A, one traced, and one untraced-B run (drift hits all
three modes equally) and each mode is summarized by the **median over
all rounds** (robust to the occasional descheduled round, unlike the
min, which rewards the one luckiest round).  The two untraced series
run identical code — their median-vs-median delta is the noise floor
the <1%-off claim is judged against — so rounds are added until those
two medians agree to :data:`CONVERGED` (or the :data:`MAX_ROUNDS` cap,
on a hopelessly noisy box).

The telemetry plane also put two always-on instruments near hot paths,
so their unit costs are recorded too:

* ``hist_observe_ns`` — one ``MetricsRegistry.observe`` (lock + log
  bucket + SLO check);
* ``event_record_ns`` — one ``FlightRecorder.record`` (lock + clock +
  crc32 id + deque append).

Results land in ``BENCH_obs.json``.  Run directly with
``python benchmarks/bench_obs_overhead.py`` or via pytest (part of the
CI ``obs`` job).
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import write_bench_json
from repro.apps.harness import ProblemSpec, RunRequest, run_request
from repro.apps.template_matching import MatchConfig, MatchProblem
from repro.obs.events import FlightRecorder
from repro.obs.metrics import MetricsRegistry

PROBLEM = MatchProblem("obs-bench", frame_h=60, frame_w=80, tmpl_h=16,
                       tmpl_w=12, shift_h=5, shift_w=5, n_frames=1)
SPEC = ProblemSpec("template_matching", PROBLEM, seed=11,
                   memory_bytes=8 << 20)
CONFIG = MatchConfig(tile_w=8, tile_h=8, threads=32)

#: Interleaved-round budget: at least MIN_ROUNDS, then keep going until
#: the two untraced series' medians agree to CONVERGED, up to
#: MAX_ROUNDS.
MIN_ROUNDS = 25
MAX_ROUNDS = 100
CONVERGED = 0.005

#: Micro-bench shape: per-call cost is the median of REPS timed loops
#: of LOOP calls each.
MICRO_LOOP = 20_000
MICRO_REPS = 7


def _run(trace: bool) -> float:
    """Wall seconds for one fresh-context harness run."""
    t0 = time.perf_counter()
    run_request(RunRequest(SPEC, CONFIG, trace=trace))
    return time.perf_counter() - t0


def _per_call_ns(fn) -> float:
    """Median per-call nanoseconds of *fn* over timed loops."""
    reps = []
    for _ in range(MICRO_REPS):
        t0 = time.perf_counter()
        for _ in range(MICRO_LOOP):
            fn()
        reps.append((time.perf_counter() - t0) / MICRO_LOOP * 1e9)
    return statistics.median(reps)


def _micro_costs() -> dict:
    registry = MetricsRegistry()
    registry.set_slo("micro.lat_s", 0.5)
    values = iter([0.001, 0.01, 0.1, 1.0] * (MICRO_LOOP * MICRO_REPS))
    hist_ns = _per_call_ns(
        lambda: registry.observe("micro.lat_s", next(values)))
    recorder = FlightRecorder(capacity=256)
    event_ns = _per_call_ns(
        lambda: recorder.record("note", text="micro"))
    return {"hist_observe_ns": hist_ns, "event_record_ns": event_ns}


def run_obs_bench() -> dict:
    _run(False)  # warm imports and the template codegen paths
    _run(True)
    off_a, on, off_b = [], [], []
    rounds = 0
    while rounds < MAX_ROUNDS:
        off_a.append(_run(False))
        on.append(_run(True))
        off_b.append(_run(False))
        rounds += 1
        if rounds >= MIN_ROUNDS:
            med_a = statistics.median(off_a)
            med_b = statistics.median(off_b)
            if abs(med_a - med_b) / min(med_a, med_b) < CONVERGED:
                break
    wall_off_a = statistics.median(off_a)
    wall_off_b = statistics.median(off_b)
    wall_on = statistics.median(on)
    base = min(wall_off_a, wall_off_b)
    # Span/profile/event volume of one traced run, for the record.
    traced = run_request(RunRequest(SPEC, CONFIG, trace=True))
    payload = {
        "bench": "obs_overhead",
        "app": "template_matching",
        "problem": PROBLEM.name,
        "rounds": rounds,
        "summary": "median",
        "wall_untraced_a_s": wall_off_a,
        "wall_untraced_b_s": wall_off_b,
        "wall_traced_s": wall_on,
        "wall_untraced_min_s": min(min(off_a), min(off_b)),
        "wall_traced_min_s": min(on),
        "spans_per_run": len(traced.trace["spans"]),
        "profiles_per_run": len(traced.profiles),
        "events_per_run": len(traced.events),
        # Two identical untraced series: their delta is the noise
        # floor, i.e. the measured cost of tracing being *available*
        # but off is indistinguishable from zero below it.
        "untraced_delta": abs(wall_off_a - wall_off_b) / base,
        "traced_overhead": wall_on / base - 1.0,
    }
    payload.update(_micro_costs())
    write_bench_json("BENCH_obs.json", payload)
    return payload


def test_tracing_overhead_bounds():
    payload = run_obs_bench()
    # Off must be indistinguishable from off (same code path — the
    # delta is pure timing noise); on must stay under 5%.
    assert payload["untraced_delta"] < 0.01
    assert payload["traced_overhead"] < 0.05
    assert payload["profiles_per_run"] > 0
    # One observation / one event must stay in single-digit
    # microseconds — these instruments sit near dispatch paths.
    assert payload["hist_observe_ns"] < 10_000
    assert payload["event_record_ns"] < 10_000


if __name__ == "__main__":
    p = run_obs_bench()
    print(f"median over {p['rounds']} interleaved rounds")
    print(f"untraced   {p['wall_untraced_a_s'] * 1000:7.1f}ms / "
          f"{p['wall_untraced_b_s'] * 1000:7.1f}ms "
          f"(delta {p['untraced_delta'] * 100:.2f}%)")
    print(f"traced     {p['wall_traced_s'] * 1000:7.1f}ms "
          f"(overhead {p['traced_overhead'] * 100:.2f}%, "
          f"{p['spans_per_run']} spans, "
          f"{p['profiles_per_run']} profiles, "
          f"{p['events_per_run']} events per run)")
    print(f"observe    {p['hist_observe_ns']:7.0f}ns per histogram "
          f"sample")
    print(f"record     {p['event_record_ns']:7.0f}ns per flight event")

"""Figure 6.1 — contour maps of performance relative to peak, C1060.

One panel per mask-size data set (Table 6.4): % of peak over the
(register count, thread count) plane.  Printed as contour series —
each line traces the thread axis for one register-blocking level; the
peak cell is marked '*' (the figures' white square).
"""

import pytest

from benchmarks.bench_table_6_22 import RBS, THREADS
from benchmarks.common import BENCH_CACHE, piv_images
from repro.apps.piv.problems import MASK_SET, SCALE_NOTE
from repro.gpusim import TESLA_C1060
from repro.reporting import emit, format_table
from repro.tuning import best_record, contour_series, piv_sweep


def build_contours(device):
    sections = []
    peaks = []
    for problem in MASK_SET:
        img_a, img_b = piv_images(problem)
        records = piv_sweep(problem, device, img_a, img_b, RBS,
                            THREADS, cache=BENCH_CACHE)
        best = best_record(records)
        peaks.append((problem.name, best.config["rb"],
                      best.config["threads"]))
        series = contour_series(records, "rb", "threads")
        rows = []
        for rb, pts in series:
            cells = [f"rb={rb}"]
            for t, pct in pts:
                mark = "*" if (rb == best.config["rb"]
                               and t == best.config["threads"]) else ""
                cells.append(f"{pct:.0f}%{mark}")
            rows.append(cells)
        sections.append(format_table(
            ["regs\\threads"] + [str(t) for t in THREADS], rows,
            title=f"{problem.name} (mask {problem.mask}x{problem.mask})"
                  f" on {device.name} — % of peak ('*' = peak)"))
    return "\n\n".join(sections), peaks


def _build():
    return build_contours(TESLA_C1060)


@pytest.mark.slow
def test_figure_6_1(benchmark):
    text, peaks = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("figure_6_1", text + f"\nnote: {SCALE_NOTE}")
    # Shape: peak location moves across the data sets.
    assert len({(rb, t) for (_, rb, t) in peaks}) > 1

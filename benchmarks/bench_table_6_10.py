"""Table 6.10 — template matching: multithreaded-C CPU vs best GPU.

For each full-size patient (Table 5.1 dimensions), a small tile/thread
sweep finds the best specialized GPU configuration per device; timing
uses sampled launches so only representative blocks execute.  The CPU
column is the calibrated four-thread model.  The paper's shape: both
GPUs beat the CPU by an order of magnitude, the C2070 ahead of the
C1060.
"""

import pytest

from benchmarks.common import BENCH_CACHE, DEVICES, tm_frames, ms
from repro.apps.template_matching import cpu_match_seconds
from repro.apps.template_matching.problems import PATIENTS_FULL
from repro.reporting import emit, format_table, speedup
from repro.tuning import best_record, tm_sweep

SWEEP_TILES = [(16, 8), (16, 16)]
SWEEP_THREADS = [128]


def _build():
    rows = []
    for problem in PATIENTS_FULL:
        frames, template, _ = tm_frames(problem)
        cpu_s = cpu_match_seconds(problem.tmpl_h, problem.tmpl_w,
                                  problem.shift_h, problem.shift_w)
        row = [problem.name, f"{problem.tmpl_h}x{problem.tmpl_w}",
               f"{ms(cpu_s):.3f}"]
        for device in DEVICES:
            records = tm_sweep(problem, template, frames[0],
                               SWEEP_TILES, SWEEP_THREADS, device,
                               cache=BENCH_CACHE)
            best = best_record(records)
            row += [f"{ms(best.seconds):.3f}",
                    f"{speedup(cpu_s, best.seconds):.1f}x"]
        rows.append(row)
    return format_table(
        ["patient", "template", "CPU 4-thr (ms/frame)", "C1060 (ms)",
         "C1060 speedup", "C2070 (ms)", "C2070 speedup"],
        rows,
        title="Table 6.10: template matching — CPU vs best GPU config "
              "(per corr2 frame)",
        note="full Table 5.1 dimensions; GPU = best of tile/thread "
             "sweep, kernel-specialized, sampled timing")


def test_table_6_10(benchmark):
    text = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_10", text)
    # Shape assertions: every GPU column beats the CPU column.
    for line in text.splitlines()[3:-1]:
        cells = [c.strip() for c in line.split("|")]
        assert float(cells[3]) < float(cells[2]), line
        assert float(cells[5]) < float(cells[2]), line

"""Table 6.18 — PIV optimal configurations, varying window overlap.

Overlap multiplies the number of interrogation windows (blocks) without
changing per-window work: more blocks improve machine utilisation, so
rates improve while the per-window optimum stays put.
"""

import pytest

from benchmarks.bench_table_6_15 import build_optima_table
from repro.apps.piv.problems import OVERLAP_SET, SCALE_NOTE
from repro.reporting import emit


def _build():
    return build_optima_table(OVERLAP_SET, "6.18",
                              SCALE_NOTE + "; varying window overlap")


def test_table_6_18(benchmark):
    text, optima = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_18", text)
    assert len(optima) >= 1

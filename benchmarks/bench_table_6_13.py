"""Table 6.13 — template matching partial sums: RE vs SK.

For each full-size patient and device, the tiled numerator kernel's
best specialized configuration is found by sweep, then the same
configuration is recompiled fully run-time evaluated.  Reported: both
times, the SK speedup, the optimal tile/thread configuration, and the
per-thread register counts (RE and SK) — the dissertation's headline
observations that SK wins and uses fewer registers.
"""

import pytest

from benchmarks.common import BENCH_CACHE, DEVICES, tm_frames, ms
from repro.apps.template_matching import MatchConfig, TemplateMatcher
from repro.apps.template_matching.problems import PATIENTS_FULL
from repro.reporting import emit, format_table, speedup
from repro.tuning import best_record, tm_sweep

SWEEP_TILES = [(16, 8), (16, 16)]
SWEEP_THREADS = [128]


def _build():
    rows = []
    for problem in PATIENTS_FULL[:2]:  # two patients keep the bench short
        frames, template, _ = tm_frames(problem)
        for device in DEVICES:
            records = tm_sweep(problem, template, frames[0],
                               SWEEP_TILES, SWEEP_THREADS, device,
                               cache=BENCH_CACHE)
            best = best_record(records)
            tw, th = best.config["tile"]
            threads = best.config["threads"]
            sk_cfg = MatchConfig(tile_w=tw, tile_h=th, threads=threads,
                                 specialize=True, functional=False,
                                 sample_blocks=2)
            re_cfg = MatchConfig(tile_w=tw, tile_h=th, threads=threads,
                                 specialize=False, functional=False,
                                 sample_blocks=2)
            m_sk = TemplateMatcher(problem, template, sk_cfg,
                                   device=device, cache=BENCH_CACHE)
            m_re = TemplateMatcher(problem, template, re_cfg,
                                   device=device, cache=BENCH_CACHE)
            r_sk = m_sk.match(frames[0])
            r_re = m_re.match(frames[0])
            rows.append([
                problem.name, device.name, f"{tw}x{th}", threads,
                f"{ms(r_re.kernel_seconds):.3f}",
                f"{ms(r_sk.kernel_seconds):.3f}",
                f"{speedup(r_re.kernel_seconds, r_sk.kernel_seconds):.2f}x",
                m_re.numerator_reg_count(), m_sk.numerator_reg_count()])
    return format_table(
        ["patient", "device", "opt tile", "threads", "RE (ms)",
         "SK (ms)", "SK speedup", "RE regs", "SK regs"],
        rows,
        title="Table 6.13: template matching partial sums — runtime "
              "evaluated vs specialized kernel",
        note="optimal configuration per (patient, device) from the "
             "specialized sweep; RE recompiled at the same point")


def test_table_6_13(benchmark):
    text = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_13", text)
    for line in text.splitlines()[3:-1]:
        cells = [c.strip() for c in line.split("|")]
        assert float(cells[5]) <= float(cells[4]), line  # SK <= RE time
        # Register footprints are comparable here: specialization
        # removes the RE parameter plumbing but full unrolling adds a
        # little scheduling pressure; the clear reductions appear in
        # the backprojection kernel (Table 6.19).
        assert int(cells[8]) <= int(cells[7]) + 2, line

"""Table 6.11 — PIV: FPGA implementation vs best GPU configuration.

The FPGA column is the deterministic pipeline model of
``repro.baselines.fpga``; the GPU column is the best (rb, threads)
sweep point per device.  Paper shape: the GPU wins most sets, by larger
margins on the bigger masks/searches; the fixed-function FPGA stays
competitive on the smallest problems.
"""

import pytest

from benchmarks.common import BENCH_CACHE, DEVICES, piv_images, ms
from repro.apps.piv.problems import FPGA_SET, SCALE_NOTE
from repro.baselines.fpga import PIV_FPGA, fpga_piv_time
from repro.reporting import emit, format_table, speedup
from repro.tuning import best_record, piv_sweep

SWEEP_RB = [1, 4, 8]
SWEEP_THREADS = [64, 128]


def _build():
    rows = []
    for problem in FPGA_SET:
        img_a, img_b = piv_images(problem)
        fpga_s = fpga_piv_time(PIV_FPGA, problem.n_windows,
                               problem.mask_pixels, problem.n_offsets)
        row = [problem.name, f"{problem.mask}x{problem.mask}",
               f"{problem.offs}x{problem.offs}", f"{ms(fpga_s):.3f}"]
        for device in DEVICES:
            records = piv_sweep(problem, device, img_a, img_b,
                                SWEEP_RB, SWEEP_THREADS,
                                cache=BENCH_CACHE)
            best = best_record(records)
            row += [f"{ms(best.seconds):.3f}",
                    f"{speedup(fpga_s, best.seconds):.1f}x"]
        rows.append(row)
    return format_table(
        ["set", "mask", "offsets", "FPGA (ms)", "C1060 (ms)",
         "vs FPGA", "C2070 (ms)", "vs FPGA"],
        rows,
        title="Table 6.11: PIV — FPGA pipeline vs best GPU config",
        note=SCALE_NOTE)


def test_table_6_11(benchmark):
    text = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_11", text)
    lines = text.splitlines()[3:-1]
    # Shape: the C2070 wins on the largest sets.
    last = [c.strip() for c in lines[-1].split("|")]
    assert float(last[6]) < float(last[3])

"""Serial-vs-batched-vs-traced engine comparison on the sweep workloads.

Runs the Table 6.21 (template matching) and Table 6.22 (PIV) workloads
*functionally* — every block executes — under the execution engines,
asserts the exactness contract (bit-identical outputs and identical
simulated kernel time, i.e. identical cycle counts), and records the
wall-clock speedups to ``BENCH_engine.json`` at the repo root.

Two comparisons share each case:

* **serial vs batched** — both timed cold, the original engine bench.
* **batched vs traced** — the trace JIT needs a recording run before
  replay pays off, so both sides are timed *warm* and best-of-three:
  batched after its cold run (gang prototypes built), traced after a
  recording warm-up run.  Both engines finish on their fourth run and
  exactness is asserted between those equal run indices — simulated
  timing is heap-position sensitive at the ulp level, so comparing a
  cold run against a warm one can differ in the last float digit.
  The per-case trace counters (hits/misses/records/deopts/aborts) for
  the warm runs land in the JSON next to the walls.

The full comparison is marked ``slow`` (the serial oracle needs about a
minute of wall time); the default bench run executes only the quick
equivalence smoke below.  Run everything with::

    PYTHONPATH=src:. python -m pytest benchmarks/bench_engine.py \
        -m "slow or not slow"

or directly with ``python benchmarks/bench_engine.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import pytest

import numpy as np

from benchmarks.common import piv_images, timed, tm_frames, \
    write_bench_json
from repro.apps.piv.host import PIVConfig, PIVProcessor
from repro.apps.piv.problems import MASK_SET
from repro.apps.template_matching.host import MatchConfig, \
    TemplateMatcher
from repro.apps.template_matching.problems import PATIENTS, PATIENTS_FULL
from repro.gpusim import GPU, TESLA_C1060, TESLA_C2070, \
    trace_cache_stats
from repro.gpusim.engine import DEFAULT_BATCH_BLOCKS
from repro.kernelc import nvcc

#: Required wall-clock advantage of the batched engine over the serial
#: oracle on the sweep workloads (PR 6 acceptance bar), and of the
#: traced engine over warm batched (aggregate over the traced cases).
SPEEDUP_FLOOR = 3.0


def _counter_delta(before: dict, after: dict) -> dict:
    return {k: after[k] - before.get(k, 0) for k in after}


def _best_of(fn, *args, runs: int = 3):
    """Best wall over *runs* timed calls (damps scheduler noise)."""
    best = None
    res = None
    for _ in range(runs):
        wall, res = timed(fn, *args)
        best = wall if best is None else min(best, wall)
    return best, res


def _piv_case(problem, rb: int, threads: int,
              device=TESLA_C2070) -> dict:
    """One Table 6.22 PIV configuration under both engines."""
    img_a, img_b = piv_images(problem)

    # Compile outside the timed region: the binary is engine-independent
    # and a long-running host would reuse it from the kernel cache.
    procs = {engine: PIVProcessor(
        problem, PIVConfig(rb=rb, threads=threads, engine=engine),
        device) for engine in ("batched", "serial", "traced")}
    wall_b, res_b = timed(procs["batched"].run, img_a, img_b)
    wall_s, res_s = timed(procs["serial"].run, img_a, img_b)
    # Warm-vs-warm JIT comparison (see the module docstring).  Both
    # engines end on their *third* run: simulated timing is
    # heap-position sensitive at the ulp level (allocations never
    # reuse addresses), so exactness is asserted between equal run
    # indices.
    wall_bw, res_bw = _best_of(procs["batched"].run, img_a, img_b)
    counters = dict(trace_cache_stats())
    procs["traced"].run(img_a, img_b)
    wall_t, res_t = _best_of(procs["traced"].run, img_a, img_b)
    counters = _counter_delta(counters, trace_cache_stats())
    suffix = "" if device is TESLA_C2070 else "-c1060"
    return {
        "name": f"piv-{problem.name}-rb{rb}-t{threads}{suffix}",
        "workload": "Table 6.22 (PIV mask-size sets)",
        "problem": problem.name,
        "config": {"rb": rb, "threads": threads},
        "device": device.name,
        "blocks": len(problem.window_origins()[0]),
        "wall_serial_s": wall_s,
        "wall_batched_s": wall_b,
        "speedup": wall_s / wall_b,
        "wall_batched_warm_s": wall_bw,
        "wall_traced_s": wall_t,
        "trace_speedup": wall_bw / wall_t,
        "trace_counters": counters,
        "sim_kernel_seconds": res_s.kernel_seconds,
        "sim_identical": res_s.kernel_seconds == res_b.kernel_seconds,
        "outputs_identical":
            res_s.scores.tobytes() == res_b.scores.tobytes(),
        "traced_identical":
            res_t.scores.tobytes() == res_bw.scores.tobytes()
            and res_t.kernel_seconds == res_bw.kernel_seconds,
    }


def _tm_case(problem, tile, threads: int) -> dict:
    """One Table 6.21 template-matching configuration, both engines."""
    frames, template, _ = tm_frames(problem)
    tile_w, tile_h = tile

    # Pipelines are built (and kernels compiled) outside the timing.
    matchers = {engine: TemplateMatcher(
        problem, template,
        MatchConfig(tile_w=tile_w, tile_h=tile_h, threads=threads,
                    functional=True, engine=engine),
        TESLA_C2070) for engine in ("batched", "serial", "traced")}
    wall_b, res_b = timed(matchers["batched"].match, frames[0])
    wall_s, res_s = timed(matchers["serial"].match, frames[0])
    # Warm-vs-warm JIT comparison; equal run indices, as in _piv_case.
    wall_bw, res_bw = _best_of(matchers["batched"].match, frames[0])
    counters = dict(trace_cache_stats())
    matchers["traced"].match(frames[0])
    wall_t, res_t = _best_of(matchers["traced"].match, frames[0])
    counters = _counter_delta(counters, trace_cache_stats())
    return {
        "name": f"tm-{problem.name}-{tile_w}x{tile_h}-t{threads}",
        "workload": "Table 6.21 (template matching, full-size)",
        "problem": problem.name,
        "config": {"tile": list(tile), "threads": threads},
        "device": TESLA_C2070.name,
        "wall_serial_s": wall_s,
        "wall_batched_s": wall_b,
        "speedup": wall_s / wall_b,
        "wall_batched_warm_s": wall_bw,
        "wall_traced_s": wall_t,
        "trace_speedup": wall_bw / wall_t,
        "trace_counters": counters,
        "sim_kernel_seconds": res_s.kernel_seconds,
        "sim_identical": res_s.kernel_seconds == res_b.kernel_seconds,
        "outputs_identical": res_s.ncc.tobytes() == res_b.ncc.tobytes(),
        "traced_identical":
            res_t.ncc.tobytes() == res_bw.ncc.tobytes()
            and res_t.kernel_seconds == res_bw.kernel_seconds,
    }


ATOMIC_SRC = """
__global__ void hist(float* facc, int* ihist, const float* in,
                     const int* bin, int n, int bins) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) {
        int b = bin[gid] % bins;
        atomicAdd(&ihist[b], 1);
        atomicAdd(&facc[b], in[gid]);
    }
}
"""


def _atomic_case(device, blocks: int = 2048, bins: int = 64) -> dict:
    """Atomic-heavy histogram: every lane contends on a few addresses.

    Single-warp blocks keep float-atomic ordering identical between the
    engines (the documented bit-exactness domain), so this measures the
    vectorized ordered-atomic path under maximal contention.
    """
    n = blocks * 32
    rng = np.random.default_rng(42)
    vals = rng.standard_normal(n).astype(np.float32)
    bin_of = rng.integers(0, bins, n).astype(np.int32)
    mod = nvcc(ATOMIC_SRC, arch=device.arch)
    results = {}
    for engine in ("batched", "serial"):
        gpu = GPU(device)
        d_facc = gpu.zeros(bins, np.float32)
        d_ihist = gpu.zeros(bins, np.int32)
        d_in = gpu.alloc_array(vals)
        d_bin = gpu.alloc_array(bin_of)
        wall, res = timed(gpu.launch, mod.kernel("hist"), (blocks,),
                          (32,), [d_facc, d_ihist, d_in, d_bin, n,
                                  bins], engine=engine)
        results[engine] = (
            wall, res, gpu.memcpy_dtoh(d_facc, np.float32, bins),
            gpu.memcpy_dtoh(d_ihist, np.int32, bins))
    wall_b, res_b, facc_b, ihist_b = results["batched"]
    wall_s, res_s, facc_s, ihist_s = results["serial"]
    suffix = "" if device is TESLA_C2070 else "-c1060"
    return {
        "name": f"atomic-hist-{blocks}b{suffix}",
        "workload": "atomic-heavy histogram (ordered float atomics)",
        "problem": f"{n} atomicAdds into {bins} bins",
        "config": {"blocks": blocks, "threads": 32, "bins": bins},
        "device": device.name,
        "blocks": blocks,
        "wall_serial_s": wall_s,
        "wall_batched_s": wall_b,
        "speedup": wall_s / wall_b,
        "sim_kernel_seconds": res_s.seconds,
        "sim_identical": res_s.seconds == res_b.seconds,
        "outputs_identical":
            facc_s.tobytes() == facc_b.tobytes()
            and ihist_s.tobytes() == ihist_b.tobytes(),
    }


def run_engine_bench() -> dict:
    """All cases + aggregate; writes ``BENCH_engine.json``."""
    cases = [
        _piv_case(MASK_SET[0], rb=4, threads=64),
        _tm_case(PATIENTS_FULL[0], tile=(16, 8), threads=128),
        # PR 2: the vectorized CC 1.x path — the Tesla C1060 sweep
        # workload the dissertation's headline comparisons run through.
        _piv_case(MASK_SET[0], rb=4, threads=64, device=TESLA_C1060),
        _atomic_case(TESLA_C2070),
        _atomic_case(TESLA_C1060),
    ]
    total_s = sum(c["wall_serial_s"] for c in cases)
    total_b = sum(c["wall_batched_s"] for c in cases)
    traced = [c for c in cases if "wall_traced_s" in c]
    total_bw = sum(c["wall_batched_warm_s"] for c in traced)
    total_t = sum(c["wall_traced_s"] for c in traced)
    payload = {
        "bench": "engine",
        "engines": ["serial", "batched", "traced"],
        "batch_blocks": DEFAULT_BATCH_BLOCKS,
        "speedup_floor": SPEEDUP_FLOOR,
        "cases": cases,
        "aggregate": {
            "wall_serial_s": total_s,
            "wall_batched_s": total_b,
            "speedup": total_s / total_b,
            "min_case_speedup": min(c["speedup"] for c in cases),
            # Warm batched vs warm traced, over the traced cases.
            "wall_batched_warm_s": total_bw,
            "wall_traced_s": total_t,
            "trace_speedup": total_bw / total_t,
        },
    }
    write_bench_json("BENCH_engine.json", payload)
    return payload


def test_engine_equivalence_smoke():
    """Quick default check: batched ≡ serial on a small functional TM."""
    case = _tm_case(PATIENTS[0], tile=(16, 16), threads=128)
    assert case["outputs_identical"]
    assert case["sim_identical"]


@pytest.mark.slow
def test_engine_speedup():
    payload = run_engine_bench()
    traced = [c for c in payload["cases"] if "wall_traced_s" in c]
    assert traced, "no traced cases in the engine bench"
    for case in payload["cases"]:
        assert case["outputs_identical"], case["name"]
        assert case["sim_identical"], case["name"]
        assert case["speedup"] >= SPEEDUP_FLOOR, case
    for case in traced:
        assert case["traced_identical"], case["name"]
    assert payload["aggregate"]["speedup"] >= SPEEDUP_FLOOR
    assert payload["aggregate"]["trace_speedup"] >= SPEEDUP_FLOOR


if __name__ == "__main__":
    result = run_engine_bench()
    for case in result["cases"]:
        line = (f"{case['name']:32s} serial {case['wall_serial_s']:7.2f}s"
                f"  batched {case['wall_batched_s']:7.2f}s"
                f"  speedup {case['speedup']:5.2f}x"
                f"  identical={case['outputs_identical']}")
        if "wall_traced_s" in case:
            line += (f"  traced {case['wall_traced_s']:6.2f}s"
                     f" ({case['trace_speedup']:4.2f}x warm,"
                     f" identical={case['traced_identical']})")
        print(line)
    agg = result["aggregate"]
    print(f"aggregate speedup {agg['speedup']:.2f}x, "
          f"trace speedup {agg['trace_speedup']:.2f}x "
          f"(floor {SPEEDUP_FLOOR}x)")

"""Table 6.16 — PIV optimal configurations, varying mask size (V sets).

Paper shape: growing masks shift the optimum toward more threads /
different register blocking, and per-problem rates scale with the mask
area.
"""

import pytest

from benchmarks.bench_table_6_15 import build_optima_table
from repro.apps.piv.problems import MASK_SET, SCALE_NOTE
from repro.reporting import emit


def _build():
    return build_optima_table(MASK_SET, "6.16",
                              SCALE_NOTE + "; varying mask size")


def test_table_6_16(benchmark):
    text, optima = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_16", text)
    assert len(optima) > 1

"""Table 6.19 — backprojection kernels: RE vs SK on both GPUs.

Per (problem, device): the specialized kernel's best (block, zb) sweep
point versus the run-time-evaluated compilation of the same source at
the same configuration.  Paper shape: SK wins everywhere and uses fewer
registers (the z-accumulator array scalarizes instead of spilling, and
the parameter plumbing disappears).
"""

import pytest

from benchmarks.common import BENCH_CACHE, DEVICES, bp_projs, ms
from repro.apps.backprojection import Backprojector, BPConfig
from repro.apps.backprojection.problems import PROBLEMS, SCALE_NOTE
from repro.reporting import emit, format_table, speedup
from repro.tuning import best_record, bp_sweep

SWEEP_BLOCKS = [(16, 8), (16, 16)]
SWEEP_ZB = [2, 4]


def _build():
    rows = []
    for problem in PROBLEMS:
        projections = bp_projs(problem)
        for device in DEVICES:
            records = bp_sweep(problem, projections, SWEEP_BLOCKS,
                               SWEEP_ZB, device, cache=BENCH_CACHE)
            best = best_record(records)
            bx, by = best.config["block"]
            zb = best.config["zb"]
            re_cfg = BPConfig(block_x=bx, block_y=by, zb=zb,
                              specialize=False, functional=False,
                              sample_blocks=2)
            bp_re = Backprojector(problem, re_cfg, device=device,
                                  cache=BENCH_CACHE)
            r_re = bp_re.run(projections)
            rows.append([
                problem.name, device.name, f"{bx}x{by}", zb,
                f"{ms(r_re.kernel_seconds):.3f}",
                f"{ms(best.seconds):.3f}",
                f"{speedup(r_re.kernel_seconds, best.seconds):.2f}x",
                r_re.reg_count, best.reg_count])
    return format_table(
        ["set", "device", "block*", "zb*", "RE (ms)", "SK (ms)",
         "SK speedup", "RE regs", "SK regs"],
        rows,
        title="Table 6.19: backprojection — RE vs SK kernels",
        note=SCALE_NOTE)


def test_table_6_19(benchmark):
    text = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_19", text)
    for line in text.splitlines()[3:-1]:
        cells = [c.strip() for c in line.split("|")]
        assert float(cells[5]) <= float(cells[4]), line
        assert int(cells[8]) <= int(cells[7]), line

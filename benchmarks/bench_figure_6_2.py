"""Figure 6.2 — contour maps of performance relative to peak, C2070.

Same panels as Figure 6.1 on the Fermi-generation device; comparing the
two shows the peak locations shifting between GPU generations, the
motivation for per-hardware specialization.
"""

import pytest

from benchmarks.bench_figure_6_1 import build_contours
from repro.apps.piv.problems import SCALE_NOTE
from repro.gpusim import TESLA_C2070
from repro.reporting import emit


def _build():
    return build_contours(TESLA_C2070)


@pytest.mark.slow
def test_figure_6_2(benchmark):
    text, peaks = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("figure_6_2", text + f"\nnote: {SCALE_NOTE}")
    assert len(peaks) == 5

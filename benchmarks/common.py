"""Shared workload builders and helpers for the benchmark harness.

Workloads are generated once per session (module-level caches) and a
process-wide kernel cache amortizes compilation across benches, exactly
as GPU-PF's binary cache would in a long-running application (§4.3).
"""

from __future__ import annotations

import json
import time
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.backprojection import BPProblem
from repro.apps.piv import PIVProblem
from repro.apps.template_matching import MatchProblem
from repro.data.frames import template_sequence
from repro.data.piv import particle_image_pair
from repro.gpupf.cache import KernelCache
from repro.gpusim import TESLA_C1060, TESLA_C2070

BENCH_CACHE = KernelCache()
DEVICES = [TESLA_C1060, TESLA_C2070]


@lru_cache(maxsize=None)
def tm_workload(problem_key: Tuple) -> Tuple:
    """(frames, template, true_shifts) for a MatchProblem tuple."""
    p = MatchProblem(*problem_key)
    return template_sequence(p.frame_h, p.frame_w, p.tmpl_h, p.tmpl_w,
                             p.shift_h, p.shift_w,
                             n_frames=max(p.n_frames, 1),
                             seed=hash(problem_key) % 1000)


def tm_frames(problem: MatchProblem):
    key = (problem.name, problem.frame_h, problem.frame_w,
           problem.tmpl_h, problem.tmpl_w, problem.shift_h,
           problem.shift_w, problem.n_frames)
    return tm_workload(key)


@lru_cache(maxsize=None)
def piv_workload(img_h: int, img_w: int, seed: int = 7):
    return particle_image_pair(img_h, img_w, displacement=(2, -1),
                               seed=seed)


def piv_images(problem: PIVProblem):
    return piv_workload(problem.img_h, problem.img_w)


@lru_cache(maxsize=None)
def bp_projections(n_proj: int, det_v: int, det_u: int, seed: int = 5):
    rng = np.random.default_rng(seed)
    return rng.random((n_proj, det_v, det_u)).astype(np.float32)


def bp_projs(problem: BPProblem):
    return bp_projections(problem.n_proj, problem.det_v, problem.det_u)


def us(seconds: float) -> float:
    """seconds -> microseconds for table cells."""
    return seconds * 1e6


def ms(seconds: float) -> float:
    return seconds * 1e3


REPO_ROOT = Path(__file__).resolve().parent.parent


def timed(fn, *args, **kwargs) -> Tuple[float, object]:
    """(wall_seconds, result) of one call — for engine comparisons."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - t0, result


def write_bench_json(filename: str, payload: Dict) -> Path:
    """Persist a machine-readable bench record at the repo root."""
    path = REPO_ROOT / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path

"""Profile-guided tuner vs exhaustive sweep on the paper-table grids.

For each Table 6.21/6.22-shaped workload grid this bench runs the
exhaustive :class:`Sweeper` and the :class:`AutoTuner` over the same
axes, then records to ``BENCH_autotune.json``: evaluations used vs
grid size, the modeled-seconds gap between the tuner's optimum and the
exhaustive one, and the wall-clock speedup of pruning.  The pytest
smoke asserts the ROADMAP claim directly — optimum within
:data:`SECONDS_RTOL` from <25 % of the grid on every workload.

Run directly with ``python benchmarks/bench_autotune.py`` or via
pytest (the CI ``autotune`` job does both the suite and this bench).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import timed, write_bench_json
from repro.apps.backprojection import BPProblem
from repro.apps.piv import PIVProblem
from repro.apps.template_matching import MatchProblem
from repro.tuning import harness_autotune, harness_sweep
from repro.tuning.autotune import SECONDS_RTOL
from repro.tuning.sweep import best_record

#: The three paper-table workloads at bench scale: the Table 6.21/6.22
#: axes (rb x threads, tile x threads, block x zb) widened to 40-48
#: cells so a <25 % prune is a meaningful claim.
WORKLOADS = {
    "piv": (
        PIVProblem("bench-at", 40, 40, mask=8, offs=3),
        {"rb": [1, 2, 4, 8, 16],
         "threads": [32, 64, 96, 128, 160, 192, 224, 256]},
    ),
    "template_matching": (
        MatchProblem("bench-at", frame_h=60, frame_w=80, tmpl_h=16,
                     tmpl_w=12, shift_h=5, shift_w=5, n_frames=1),
        {"tile": [(4, 4), (8, 4), (8, 8), (16, 8), (16, 16), (8, 16)],
         "threads": [32, 64, 96, 128, 160, 192, 224, 256]},
    ),
    "backprojection": (
        BPProblem("bench-at", nx=12, ny=12, nz=8, n_proj=6, det_u=16,
                  det_v=12),
        {"block": [(4, 4), (8, 4), (8, 8), (16, 4), (16, 8), (16, 16),
                   (32, 4), (32, 8)],
         "zb": [1, 2, 3, 4, 6, 8]},
    ),
}


def run_autotune_bench() -> dict:
    workloads = {}
    for app, (problem, axes) in WORKLOADS.items():
        wall_exh, sweeper = timed(harness_sweep, app, problem, axes,
                                  seed=11, memory_bytes=8 << 20)
        exh_best = best_record(sweeper.records)
        wall_tune, tuner = timed(harness_autotune, app, problem, axes,
                                 seed=11, memory_bytes=8 << 20)
        result = tuner.result
        gap = result.best.seconds / exh_best.seconds - 1.0
        workloads[app] = {
            "grid_points": result.grid_size,
            "evals": result.evals,
            "eval_fraction": result.frac,
            "diagnosis": result.diagnosis,
            "fallback": result.fallback,
            "passes": result.passes,
            "tuner_config": result.best.config,
            "tuner_seconds": result.best.seconds,
            "exhaustive_config": exh_best.config,
            "exhaustive_seconds": exh_best.seconds,
            "optimum_gap": gap,
            "matched_key": result.best.key() == exh_best.key(),
            "wall_exhaustive_s": wall_exh,
            "wall_tuner_s": wall_tune,
            "wall_speedup": wall_exh / wall_tune,
        }
    payload = {
        "bench": "autotune",
        "seconds_rtol": SECONDS_RTOL,
        "workloads": workloads,
    }
    write_bench_json("BENCH_autotune.json", payload)
    return payload


def test_tuner_matches_tables_from_under_quarter_grid():
    payload = run_autotune_bench()
    for app, row in payload["workloads"].items():
        assert row["evals"] < 0.25 * row["grid_points"], (app, row)
        assert row["matched_key"] or \
            row["optimum_gap"] <= SECONDS_RTOL, (app, row)
        assert not row["fallback"], (app, row)


if __name__ == "__main__":
    p = run_autotune_bench()
    for app, row in p["workloads"].items():
        mark = "=" if row["matched_key"] else "~"
        print(f"{app:>18}: {row['evals']:3d}/{row['grid_points']} "
              f"evals ({row['eval_fraction']:.0%}), "
              f"optimum {mark} exhaustive "
              f"(gap {row['optimum_gap']:.2%}), "
              f"wall {row['wall_speedup']:.1f}x faster")

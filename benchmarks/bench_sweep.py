"""Thread- vs process-pool sweep throughput on the PIV tuning grid.

The sweep workload is pure-Python simulator execution — exactly the
kind of CPU-bound work the GIL serializes — so thread pools buy
nothing, while process pools parallelize up to the core count.  This
bench times the same :class:`HarnessRunner` sweep sequentially, on a
thread pool, and on a process pool, verifies all three produce
bit-identical records (the harness contract), and records the
speedups to ``BENCH_sweep.json`` at the repo root.

Run directly with ``python benchmarks/bench_sweep.py`` or via pytest
(the speedup comparison is the default smoke here — it is cheap).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import timed, write_bench_json
from repro.apps.harness import ProblemSpec
from repro.apps.piv import PIVProblem
from repro.tuning.app_sweeps import HarnessRunner
from repro.tuning.sweep import Sweeper, best_record, grid_configs

#: Worker count for both pool flavors.
JOBS = 2

PROBLEM = PIVProblem("bench", 48, 64, mask=8, offs=5)
AXES = dict(rb=[1, 2, 4, 8], threads=[32, 64])


def _run_one(pool: str, jobs: int, repeats: int = 3):
    """Best-of-*repeats* wall time for one pool flavor."""
    best = None
    for _ in range(repeats):
        runner = HarnessRunner("piv", ProblemSpec(
            "piv", PROBLEM, seed=7, memory_bytes=16 << 20))
        sweeper = Sweeper(runner, jobs=jobs, pool=pool)
        wall, _ = timed(sweeper.sweep, grid_configs(**AXES))
        if best is None or wall < best[0]:
            best = (wall, sweeper)
    return best


def run_sweep_bench() -> dict:
    # Warm the on-disk kernel cache so no timed mode pays first-compile
    # costs the others don't.
    _run_one("thread", 1, repeats=1)
    wall_seq, seq = _run_one("thread", 1)
    wall_thr, thr = _run_one("thread", JOBS)
    wall_prc, prc = _run_one("process", JOBS)

    def comparable(sweeper):
        return [(r.config, r.seconds, r.reg_count, r.occupancy,
                 r.valid) for r in sweeper.records]

    identical = (comparable(thr) == comparable(seq)
                 and comparable(prc) == comparable(seq))
    payload = {
        "bench": "sweep",
        "app": "piv",
        "problem": PROBLEM.name,
        "grid_points": len(grid_configs(**AXES)),
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "wall_sequential_s": wall_seq,
        "wall_thread_s": wall_thr,
        "wall_process_s": wall_prc,
        "thread_speedup": wall_seq / wall_thr,
        "process_speedup": wall_seq / wall_prc,
        "records_identical": identical,
        "best_config": best_record(seq.records).config,
        "cache_report": seq.cache_report,
    }
    write_bench_json("BENCH_sweep.json", payload)
    return payload


def test_pool_identity_and_speedup():
    payload = run_sweep_bench()
    assert payload["records_identical"]
    # CPU-bound pure-Python work: threads pay GIL contention for no
    # parallelism, processes actually scale with available cores.  On
    # a single-core box neither pool can beat sequential, so the claim
    # degrades to overhead parity (process no worse than thread within
    # timing noise).
    slack = 1.0 if payload["cpu_count"] > 1 else 0.9
    assert (payload["process_speedup"]
            >= payload["thread_speedup"] * slack)


if __name__ == "__main__":
    p = run_sweep_bench()
    print(f"grid {p['grid_points']} points, jobs={p['jobs']}, "
          f"cpus={p['cpu_count']}")
    print(f"sequential {p['wall_sequential_s']:6.2f}s")
    print(f"thread     {p['wall_thread_s']:6.2f}s "
          f"({p['thread_speedup']:.2f}x)")
    print(f"process    {p['wall_process_s']:6.2f}s "
          f"({p['process_speedup']:.2f}x)")
    print(f"identical records: {p['records_identical']}")

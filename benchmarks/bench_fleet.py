"""Fleet-of-N scaling and shard-merge overhead.

Two questions about :class:`~repro.runtime.fleet.DeviceFleet`:

* **Scaling** — sharding one request stream over N simulated devices
  must cut the *modeled* completion time (the fleet makespan — the
  busiest member's simulated seconds) roughly N-fold versus the same
  stream serialized on one device.  Modeled time is the right axis:
  the simulated devices are the resource being multiplied, and on a
  small CI box the Python interpreter (often a single core) cannot
  express device-level parallelism in wall-clock.  Wall time is still
  recorded, honestly, for the overhead story.
* **Shard-merge overhead** — the wall-clock tax of routing through
  the fleet scheduler (placement, queues, accounting, in-order merge)
  instead of calling ``run_request`` in a plain loop, using the
  inline backend so both sides execute identically.

Writes ``BENCH_fleet.json`` at the repo root.  The pytest smoke
asserts fleet-of-4 achieves >=2x modeled throughput over one device
(the PR's acceptance bar; the balanced workload actually gets ~4x),
that the merge is bit-identical to the sequential run, and that the
scheduler tax stays small.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import timed, write_bench_json
from repro.apps.harness import ProblemSpec, RunRequest, run_request
from repro.apps.piv import PIVConfig, PIVProblem
from repro.runtime import DeviceFleet

PROBLEM = PIVProblem("bench", 40, 40, mask=8, offs=3)
REQUESTS = 16
REPEATS = 3
FLEET_SIZES = (1, 2, 4)


def request_stream():
    # Distinct seeds = distinct inputs: every request is real work,
    # and the cells are balanced (same problem shape), so an N-way
    # shard should divide the modeled makespan ~N-fold.
    return [RunRequest(spec=ProblemSpec(app="piv", problem=PROBLEM,
                                        seed=seed, device="c2070",
                                        memory_bytes=8 << 20),
                       config=PIVConfig(rb=2, threads=32,
                                        functional=True))
            for seed in range(REQUESTS)]


def run_sequential():
    def once():
        return [run_request(r) for r in request_stream()]

    best = None
    for _ in range(REPEATS):
        wall, results = timed(once)
        best = wall if best is None else min(best, wall)
    return best, results


def run_fleet(n: int):
    def once():
        with DeviceFleet(["c2070"] * n, pool="inline") as fleet:
            results = fleet.run_requests(request_stream())
            return fleet, results

    best = None
    for _ in range(REPEATS):
        wall, (fleet, results) = timed(once)
        best = wall if best is None else min(best, wall)
    return best, fleet, results


def run_fleet_bench() -> dict:
    wall_seq, seq_results = run_sequential()
    modeled_single = sum(r.seconds for r in seq_results)
    fleets = {}
    bit_identical = True
    merge_overhead = 0.0
    for n in FLEET_SIZES:
        wall, fleet, results = run_fleet(n)
        bit_identical &= all(
            a.same_output(b) and a.seconds == b.seconds
            for a, b in zip(seq_results, results))
        makespan = fleet.makespan_seconds()
        fleets[n] = {
            "members": n,
            "wall_s": wall,
            "modeled_makespan_s": makespan,
            "modeled_busy_s": fleet.busy_seconds(),
            "modeled_speedup": modeled_single / makespan,
            "shard_merge_overhead_frac": max(
                0.0, (wall - wall_seq) / wall_seq),
        }
        if n == 1:
            merge_overhead = fleets[n]["shard_merge_overhead_frac"]
    payload = {
        "bench": "fleet",
        "app": "piv",
        "requests": REQUESTS,
        "repeats_best_of": REPEATS,
        "cpu_count": os.cpu_count(),
        "pool": "inline",
        "wall_sequential_s": wall_seq,
        "modeled_single_device_s": modeled_single,
        "bit_identical_merge": bit_identical,
        "fleet_of_1_overhead_frac": merge_overhead,
        "fleets": {str(n): row for n, row in fleets.items()},
        "modeled_speedup_fleet_of_4": fleets[4]["modeled_speedup"],
    }
    write_bench_json("BENCH_fleet.json", payload)
    return payload


def test_fleet_of_4_doubles_modeled_throughput():
    payload = run_fleet_bench()
    # The PR's acceptance bar: >=2x modeled throughput on a fleet of
    # 4 vs a single device.  The balanced stream actually shards
    # ~evenly, so this normally lands near 4x.
    assert payload["modeled_speedup_fleet_of_4"] >= 2.0
    # Sharding must never change answers.
    assert payload["bit_identical_merge"]
    # And a fleet of 2 already beats one device.
    assert payload["fleets"]["2"]["modeled_speedup"] > 1.5


def test_shard_merge_overhead_is_small():
    payload = run_fleet_bench()
    # Fleet-of-1 runs the identical inline evaluations plus the whole
    # scheduler (placement, queues, accounting, ordered merge); that
    # tax must stay a modest fraction of the work itself.
    assert payload["fleet_of_1_overhead_frac"] < 0.50


if __name__ == "__main__":
    p = run_fleet_bench()
    print(f"{p['requests']} PIV requests, best of "
          f"{p['repeats_best_of']} (inline backend)")
    print(f"sequential: {p['wall_sequential_s']:.3f}s wall, "
          f"{p['modeled_single_device_s'] * 1e6:.1f} us modeled")
    for n, row in sorted(p["fleets"].items(), key=lambda kv: int(kv[0])):
        print(f"fleet of {n}: modeled makespan "
              f"{row['modeled_makespan_s'] * 1e6:.1f} us "
              f"({row['modeled_speedup']:.2f}x), wall "
              f"{row['wall_s']:.3f}s")
    print(f"bit-identical merge: {p['bit_identical_merge']}")

"""Design-point ablation — global-memory vs texture-path backprojection.

The era's backprojectors read projections through the texture unit:
linear filtering replaces manual bilinear interpolation (4 loads + 7
FLOPs → 1 fetch) and the 2D-local texture cache absorbs the scattered
access pattern.  Both variants here compile specialized; the comparison
isolates the data-path choice on both device generations.
"""

import pytest

from benchmarks.common import BENCH_CACHE, DEVICES, bp_projs, ms
from repro.apps.backprojection import Backprojector, BPConfig
from repro.apps.backprojection.problems import PROBLEMS, SCALE_NOTE
from repro.reporting import emit, format_table, speedup


def _build():
    rows = []
    for problem in PROBLEMS:
        projections = bp_projs(problem)
        for device in DEVICES:
            results = {}
            regs = {}
            for use_texture in (False, True):
                cfg = BPConfig(block_x=16, block_y=8, zb=4,
                               use_texture=use_texture,
                               functional=False, sample_blocks=2)
                bp = Backprojector(problem, cfg, device=device,
                                   cache=BENCH_CACHE)
                r = bp.run(projections)
                results[use_texture] = r.kernel_seconds
                regs[use_texture] = r.reg_count
            rows.append([
                problem.name, device.name,
                f"{ms(results[False]):.3f}", regs[False],
                f"{ms(results[True]):.3f}", regs[True],
                f"{speedup(results[False], results[True]):.2f}x"])
    return format_table(
        ["set", "device", "global (ms)", "regs", "texture (ms)",
         "regs", "tex gain"],
        rows,
        title="Ablation: global-memory vs texture-path backprojection "
              "(both specialized, zb=4)",
        note=SCALE_NOTE)


def test_texture_path(benchmark):
    text = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("ablation_texture_path", text)
    for line in text.splitlines()[3:-1]:
        cells = [c.strip() for c in line.split("|")]
        # The texture path never uses more registers.
        assert int(cells[5]) <= int(cells[3]), line

"""Tables 6.1-6.9 — the problem and implementation parameter sets.

These tables define *what* the result benches run; regenerating them
means printing the encoded sets (with the documented scale factors).
"""

from benchmarks.common import BENCH_CACHE
from repro.apps.backprojection.problems import (BLOCK_SHAPES,
                                                PROBLEMS as BP_PROBLEMS,
                                                ZB_VALUES)
from repro.apps.backprojection.problems import SCALE_NOTE as BP_NOTE
from repro.apps.piv.problems import (FPGA_SET, MASK_SET, OVERLAP_SET,
                                     RB_VALUES, SCALE_NOTE as PIV_NOTE,
                                     SEARCH_SET, THREAD_COUNTS)
from repro.apps.template_matching.problems import (PATIENTS,
                                                   SCALE_NOTE as TM_NOTE,
                                                   THREAD_COUNTS as TM_T,
                                                   TILE_SIZES)
from repro.reporting import emit, format_table


def _build() -> str:
    sections = []
    sections.append(format_table(
        ["patient", "frame", "template", "shifts", "frames",
         "corr2 calls"],
        [[p.name, f"{p.frame_h}x{p.frame_w}",
          f"{p.tmpl_h}x{p.tmpl_w}", f"{p.shift_h}x{p.shift_w}",
          p.n_frames, p.corr2_calls] for p in PATIENTS],
        title="Table 5.1/6.x: template matching problems (scaled)",
        note=TM_NOTE))
    sections.append(format_table(
        ["tile sizes", "thread counts"],
        [[", ".join(f"{w}x{h}" for w, h in TILE_SIZES),
          ", ".join(map(str, TM_T))]],
        title="Table 6.1: template matching implementation parameters"))
    for title, problems in (
            ("Table 6.2/6.3: PIV FPGA-comparison sets", FPGA_SET),
            ("Table 6.4: PIV mask-size sets", MASK_SET),
            ("Table 6.5: PIV search-offset sets", SEARCH_SET),
            ("Table 6.6: PIV overlap sets", OVERLAP_SET)):
        sections.append(format_table(
            ["set", "image", "mask", "offsets", "overlap", "windows",
             "offsets/window"],
            [[p.name, f"{p.img_h}x{p.img_w}", f"{p.mask}x{p.mask}",
              f"{p.offs}x{p.offs}", p.overlap, p.n_windows,
              p.n_offsets] for p in problems],
            title=title, note=PIV_NOTE))
    sections.append(format_table(
        ["register blocking (rb)", "thread counts"],
        [[", ".join(map(str, RB_VALUES)),
          ", ".join(map(str, THREAD_COUNTS))]],
        title="Table 6.7: PIV implementation parameters"))
    sections.append(format_table(
        ["set", "volume", "projections", "detector"],
        [[p.name, f"{p.nx}x{p.ny}x{p.nz}", p.n_proj,
          f"{p.det_u}x{p.det_v}"] for p in BP_PROBLEMS],
        title="Table 6.8: backprojection problems (scaled)",
        note=BP_NOTE))
    sections.append(format_table(
        ["block shapes", "z register blocking (zb)"],
        [[", ".join(f"{x}x{y}" for x, y in BLOCK_SHAPES),
          ", ".join(map(str, ZB_VALUES))]],
        title="Table 6.9: backprojection implementation parameters"))
    return "\n\n".join(sections)


def test_tables_6_01_to_6_09(benchmark):
    text = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_01_09", text)

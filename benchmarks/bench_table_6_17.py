"""Table 6.17 — PIV optimal configurations, varying search offsets."""

import pytest

from benchmarks.bench_table_6_15 import build_optima_table
from repro.apps.piv.problems import SEARCH_SET, SCALE_NOTE
from repro.reporting import emit


def _build():
    return build_optima_table(SEARCH_SET, "6.17",
                              SCALE_NOTE + "; varying search offsets")


def test_table_6_17(benchmark):
    text, optima = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_17", text)
    assert len(optima) > 1

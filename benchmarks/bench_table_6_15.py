"""Table 6.15 — PIV optimal register blocking / thread counts, FPGA set.

Per (problem, device): full (rb, threads) sweep of the specialized
tree-reduction kernel, reporting the best time and *where* the optimum
sits.  The paper's point: the optima move with both the problem and the
device — this is what run-time specialization exploits.
"""

import pytest

from benchmarks.common import BENCH_CACHE, DEVICES, piv_images, ms
from repro.apps.piv.problems import FPGA_SET, RB_VALUES, SCALE_NOTE, \
    THREAD_COUNTS
from repro.reporting import emit, format_table
from repro.tuning import best_record, piv_sweep

RBS = [1, 2, 4, 8]
THREADS = [32, 64, 128]


def build_optima_table(problem_set, title_id, note):
    rows = []
    optima = set()
    for problem in problem_set:
        img_a, img_b = piv_images(problem)
        row = [problem.name]
        for device in DEVICES:
            records = piv_sweep(problem, device, img_a, img_b, RBS,
                                THREADS, cache=BENCH_CACHE)
            best = best_record(records)
            optima.add((device.name, best.config["rb"],
                        best.config["threads"]))
            row += [f"{ms(best.seconds):.3f}", best.config["rb"],
                    best.config["threads"], best.reg_count,
                    f"{best.occupancy:.2f}"]
        rows.append(row)
    text = format_table(
        ["set", "C1060 (ms)", "rb*", "thr*", "regs", "occ",
         "C2070 (ms)", "rb*", "thr*", "regs", "occ"],
        rows,
        title=f"Table {title_id}: PIV optimal register blocking and "
              "thread counts",
        note=note)
    return text, optima


def _build():
    return build_optima_table(FPGA_SET, "6.15",
                              SCALE_NOTE + "; FPGA benchmark set")


def test_table_6_15(benchmark):
    (text, optima) = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_15", text)
    # Shape: the optimum is not one single configuration everywhere.
    assert len(optima) > 1

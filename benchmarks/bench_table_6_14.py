"""Table 6.14 — PIV kernel variants across the FPGA benchmark set.

Four variants per problem: {tree reduction, warp-specialized} × {RE,
SK}, at a common mid-range configuration on the C2070.  Paper shape:
specialization helps both reduction strategies, and warp specialization
removes the reduction bottleneck (Figure 5.12), beating the tree.
"""

import pytest

from benchmarks.common import BENCH_CACHE, piv_images, ms
from repro.apps.piv import PIVConfig, PIVProcessor
from repro.apps.piv.problems import FPGA_SET, SCALE_NOTE
from repro.gpusim import TESLA_C2070
from repro.reporting import emit, format_table

RB, THREADS = 4, 128


def _run(problem, img_a, img_b, variant, specialize):
    cfg = PIVConfig(variant=variant, rb=RB, threads=THREADS,
                    specialize=specialize, functional=False,
                    sample_blocks=2)
    proc = PIVProcessor(problem, cfg, device=TESLA_C2070,
                        cache=BENCH_CACHE)
    result = proc.run(img_a, img_b)
    return result


def _build():
    rows = []
    for problem in FPGA_SET:
        img_a, img_b = piv_images(problem)
        results = {}
        for variant in ("tree", "warpspec"):
            for specialize in (False, True):
                results[(variant, specialize)] = _run(
                    problem, img_a, img_b, variant, specialize)
        tree_re = results[("tree", False)].kernel_seconds
        tree_sk = results[("tree", True)].kernel_seconds
        warp_re = results[("warpspec", False)].kernel_seconds
        warp_sk = results[("warpspec", True)].kernel_seconds
        rows.append([
            problem.name, f"{problem.mask}x{problem.mask}",
            f"{problem.offs}x{problem.offs}",
            f"{ms(tree_re):.3f}", f"{ms(tree_sk):.3f}",
            f"{ms(warp_re):.3f}", f"{ms(warp_sk):.3f}",
            f"{tree_re / tree_sk:.2f}x",
            f"{tree_sk / warp_sk:.2f}x"])
    return format_table(
        ["set", "mask", "offsets", "tree RE (ms)", "tree SK (ms)",
         "warp RE (ms)", "warp SK (ms)", "SK gain", "warp-spec gain"],
        rows,
        title="Table 6.14: PIV kernel variants on the FPGA benchmark "
              f"set (C2070, rb={RB}, {THREADS} threads)",
        note=SCALE_NOTE)


def test_table_6_14(benchmark):
    text = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("table_6_14", text)
    for line in text.splitlines()[3:-1]:
        cells = [c.strip() for c in line.split("|")]
        # Specialization never loses within a variant.
        assert float(cells[4]) <= float(cells[3]) * 1.001, line
        assert float(cells[6]) <= float(cells[5]) * 1.001, line

"""Process-wide fault-injection hook point.

Hot paths consult ``hooks.ACTIVE`` — a single module attribute that is
``None`` unless a chaos run installed an injector.  The disabled-path
cost is one attribute load and a ``None`` test, and the wired-in sites
sit at coarse granularity (per compile, per launch, per gang batch,
per allocation), so production runs pay effectively nothing.

Usage::

    from repro.faults import FaultPlan, injecting

    with injecting(FaultPlan(seed=7, rates={"nvcc.compile": 0.2})) as inj:
        run_workload()
    print(inj.summary())
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Optional, Union

from repro.faults.plan import FaultInjector, FaultPlan

#: The installed injector, or None (the common, zero-overhead case).
ACTIVE: Optional[FaultInjector] = None

_INSTALL_LOCK = threading.Lock()


def install(plan: Union[FaultPlan, FaultInjector]) -> FaultInjector:
    """Install *plan* process-wide; returns the live injector.

    Exactly one injector may be active at a time — nested installs are
    a test bug and raise immediately.
    """
    global ACTIVE
    injector = plan if isinstance(plan, FaultInjector) \
        else FaultInjector(plan)
    with _INSTALL_LOCK:
        if ACTIVE is not None:
            raise RuntimeError("fault injection is already active; "
                               "clear() the current injector first")
        ACTIVE = injector
    return injector


def clear() -> None:
    """Remove the active injector (idempotent)."""
    global ACTIVE
    with _INSTALL_LOCK:
        ACTIVE = None


def active() -> Optional[FaultInjector]:
    """The live injector, or None when injection is disabled."""
    return ACTIVE


@contextmanager
def injecting(plan: Union[FaultPlan, FaultInjector]):
    """Context manager: install *plan*, always clear on exit."""
    injector = install(plan)
    try:
        yield injector
    finally:
        clear()

"""Fault-injection hook point, scoped by :class:`ExecutionContext`.

Hot paths consult the *current* context's injector — ``None`` unless a
chaos run installed one — via :func:`active` (or, preferably, via the
``injector`` attribute of the context they already hold).  The
disabled-path cost is one attribute load and a ``None`` test, and the
wired-in sites sit at coarse granularity (per compile, per launch, per
gang batch, per allocation), so production runs pay effectively
nothing.

``hooks.ACTIVE`` remains as a deprecated module-attribute shim (PEP
562): it resolves to ``current_context().injector``, so legacy readers
keep working and are automatically scoped — a worker thread or process
running under its own context sees its own injector, never another
sweep's.

Usage::

    from repro.faults import FaultPlan, injecting

    with injecting(FaultPlan(seed=7, rates={"nvcc.compile": 0.2})) as inj:
        run_workload()
    print(inj.summary())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Union

from repro.faults.plan import FaultInjector, FaultPlan


def _ctx():
    from repro.runtime.context import current_context
    return current_context()


def __getattr__(name: str):
    # Deprecated shim: ``hooks.ACTIVE`` == the current context's
    # injector.  New code should carry a context and read
    # ``ctx.injector`` directly.
    if name == "ACTIVE":
        return _ctx().injector
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def install(plan: Union[FaultPlan, FaultInjector]) -> FaultInjector:
    """Install *plan* on the current context; returns the live injector.

    Exactly one injector may be active per context — nested installs
    are a test bug and raise immediately.
    """
    return _ctx().install_faults(plan)


def clear() -> None:
    """Remove the current context's injector (idempotent)."""
    _ctx().clear_faults()


def active() -> Optional[FaultInjector]:
    """The current context's injector, or None when disabled."""
    return _ctx().injector


@contextmanager
def injecting(plan: Union[FaultPlan, FaultInjector]):
    """Context manager: install *plan*, always clear on exit."""
    ctx = _ctx()
    injector = ctx.install_faults(plan)
    try:
        yield injector
    finally:
        ctx.clear_faults()

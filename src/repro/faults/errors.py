"""Typed fault exceptions, one class per named fault site.

Every injected fault raises (or is reported as) one of these, so
callers can always dispatch on the *kind* of failure rather than
string-matching messages.  ``transient`` marks faults that a bounded
retry may clear (a flaky compile, a rejected launch, a detected ECC
error); non-transient faults (out-of-memory) go straight to the
caller.

This module is dependency-free on purpose: the compiler, the caches,
and the simulator all import it, and it must never import them back.
"""

from __future__ import annotations

from typing import Dict, Type


class FaultError(Exception):
    """Base class for every injected (or injected-style) fault.

    Attributes:
        site: the named fault site that produced this error.
        transient: whether a bounded retry is expected to clear it.
    """

    site: str = "fault"
    transient: bool = True

    def __init__(self, message: str = "", site: str = None):
        super().__init__(message or type(self).__name__)
        if site is not None:
            self.site = site


class CompileFault(FaultError):
    """nvcc crashed / returned garbage for one invocation."""

    site = "nvcc.compile"


class CompileTimeout(FaultError):
    """nvcc hung past its time budget and was killed."""

    site = "nvcc.timeout"


class CacheCorruption(FaultError):
    """A disk-cache entry failed integrity checks.

    Not transient: the entry is bad until quarantined and rebuilt —
    re-reading the same bytes cannot succeed.
    """

    site = "cache.corrupt"
    transient = False


class LaunchFault(FaultError):
    """The driver rejected a kernel launch (transient launch failure)."""

    site = "launch.fail"


class WatchdogTimeout(FaultError):
    """The display watchdog killed a kernel mid-execution.

    Device memory may hold partial results when this is raised; callers
    that retry must restore a pre-launch snapshot first.
    """

    site = "launch.watchdog"


class ECCError(FaultError):
    """A detected, uncorrectable ECC memory error (bit flip).

    The flipped bit is real — the injector mutates simulated device
    memory — so retries must restore a pre-launch snapshot.
    """

    site = "memory.bitflip"


class DeviceOOM(FaultError):
    """cudaMalloc failed: device out of memory.

    Not transient: the bump allocator will not free space by itself, so
    retrying the same allocation is pointless.
    """

    site = "memory.oom"
    transient = False


class WorkerCrashError(FaultError):
    """A pool/service worker process died mid-evaluation.

    Not an *injectable* site (nothing inside the simulator raises it —
    the process is simply gone), so it is deliberately absent from
    :data:`SITE_ERRORS`/:data:`FAULT_SITES`.  Transient: redispatching
    the same hermetic request to a fresh worker is expected to succeed,
    which is exactly what the serve supervisor's at-most-N-retries
    contract does.
    """

    site = "worker.crash"


class DeadlineExceeded(Exception):
    """A per-request deadline expired before (or during) the work.

    Deliberately *not* a :class:`FaultError`: deadline expiry is a
    caller-imposed budget, not a device fault, and it must never be
    retried (``default_should_retry`` only retries transient
    FaultErrors).  ``site`` names where the budget ran out —
    ``"before-launch"``, ``"retry-backoff"``, ...
    """

    def __init__(self, message: str = "deadline exceeded",
                 site: str = "deadline"):
        super().__init__(message)
        self.site = site


#: Every named fault site, mapped to the exception it raises.
SITE_ERRORS: Dict[str, Type[FaultError]] = {
    cls.site: cls
    for cls in (CompileFault, CompileTimeout, CacheCorruption,
                LaunchFault, WatchdogTimeout, ECCError, DeviceOOM)
}

#: The canonical fault-site names, in documentation order.
FAULT_SITES = tuple(SITE_ERRORS)


def error_for(site: str) -> Type[FaultError]:
    """The exception class a given fault site raises."""
    try:
        return SITE_ERRORS[site]
    except KeyError:
        raise ValueError(f"unknown fault site {site!r}; expected one of "
                         f"{sorted(SITE_ERRORS)}") from None

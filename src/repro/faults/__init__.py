"""repro.faults — deterministic fault injection and resilience.

The dissertation's central contract is that a specialized kernel (SK)
is an *optional optimization* over an always-available runtime-
evaluated (RE) kernel.  This package supplies the machinery that makes
the rest of the system honor that contract under failure:

* :class:`FaultPlan` / :class:`FaultInjector` — seeded, declarative
  fault schedules over the named sites in :data:`FAULT_SITES`
  (``nvcc.compile``, ``nvcc.timeout``, ``cache.corrupt``,
  ``launch.fail``, ``launch.watchdog``, ``memory.bitflip``,
  ``memory.oom``);
* :mod:`repro.faults.hooks` — the zero-overhead-when-disabled process
  hook the compiler, caches, launcher, and engine consult;
* :class:`RetryPolicy` / :func:`retry_call` — bounded retry with
  exponential backoff and deterministic jitter;
* the typed exception ladder in :mod:`repro.faults.errors`, so every
  injected failure is diagnosable by class and fault site.
"""

from repro.faults.errors import (FAULT_SITES, CacheCorruption,
                                 CompileFault, CompileTimeout,
                                 DeadlineExceeded, DeviceOOM, ECCError,
                                 FaultError, LaunchFault, WatchdogTimeout,
                                 WorkerCrashError, error_for)
from repro.faults.hooks import active, clear, injecting, install
from repro.faults.plan import FaultEvent, FaultInjector, FaultPlan
from repro.faults.retry import (RetryPolicy, default_should_retry,
                                retry_call)

__all__ = [
    "FAULT_SITES", "FaultError", "CompileFault", "CompileTimeout",
    "CacheCorruption", "LaunchFault", "WatchdogTimeout", "ECCError",
    "DeviceOOM", "WorkerCrashError", "DeadlineExceeded", "error_for",
    "FaultPlan", "FaultInjector", "FaultEvent",
    "install", "clear", "active", "injecting",
    "RetryPolicy", "retry_call", "default_should_retry",
]

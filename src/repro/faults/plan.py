"""Deterministic fault plans and the injector that executes them.

A :class:`FaultPlan` is a *seeded, declarative* description of which
fault sites misbehave and how often; a :class:`FaultInjector` walks the
plan at run time.  Determinism is the whole point: the same plan
against the same workload produces the same fault sequence, so chaos
tests can assert exact outcomes ("the second launch attempt fails, the
third succeeds, results are bit-identical").

Site visit semantics, per site:

* visits 1..``skips[site]`` never fire (lets a plan target the Nth
  visit specifically — e.g. "kill the watchdog on batch 2 only");
* visits ``skips[site]+1 .. skips[site]+counts[site]`` always fire
  (deterministic bursts);
* beyond that, each visit fires with probability ``rates[site]`` from
  a per-site seeded stream (sites never perturb each other's draws);
* a ``match[site]`` substring restricts the site to visits whose
  ``detail`` contains it (e.g. fire ``nvcc.compile`` only for
  specialized compiles by matching ``"CT_"``);
* ``max_total`` caps the total number of injections across all sites.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.faults.errors import FAULT_SITES, FaultError, error_for


def _site_rng(seed: int, site: str) -> random.Random:
    """An independent, reproducible stream per (seed, site)."""
    digest = hashlib.sha256(f"{seed}:{site}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _check_sites(mapping: Mapping[str, object], what: str) -> None:
    for site in mapping:
        if site not in FAULT_SITES:
            raise ValueError(
                f"{what} names unknown fault site {site!r}; expected "
                f"one of {sorted(FAULT_SITES)}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded description of which fault sites fire, and when."""

    seed: int = 0
    rates: Mapping[str, float] = field(default_factory=dict)
    counts: Mapping[str, int] = field(default_factory=dict)
    skips: Mapping[str, int] = field(default_factory=dict)
    match: Mapping[str, str] = field(default_factory=dict)
    max_total: Optional[int] = None

    def __post_init__(self):
        _check_sites(self.rates, "rates")
        _check_sites(self.counts, "counts")
        _check_sites(self.skips, "skips")
        _check_sites(self.match, "match")
        for site, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {site!r} must be in [0, 1], "
                                 f"got {rate}")

    def sites(self) -> Tuple[str, ...]:
        """Sites this plan can possibly fire."""
        return tuple(s for s in FAULT_SITES
                     if self.counts.get(s, 0) > 0
                     or self.rates.get(s, 0.0) > 0.0)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded by the injector."""

    seq: int
    site: str
    action: str  # "raise" | "corrupt" | "flip"
    visit: int
    detail: str = ""


class FaultInjector:
    """Executes a :class:`FaultPlan`; thread-safe; fully deterministic.

    The wired-in subsystems consult the process-wide injector (see
    :mod:`repro.faults.hooks`) at their named sites.  Each consult is a
    *visit*; the plan decides whether the visit becomes an injection.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.events: List[FaultEvent] = []
        self._visits: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._rngs = {site: _site_rng(plan.seed, site)
                      for site in plan.sites()}
        self._total_fired = 0
        self._lock = threading.Lock()

    # -- decision core -------------------------------------------------

    def _decide(self, site: str, detail: str) -> bool:
        """Count one visit to *site*; True when a fault must fire."""
        plan = self.plan
        if site not in self._rngs:
            return False  # site not in the plan: zero bookkeeping
        pattern = plan.match.get(site)
        if pattern is not None and pattern not in detail:
            return False
        self._visits[site] = visit = self._visits.get(site, 0) + 1
        if plan.max_total is not None \
                and self._total_fired >= plan.max_total:
            return False
        skip = plan.skips.get(site, 0)
        if visit <= skip:
            return False
        fire = visit - skip <= plan.counts.get(site, 0)
        rate = plan.rates.get(site, 0.0)
        if rate:
            # Always consume the draw so the stream position depends
            # only on the visit number, never on counts/skips.
            draw = self._rngs[site].random()
            fire = fire or draw < rate
        if fire:
            self._fired[site] = self._fired.get(site, 0) + 1
            self._total_fired += 1
        return fire

    def _record(self, site: str, action: str, detail: str) -> FaultEvent:
        event = FaultEvent(seq=len(self.events), site=site,
                           action=action,
                           visit=self._visits.get(site, 0),
                           detail=detail)
        self.events.append(event)
        return event

    # -- the three injection shapes ------------------------------------

    def check(self, site: str, detail: str = "") -> None:
        """Visit *site*; raise its typed fault when the plan fires."""
        with self._lock:
            if not self._decide(site, detail):
                return
            self._record(site, "raise", detail)
            visit = self._visits[site]
        raise error_for(site)(
            f"injected fault at site {site} (visit {visit}"
            f"{', ' + detail if detail else ''})")

    def corrupt_bytes(self, site: str, data: bytes,
                      detail: str = "") -> bytes:
        """Visit *site*; return *data*, corrupted when the plan fires.

        Corruption truncates the payload and flips its first byte, so a
        pickled entry is guaranteed to fail to load (a clean, detectable
        corruption — the disk-cache quarantine path must catch it).
        """
        with self._lock:
            if not self._decide(site, detail):
                return data
            self._record(site, "corrupt", detail)
        if not data:
            return b"\xff"
        cut = max(1, len(data) // 2)
        return bytes([data[0] ^ 0xFF]) + data[1:cut]

    def maybe_flip(self, site: str, view, detail: str = "",
                   on_flip=None):
        """Visit *site*; flip one bit of *view* (uint8) when firing.

        Returns the flipped byte offset, or ``None`` when nothing
        fired.  Callers decide what a flip means (our launcher treats
        it as a *detected* uncorrectable ECC error and raises).
        ``on_flip(lo, hi)`` is called with the victim byte range just
        *before* the flip lands, so dirty-tracking rollback (see
        :meth:`GlobalMemory.begin_epoch`) can save its pre-image.
        """
        with self._lock:
            if len(view) == 0 or not self._decide(site, detail):
                return None
            bit = self._rngs[site].randrange(len(view) * 8)
            self._record(site, "flip", f"{detail} byte={bit // 8}")
        if on_flip is not None:
            on_flip(bit // 8, bit // 8 + 1)
        view[bit // 8] ^= 1 << (bit % 8)
        return bit // 8

    # -- observability -------------------------------------------------

    @property
    def visits(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._visits)

    def summary(self) -> Dict[str, int]:
        """Fault counts by site — the injector's own taxonomy."""
        with self._lock:
            return dict(self._fired)

    @property
    def total_fired(self) -> int:
        with self._lock:
            return self._total_fired

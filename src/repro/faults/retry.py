"""Bounded retry with exponential backoff and deterministic jitter.

The resilience layer's one retry primitive: compiles and launches both
go through :func:`retry_call`.  Only *transient* faults are retried
(``FaultError.transient``); genuine errors — a parse error in kernel
source, an out-of-bounds access, out-of-memory — propagate on the
first attempt so the degradation ladder (or the caller) can act.

Backoff is exponential with a hard :attr:`RetryPolicy.max_delay` cap
and *seeded* jitter: the jitter stream derives from ``policy.seed``
alone, so two runs under the same policy see byte-identical retry
schedules (:meth:`RetryPolicy.schedule` exposes the whole schedule for
tests and for the serve supervisor's restart pacing).  Delays default
to ~1 ms so retries remain observable in wall-clock terms without
slowing tests.

Deadline propagation: ``retry_call(..., deadline=t)`` (a
``time.monotonic()`` timestamp) refuses to start a backoff sleep that
would overrun the deadline and raises :class:`DeadlineExceeded`
instead — after ``on_retry`` has run, so rollback hooks leave device
state intact on the abort path.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, TypeVar

from repro.faults.errors import DeadlineExceeded, FaultError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts, and how long to back off between them."""

    max_attempts: int = 3
    base_delay: float = 0.001   # seconds before attempt 2
    backoff: float = 2.0        # delay multiplier per further attempt
    jitter: float = 0.25        # +[0, jitter) fraction of the delay
    max_delay: float = 1.0      # hard cap on any single backoff
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before attempt ``attempt + 1`` (attempts are 1-based)."""
        delay = self.base_delay * (self.backoff ** (attempt - 1))
        delay *= 1.0 + self.jitter * rng.random()
        return min(delay, self.max_delay)

    def schedule(self, attempts: Optional[int] = None) -> List[float]:
        """The full deterministic backoff schedule, from a fresh stream.

        ``schedule()[k]`` is the delay taken after attempt ``k + 1``
        fails; identical policies (same seed) produce identical lists,
        which is what keeps chaos runs and supervisor restart pacing
        reproducible.
        """
        n = self.max_attempts if attempts is None else attempts
        rng = random.Random(self.seed)
        return [self.delay_for(a, rng) for a in range(1, max(n, 1))]


def default_should_retry(exc: BaseException) -> bool:
    """Retry transient injected faults only."""
    return isinstance(exc, FaultError) and exc.transient


def retry_call(fn: Callable[[], T],
               policy: Optional[RetryPolicy] = None,
               should_retry: Callable[[BaseException], bool]
               = default_should_retry,
               on_retry: Optional[Callable[[BaseException, int, float],
                                           None]] = None,
               sleep: Callable[[float], None] = time.sleep,
               deadline: Optional[float] = None,
               clock: Callable[[], float] = time.monotonic,
               ) -> Tuple[T, int]:
    """Call *fn* under *policy*; returns ``(result, attempts_used)``.

    ``on_retry(exc, attempt, delay)`` runs before each backoff — the
    pipeline uses it to record the retry and restore device-memory
    snapshots.  The final failure re-raises the last exception
    unchanged, so callers keep its type and fault site.

    *deadline* (``clock()`` timestamp, ``None`` = unbounded) bounds the
    whole retry budget: when the next backoff would end past it, the
    call aborts with :class:`DeadlineExceeded` chained from the pending
    fault.  ``on_retry`` still runs first, so rollback/bookkeeping
    hooks observe the abandoned attempt and device state stays clean.
    """
    policy = policy or RetryPolicy()
    rng = random.Random(policy.seed)
    attempt = 1
    while True:
        try:
            return fn(), attempt
        except Exception as exc:
            if attempt >= policy.max_attempts or not should_retry(exc):
                raise
            delay = policy.delay_for(attempt, rng)
            if on_retry is not None:
                on_retry(exc, attempt, delay)
            if deadline is not None and clock() + delay > deadline:
                raise DeadlineExceeded(
                    f"deadline expired during retry backoff after "
                    f"attempt {attempt} "
                    f"(pending fault: {type(exc).__name__}: {exc})",
                    site="retry-backoff") from exc
            if delay > 0:
                sleep(delay)
            attempt += 1

"""Bounded retry with exponential backoff and deterministic jitter.

The resilience layer's one retry primitive: compiles and launches both
go through :func:`retry_call`.  Only *transient* faults are retried
(``FaultError.transient``); genuine errors — a parse error in kernel
source, an out-of-bounds access, out-of-memory — propagate on the
first attempt so the degradation ladder (or the caller) can act.

Jitter is drawn from a seeded stream so a retried run is exactly
reproducible; backoff delays default to ~1 ms so retries remain
observable in wall-clock terms without slowing tests.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

from repro.faults.errors import FaultError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts, and how long to back off between them."""

    max_attempts: int = 3
    base_delay: float = 0.001   # seconds before attempt 2
    backoff: float = 2.0        # delay multiplier per further attempt
    jitter: float = 0.25        # +[0, jitter) fraction of the delay
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before attempt ``attempt + 1`` (attempts are 1-based)."""
        delay = self.base_delay * (self.backoff ** (attempt - 1))
        return delay * (1.0 + self.jitter * rng.random())


def default_should_retry(exc: BaseException) -> bool:
    """Retry transient injected faults only."""
    return isinstance(exc, FaultError) and exc.transient


def retry_call(fn: Callable[[], T],
               policy: Optional[RetryPolicy] = None,
               should_retry: Callable[[BaseException], bool]
               = default_should_retry,
               on_retry: Optional[Callable[[BaseException, int, float],
                                           None]] = None,
               sleep: Callable[[float], None] = time.sleep,
               ) -> Tuple[T, int]:
    """Call *fn* under *policy*; returns ``(result, attempts_used)``.

    ``on_retry(exc, attempt, delay)`` runs before each backoff — the
    pipeline uses it to record the retry and restore device-memory
    snapshots.  The final failure re-raises the last exception
    unchanged, so callers keep its type and fault site.
    """
    policy = policy or RetryPolicy()
    rng = random.Random(policy.seed)
    attempt = 1
    while True:
        try:
            return fn(), attempt
        except Exception as exc:
            if attempt >= policy.max_attempts or not should_retry(exc):
                raise
            delay = policy.delay_for(attempt, rng)
            if on_retry is not None:
                on_retry(exc, attempt, delay)
            if delay > 0:
                sleep(delay)
            attempt += 1

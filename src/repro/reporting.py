"""Plain-text table formatting for the benchmark harness.

Every bench prints its table in the dissertation's row/column layout so
EXPERIMENTS.md can compare paper-vs-measured side by side.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None,
                 note: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def emit(name: str, text: str, results_dir: Optional[str] = None) -> str:
    """Print a table and persist it under benchmarks/results/."""
    print()
    print(text)
    if results_dir is None:
        results_dir = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "benchmarks",
            "results")
    try:
        os.makedirs(results_dir, exist_ok=True)
        with open(os.path.join(results_dir, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")
    except OSError:
        pass
    return text


def speedup(baseline: float, measured: float) -> float:
    """baseline/measured, guarding zero."""
    return baseline / measured if measured > 0 else float("inf")

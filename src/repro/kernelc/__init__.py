"""kernelc — a from-scratch compiler for a CUDA-C-subset kernel language.

This package plays the role of ``nvcc`` in the reproduction: CUDA-C-like
kernel source, optionally written in terms of undefined constants, is
preprocessed (``-D NAME=value`` macro definitions), parsed, lowered to a
PTX-like virtual-register IR, and optimized.  The optimizations the paper
identifies as specialization-enabled — constant folding and propagation,
strength reduction, loop unrolling, and register blocking (local-array
scalarization) — are implemented as IR passes whose effect is directly
observable in the emitted IR, exactly as the dissertation's Appendix C/D
PTX listings show.

The public entry point is :func:`repro.kernelc.compiler.nvcc`.
"""

from repro.kernelc.compiler import CompileError, CompiledKernel, nvcc
from repro.kernelc.ir import IRKernel, IRModule

__all__ = ["nvcc", "CompiledKernel", "CompileError", "IRKernel", "IRModule"]

"""AST node definitions for the kernel language.

Nodes are plain dataclasses.  Expression nodes carry an optional ``ctype``
slot filled in during code generation (the language is simple enough that
type inference happens while lowering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.kernelc import typesys


# ----------------------------------------------------------------------
# Expressions


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0
    ctype: object = typesys.S32


@dataclass
class FloatLit(Expr):
    value: float = 0.0
    ctype: object = typesys.F32


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class BuiltinVar(Expr):
    """threadIdx.x, blockIdx.y, blockDim.z, gridDim.x, warpSize..."""

    name: str = ""  # e.g. "tid.x"


@dataclass
class Unary(Expr):
    op: str = ""  # -, !, ~, * (deref), & (addr-of)
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    """Assignment, possibly compound (op is '' or '+', '-', ...)."""

    target: Expr = None
    value: Expr = None
    op: str = ""


@dataclass
class IncDec(Expr):
    """++/-- in prefix or postfix position."""

    target: Expr = None
    op: str = "++"
    prefix: bool = True


@dataclass
class Ternary(Expr):
    cond: Expr = None
    then: Expr = None
    other: Expr = None


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)
    #: Explicit template arguments, e.g. ``foo<8, true>(x)``.
    template_args: List[Expr] = field(default_factory=list)


@dataclass
class Cast(Expr):
    ctype: object = None
    operand: Expr = None


@dataclass
class Comma(Expr):
    parts: List[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements


@dataclass
class Stmt:
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    """A (possibly multi-) variable declaration.

    Each entry of ``decls`` is ``(name, ctype, array_size_expr_or_None,
    init_expr_or_None)``.  ``shared``/``constant`` mark CUDA memory
    spaces; ``const`` is advisory.
    """

    decls: List[tuple] = field(default_factory=list)
    shared: bool = False
    constant: bool = False
    const: bool = False


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then: List[Stmt] = field(default_factory=list)
    other: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)
    #: ``#pragma unroll`` request (None = compiler decides).
    unroll: Optional[int] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class DoWhile(Stmt):
    cond: Expr = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Block(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class SyncThreads(Stmt):
    pass


# ----------------------------------------------------------------------
# Top level


@dataclass
class Param:
    name: str
    ctype: object
    restrict: bool = False
    const: bool = False


@dataclass
class FuncDef:
    """A __global__ kernel or __device__ helper function."""

    name: str
    params: List[Param]
    body: List[Stmt]
    return_type: object = typesys.VOID
    is_kernel: bool = False
    force_inline: bool = False
    launch_bounds: Optional[Tuple[int, int]] = None
    #: Integer template parameter names (``template<int N, bool B>``);
    #: bound to compile-time constants at each call site.
    template_params: List[str] = field(default_factory=list)
    line: int = 0


@dataclass
class GlobalDecl:
    """A module-scope __constant__ / __device__ array declaration."""

    name: str
    ctype: object
    array_size: Optional[int]
    constant: bool = True
    line: int = 0


@dataclass
class TextureDecl:
    """A module-scope texture reference: texture<float, DIMS> name;"""

    name: str
    ctype: object
    dims: int = 1
    line: int = 0


@dataclass
class TranslationUnit:
    functions: List[FuncDef] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    textures: List[TextureDecl] = field(default_factory=list)

"""Local constant folding and algebraic simplification.

Folds pure instructions whose operands are all immediates into ``mov``
of the computed constant, and applies the usual algebraic identities
(``x+0``, ``x*1``, ``x*0``, ``x<<0``, ``selp`` with equal arms...).
Constant folding is the workhorse of kernel specialization: once ``-D``
macros pin parameter values, whole address-computation chains collapse
into immediates (compare Appendices C and D of the dissertation).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.kernelc import typesys as T
from repro.kernelc.codegen import fold_binary, fold_unary_math
from repro.kernelc.ir import Imm, Instr, IRKernel, Reg

_BIN_OPS = {"add": "+", "sub": "-", "mul": "*", "div": "/", "rem": "%",
            "and": "&", "or": "|", "xor": "^", "shl": "<<", "shr": ">>"}

_CMP = {"eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
        "lt": lambda a, b: a < b, "le": lambda a, b: a <= b,
        "gt": lambda a, b: a > b, "ge": lambda a, b: a >= b}


def fold_mul24(a: int, b: int, ctype) -> int:
    """Exact __[u]mul24 semantics: multiply the low 24 bits."""
    if ctype.signed:
        def ext(x):
            x &= 0xFFFFFF
            return x - 0x1000000 if x & 0x800000 else x
        return T.convert_const(ext(int(a)) * ext(int(b)), ctype)
    return T.convert_const((int(a) & 0xFFFFFF) * (int(b) & 0xFFFFFF), ctype)


def fold_instr(instr: Instr) -> Optional[Imm]:
    """Fold *instr* to an immediate result, or return None."""
    if not instr.is_pure():
        return None
    srcs = instr.srcs
    if not all(isinstance(s, Imm) for s in srcs):
        return None
    t = instr.dtype
    op = instr.op
    if op == "mov":
        return Imm(T.convert_const(srcs[0].value, t), t)
    if op == "cvt":
        value = srcs[0].value
        if t.is_integer and isinstance(value, float):
            value = math.trunc(value)  # C float->int truncates
        if instr.cmp.endswith(".rn") and t.is_integer:
            value = round(srcs[0].value)
        return Imm(T.convert_const(value, t), t)
    if op in _BIN_OPS:
        if t.is_bool and op in ("and", "or", "xor"):
            a, b = bool(srcs[0].value), bool(srcs[1].value)
            value = {"and": a and b, "or": a or b, "xor": a != b}[op]
            return Imm(value, T.BOOL)
        value = fold_binary(_BIN_OPS[op], srcs[0].value, srcs[1].value, t)
        return None if value is None else Imm(value, t)
    if op == "mul24":
        return Imm(fold_mul24(srcs[0].value, srcs[1].value, t), t)
    if op == "mulhi":
        a, b = int(srcs[0].value), int(srcs[1].value)
        return Imm(T.convert_const((a * b) >> 32, t), t)
    if op == "setp":
        return Imm(bool(_CMP[instr.cmp](srcs[0].value, srcs[1].value)),
                   T.BOOL)
    if op == "selp":
        return Imm(T.convert_const(
            srcs[0].value if srcs[2].value else srcs[1].value, t), t)
    if op in ("min", "max"):
        fn = min if op == "min" else max
        return Imm(T.convert_const(fn(srcs[0].value, srcs[1].value), t), t)
    if op in ("neg",):
        return Imm(T.convert_const(-srcs[0].value, t), t)
    if op == "not":
        if t.is_bool:
            return Imm(not srcs[0].value, T.BOOL)
        return Imm(T.convert_const(~int(srcs[0].value), t), t)
    if op in ("mad", "fma"):
        prod = fold_binary("*", srcs[0].value, srcs[1].value, t)
        if prod is None:
            return None
        value = fold_binary("+", prod, srcs[2].value, t)
        return None if value is None else Imm(value, t)
    if op in ("sqrt", "rsqrt", "abs", "floor", "ceil", "round", "trunc"):
        value = fold_unary_math(op, srcs[0].value, t)
        return None if value is None else Imm(value, t)
    if op == "rcp":
        if srcs[0].value == 0:
            return None
        return Imm(T.convert_const(1.0 / srcs[0].value, t), t)
    if op in ("exp2", "lg2", "sin", "cos"):
        try:
            fn = {"exp2": lambda x: 2.0 ** x,
                  "lg2": lambda x: math.log2(x),
                  "sin": math.sin, "cos": math.cos}[op]
            return Imm(T.convert_const(fn(srcs[0].value), t), t)
        except (ValueError, OverflowError):
            return None
    return None


def _identity(instr: Instr) -> Optional[Instr]:
    """Apply algebraic identities, returning a replacement or None."""
    op, t, srcs = instr.op, instr.dtype, instr.srcs
    if len(srcs) != 2 or t.is_bool:
        return None
    a, b = srcs

    def is_const(x, v):
        return isinstance(x, Imm) and x.value == v

    def mov(src):
        return Instr("mov", t, instr.dst, [src], line=instr.line)

    if op == "add":
        if is_const(b, 0):
            return mov(a)
        if is_const(a, 0) and not T.is_pointer(t):
            return mov(b)
    elif op == "sub":
        if is_const(b, 0):
            return mov(a)
    elif op == "mul":
        if is_const(b, 1):
            return mov(a)
        if is_const(a, 1):
            return mov(b)
        if (is_const(b, 0) or is_const(a, 0)) and t.is_integer:
            return mov(Imm(T.convert_const(0, t), t))
    elif op == "div":
        if is_const(b, 1):
            return mov(a)
    elif op in ("shl", "shr"):
        if is_const(b, 0):
            return mov(a)
    elif op == "and":
        if is_const(b, 0) or is_const(a, 0):
            return mov(Imm(T.convert_const(0, t), t))
        mask = (1 << t.bits) - 1 if t.is_integer else None
        if mask is not None and is_const(b, mask):
            return mov(a)
    elif op == "or":
        if is_const(b, 0):
            return mov(a)
        if is_const(a, 0):
            return mov(b)
    elif op == "rem":
        if is_const(b, 1) and t.is_integer:
            return mov(Imm(T.convert_const(0, t), t))
    return None


def fold_kernel(kernel: IRKernel) -> bool:
    """Fold constants throughout *kernel*.  Returns True if changed."""
    changed = False
    body = kernel.body
    for i, item in enumerate(body):
        if not isinstance(item, Instr):
            continue
        folded = fold_instr(item)
        if folded is not None:
            if item.op == "mov" and isinstance(item.srcs[0], Imm) \
                    and item.srcs[0] == folded:
                continue
            body[i] = Instr("mov", item.dtype, item.dst, [folded],
                            pred=item.pred, pred_neg=item.pred_neg,
                            line=item.line)
            changed = True
            continue
        replacement = _identity(item)
        if replacement is not None:
            replacement.pred = item.pred
            replacement.pred_neg = item.pred_neg
            if not (replacement.op == item.op
                    and replacement.srcs == item.srcs):
                body[i] = replacement
                changed = True
    return changed

"""Local-array scalarization — the register-blocking enabler.

NVIDIA GPUs cannot indirectly address the register file, so a per-thread
array (``float acc[N];``) only lives in registers when every access
index is a compile-time constant (§2.4 of the dissertation: "Fixed loop
counts are required for the CUDA C compiler to specify the use of extra
registers for data").  After specialization fixes loop bounds and the
loops unroll, all ``ld.local``/``st.local`` addresses fold to
immediates; this pass then promotes each array slot to a virtual
register.  Arrays with any remaining dynamic access stay in local
memory — which the simulator charges at global-memory cost, exactly the
penalty a run-time-evaluated kernel pays on real hardware.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.kernelc import typesys as T
from repro.kernelc.ir import Imm, Instr, IRKernel, Reg, RegFactory


def scalarize_kernel(kernel: IRKernel) -> bool:
    """Promote fully-constant-indexed local arrays to registers."""
    if not kernel.local_arrays:
        return False
    ranges = {name: (decl.offset, decl.offset + decl.nbytes, decl)
              for name, decl in kernel.local_arrays.items()}

    def owner(addr: int):
        for name, (lo, hi, decl) in ranges.items():
            if lo <= addr < hi:
                return name, decl
        return None, None

    promotable: Set[str] = set(kernel.local_arrays)
    for instr in kernel.instructions():
        if instr.op not in ("ld", "st", "atom") or instr.space != "local":
            continue
        addr = instr.srcs[0]
        if not isinstance(addr, Imm):
            # Dynamic address: disqualify every array it might touch.
            promotable.clear()
            break
        name, decl = owner(int(addr.value))
        if name is None:
            promotable.clear()
            break
        offset = int(addr.value) - decl.offset
        elem = decl.ctype
        # Misaligned or type-punned access: leave the array in memory.
        if offset % elem.size != 0 or instr.dtype.size != elem.size \
                or instr.op == "atom":
            promotable.discard(name)
    if not promotable:
        return False

    factory = RegFactory()
    factory._counter = 2_000_000
    slot_regs: Dict[Tuple[str, int], Reg] = {}

    def slot_reg(name: str, decl, addr: int) -> Reg:
        slot = (addr - decl.offset) // decl.ctype.size
        key = (name, slot)
        if key not in slot_regs:
            slot_regs[key] = factory.new(decl.ctype)
        return slot_regs[key]

    changed = False
    for instr in kernel.instructions():
        if instr.op not in ("ld", "st") or instr.space != "local":
            continue
        addr = int(instr.srcs[0].value)
        name, decl = owner(addr)
        if name not in promotable:
            continue
        reg = slot_reg(name, decl, addr)
        if instr.op == "ld":
            instr.op = "mov"
            instr.space = ""
            instr.srcs = [reg]
        else:
            value = instr.srcs[1]
            instr.op = "mov"
            instr.space = ""
            instr.dst = reg
            instr.srcs = [value]
        changed = True
    for name in promotable:
        del kernel.local_arrays[name]
    return changed

"""Dead code elimination and unreachable-code removal.

Liveness-based: pure instructions (and loads) whose destinations are
never used are deleted.  Run after constant propagation, this removes
the parameter-plumbing that specialization renders unnecessary — which
is where the register-count reduction the dissertation reports comes
from (specialized kernels no longer need registers to hold intermediate
values computed from adjustable parameters, §2.4).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.kernelc.cfg import CFG
from repro.kernelc.ir import Imm, Instr, IRKernel, Label, Reg


def dce_kernel(kernel: IRKernel) -> bool:
    """Delete dead pure instructions.  Returns True if changed."""
    changed = False
    while True:
        used: Set[Reg] = set()
        for instr in kernel.instructions():
            for s in instr.srcs:
                if isinstance(s, Reg):
                    used.add(s)
            if instr.pred is not None:
                used.add(instr.pred)
        removed = False
        new_body: List[object] = []
        for item in kernel.body:
            if isinstance(item, Instr) and item.dst is not None \
                    and item.dst not in used \
                    and (item.is_pure() or item.op == "ld"):
                removed = True
                changed = True
                continue
            new_body.append(item)
        kernel.body = new_body
        if not removed:
            return changed


def remove_unreachable(kernel: IRKernel) -> bool:
    """Drop instructions not reachable from the kernel entry.

    Also removes trivial control flow: an unconditional branch to the
    immediately following label.
    """
    changed = _drop_adjacent_branches(kernel)
    cfg = CFG(kernel)
    if not cfg.blocks:
        return changed
    reachable: Set[int] = set()
    stack = [0]
    while stack:
        bid = stack.pop()
        if bid in reachable:
            continue
        reachable.add(bid)
        stack.extend(cfg.blocks[bid].succs)
    dead = False
    for block in cfg.blocks:
        if block.bid in reachable:
            continue
        for i in range(block.start, block.end):
            cfg.instrs[i].op = "nop"
            cfg.instrs[i].dst = None
            cfg.instrs[i].srcs = []
            dead = True
    if dead:
        cfg.rebuild_body()
        changed = True
    return changed


def _drop_adjacent_branches(kernel: IRKernel) -> bool:
    """Remove ``bra L`` when L is the next label in program order."""
    changed = False
    body = kernel.body
    out: List[object] = []
    for i, item in enumerate(body):
        if isinstance(item, Instr) and item.op == "bra" \
                and item.pred is None:
            j = i + 1
            skip = False
            while j < len(body) and isinstance(body[j], Label):
                if body[j].name == item.target:
                    skip = True
                    break
                j += 1
            if skip:
                changed = True
                continue
        out.append(item)
    if changed:
        kernel.body = out
    return changed

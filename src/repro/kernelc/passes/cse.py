"""Local common-subexpression elimination with copy propagation.

Within each basic block, pure instructions with identical opcodes and
operands reuse the earlier result instead of recomputing it.  Registers
are mutable, so an expression's availability ends when any of its input
registers (or its result register) is redefined.  Register-to-register
``mov`` copies are propagated locally so chains produced by earlier
replacements collapse too; DCE then sweeps the dead movs.

This keeps specialized kernels honest: unrolled loop bodies share their
common address sub-expressions the way nvcc's PTX does, so the
instruction-count comparison between RE and SK kernels reflects real
toolchain behaviour rather than naive duplication.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.kernelc.cfg import CFG
from repro.kernelc.ir import COMMUTATIVE_OPS, Imm, Instr, IRKernel, Reg


def _operand_key(operand) -> Tuple:
    if isinstance(operand, Reg):
        return ("r", operand.name)
    if isinstance(operand, Imm):
        return ("i", repr(operand.value), operand.ctype.ptx_suffix())
    return ("s", operand.name)


def _key(instr: Instr) -> Tuple:
    srcs = instr.srcs
    if instr.op in COMMUTATIVE_OPS and len(srcs) == 2:
        a, b = srcs
        if _operand_key(b) < _operand_key(a):
            srcs = [b, a]
    return (instr.op, instr.dtype.ptx_suffix(), instr.cmp,
            tuple(_operand_key(s) for s in srcs))


def cse_kernel(kernel: IRKernel) -> bool:
    """Eliminate redundant pure computations per block."""
    cfg = CFG(kernel)
    changed = False
    for block in cfg.blocks:
        available: Dict[Tuple, Reg] = {}
        uses: Dict[str, List[Tuple]] = {}
        copies: Dict[Reg, Reg] = {}
        copy_rev: Dict[Reg, Set[Reg]] = {}

        def resolve(reg: Reg) -> Reg:
            seen = set()
            while reg in copies and reg not in seen:
                seen.add(reg)
                reg = copies[reg]
            return reg

        def kill(reg: Reg) -> None:
            # Invalidate expressions touching reg and copies through it.
            for key in uses.pop(reg.name, []):
                available.pop(key, None)
            old = copies.pop(reg, None)
            if old is not None:
                copy_rev.get(old, set()).discard(reg)
            for dependent in copy_rev.pop(reg, set()):
                copies.pop(dependent, None)

        for i in range(block.start, block.end):
            instr = cfg.instrs[i]
            new_srcs = []
            for s in instr.srcs:
                if isinstance(s, Reg):
                    r = resolve(s)
                    if r is not s:
                        changed = True
                    new_srcs.append(r)
                else:
                    new_srcs.append(s)
            instr.srcs = new_srcs
            if instr.pred is not None:
                r = resolve(instr.pred)
                if r is not instr.pred:
                    instr.pred = r
                    changed = True
            dst = instr.dst
            if dst is not None:
                kill(dst)
            if not instr.is_pure() or dst is None or instr.pred is not None:
                continue
            if instr.op == "mov" and isinstance(instr.srcs[0], Reg):
                src = instr.srcs[0]
                if src != dst:
                    copies[dst] = src
                    copy_rev.setdefault(src, set()).add(dst)
                continue
            key = _key(instr)
            prior = available.get(key)
            if prior is not None and prior != dst:
                instr.op = "mov"
                instr.cmp = ""
                instr.srcs = [prior]
                copies[dst] = prior
                copy_rev.setdefault(prior, set()).add(dst)
                changed = True
            elif dst not in instr.srcs:
                available[key] = dst
                for s in instr.srcs:
                    if isinstance(s, Reg):
                        uses.setdefault(s.name, []).append(key)
                uses.setdefault(dst.name, []).append(key)
    if changed:
        cfg.rebuild_body()
    return changed

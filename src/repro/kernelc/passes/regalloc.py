"""Register-usage accounting (the PTX → SASS allocation step).

Virtual registers are unlimited; the hardware register file is not, and
per-thread register usage is what limits occupancy (Table 2.2 of the
dissertation).  This pass computes the maximum number of simultaneously
live 32-bit register equivalents over all program points via classic
backward liveness on the CFG, and stores it in ``kernel.reg_count``.

Weighting follows hardware convention: 64-bit values take two 32-bit
registers; predicates live in a separate predicate file and are not
counted.  A small fixed overhead models the registers the real ABI
reserves (stack pointer, special-purpose temporaries).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.kernelc import typesys as T
from repro.kernelc.cfg import CFG
from repro.kernelc.ir import Imm, Instr, IRKernel, Reg

#: Registers the ABI always reserves (observed nvcc floor is ~2-4).
_ABI_OVERHEAD = 2


def _weight(reg: Reg) -> int:
    t = reg.ctype
    if T.is_pointer(t):
        return 2
    if t.is_bool:
        return 0
    return 2 if t.bits == 64 else 1


def assign_registers(kernel: IRKernel) -> int:
    """Compute and record the per-thread register footprint."""
    cfg = CFG(kernel)
    nblocks = len(cfg.blocks)
    if nblocks == 0:
        kernel.reg_count = _ABI_OVERHEAD
        return kernel.reg_count
    use: List[Set[Reg]] = [set() for _ in range(nblocks)]
    define: List[Set[Reg]] = [set() for _ in range(nblocks)]
    for block in cfg.blocks:
        for i in range(block.start, block.end):
            instr = cfg.instrs[i]
            for s in instr.srcs:
                if isinstance(s, Reg) and s not in define[block.bid]:
                    use[block.bid].add(s)
            if instr.pred is not None and \
                    instr.pred not in define[block.bid]:
                use[block.bid].add(instr.pred)
            if instr.dst is not None:
                define[block.bid].add(instr.dst)
    live_in: List[Set[Reg]] = [set() for _ in range(nblocks)]
    live_out: List[Set[Reg]] = [set() for _ in range(nblocks)]
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            out: Set[Reg] = set()
            for s in block.succs:
                out |= live_in[s]
            new_in = use[block.bid] | (out - define[block.bid])
            if out != live_out[block.bid] or new_in != live_in[block.bid]:
                live_out[block.bid] = out
                live_in[block.bid] = new_in
                changed = True
    peak = 0
    for block in cfg.blocks:
        live = set(live_out[block.bid])
        # Walk backwards through the block tracking live sets.
        pressure = sum(_weight(r) for r in live)
        peak = max(peak, pressure)
        for i in range(block.end - 1, block.start - 1, -1):
            instr = cfg.instrs[i]
            if instr.dst is not None:
                live.discard(instr.dst)
            for s in instr.srcs:
                if isinstance(s, Reg):
                    live.add(s)
            if instr.pred is not None:
                live.add(instr.pred)
            pressure = sum(_weight(r) for r in live)
            peak = max(peak, pressure)
    kernel.reg_count = peak + _ABI_OVERHEAD
    return kernel.reg_count

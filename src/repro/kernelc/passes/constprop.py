"""Global (dataflow) constant propagation and branch folding.

Registers in the IR are mutable (non-SSA), so constantness is a forward
dataflow property: a register is constant at a point when every reaching
definition assigns it the same immediate.  The pass runs the standard
optimistic worklist algorithm over the CFG, then rewrites register
operands with their known constants and folds conditional branches whose
predicate became constant — which is how whole run-time-guard regions
disappear from specialized kernels.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.kernelc import typesys as T
from repro.kernelc.cfg import CFG
from repro.kernelc.ir import Imm, Instr, IRKernel, Reg
from repro.kernelc.passes.constfold import fold_instr

#: Lattice bottom: definitely not a constant.
_BOTTOM = object()


def _transfer(instrs, env: Dict[Reg, object],
              interesting) -> Dict[Reg, object]:
    """Run constants through one block, returning the out-env.

    Only *interesting* registers (those live across block boundaries)
    are tracked globally; block-local values are handled by the rewrite
    walk, which keeps the dataflow dictionaries small even for fully
    unrolled kernels.
    """
    env = dict(env)
    local: Dict[Reg, object] = {}

    def lookup(reg):
        v = local.get(reg)
        return v if v is not None else env.get(reg)

    for instr in instrs:
        dst = instr.dst
        if dst is None:
            continue
        if instr.pred is not None:
            # Predicated writes may or may not happen.
            value = None
        else:
            value = _value_of(instr, lookup)
        slot = env if dst in interesting else local
        slot[dst] = value if value is not None else _BOTTOM
        if slot is env:
            local.pop(dst, None)
        else:
            env.pop(dst, None)
    return env


def _value_of(instr: Instr, lookup) -> Optional[object]:
    """Constant produced by *instr* under the *lookup* function, or None."""
    if not (instr.is_pure()):
        return None
    srcs = []
    for s in instr.srcs:
        if isinstance(s, Imm):
            srcs.append(s)
        elif isinstance(s, Reg):
            known = lookup(s)
            if known is None or known is _BOTTOM:
                return None
            srcs.append(Imm(known, s.ctype))
        else:
            return None
    shadow = Instr(instr.op, instr.dtype, instr.dst, srcs, cmp=instr.cmp,
                   space=instr.space)
    folded = fold_instr(shadow)
    return folded.value if folded is not None else None


def _meet(a: Dict[Reg, object], b: Dict[Reg, object]) -> Dict[Reg, object]:
    out: Dict[Reg, object] = {}
    for reg in set(a) | set(b):
        va = a.get(reg, None)
        vb = b.get(reg, None)
        if va is None:
            out[reg] = vb
        elif vb is None:
            out[reg] = va
        elif va is _BOTTOM or vb is _BOTTOM or va != vb:
            out[reg] = _BOTTOM
        else:
            out[reg] = va
    return out


def _interesting_regs(cfg: CFG):
    """Registers read in a block without a prior definition there.

    Only these can carry constants *across* blocks; everything else is
    block-local and handled by the rewrite walk.  Keeping the dataflow
    dictionaries to this set makes propagation linear-ish even on fully
    unrolled kernels.
    """
    interesting = set()
    for block in cfg.blocks:
        defined = set()
        for i in range(block.start, block.end):
            instr = cfg.instrs[i]
            for s in instr.srcs:
                if isinstance(s, Reg) and s not in defined:
                    interesting.add(s)
            if instr.pred is not None and instr.pred not in defined:
                interesting.add(instr.pred)
            if instr.dst is not None:
                defined.add(instr.dst)
    return interesting


def propagate_kernel(kernel: IRKernel) -> bool:
    """Propagate constants through *kernel*.  Returns True if changed."""
    cfg = CFG(kernel)
    if not cfg.blocks:
        return False
    nblocks = len(cfg.blocks)
    interesting = _interesting_regs(cfg)
    block_in: List[Optional[Dict[Reg, object]]] = [None] * nblocks
    block_in[0] = {}
    worklist = [0]
    block_out: List[Optional[Dict[Reg, object]]] = [None] * nblocks
    iterations = 0
    max_iterations = nblocks * 64 + 256
    while worklist and iterations < max_iterations:
        iterations += 1
        bid = worklist.pop()
        block = cfg.blocks[bid]
        env_in = block_in[bid] or {}
        env_out = _transfer(cfg.instrs[block.start:block.end], env_in,
                            interesting)
        if block_out[bid] == env_out:
            continue
        block_out[bid] = env_out
        for succ in block.succs:
            if block_in[succ] is None:
                block_in[succ] = dict(env_out)
                worklist.append(succ)
            else:
                merged = _meet(block_in[succ], env_out)
                if merged != block_in[succ]:
                    block_in[succ] = merged
                    worklist.append(succ)

    # Rewrite pass: substitute known-constant registers into operands.
    changed = False
    for block in cfg.blocks:
        if block_in[block.bid] is None:
            continue  # unreachable
        env = dict(block_in[block.bid])
        for i in range(block.start, block.end):
            instr = cfg.instrs[i]
            new_srcs = []
            for s in instr.srcs:
                if isinstance(s, Reg):
                    known = env.get(s, None)
                    if known is not None and known is not _BOTTOM:
                        new_srcs.append(Imm(known, s.ctype))
                        changed = True
                        continue
                new_srcs.append(s)
            instr.srcs = new_srcs
            if instr.pred is not None:
                known = env.get(instr.pred, None)
                if known is not None and known is not _BOTTOM:
                    taken = bool(known) != instr.pred_neg
                    if instr.op == "bra":
                        if taken:
                            instr.pred = None
                            instr.pred_neg = False
                        else:
                            instr.op = "nop"
                            instr.srcs = []
                        changed = True
                    elif taken:
                        instr.pred = None
                        instr.pred_neg = False
                        changed = True
                    else:
                        instr.op = "nop"
                        instr.dst = None
                        instr.srcs = []
                        changed = True
            # Update env through this instruction (the rewrite walk
            # tracks every register locally, interesting or not).
            dst = instr.dst
            if dst is not None:
                if instr.pred is not None:
                    env[dst] = _BOTTOM
                else:
                    value = _value_of(instr, env.get)
                    env[dst] = value if value is not None else _BOTTOM
    if changed:
        cfg.rebuild_body()
    return changed

"""IR optimization passes.

The pipeline (driven by :func:`run_pipeline`) mirrors the PTX-generation
stage of nvcc, where the dissertation notes the important optimizations
are applied (§2.4): constant folding/propagation, strength reduction,
CSE, dead-code elimination, local-array scalarization (register
blocking), and register-usage accounting.
"""

from __future__ import annotations

from repro.kernelc.ir import IRKernel, IRModule, renumber
from repro.kernelc.passes.constfold import fold_kernel
from repro.kernelc.passes.constprop import propagate_kernel
from repro.kernelc.passes.cse import cse_kernel
from repro.kernelc.passes.dce import dce_kernel, remove_unreachable
from repro.kernelc.passes.magicdiv import magic_divide_kernel
from repro.kernelc.passes.regalloc import assign_registers
from repro.kernelc.passes.scalarize import scalarize_kernel
from repro.kernelc.passes.strength import strength_reduce_kernel


def optimize_kernel(kernel: IRKernel, opt_level: int = 3) -> None:
    """Run the optimization pipeline on one kernel, in place."""
    if opt_level >= 1:
        _fold_fixpoint(kernel)
        if opt_level >= 2:
            strength_reduce_kernel(kernel)
            magic_divide_kernel(kernel)
            cse_kernel(kernel)
            _fold_fixpoint(kernel)
        scalarize_kernel(kernel)
        _fold_fixpoint(kernel)
        if opt_level >= 2:
            cse_kernel(kernel)
        dce_kernel(kernel)
        remove_unreachable(kernel)
    renumber(kernel)
    assign_registers(kernel)


def _fold_fixpoint(kernel: IRKernel, max_rounds: int = 8) -> None:
    for _ in range(max_rounds):
        changed = fold_kernel(kernel)
        changed |= propagate_kernel(kernel)
        changed |= dce_kernel(kernel)
        changed |= remove_unreachable(kernel)
        if not changed:
            break


def run_pipeline(module: IRModule, opt_level: int = 3) -> None:
    """Optimize every kernel of *module* in place."""
    for kernel in module.kernels.values():
        optimize_kernel(kernel, opt_level)

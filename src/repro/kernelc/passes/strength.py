"""Strength reduction.

Replaces expensive integer operations whose right operand is a
compile-time power of two with cheap bit operations — the optimization
the dissertation singles out (§2.4: "the compiler must know when scalars
are powers of two to strength reduce division or modulus (two relatively
expensive operations on NVIDIA GPUs) to bit-wise operations").

* ``mul r, a, 2^k``  → ``shl r, a, k``
* ``div r, a, 2^k``  → ``shr r, a, k``  (unsigned; signed gets the
  standard round-toward-zero fixup sequence, still far cheaper than a
  hardware divide)
* ``rem r, a, 2^k``  → ``and r, a, 2^k - 1`` (unsigned)
* ``div.f32 r, a, C`` → ``mul.f32 r, a, 1/C`` when C is a power of two
  (exact in binary floating point)

Only *immediate* operands qualify: a fully run-time-evaluated kernel
keeps its divides, which is one of the measured RE-vs-SK differences.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernelc import typesys as T
from repro.kernelc.ir import Imm, Instr, IRKernel, Reg, RegFactory


def _log2_exact(value: int) -> Optional[int]:
    if value <= 0 or value & (value - 1):
        return None
    return value.bit_length() - 1


def strength_reduce_kernel(kernel: IRKernel) -> bool:
    """Apply strength reduction in place.  Returns True if changed."""
    changed = False
    new_body: List[object] = []
    regs = RegFactory()
    # Seed the factory past existing names to avoid collisions.
    regs._counter = 1_000_000
    for item in kernel.body:
        if not isinstance(item, Instr):
            new_body.append(item)
            continue
        replaced = _reduce(item, regs)
        if replaced is None:
            new_body.append(item)
        else:
            new_body.extend(replaced)
            changed = True
    if changed:
        kernel.body = new_body
    return changed


def _reduce(instr: Instr, regs: RegFactory) -> Optional[List[Instr]]:
    t = instr.dtype
    if instr.op not in ("mul", "div", "rem") or len(instr.srcs) != 2:
        return None
    if instr.pred is not None:
        return None
    a, b = instr.srcs
    if T.is_pointer(t):
        return None
    if t.is_float:
        if instr.op == "div" and isinstance(b, Imm) and b.value not in (0,):
            k = _float_pow2(b.value)
            if k is not None:
                recip = T.convert_const(1.0 / b.value, t)
                return [Instr("mul", t, instr.dst, [a, Imm(recip, t)],
                              line=instr.line)]
        return None
    if not t.is_integer:
        return None
    # Commute multiplication so the constant sits on the right.
    if instr.op == "mul" and isinstance(a, Imm) and not isinstance(b, Imm):
        a, b = b, a
    if not isinstance(b, Imm):
        return None
    k = _log2_exact(int(b.value)) if int(b.value) > 0 else None
    if k is None:
        return None
    shift = Imm(T.convert_const(k, T.U32), T.U32)
    if instr.op == "mul":
        if k == 0:
            return [Instr("mov", t, instr.dst, [a], line=instr.line)]
        return [Instr("shl", t, instr.dst, [a, shift], line=instr.line)]
    if instr.op == "div":
        if k == 0:
            return [Instr("mov", t, instr.dst, [a], line=instr.line)]
        if not t.signed:
            return [Instr("shr", t, instr.dst, [a, shift],
                          line=instr.line)]
        # Signed round-toward-zero: q = (a + ((a >> bits-1) & (d-1))) >> k
        sign = regs.new(t)
        bias = regs.new(t)
        adjusted = regs.new(t)
        mask = Imm(T.convert_const(int(b.value) - 1, t), t)
        width = Imm(T.convert_const(t.bits - 1, T.U32), T.U32)
        return [
            Instr("shr", t, sign, [a, width], line=instr.line),
            Instr("and", t, bias, [sign, mask], line=instr.line),
            Instr("add", t, adjusted, [a, bias], line=instr.line),
            Instr("shr", t, instr.dst, [adjusted, shift],
                  line=instr.line),
        ]
    if instr.op == "rem":
        mask = Imm(T.convert_const(int(b.value) - 1, t), t)
        if not t.signed:
            return [Instr("and", t, instr.dst, [a, mask],
                          line=instr.line)]
        # Signed remainder keeps the dividend's sign; build it from the
        # strength-reduced quotient: r = a - (q << k).
        sign = regs.new(t)
        bias = regs.new(t)
        adjusted = regs.new(t)
        quotient = regs.new(t)
        scaled = regs.new(t)
        width = Imm(T.convert_const(t.bits - 1, T.U32), T.U32)
        shift_imm = Imm(T.convert_const(k, T.U32), T.U32)
        return [
            Instr("shr", t, sign, [a, width], line=instr.line),
            Instr("and", t, bias, [sign, mask], line=instr.line),
            Instr("add", t, adjusted, [a, bias], line=instr.line),
            Instr("shr", t, quotient, [adjusted, shift_imm],
                  line=instr.line),
            Instr("shl", t, scaled, [quotient, shift_imm],
                  line=instr.line),
            Instr("sub", t, instr.dst, [a, scaled], line=instr.line),
        ]
    return None


def _float_pow2(value: float) -> Optional[int]:
    """Return k when |value| == 2^k exactly (k may be negative)."""
    import math

    if value <= 0.0 or math.isinf(value) or math.isnan(value):
        return None
    mantissa, exponent = math.frexp(value)
    return exponent - 1 if mantissa == 0.5 else None

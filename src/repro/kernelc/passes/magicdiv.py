"""Magic-number division: strength reduction for *arbitrary* constant
divisors.

Power-of-two divisors reduce to shifts (:mod:`strength`); every other
compile-time divisor reduces to a multiply-high plus shifts using the
classic Hacker's Delight (§10) magic numbers — exactly what nvcc emits
for ``x / 9`` when 9 is known at compile time.  This is the deep end of
what specialization buys: a fully run-time divisor can never take this
path.

The PIV kernels decode offsets with ``o / OFFS_W`` where the search
width is rarely a power of two, so specialized compilations route
through here.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.kernelc import typesys as T
from repro.kernelc.ir import Imm, Instr, IRKernel, Reg, RegFactory

_U32_MASK = 0xFFFFFFFF


def magic_unsigned(d: int) -> Tuple[int, int, bool]:
    """Unsigned magic number for 32-bit division by *d* (d >= 2).

    Returns (M, s, add): when ``add`` is False,
    ``q = mulhi_u(x, M) >> s``; otherwise the overflow-corrected
    sequence ``t = mulhi_u(x, M); q = ((x - t) >> 1 + t) >> (s - 1)``.
    """
    assert d >= 2
    p = 31
    nc = ((1 << 32) // d) * d - 1
    q1 = 0x80000000 // nc
    r1 = 0x80000000 - q1 * nc
    q2 = 0x7FFFFFFF // d
    r2 = 0x7FFFFFFF - q2 * d
    add = False
    while True:
        p += 1
        if r1 >= nc - r1:
            q1 = 2 * q1 + 1
            r1 = 2 * r1 - nc
        else:
            q1 = 2 * q1
            r1 = 2 * r1
        if r2 + 1 >= d - r2:
            if q2 >= 0x7FFFFFFF:
                add = True
            q2 = 2 * q2 + 1
            r2 = 2 * r2 + 1 - d
        else:
            if q2 >= 0x80000000:
                add = True
            q2 = 2 * q2
            r2 = 2 * r2 + 1
        delta = d - 1 - r2
        if not (p < 64 and (q1 < delta or (q1 == delta and r1 == 0))):
            break
    return (q2 + 1) & _U32_MASK, p - 32, add


def magic_signed(d: int) -> Tuple[int, int]:
    """Signed magic number for 32-bit division by *d* (d >= 2).

    Returns (M, s) with M in [0, 2^32): ``q0 = mulhi_s(x, M)`` (M
    reinterpreted as signed), ``+x`` when M's sign bit is set, then
    ``q = (q0 >> s) + (x >>> 31)``.
    """
    assert d >= 2
    two31 = 1 << 31
    ad = d
    t = two31
    anc = t - 1 - t % ad
    p = 31
    q1 = two31 // anc
    r1 = two31 - q1 * anc
    q2 = two31 // ad
    r2 = two31 - q2 * ad
    while True:
        p += 1
        q1 *= 2
        r1 *= 2
        if r1 >= anc:
            q1 += 1
            r1 -= anc
        q2 *= 2
        r2 *= 2
        if r2 >= ad:
            q2 += 1
            r2 -= ad
        delta = ad - r2
        if not (q1 < delta or (q1 == delta and r1 == 0)):
            break
    return (q2 + 1) & _U32_MASK, p - 32


def magic_divide_kernel(kernel: IRKernel) -> bool:
    """Rewrite 32-bit div/rem by non-power-of-two immediates."""
    changed = False
    new_body: List[object] = []
    regs = RegFactory()
    regs._counter = 3_000_000
    for item in kernel.body:
        if isinstance(item, Instr):
            replaced = _reduce(item, regs)
            if replaced is not None:
                new_body.extend(replaced)
                changed = True
                continue
        new_body.append(item)
    if changed:
        kernel.body = new_body
    return changed


def _reduce(instr: Instr, regs: RegFactory) -> Optional[List[Instr]]:
    t = instr.dtype
    if instr.op not in ("div", "rem") or instr.pred is not None:
        return None
    if T.is_pointer(t) or not t.is_integer or t.bits != 32:
        return None
    a, b = instr.srcs
    if not isinstance(b, Imm):
        return None
    d = int(b.value)
    if d < 2 or (d & (d - 1)) == 0:
        return None  # pow2 and degenerate cases belong to 'strength'
    out: List[Instr] = []
    if t.signed:
        quotient = _emit_signed(out, regs, a, d, instr.line)
    else:
        quotient = _emit_unsigned(out, regs, a, d, instr.line)
    if instr.op == "div":
        out.append(Instr("mov", t, instr.dst, [quotient],
                         line=instr.line))
    else:
        scaled = regs.new(t)
        out.append(Instr("mul", t, scaled,
                         [quotient, Imm(T.convert_const(d, t), t)],
                         line=instr.line))
        out.append(Instr("sub", t, instr.dst, [a, scaled],
                         line=instr.line))
    return out


def _emit_unsigned(out, regs, a, d, line) -> Reg:
    t = T.U32
    m, s, add = magic_unsigned(d)
    hi = regs.new(t)
    out.append(Instr("mulhi", t, hi, [a, Imm(m, t)], line=line))
    if not add:
        if s == 0:
            return hi
        q = regs.new(t)
        out.append(Instr("shr", t, q, [hi, Imm(s, T.U32)], line=line))
        return q
    diff = regs.new(t)
    half = regs.new(t)
    summed = regs.new(t)
    q = regs.new(t)
    out.append(Instr("sub", t, diff, [a, hi], line=line))
    out.append(Instr("shr", t, half, [diff, Imm(1, T.U32)], line=line))
    out.append(Instr("add", t, summed, [half, hi], line=line))
    out.append(Instr("shr", t, q, [summed, Imm(s - 1, T.U32)],
                     line=line))
    return q


def _emit_signed(out, regs, a, d, line) -> Reg:
    t = T.S32
    m, s = magic_signed(d)
    signed_m = m - (1 << 32) if m >= (1 << 31) else m
    hi = regs.new(t)
    out.append(Instr("mulhi", t, hi,
                     [a, Imm(T.convert_const(signed_m, t), t)],
                     line=line))
    q0 = hi
    if signed_m < 0:
        corrected = regs.new(t)
        out.append(Instr("add", t, corrected, [hi, a], line=line))
        q0 = corrected
    shifted = q0
    if s > 0:
        shifted = regs.new(t)
        out.append(Instr("shr", t, shifted, [q0, Imm(s, T.U32)],
                         line=line))
    # + sign bit of the dividend (round toward zero).
    sign = regs.new(T.U32)
    out.append(Instr("shr", T.U32, sign,
                     [a, Imm(31, T.U32)], line=line))
    sign_s = regs.new(t)
    out.append(Instr("cvt", t, sign_s, [sign], cmp="u32", line=line))
    q = regs.new(t)
    out.append(Instr("add", t, q, [shifted, sign_s], line=line))
    return q

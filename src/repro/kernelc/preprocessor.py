"""C preprocessor for the kernel language.

Implements the subset the dissertation's specialization workflow relies
on: command-line macro definitions (``nvcc -D NAME=value``), object- and
function-like ``#define``, ``#undef``, conditional inclusion
(``#if/#ifdef/#ifndef/#elif/#else/#endif`` with ``defined()``), and
``#include`` resolved against a dictionary of virtual headers (the
framework ships ``gpuFunctions.hpp`` this way).  Macro bodies are
re-scanned with hide sets so self-referential macros terminate, matching
the C standard's behaviour closely enough for kernel code.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.kernelc.lexer import Token, decode_int, tokenize


class PreprocessorError(Exception):
    """Raised for malformed directives or unbalanced conditionals."""


class Macro:
    """A macro definition.

    Args:
        name: macro identifier.
        body: replacement token list.
        params: parameter names for function-like macros, else ``None``.
        variadic: whether the last parameter is ``...`` (unsupported in
            expansion; accepted for robustness).
    """

    def __init__(self, name: str, body: List[Token],
                 params: Optional[List[str]] = None,
                 variadic: bool = False):
        self.name = name
        self.body = body
        self.params = params
        self.variadic = variadic

    @property
    def function_like(self) -> bool:
        return self.params is not None

    def __repr__(self) -> str:  # pragma: no cover
        args = f"({','.join(self.params)})" if self.function_like else ""
        return f"Macro({self.name}{args})"


def _to_tokens(value) -> List[Token]:
    """Convert a ``-D`` value (str/int/float/bool) to replacement tokens."""
    if isinstance(value, bool):
        text = "1" if value else "0"
    elif isinstance(value, float):
        # Emit full precision followed by an 'f' would change double
        # literals; keep the plain repr, the parser decides the type.
        text = repr(value)
    else:
        text = str(value)
    return tokenize(text)


class Preprocessor:
    """Expands macros and evaluates directives over a token stream.

    Attributes:
        macros: live macro table (name -> :class:`Macro`).
        headers: virtual include files (filename -> source text).
    """

    def __init__(self, defines: Optional[Mapping[str, object]] = None,
                 headers: Optional[Mapping[str, str]] = None):
        self.macros: Dict[str, Macro] = {}
        self.headers = dict(headers or {})
        for name, value in (defines or {}).items():
            if value is None:
                self.macros[name] = Macro(name, [])
            else:
                self.macros[name] = Macro(name, _to_tokens(value))

    # ------------------------------------------------------------------
    # Driver

    def process(self, source: str) -> List[Token]:
        """Preprocess *source*, returning the expanded token list."""
        lines = self._split_directive_lines(source)
        out: List[Token] = []
        # Conditional stack entries: [taken_now, any_branch_taken, seen_else]
        cond: List[List[bool]] = []

        def active() -> bool:
            return all(level[0] for level in cond)

        i = 0
        while i < len(lines):
            line = lines[i]
            i += 1
            if line and line[0].is_punct("#"):
                self._directive(line, cond, active, out)
            elif active():
                out.extend(self.expand(line))
        if cond:
            raise PreprocessorError("unterminated #if block")
        return out

    def _split_directive_lines(self, source: str) -> List[List[Token]]:
        """Split the token stream into logical lines.

        Directive lines (starting with ``#``) stay line-sized; ordinary
        text between directives is grouped per line too, which keeps
        expansion memory bounded and error lines accurate.
        """
        toks = tokenize(source, keep_newlines=True)
        lines: List[List[Token]] = []
        current: List[Token] = []
        for tok in toks:
            if tok.kind == "newline":
                if current:
                    lines.append(current)
                    current = []
            else:
                current.append(tok)
        if current:
            lines.append(current)
        return lines

    # ------------------------------------------------------------------
    # Directives

    def _directive(self, line: List[Token], cond, active, out) -> None:
        if len(line) == 1:  # null directive
            return
        name_tok = line[1]
        name = name_tok.text
        rest = line[2:]
        if name in ("ifdef", "ifndef"):
            if not rest or rest[0].kind not in ("id", "kw"):
                raise PreprocessorError(
                    f"line {name_tok.line}: #{name} needs an identifier")
            defined = rest[0].text in self.macros
            want = defined if name == "ifdef" else not defined
            cond.append([active() and want, want, False])
        elif name == "if":
            value = self._eval_condition(rest) if active() else False
            cond.append([active() and bool(value), bool(value), False])
        elif name == "elif":
            if not cond or cond[-1][2]:
                raise PreprocessorError(
                    f"line {name_tok.line}: #elif without matching #if")
            level = cond.pop()
            parent_active = active()
            if level[1]:
                cond.append([False, True, False])
            else:
                value = bool(self._eval_condition(rest)) if parent_active else False
                cond.append([parent_active and value, value, False])
        elif name == "else":
            if not cond or cond[-1][2]:
                raise PreprocessorError(
                    f"line {name_tok.line}: #else without matching #if")
            level = cond.pop()
            parent_active = active()
            cond.append([parent_active and not level[1], True, True])
        elif name == "endif":
            if not cond:
                raise PreprocessorError(
                    f"line {name_tok.line}: #endif without matching #if")
            cond.pop()
        elif not active():
            return
        elif name == "define":
            self._define(rest, name_tok.line)
        elif name == "undef":
            if not rest:
                raise PreprocessorError(
                    f"line {name_tok.line}: #undef needs an identifier")
            self.macros.pop(rest[0].text, None)
        elif name == "include":
            self._include(rest, name_tok.line, out, cond)
        elif name in ("pragma", "error", "warning"):
            if name == "error":
                text = " ".join(t.text for t in rest)
                raise PreprocessorError(
                    f"line {name_tok.line}: #error {text}")
            if name == "pragma" and rest and rest[0].text == "unroll":
                # Rewrite '#pragma unroll [N]' into the parser marker
                # '__pragma_unroll(N)' so the hint survives lexing.
                line_no = name_tok.line
                expanded = self.expand(rest[1:])
                count = expanded[0].text if expanded else ""
                marker = tokenize(f"__pragma_unroll({count})")
                for t in marker:
                    t.line = line_no
                out.extend(marker)
        else:
            raise PreprocessorError(
                f"line {name_tok.line}: unknown directive #{name}")

    def _define(self, rest: List[Token], line: int) -> None:
        if not rest or rest[0].kind not in ("id", "kw"):
            raise PreprocessorError(f"line {line}: malformed #define")
        name = rest[0].text
        body_start = 1
        params: Optional[List[str]] = None
        variadic = False
        # Function-like only when '(' immediately follows the name; the
        # lexer drops whitespace, so use column adjacency.
        if (len(rest) > 1 and rest[1].is_punct("(")
                and rest[1].col == rest[0].col + len(name)):
            params = []
            j = 2
            while j < len(rest) and not rest[j].is_punct(")"):
                tok = rest[j]
                if tok.is_punct(","):
                    j += 1
                    continue
                if tok.is_punct("..."):
                    variadic = True
                elif tok.kind in ("id", "kw"):
                    params.append(tok.text)
                else:
                    raise PreprocessorError(
                        f"line {line}: bad macro parameter {tok.text!r}")
                j += 1
            if j >= len(rest):
                raise PreprocessorError(
                    f"line {line}: unterminated macro parameter list")
            body_start = j + 1
        self.macros[name] = Macro(name, rest[body_start:], params, variadic)

    def _include(self, rest, line, out, cond) -> None:
        if rest and rest[0].kind == "string":
            fname = rest[0].text[1:-1]
        elif rest and rest[0].is_punct("<"):
            fname = "".join(t.text for t in rest[1:-1])
        else:
            raise PreprocessorError(f"line {line}: malformed #include")
        if fname not in self.headers:
            raise PreprocessorError(
                f"line {line}: include file {fname!r} not found")
        sub = self._split_directive_lines(self.headers[fname])
        # Process the included file inline, sharing the macro table.
        def active() -> bool:
            return all(level[0] for level in cond)
        for inc_line in sub:
            if inc_line and inc_line[0].is_punct("#"):
                self._directive(inc_line, cond, active, out)
            elif active():
                out.extend(self.expand(inc_line))

    # ------------------------------------------------------------------
    # Expansion

    def expand(self, tokens: Sequence[Token]) -> List[Token]:
        """Fully macro-expand *tokens* (with hide sets)."""
        out: List[Token] = []
        stream = list(tokens)
        i = 0
        while i < len(stream):
            tok = stream[i]
            macro = (self.macros.get(tok.text)
                     if tok.kind in ("id", "kw") else None)
            if macro is None or tok.text in tok.hide:
                out.append(tok)
                i += 1
                continue
            if macro.function_like:
                j = i + 1
                if j >= len(stream) or not stream[j].is_punct("("):
                    out.append(tok)  # not invoked: leave as identifier
                    i += 1
                    continue
                args, next_i = self._collect_args(stream, j, tok)
                replaced = self._substitute(macro, args, tok)
                hide = tok.hide | {macro.name}
                replaced = [self._rehide(t, hide) for t in replaced]
                stream[i:next_i] = replaced
            else:
                hide = tok.hide | {macro.name}
                replaced = [self._rehide(t, hide) for t in macro.body]
                stream[i : i + 1] = replaced
        return out

    @staticmethod
    def _rehide(tok: Token, hide: frozenset) -> Token:
        new = Token(tok.kind, tok.text, tok.line, tok.col)
        new.hide = frozenset(tok.hide | hide)
        return new

    def _collect_args(self, stream, open_idx, call_tok):
        """Collect macro call arguments; returns (args, index_past_close)."""
        depth = 0
        args: List[List[Token]] = [[]]
        i = open_idx
        while i < len(stream):
            tok = stream[i]
            if tok.is_punct("("):
                depth += 1
                if depth > 1:
                    args[-1].append(tok)
            elif tok.is_punct(")"):
                depth -= 1
                if depth == 0:
                    return args, i + 1
                args[-1].append(tok)
            elif tok.is_punct(",") and depth == 1:
                args.append([])
            else:
                args[-1].append(tok)
            i += 1
        raise PreprocessorError(
            f"line {call_tok.line}: unterminated call to macro "
            f"{call_tok.text!r}")

    def _substitute(self, macro: Macro, args, call_tok) -> List[Token]:
        params = macro.params or []
        if len(args) == 1 and not args[0] and not params:
            args = []
        if len(args) != len(params) and not macro.variadic:
            raise PreprocessorError(
                f"line {call_tok.line}: macro {macro.name!r} expects "
                f"{len(params)} arguments, got {len(args)}")
        # Arguments are pre-expanded before substitution (C99 6.10.3.1),
        # except where operands of # / ## — we support # (stringize).
        expanded_args = {p: self.expand(a) for p, a in zip(params, args)}
        out: List[Token] = []
        body = macro.body
        k = 0
        while k < len(body):
            tok = body[k]
            if tok.is_punct("#") and k + 1 < len(body) and \
                    body[k + 1].text in params:
                raw = args[params.index(body[k + 1].text)]
                text = '"' + " ".join(t.text for t in raw) + '"'
                out.append(Token("string", text, call_tok.line, call_tok.col))
                k += 2
                continue
            if tok.is_punct("##"):
                # Token pasting: merge previous output token with next.
                if not out or k + 1 >= len(body):
                    raise PreprocessorError(
                        f"line {call_tok.line}: '##' at macro body edge")
                nxt = body[k + 1]
                nxt_toks = (expanded_args.get(nxt.text, [nxt])
                            if nxt.text in params else [nxt])
                left = out.pop()
                pasted_text = left.text + (nxt_toks[0].text if nxt_toks else "")
                pasted = tokenize(pasted_text)
                for p in pasted:
                    p.line, p.col = call_tok.line, call_tok.col
                out.extend(pasted)
                out.extend(nxt_toks[1:])
                k += 2
                continue
            if tok.text in params and tok.kind in ("id", "kw"):
                out.extend(expanded_args[tok.text])
            else:
                out.append(tok)
            k += 1
        return out

    # ------------------------------------------------------------------
    # #if expression evaluation

    def _eval_condition(self, tokens: List[Token]) -> int:
        """Evaluate a ``#if`` controlling expression to an integer."""
        # Replace defined(X)/defined X before macro expansion.
        pre: List[Token] = []
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if tok.kind in ("id", "kw") and tok.text == "defined":
                if i + 1 < len(tokens) and tokens[i + 1].is_punct("("):
                    name = tokens[i + 2].text
                    i += 4
                else:
                    name = tokens[i + 1].text
                    i += 2
                pre.append(Token("int", "1" if name in self.macros else "0",
                                 tok.line, tok.col))
            else:
                pre.append(tok)
                i += 1
        expanded = self.expand(pre)
        # Remaining identifiers evaluate to 0, per the standard.
        final = [Token("int", "0", t.line, t.col)
                 if t.kind in ("id", "kw") and t.text not in ("true", "false")
                 else (Token("int", "1" if t.text == "true" else "0",
                             t.line, t.col) if t.kind == "kw" else t)
                 for t in expanded]
        return _CondParser(final).parse()


class _CondParser:
    """Tiny precedence-climbing parser for #if integer expressions."""

    _BINOPS = {
        "||": (1, lambda a, b: int(bool(a) or bool(b))),
        "&&": (2, lambda a, b: int(bool(a) and bool(b))),
        "|": (3, lambda a, b: a | b),
        "^": (4, lambda a, b: a ^ b),
        "&": (5, lambda a, b: a & b),
        "==": (6, lambda a, b: int(a == b)),
        "!=": (6, lambda a, b: int(a != b)),
        "<": (7, lambda a, b: int(a < b)),
        ">": (7, lambda a, b: int(a > b)),
        "<=": (7, lambda a, b: int(a <= b)),
        ">=": (7, lambda a, b: int(a >= b)),
        "<<": (8, lambda a, b: a << b),
        ">>": (8, lambda a, b: a >> b),
        "+": (9, lambda a, b: a + b),
        "-": (9, lambda a, b: a - b),
        "*": (10, lambda a, b: a * b),
        "/": (10, lambda a, b: _cdiv(a, b)),
        "%": (10, lambda a, b: a - _cdiv(a, b) * b),
    }

    def __init__(self, tokens: List[Token]):
        self.toks = tokens
        self.pos = 0

    def parse(self) -> int:
        value = self._ternary()
        if self.pos != len(self.toks):
            tok = self.toks[self.pos]
            raise PreprocessorError(
                f"line {tok.line}: trailing tokens in #if expression")
        return value

    def _peek(self) -> Optional[Token]:
        return self.toks[self.pos] if self.pos < len(self.toks) else None

    def _ternary(self) -> int:
        cond = self._binary(0)
        tok = self._peek()
        if tok is not None and tok.is_punct("?"):
            self.pos += 1
            then = self._ternary()
            tok = self._peek()
            if tok is None or not tok.is_punct(":"):
                raise PreprocessorError("missing ':' in #if ?:")
            self.pos += 1
            other = self._ternary()
            return then if cond else other
        return cond

    def _binary(self, min_prec: int) -> int:
        left = self._unary()
        while True:
            tok = self._peek()
            if tok is None or tok.kind != "punct" or \
                    tok.text not in self._BINOPS:
                return left
            prec, fn = self._BINOPS[tok.text]
            if prec < min_prec:
                return left
            self.pos += 1
            right = self._binary(prec + 1)
            if tok.text in ("/", "%") and right == 0:
                raise PreprocessorError(
                    f"line {tok.line}: division by zero in #if")
            left = fn(left, right)

    def _unary(self) -> int:
        tok = self._peek()
        if tok is None:
            raise PreprocessorError("empty #if expression")
        if tok.is_punct("!"):
            self.pos += 1
            return int(not self._unary())
        if tok.is_punct("-"):
            self.pos += 1
            return -self._unary()
        if tok.is_punct("+"):
            self.pos += 1
            return self._unary()
        if tok.is_punct("~"):
            self.pos += 1
            return ~self._unary()
        if tok.is_punct("("):
            self.pos += 1
            value = self._ternary()
            closing = self._peek()
            if closing is None or not closing.is_punct(")"):
                raise PreprocessorError("missing ')' in #if expression")
            self.pos += 1
            return value
        if tok.kind == "int":
            self.pos += 1
            return decode_int(tok.text)[0]
        if tok.kind == "char":
            self.pos += 1
            return ord(tok.text[1:-1].replace("\\", "")[0])
        raise PreprocessorError(
            f"line {tok.line}: bad token {tok.text!r} in #if expression")


def _cdiv(a: int, b: int) -> int:
    """C-style truncating integer division."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def preprocess(source: str, defines: Optional[Mapping[str, object]] = None,
               headers: Optional[Mapping[str, str]] = None) -> List[Token]:
    """One-shot helper: preprocess *source* with *defines* and *headers*."""
    return Preprocessor(defines, headers).process(source)

"""Recursive-descent parser for the kernel language.

Parses the preprocessed token stream into the AST of
:mod:`repro.kernelc.ast_nodes`.  The grammar is the CUDA-C subset used by
the dissertation's kernels: ``__global__``/``__device__`` functions,
scalar/pointer/array declarations with ``__shared__``/``__constant__``
qualifiers, the full C expression grammar (including casts, ternaries and
compound assignment), structured statements, and ``#pragma unroll``
(handled via the ``__pragma_unroll`` marker the compiler driver injects —
see compiler.py).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.kernelc import ast_nodes as A
from repro.kernelc import typesys as T
from repro.kernelc.lexer import (LexError, Token, TokenStream, decode_float,
                                 decode_int)


class ParseError(Exception):
    """Raised on syntax errors, with a source line number."""


_TYPE_KEYWORDS = {"void", "int", "float", "double", "char", "short",
                  "long", "bool", "unsigned", "signed"}

_BUILTIN_VARS = {"threadIdx": "tid", "blockIdx": "ctaid",
                 "blockDim": "ntid", "gridDim": "nctaid"}

_ASSIGN_OPS = {"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/",
               "%=": "%", "&=": "&", "|=": "|", "^=": "^",
               "<<=": "<<", ">>=": ">>"}

# Binary operator precedence (C), highest binds tightest.
_BIN_PREC = {
    "*": 13, "/": 13, "%": 13,
    "+": 12, "-": 12,
    "<<": 11, ">>": 11,
    "<": 10, ">": 10, "<=": 10, ">=": 10,
    "==": 9, "!=": 9,
    "&": 8, "^": 7, "|": 6,
    "&&": 5, "||": 4,
}


class Parser:
    """Parses a token list into a :class:`TranslationUnit`."""

    def __init__(self, tokens: List[Token], typedefs: Optional[dict] = None):
        self.ts = TokenStream(tokens)
        self.typedefs = dict(typedefs or {})

    # ------------------------------------------------------------------
    # Top level

    def parse(self) -> A.TranslationUnit:
        unit = A.TranslationUnit()
        while not self.ts.at_end():
            tok = self.ts.peek()
            if tok.is_punct(";"):
                self.ts.next()
                continue
            if tok.is_kw("typedef"):
                self._parse_typedef()
                continue
            if tok.kind == "id" and tok.text == "texture":
                unit.textures.append(self._parse_texture_decl())
                continue
            template_params = None
            if tok.is_kw("template"):
                template_params = self._parse_template_header()
            item = self._parse_top_item()
            if isinstance(item, A.FuncDef):
                if template_params:
                    item.template_params = template_params
                unit.functions.append(item)
            elif isinstance(item, A.GlobalDecl):
                if template_params:
                    raise ParseError(
                        f"line {item.line}: templates only apply to "
                        "functions")
                unit.globals.append(item)
        return unit

    def _err(self, tok: Token, msg: str) -> ParseError:
        return ParseError(f"line {tok.line}: {msg} (near {tok.text!r})")

    def _parse_typedef(self) -> None:
        self.ts.expect("kw", "typedef")
        base = self._parse_type_name()
        name = self.ts.expect("id").text
        self.ts.expect("punct", ";")
        self.typedefs[name] = base

    def _parse_texture_decl(self) -> A.TextureDecl:
        """``texture<float, 2> projTex;`` — a module texture reference.

        An optional third template argument (the CUDA read mode) is
        accepted and ignored; only element-type reads are modelled.
        """
        line = self.ts.expect("id").line  # 'texture'
        self.ts.expect("punct", "<")
        ctype = self._parse_type_name()
        dims = 1
        if self.ts.accept("punct", ","):
            dims_tok = self.ts.expect("int")
            dims = decode_int(dims_tok.text)[0]
            if dims not in (1, 2):
                raise ParseError(
                    f"line {dims_tok.line}: only 1D/2D textures are "
                    "supported")
            if self.ts.accept("punct", ","):
                self.ts.next()  # read mode token, ignored
        self.ts.expect("punct", ">")
        name = self.ts.expect("id").text
        self.ts.expect("punct", ";")
        return A.TextureDecl(name=name, ctype=ctype, dims=dims,
                             line=line)

    def _parse_template_header(self) -> List[str]:
        """Parse ``template<int N, bool B, ...>`` into parameter names.

        The dissertation's flexibly-specializable kernels use non-type
        template parameters (the ``gpu::ctrt`` utilities); the compiler
        binds them to compile-time constants at each call site.
        ``typename`` parameters are not supported — the kernels select
        data types through typedef'd macros instead.
        """
        self.ts.expect("kw", "template")
        self.ts.expect("punct", "<")
        names: List[str] = []
        while not self.ts.peek().is_punct(">"):
            tok = self.ts.peek()
            if tok.is_kw("typename") or (tok.kind == "kw"
                                         and tok.text == "struct"):
                raise ParseError(
                    f"line {tok.line}: typename template parameters "
                    "are not supported — use a macro-selected typedef")
            if not (tok.kind == "kw" and tok.text in _TYPE_KEYWORDS):
                raise ParseError(
                    f"line {tok.line}: expected an integer template "
                    f"parameter type, found {tok.text!r}")
            self._parse_type_name()
            names.append(self.ts.expect("id").text)
            if not self.ts.accept("punct", ","):
                break
        self.ts.expect("punct", ">")
        return names

    def _parse_top_item(self):
        quals = self._parse_qualifiers()
        line = self.ts.peek().line
        base = self._parse_type_name()
        # __launch_bounds__ conventionally sits after the return type.
        more = self._parse_qualifiers()
        for key, value in more.items():
            if value:
                quals[key] = value
        # pointer declarators handled per-declarator
        ptr_space = "global"
        if quals["constant"]:
            ptr_space = "const"
        stars = 0
        while self.ts.accept("punct", "*"):
            stars += 1
        name = self.ts.expect("id").text
        ctype = base
        for _ in range(stars):
            ctype = T.PointerType(ctype, ptr_space)
        if self.ts.peek().is_punct("("):
            return self._parse_function(name, ctype, quals, line)
        # Module-scope declaration (constant memory array, usually).
        size: Optional[int] = None
        if self.ts.accept("punct", "["):
            size_expr = self._parse_expr()
            self.ts.expect("punct", "]")
            size = _const_int(size_expr)
            if size is None:
                raise self._err(self.ts.peek(),
                                "module-scope array size must be constant")
        if self.ts.accept("punct", "="):
            self._parse_assignment()  # initializer ignored at module scope
        self.ts.expect("punct", ";")
        return A.GlobalDecl(name, ctype, size,
                            constant=quals["constant"], line=line)

    def _parse_qualifiers(self) -> dict:
        quals = {"global": False, "device": False, "shared": False,
                 "constant": False, "const": False, "force_inline": False,
                 "launch_bounds": None}
        while True:
            tok = self.ts.peek()
            if tok.is_kw("__global__"):
                quals["global"] = True
            elif tok.is_kw("__device__"):
                quals["device"] = True
            elif tok.is_kw("__shared__"):
                quals["shared"] = True
            elif tok.is_kw("__constant__"):
                quals["constant"] = True
            elif tok.is_kw("const"):
                quals["const"] = True
            elif tok.is_kw("__forceinline__") or tok.is_kw("inline") \
                    or tok.is_kw("static") or tok.is_kw("volatile"):
                if tok.is_kw("__forceinline__") or tok.is_kw("inline"):
                    quals["force_inline"] = True
            elif tok.kind == "id" and tok.text == "__launch_bounds__":
                self.ts.next()
                self.ts.expect("punct", "(")
                max_threads = _const_int(self._parse_assignment())
                min_blocks = 1
                if self.ts.accept("punct", ","):
                    min_blocks = _const_int(self._parse_assignment())
                self.ts.expect("punct", ")")
                quals["launch_bounds"] = (max_threads, min_blocks)
                continue
            else:
                return quals
            self.ts.next()

    def _parse_type_name(self):
        """Parse a (possibly multi-keyword) scalar type name."""
        tok = self.ts.peek()
        words: List[str] = []
        while tok.kind == "kw" and tok.text in _TYPE_KEYWORDS:
            words.append(self.ts.next().text)
            tok = self.ts.peek()
        if not words:
            if tok.kind == "id" and tok.text in self.typedefs:
                self.ts.next()
                return self.typedefs[tok.text]
            if tok.kind == "id" and tok.text in T.NAMED_TYPES:
                self.ts.next()
                return T.NAMED_TYPES[tok.text]
            raise self._err(tok, "expected a type name")
        return _scalar_from_words(words, tok)

    def _looks_like_type(self, offset: int = 0) -> bool:
        tok = self.ts.peek(offset)
        if tok.kind == "kw" and tok.text in (_TYPE_KEYWORDS | {
                "const", "__shared__", "__constant__"}):
            return True
        return tok.kind == "id" and (tok.text in self.typedefs
                                     or tok.text in T.NAMED_TYPES)

    # ------------------------------------------------------------------
    # Functions

    def _parse_function(self, name, return_type, quals, line) -> A.FuncDef:
        self.ts.expect("punct", "(")
        params: List[A.Param] = []
        if not self.ts.peek().is_punct(")"):
            while True:
                params.append(self._parse_param())
                if not self.ts.accept("punct", ","):
                    break
        self.ts.expect("punct", ")")
        body = self._parse_block()
        return A.FuncDef(
            name=name, params=params, body=body, return_type=return_type,
            is_kernel=quals["global"], force_inline=quals["force_inline"],
            launch_bounds=quals["launch_bounds"], line=line)

    def _parse_param(self) -> A.Param:
        const = bool(self.ts.accept("kw", "const"))
        base = self._parse_type_name()
        if self.ts.accept("kw", "const"):
            const = True
        ctype = base
        while self.ts.accept("punct", "*"):
            ctype = T.PointerType(ctype, "global")
            if self.ts.accept("kw", "const"):
                const = True
        restrict = bool(self.ts.accept("kw", "__restrict__"))
        name = self.ts.expect("id").text
        return A.Param(name=name, ctype=ctype, restrict=restrict, const=const)

    # ------------------------------------------------------------------
    # Statements

    def _parse_block(self) -> List[A.Stmt]:
        self.ts.expect("punct", "{")
        body: List[A.Stmt] = []
        while not self.ts.peek().is_punct("}"):
            if self.ts.at_end():
                raise ParseError("unexpected end of input inside block")
            body.append(self._parse_stmt())
        self.ts.expect("punct", "}")
        return body

    def _parse_stmt(self) -> A.Stmt:
        tok = self.ts.peek()
        line = tok.line
        if tok.is_punct("{"):
            return A.Block(line=line, body=self._parse_block())
        if tok.is_punct(";"):
            self.ts.next()
            return A.Block(line=line, body=[])
        if tok.is_kw("if"):
            return self._parse_if()
        if tok.is_kw("for"):
            return self._parse_for(unroll=None)
        if tok.is_kw("while"):
            return self._parse_while()
        if tok.is_kw("do"):
            return self._parse_do()
        if tok.is_kw("return"):
            self.ts.next()
            value = None
            if not self.ts.peek().is_punct(";"):
                value = self._parse_expr()
            self.ts.expect("punct", ";")
            return A.Return(line=line, value=value)
        if tok.is_kw("break"):
            self.ts.next()
            self.ts.expect("punct", ";")
            return A.Break(line=line)
        if tok.is_kw("continue"):
            self.ts.next()
            self.ts.expect("punct", ";")
            return A.Continue(line=line)
        if tok.kind == "id" and tok.text == "__pragma_unroll":
            # Injected by the compiler driver for '#pragma unroll [N]'.
            self.ts.next()
            self.ts.expect("punct", "(")
            count_tok = self.ts.peek()
            count = 0
            if count_tok.kind == "int":
                count = decode_int(self.ts.next().text)[0]
            self.ts.expect("punct", ")")
            stmt = self._parse_stmt()
            if isinstance(stmt, A.For):
                stmt.unroll = count if count > 0 else -1  # -1 = full
            return stmt
        if tok.kind == "id" and tok.text == "__syncthreads":
            self.ts.next()
            self.ts.expect("punct", "(")
            self.ts.expect("punct", ")")
            self.ts.expect("punct", ";")
            return A.SyncThreads(line=line)
        if self._is_decl_start():
            return self._parse_decl_stmt()
        expr = self._parse_expr()
        self.ts.expect("punct", ";")
        return A.ExprStmt(line=line, expr=expr)

    def _is_decl_start(self) -> bool:
        tok = self.ts.peek()
        if tok.kind == "kw" and tok.text in (
                {"const", "__shared__", "__constant__", "volatile", "static"}
                | _TYPE_KEYWORDS):
            # 'const' could also start '(const float*)x' — but casts never
            # open a statement in this grammar.
            return True
        if tok.kind == "id" and (tok.text in self.typedefs
                                 or tok.text in T.NAMED_TYPES):
            nxt = self.ts.peek(1)
            return nxt.kind == "id" or nxt.is_punct("*")
        return False

    def _parse_decl_stmt(self) -> A.DeclStmt:
        line = self.ts.peek().line
        shared = constant = const = False
        while True:
            tok = self.ts.peek()
            if tok.is_kw("__shared__"):
                shared = True
            elif tok.is_kw("__constant__"):
                constant = True
            elif tok.is_kw("const"):
                const = True
            elif tok.is_kw("volatile") or tok.is_kw("static"):
                pass
            else:
                break
            self.ts.next()
        base = self._parse_type_name()
        if self.ts.accept("kw", "const"):
            const = True
        decls = []
        while True:
            ctype = base
            while self.ts.accept("punct", "*"):
                # A pointer variable points to global memory unless its
                # initializer says otherwise (handled during lowering).
                ctype = T.PointerType(ctype, "global")
            name = self.ts.expect("id").text
            array_size = None
            if self.ts.accept("punct", "["):
                array_size = self._parse_expr()
                self.ts.expect("punct", "]")
            init = None
            if self.ts.accept("punct", "="):
                init = self._parse_assignment()
            decls.append((name, ctype, array_size, init))
            if not self.ts.accept("punct", ","):
                break
        self.ts.expect("punct", ";")
        return A.DeclStmt(line=line, decls=decls, shared=shared,
                          constant=constant, const=const)

    def _parse_if(self) -> A.If:
        line = self.ts.expect("kw", "if").line
        self.ts.expect("punct", "(")
        cond = self._parse_expr()
        self.ts.expect("punct", ")")
        then = self._stmt_as_list()
        other: List[A.Stmt] = []
        if self.ts.accept("kw", "else"):
            other = self._stmt_as_list()
        return A.If(line=line, cond=cond, then=then, other=other)

    def _stmt_as_list(self) -> List[A.Stmt]:
        stmt = self._parse_stmt()
        if isinstance(stmt, A.Block):
            return stmt.body
        return [stmt]

    def _parse_for(self, unroll) -> A.For:
        line = self.ts.expect("kw", "for").line
        self.ts.expect("punct", "(")
        init: Optional[A.Stmt] = None
        if not self.ts.peek().is_punct(";"):
            if self._is_decl_start():
                init = self._parse_decl_stmt()
            else:
                expr = self._parse_expr()
                self.ts.expect("punct", ";")
                init = A.ExprStmt(line=line, expr=expr)
        else:
            self.ts.expect("punct", ";")
        cond = None
        if not self.ts.peek().is_punct(";"):
            cond = self._parse_expr()
        self.ts.expect("punct", ";")
        step = None
        if not self.ts.peek().is_punct(")"):
            step = self._parse_expr()
        self.ts.expect("punct", ")")
        body = self._stmt_as_list()
        return A.For(line=line, init=init, cond=cond, step=step, body=body,
                     unroll=unroll)

    def _parse_while(self) -> A.While:
        line = self.ts.expect("kw", "while").line
        self.ts.expect("punct", "(")
        cond = self._parse_expr()
        self.ts.expect("punct", ")")
        body = self._stmt_as_list()
        return A.While(line=line, cond=cond, body=body)

    def _parse_do(self) -> A.DoWhile:
        line = self.ts.expect("kw", "do").line
        body = self._stmt_as_list()
        self.ts.expect("kw", "while")
        self.ts.expect("punct", "(")
        cond = self._parse_expr()
        self.ts.expect("punct", ")")
        self.ts.expect("punct", ";")
        return A.DoWhile(line=line, cond=cond, body=body)

    # ------------------------------------------------------------------
    # Expressions

    def _parse_expr(self) -> A.Expr:
        expr = self._parse_assignment()
        if self.ts.peek().is_punct(","):
            parts = [expr]
            while self.ts.accept("punct", ","):
                parts.append(self._parse_assignment())
            return A.Comma(line=expr.line, parts=parts)
        return expr

    def _parse_assignment(self) -> A.Expr:
        left = self._parse_ternary()
        tok = self.ts.peek()
        if tok.kind == "punct" and tok.text in _ASSIGN_OPS:
            self.ts.next()
            value = self._parse_assignment()
            return A.Assign(line=tok.line, target=left, value=value,
                            op=_ASSIGN_OPS[tok.text])
        return left

    def _parse_ternary(self) -> A.Expr:
        cond = self._parse_binary(0)
        tok = self.ts.peek()
        if tok.is_punct("?"):
            self.ts.next()
            then = self._parse_assignment()
            self.ts.expect("punct", ":")
            other = self._parse_assignment()
            return A.Ternary(line=tok.line, cond=cond, then=then, other=other)
        return cond

    def _parse_binary(self, min_prec: int) -> A.Expr:
        left = self._parse_unary()
        while True:
            tok = self.ts.peek()
            if tok.kind != "punct" or tok.text not in _BIN_PREC:
                return left
            prec = _BIN_PREC[tok.text]
            if prec < min_prec:
                return left
            self.ts.next()
            right = self._parse_binary(prec + 1)
            left = A.Binary(line=tok.line, op=tok.text, left=left,
                            right=right)

    def _parse_unary(self) -> A.Expr:
        tok = self.ts.peek()
        if tok.kind == "punct" and tok.text in ("-", "!", "~", "+", "*", "&"):
            self.ts.next()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return A.Unary(line=tok.line, op=tok.text, operand=operand)
        if tok.is_punct("++") or tok.is_punct("--"):
            self.ts.next()
            target = self._parse_unary()
            return A.IncDec(line=tok.line, target=target, op=tok.text,
                            prefix=True)
        if tok.is_punct("(") and self._looks_like_cast():
            self.ts.next()
            const = bool(self.ts.accept("kw", "const"))
            base = self._parse_type_name()
            self.ts.accept("kw", "const")
            ctype = base
            while self.ts.accept("punct", "*"):
                ctype = T.PointerType(ctype, "global")
            self.ts.expect("punct", ")")
            operand = self._parse_unary()
            return A.Cast(line=tok.line, ctype=ctype, operand=operand)
        if tok.is_kw("sizeof"):
            self.ts.next()
            self.ts.expect("punct", "(")
            if self._looks_like_type():
                base = self._parse_type_name()
                ctype = base
                while self.ts.accept("punct", "*"):
                    ctype = T.PointerType(ctype, "global")
                size = ctype.size
            else:
                self._parse_expr()
                size = 4  # sizeof(expr) not tracked; kernels use types
            self.ts.expect("punct", ")")
            return A.IntLit(line=tok.line, value=size, ctype=T.U64)
        return self._parse_postfix()

    def _looks_like_cast(self) -> bool:
        """Heuristic: '(' followed by a type name and then '*' or ')'. """
        i = 1
        if self.ts.peek(i).is_kw("const"):
            i += 1
        tok = self.ts.peek(i)
        if not ((tok.kind == "kw" and tok.text in _TYPE_KEYWORDS)
                or (tok.kind == "id" and (tok.text in self.typedefs
                                          or tok.text in T.NAMED_TYPES))):
            return False
        i += 1
        while self.ts.peek(i).kind == "kw" and \
                self.ts.peek(i).text in (_TYPE_KEYWORDS | {"const"}):
            i += 1
        while self.ts.peek(i).is_punct("*"):
            i += 1
        return self.ts.peek(i).is_punct(")")

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            tok = self.ts.peek()
            if tok.is_punct("["):
                self.ts.next()
                index = self._parse_expr()
                self.ts.expect("punct", "]")
                expr = A.Index(line=tok.line, base=expr, index=index)
            elif tok.is_punct("++") or tok.is_punct("--"):
                self.ts.next()
                expr = A.IncDec(line=tok.line, target=expr, op=tok.text,
                                prefix=False)
            elif tok.is_punct("."):
                self.ts.next()
                member = self.ts.expect("id").text
                expr = self._member_access(expr, member, tok)
            else:
                return expr

    def _member_access(self, expr: A.Expr, member: str, tok) -> A.Expr:
        if isinstance(expr, A.Ident) and expr.name in _BUILTIN_VARS:
            if member not in ("x", "y", "z"):
                raise self._err(tok, f"bad builtin member .{member}")
            return A.BuiltinVar(line=tok.line,
                                name=f"{_BUILTIN_VARS[expr.name]}.{member}")
        raise self._err(tok, "struct member access is not supported")

    def _parse_primary(self) -> A.Expr:
        tok = self.ts.peek()
        if tok.is_punct("("):
            self.ts.next()
            expr = self._parse_expr()
            self.ts.expect("punct", ")")
            return expr
        if tok.kind == "int":
            self.ts.next()
            value, unsigned, is_long = decode_int(tok.text)
            if is_long:
                ctype = T.U64 if unsigned else T.S64
            elif unsigned:
                ctype = T.U32
            elif value > 0x7FFFFFFF:
                ctype = T.S64 if value <= 0x7FFFFFFFFFFFFFFF else T.U64
            else:
                ctype = T.S32
            return A.IntLit(line=tok.line, value=value, ctype=ctype)
        if tok.kind == "float":
            self.ts.next()
            value, is_double = decode_float(tok.text)
            return A.FloatLit(line=tok.line, value=value,
                              ctype=T.F64 if is_double else T.F32)
        if tok.is_kw("true") or tok.is_kw("false"):
            self.ts.next()
            return A.BoolLit(line=tok.line, value=tok.text == "true")
        if tok.kind == "id" or tok.kind == "kw":
            if tok.kind == "kw" and tok.text not in ("int", "float",
                                                     "double"):
                raise self._err(tok, "unexpected keyword in expression")
            self.ts.next()
            name = tok.text
            # Function-style casts like float(x) and calls.
            template_args: List[A.Expr] = []
            if self.ts.peek().is_punct("<") and self._template_call_ahead():
                self.ts.next()
                while not self.ts.peek().is_punct(">"):
                    # Template arguments parse above relational/shift
                    # precedence so the closing '>' is not consumed.
                    template_args.append(self._parse_binary(12))
                    if not self.ts.accept("punct", ","):
                        break
                self.ts.expect("punct", ">")
            if self.ts.peek().is_punct("("):
                self.ts.next()
                args: List[A.Expr] = []
                if not self.ts.peek().is_punct(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self.ts.accept("punct", ","):
                            break
                self.ts.expect("punct", ")")
                if name in T.NAMED_TYPES and len(args) == 1:
                    return A.Cast(line=tok.line, ctype=T.NAMED_TYPES[name],
                                  operand=args[0])
                return A.Call(line=tok.line, name=name, args=args,
                              template_args=template_args)
            return A.Ident(line=tok.line, name=name)
        raise self._err(tok, "expected an expression")

    def _template_call_ahead(self) -> bool:
        """Disambiguate ``f<8>(x)`` from ``a < b``: scan for '>' '('. """
        depth = 0
        for offset in range(0, 40):
            tok = self.ts.peek(offset)
            if tok.kind == "eof" or tok.is_punct(";") or tok.is_punct("{"):
                return False
            if tok.is_punct("<"):
                depth += 1
            elif tok.is_punct(">"):
                depth -= 1
                if depth == 0:
                    return self.ts.peek(offset + 1).is_punct("(")
            elif tok.is_punct("&&") or tok.is_punct("||"):
                return False
        return False


def _scalar_from_words(words: List[str], tok) -> T.ScalarType:
    unsigned = "unsigned" in words
    words = [w for w in words if w not in ("unsigned", "signed")]
    if not words:
        return T.U32 if unsigned else T.S32
    joined = " ".join(words)
    table = {
        "void": T.VOID, "bool": T.BOOL, "char": T.S8, "short": T.S16,
        "int": T.S32, "long": T.S64, "long long": T.S64,
        "long long int": T.S64, "long int": T.S64,
        "short int": T.S16, "float": T.F32, "double": T.F64,
    }
    if joined not in table:
        raise ParseError(f"line {tok.line}: unknown type {joined!r}")
    base = table[joined]
    if unsigned:
        flip = {T.S8: T.U8, T.S16: T.U16, T.S32: T.U32, T.S64: T.U64}
        base = flip.get(base, base)
    return base


def _const_int(expr: A.Expr) -> Optional[int]:
    """Statically evaluate simple constant expressions (literals, + - * /)."""
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.Unary) and expr.op == "-":
        inner = _const_int(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, A.Binary):
        left = _const_int(expr.left)
        right = _const_int(expr.right)
        if left is None or right is None:
            return None
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b,
               "/": lambda a, b: a // b if b else None,
               "%": lambda a, b: a % b if b else None,
               "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b}
        if expr.op in ops:
            return ops[expr.op](left, right)
    return None


def parse(tokens: List[Token]) -> A.TranslationUnit:
    """Parse preprocessed *tokens* into a translation unit."""
    return Parser(tokens).parse()

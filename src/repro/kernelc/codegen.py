"""AST → IR lowering.

The code generator performs the constant-driven work that ``nvcc``'s
front end performs and that kernel specialization exploits:

* **Eager constant folding** — expressions whose operands are literals
  (after ``-D`` macro substitution) fold at lowering time, so specialized
  kernels never materialize their parameters.
* **Loop unrolling** — ``for`` loops whose bounds are compile-time
  constants (directly, or through ``const`` locals initialized from
  constants) are fully unrolled up to a budget, binding the induction
  variable to a constant in each copy.
* **Compile-time dead branch elimination** — ``if`` over a constant
  condition lowers only the taken arm.
* **Register blocking enablement** — local arrays indexed by unrolled
  induction variables end up with constant indices, letting the
  scalarization pass promote them to registers (NVIDIA GPUs cannot
  indirectly address the register file, so this requires fixed indices —
  §2.4 of the dissertation).

Device functions are force-inlined, as the dissertation's
``__forceinline__`` template utilities are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.kernelc import ast_nodes as A
from repro.kernelc import typesys as T
from repro.kernelc.ir import (ConstGlobal, Imm, Instr, IRKernel, IRModule,
                              Label, Operand, Reg, RegFactory, SharedDecl,
                              Special)


class CodegenError(Exception):
    """Raised on semantic errors (unknown identifiers, bad types...)."""


@dataclass
class CodegenOptions:
    """Front-end lowering options.

    Attributes:
        unroll: automatically unroll constant-trip-count loops.
        max_unroll: largest trip count eligible for full unrolling.
        fold: eagerly fold constant expressions (turning this off
            produces deliberately naive IR for testing the IR passes).
    """

    unroll: bool = True
    max_unroll: int = 4096
    fold: bool = True


# A variable binding: ('reg', Reg) | ('imm', Imm) | ('array', ArrayInfo)
@dataclass
class ArrayInfo:
    name: str
    elem: object
    count: int
    space: str  # shared | local | const
    base: int  # byte offset within its space


@dataclass
class _LoopCtx:
    break_label: str
    continue_label: str


class _FuncLowering:
    """Lowers one kernel (including everything inlined into it)."""

    def __init__(self, gen: "CodeGen", func: A.FuncDef):
        self.gen = gen
        self.func = func
        self.opts = gen.opts
        self.regs = RegFactory()
        self.body: List[Union[Instr, Label]] = []
        self.scopes: List[Dict[str, tuple]] = [{}]
        self.kernel = IRKernel(
            name=func.name,
            params=[(p.name, p.ctype) for p in func.params],
            launch_bounds=func.launch_bounds,
            line=func.line,
        )
        self._label_counter = 0
        self._shared_offset = 0
        self._local_offset = 0
        self._special_cache: Dict[str, Reg] = {}
        self._param_cache: Dict[str, Reg] = {}
        self._loops: List[_LoopCtx] = []
        self._exit_label = self._new_label("EXIT")
        self._inline_depth = 0
        # Inside an inlined device function, return jumps here and
        # writes this register.
        self._ret_stack: List[Tuple[str, Optional[Reg]]] = []

    # -- infrastructure ------------------------------------------------

    def emit(self, instr: Instr) -> Instr:
        self.body.append(instr)
        return instr

    def _new_label(self, stem: str = "L") -> str:
        self._label_counter += 1
        return f"${stem}_{self.func.name}_{self._label_counter}"

    def place(self, label: str) -> None:
        self.body.append(Label(label))

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def lookup(self, name: str):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def bind(self, name: str, binding: tuple) -> None:
        self.scopes[-1][name] = binding

    # -- entry ---------------------------------------------------------

    def lower(self) -> IRKernel:
        for param in self.func.params:
            self.bind(param.name, ("param", param))
        # Hoist parameter and special-register loads to the entry block
        # (as nvcc does) so they are never first-executed under a
        # divergent mask; DCE sweeps the unused ones.
        for param in self.func.params:
            reg = self.regs.new(param.ctype)
            self.emit(Instr("ld", param.ctype, reg, [Special(param.name)],
                            space="param", line=self.func.line))
            self._param_cache[param.name] = reg
        for axis in ("x", "y", "z"):
            for unit in ("tid", "ntid", "ctaid", "nctaid"):
                name = f"{unit}.{axis}"
                reg = self.regs.new(T.U32)
                self.emit(Instr("mov", T.U32, reg, [Special(name)],
                                line=self.func.line))
                self._special_cache[name] = reg
        for stmt in self.func.body:
            self.stmt(stmt)
        self.place(self._exit_label)
        self.emit(Instr("exit", T.VOID))
        self.kernel.body = self.body
        return self.kernel

    # -- statements ----------------------------------------------------

    def stmt(self, node: A.Stmt) -> None:
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is None:
            raise CodegenError(
                f"line {node.line}: cannot lower {type(node).__name__}")
        method(node)

    def _stmt_Block(self, node: A.Block) -> None:
        self.push_scope()
        for child in node.body:
            self.stmt(child)
        self.pop_scope()

    def _stmt_ExprStmt(self, node: A.ExprStmt) -> None:
        self.expr(node.expr)

    def _stmt_SyncThreads(self, node: A.SyncThreads) -> None:
        self.emit(Instr("bar", T.VOID, line=node.line))

    def _stmt_DeclStmt(self, node: A.DeclStmt) -> None:
        for name, ctype, array_size, init in node.decls:
            if array_size is not None:
                self._declare_array(node, name, ctype, array_size, init)
                continue
            init_op: Optional[Operand] = None
            if init is not None:
                if T.is_pointer(ctype):
                    # Pointer variables inherit the memory space of
                    # their initializer (e.g. 'float* p = sharedArr;').
                    probe, actual = self.expr(init)
                    if T.is_pointer(actual) and \
                            actual.space != ctype.space:
                        ctype = T.PointerType(ctype.pointee, actual.space)
                    init_op = self.coerce(probe, actual, ctype, node.line)
                else:
                    init_op = self.expr_as(init, ctype)
            if (node.const and isinstance(init_op, Imm)
                    and self.opts.fold):
                # Compile-time constant: participate in folding directly,
                # exactly like a specialized macro value would.
                self.bind(name, ("imm", Imm(init_op.value, ctype)))
                continue
            reg = self.regs.new(ctype)
            self.bind(name, ("reg", reg))
            if init_op is not None:
                self.emit(Instr("mov", ctype, reg, [init_op],
                                line=node.line))

    def _declare_array(self, node: A.DeclStmt, name, ctype, size_expr,
                       init) -> None:
        if init is not None:
            raise CodegenError(
                f"line {node.line}: array initializers are not supported")
        size_op = self.expr(size_expr)[0]
        if not isinstance(size_op, Imm):
            raise CodegenError(
                f"line {node.line}: array {name!r} needs a compile-time "
                "size — specialize the size parameter or keep it a macro")
        count = int(size_op.value)
        if count <= 0:
            raise CodegenError(
                f"line {node.line}: array {name!r} has non-positive size")
        align = ctype.size
        if node.shared:
            offset = _align(self._shared_offset, align)
            self._shared_offset = offset + count * ctype.size
            uname = self._unique_mem_name(name)
            self.kernel.shared[uname] = SharedDecl(uname, ctype, count,
                                                   offset)
            self.bind(name, ("array", ArrayInfo(uname, ctype, count,
                                                "shared", offset)))
        else:
            offset = _align(self._local_offset, align)
            self._local_offset = offset + count * ctype.size
            uname = self._unique_mem_name(name)
            self.kernel.local_arrays[uname] = SharedDecl(uname, ctype,
                                                         count, offset)
            self.bind(name, ("array", ArrayInfo(uname, ctype, count,
                                                "local", offset)))

    def _unique_mem_name(self, name: str) -> str:
        base = name
        i = 0
        existing = set(self.kernel.shared) | set(self.kernel.local_arrays)
        while name in existing:
            i += 1
            name = f"{base}${i}"
        return name

    def _stmt_If(self, node: A.If) -> None:
        pred = self.condition(node.cond)
        if isinstance(pred, Imm):
            branch = node.then if pred.value else node.other
            self.push_scope()
            for child in branch:
                self.stmt(child)
            self.pop_scope()
            return
        else_label = self._new_label("ELSE")
        end_label = self._new_label("ENDIF")
        target = else_label if node.other else end_label
        self.emit(Instr("bra", T.VOID, target=target, pred=pred,
                        pred_neg=True, line=node.line))
        self.push_scope()
        for child in node.then:
            self.stmt(child)
        self.pop_scope()
        if node.other:
            self.emit(Instr("bra", T.VOID, target=end_label))
            self.place(else_label)
            self.push_scope()
            for child in node.other:
                self.stmt(child)
            self.pop_scope()
        self.place(end_label)

    def _stmt_While(self, node: A.While) -> None:
        top = self._new_label("WHILE")
        end = self._new_label("ENDWHILE")
        self.place(top)
        pred = self.condition(node.cond)
        if isinstance(pred, Imm):
            if not pred.value:
                self.place(end)
                return
        else:
            self.emit(Instr("bra", T.VOID, target=end, pred=pred,
                            pred_neg=True, line=node.line))
        self._loops.append(_LoopCtx(end, top))
        self.push_scope()
        for child in node.body:
            self.stmt(child)
        self.pop_scope()
        self._loops.pop()
        self.emit(Instr("bra", T.VOID, target=top))
        self.place(end)

    def _stmt_DoWhile(self, node: A.DoWhile) -> None:
        top = self._new_label("DO")
        cond_label = self._new_label("DOCOND")
        end = self._new_label("ENDDO")
        self.place(top)
        self._loops.append(_LoopCtx(end, cond_label))
        self.push_scope()
        for child in node.body:
            self.stmt(child)
        self.pop_scope()
        self._loops.pop()
        self.place(cond_label)
        pred = self.condition(node.cond)
        if isinstance(pred, Imm):
            if pred.value:
                self.emit(Instr("bra", T.VOID, target=top))
        else:
            self.emit(Instr("bra", T.VOID, target=top, pred=pred,
                            line=node.line))
        self.place(end)

    def _stmt_For(self, node: A.For) -> None:
        if self._try_unroll(node):
            return
        self.push_scope()
        if node.init is not None:
            self.stmt(node.init)
        top = self._new_label("FOR")
        step_label = self._new_label("FORSTEP")
        end = self._new_label("ENDFOR")
        self.place(top)
        if node.cond is not None:
            pred = self.condition(node.cond)
            if isinstance(pred, Imm):
                if not pred.value:
                    self.place(end)
                    self.pop_scope()
                    return
            else:
                self.emit(Instr("bra", T.VOID, target=end, pred=pred,
                                pred_neg=True, line=node.line))
        self._loops.append(_LoopCtx(end, step_label))
        self.push_scope()
        for child in node.body:
            self.stmt(child)
        self.pop_scope()
        self._loops.pop()
        self.place(step_label)
        if node.step is not None:
            self.expr(node.step)
        self.emit(Instr("bra", T.VOID, target=top))
        self.place(end)
        self.pop_scope()

    # -- loop unrolling --------------------------------------------

    def _try_unroll(self, node: A.For) -> bool:
        """Fully unroll a constant-trip-count counted loop.

        Requires the canonical shape ``for (int i = C0; i CMP C1; STEP)``
        with all of C0/C1/STEP folding to constants at this point, no
        writes to ``i`` in the body, and no ``break``/``continue``.
        This is exactly the condition under which nvcc can unroll — and
        what specialization restores when the bounds come from ``-D``
        macros (§2.4, §4).
        """
        if not self.opts.unroll or node.unroll == 0:
            return False
        plan = self._unroll_plan(node)
        if plan is None:
            return False
        var, ctype, values = plan
        limit = (self.opts.max_unroll if node.unroll in (None, -1)
                 else max(node.unroll, 1))
        if len(values) > limit:
            return False
        self.push_scope()
        for value in values:
            self.push_scope()
            self.bind(var, ("imm", Imm(T.convert_const(value, ctype),
                                       ctype)))
            for child in node.body:
                self.stmt(child)
            self.pop_scope()
        self.pop_scope()
        return True

    def _unroll_plan(self, node: A.For):
        init = node.init
        var = None
        ctype = T.S32
        start = None
        if isinstance(init, A.DeclStmt) and len(init.decls) == 1:
            name, dtype, array_size, init_expr = init.decls[0]
            if array_size is not None or init_expr is None:
                return None
            if not (hasattr(dtype, "is_integer") and dtype.is_integer):
                return None
            start = self._fold_const(init_expr)
            var, ctype = name, dtype
        elif isinstance(init, A.ExprStmt) and \
                isinstance(init.expr, A.Assign) and not init.expr.op and \
                isinstance(init.expr.target, A.Ident):
            # for (i = C; ...) over an existing variable: only safe when
            # the variable is dead after the loop; be conservative.
            return None
        else:
            return None
        if start is None or var is None:
            return None
        cond = node.cond
        if not (isinstance(cond, A.Binary)
                and cond.op in ("<", "<=", ">", ">=", "!=")
                and isinstance(cond.left, A.Ident)
                and cond.left.name == var):
            return None
        bound = self._fold_const(cond.right)
        if bound is None:
            return None
        step = node.step
        delta = None
        if isinstance(step, A.IncDec) and isinstance(step.target, A.Ident) \
                and step.target.name == var:
            delta = 1 if step.op == "++" else -1
        elif isinstance(step, A.Assign) and step.op in ("+", "-") and \
                isinstance(step.target, A.Ident) and \
                step.target.name == var:
            d = self._fold_const(step.value)
            if d is None or d == 0:
                return None
            delta = d if step.op == "+" else -d
        if delta is None or delta == 0:
            return None
        if _writes_var(node.body, var) or _has_loop_escape(node.body):
            return None
        values: List[int] = []
        i = int(start)
        bound = int(bound)
        cmp = cond.op
        guard = 0
        while guard <= self.opts.max_unroll:
            ok = {"<": i < bound, "<=": i <= bound, ">": i > bound,
                  ">=": i >= bound, "!=": i != bound}[cmp]
            if not ok:
                break
            values.append(i)
            i += delta
            guard += 1
        else:
            return None
        return var, ctype, values

    def _fold_const(self, expr: A.Expr) -> Optional[int]:
        """Evaluate *expr* to an integer without emitting code, or None.

        Speculative: any instructions emitted while probing are rolled
        back, along with cache entries they would have defined.
        """
        mark = len(self.body)
        special_snapshot = dict(self._special_cache)
        param_snapshot = dict(self._param_cache)
        try:
            op, _ = self.expr(expr)
        except CodegenError:
            op = None
        if isinstance(op, Imm) and len(self.body) == mark:
            return int(op.value)
        del self.body[mark:]
        self._special_cache = special_snapshot
        self._param_cache = param_snapshot
        return None

    # -- jumps -----------------------------------------------------

    def _stmt_Break(self, node: A.Break) -> None:
        if not self._loops:
            raise CodegenError(f"line {node.line}: break outside a loop")
        self.emit(Instr("bra", T.VOID, target=self._loops[-1].break_label,
                        line=node.line))

    def _stmt_Continue(self, node: A.Continue) -> None:
        if not self._loops:
            raise CodegenError(f"line {node.line}: continue outside a loop")
        self.emit(Instr("bra", T.VOID,
                        target=self._loops[-1].continue_label,
                        line=node.line))

    def _stmt_Return(self, node: A.Return) -> None:
        if self._ret_stack:
            label, reg = self._ret_stack[-1]
            if node.value is not None:
                if reg is None:
                    raise CodegenError(
                        f"line {node.line}: void function returns a value")
                value = self.expr_as(node.value, reg.ctype)
                self.emit(Instr("mov", reg.ctype, reg, [value],
                                line=node.line))
            self.emit(Instr("bra", T.VOID, target=label, line=node.line))
        else:
            if node.value is not None:
                raise CodegenError(
                    f"line {node.line}: kernels return void")
            self.emit(Instr("bra", T.VOID, target=self._exit_label,
                            line=node.line))

    # -- expressions -----------------------------------------------

    def expr(self, node: A.Expr) -> Tuple[Operand, object]:
        method = getattr(self, f"_expr_{type(node).__name__}", None)
        if method is None:
            raise CodegenError(
                f"line {node.line}: cannot lower expression "
                f"{type(node).__name__}")
        return method(node)

    def expr_as(self, node: A.Expr, ctype) -> Operand:
        op, actual = self.expr(node)
        return self.coerce(op, actual, ctype, node.line)

    def coerce(self, op: Operand, from_t, to_t, line: int = 0) -> Operand:
        if from_t == to_t:
            return op
        if isinstance(op, Imm):
            return Imm(T.convert_const(op.value, to_t), to_t)
        if T.is_pointer(from_t) and T.is_pointer(to_t):
            # Pointer reinterpretation is free.
            return Reg(op.name, to_t) if isinstance(op, Reg) else op
        dst = self.regs.new(to_t)
        self.emit(Instr("cvt", to_t, dst, [op], cmp=_cvt_tag(from_t),
                        line=line))
        return dst

    def _expr_IntLit(self, node: A.IntLit):
        return Imm(T.convert_const(node.value, node.ctype),
                   node.ctype), node.ctype

    def _expr_FloatLit(self, node: A.FloatLit):
        return Imm(T.convert_const(node.value, node.ctype),
                   node.ctype), node.ctype

    def _expr_BoolLit(self, node: A.BoolLit):
        return Imm(node.value, T.BOOL), T.BOOL

    def _expr_BuiltinVar(self, node: A.BuiltinVar):
        if node.name == "warpSize":
            return Imm(32, T.S32), T.S32
        reg = self._special_cache.get(node.name)
        if reg is None:
            reg = self.regs.new(T.U32)
            self.emit(Instr("mov", T.U32, reg, [Special(node.name)],
                            line=node.line))
            self._special_cache[node.name] = reg
        return reg, T.U32

    def _expr_Ident(self, node: A.Ident):
        if node.name == "warpSize":
            return Imm(32, T.S32), T.S32
        binding = self.lookup(node.name)
        if binding is None:
            const = self.gen.const_globals.get(node.name)
            if const is not None:
                ptr_t = T.PointerType(const.ctype, "const")
                return Imm(const.offset, ptr_t), ptr_t
            raise CodegenError(
                f"line {node.line}: unknown identifier {node.name!r} — "
                "if this is a specialization constant, pass it via "
                "defines=...")
        kind = binding[0]
        if kind == "imm":
            imm = binding[1]
            return imm, imm.ctype
        if kind == "reg":
            reg = binding[1]
            return reg, reg.ctype
        if kind == "param":
            param = binding[1]
            reg = self._param_cache.get(param.name)
            if reg is None:
                reg = self.regs.new(param.ctype)
                self.emit(Instr("ld", param.ctype, reg,
                                [Special(param.name)], space="param",
                                line=node.line))
                self._param_cache[param.name] = reg
            return reg, param.ctype
        if kind == "array":
            info: ArrayInfo = binding[1]
            ptr_t = T.PointerType(info.elem, info.space)
            return Imm(info.base, ptr_t), ptr_t
        raise CodegenError(f"line {node.line}: bad binding for "
                           f"{node.name!r}")

    def _expr_Cast(self, node: A.Cast):
        op, from_t = self.expr(node.operand)
        to_t = node.ctype
        if T.is_pointer(to_t) and not T.is_pointer(from_t):
            # int -> pointer (specialized pointer constants, §4 fn 1)
            if isinstance(op, Imm):
                return Imm(int(op.value) & ((1 << 64) - 1), to_t), to_t
            op64 = self.coerce(op, from_t, T.U64, node.line)
            reg = (Reg(op64.name, to_t) if isinstance(op64, Reg)
                   else Imm(op64.value, to_t))
            return reg, to_t
        if T.is_pointer(from_t) and not T.is_pointer(to_t):
            return self.coerce(op, T.U64, to_t, node.line), to_t
        return self.coerce(op, from_t, to_t, node.line), to_t

    def _expr_Comma(self, node: A.Comma):
        result: Tuple[Operand, object] = (Imm(0, T.S32), T.S32)
        for part in node.parts:
            result = self.expr(part)
        return result

    # -- unary -------------------------------------------------------

    def _expr_Unary(self, node: A.Unary):
        if node.op == "*":
            ptr, ptr_t = self.expr(node.operand)
            return self._load(ptr, ptr_t, node.line)
        if node.op == "&":
            return self._address_of(node.operand)
        op, ctype = self.expr(node.operand)
        if node.op == "!":
            pred = self._to_pred(op, ctype, node.line)
            if isinstance(pred, Imm):
                return Imm(not pred.value, T.BOOL), T.BOOL
            dst = self.regs.new(T.BOOL)
            self.emit(Instr("not", T.BOOL, dst, [pred], line=node.line))
            return dst, T.BOOL
        if ctype.is_bool:
            op = self.coerce(op, ctype, T.S32, node.line)
            ctype = T.S32
        elif ctype.is_integer and ctype.bits < 32:
            op = self.coerce(op, ctype, T.S32, node.line)
            ctype = T.S32
        if isinstance(op, Imm):
            value = -op.value if node.op == "-" else ~int(op.value)
            return Imm(T.convert_const(value, ctype), ctype), ctype
        dst = self.regs.new(ctype)
        self.emit(Instr("neg" if node.op == "-" else "not", ctype, dst,
                        [op], line=node.line))
        return dst, ctype

    def _address_of(self, node: A.Expr):
        if isinstance(node, A.Index):
            ptr, elem_t, space = self._index_address(node)
            return ptr, (ptr.ctype if isinstance(ptr, (Imm, Reg))
                         else T.PointerType(elem_t, space))
        if isinstance(node, A.Ident):
            op, ctype = self.expr(node)
            if T.is_pointer(ctype):
                return op, ctype
        raise CodegenError(
            f"line {node.line}: '&' is only supported on array elements")

    # -- binary ------------------------------------------------------

    def _expr_Binary(self, node: A.Binary):
        if node.op in ("&&", "||"):
            return self._logical(node)
        if node.op in ("==", "!=", "<", "<=", ">", ">="):
            return self._compare(node)
        lhs, lt = self.expr(node.left)
        rhs, rt = self.expr(node.right)
        return self._arith(node.op, lhs, lt, rhs, rt, node.line)

    def _arith(self, op: str, lhs, lt, rhs, rt, line):
        # Pointer arithmetic: scale the integer side by the element size.
        if T.is_pointer(lt) or T.is_pointer(rt):
            return self._pointer_arith(op, lhs, lt, rhs, rt, line)
        ctype = T.common_type(lt, rt)
        lhs = self.coerce(lhs, lt, ctype, line)
        rhs = self.coerce(rhs, rt, ctype, line)
        if isinstance(lhs, Imm) and isinstance(rhs, Imm) and self.opts.fold:
            folded = fold_binary(op, lhs.value, rhs.value, ctype)
            if folded is not None:
                return Imm(folded, ctype), ctype
        opcode = {"+": "add", "-": "sub", "*": "mul", "/": "div",
                  "%": "rem", "&": "and", "|": "or", "^": "xor",
                  "<<": "shl", ">>": "shr"}[op]
        dst = self.regs.new(ctype)
        self.emit(Instr(opcode, ctype, dst, [lhs, rhs], line=line))
        return dst, ctype

    def _pointer_arith(self, op, lhs, lt, rhs, rt, line):
        if op not in ("+", "-"):
            raise CodegenError(f"line {line}: bad pointer operator {op!r}")
        if T.is_pointer(lt) and T.is_pointer(rt):
            if op != "-":
                raise CodegenError(f"line {line}: pointer + pointer")
            diff, _ = self._arith("-", self.coerce(lhs, lt, T.S64, line),
                                  T.S64, self.coerce(rhs, rt, T.S64, line),
                                  T.S64, line)
            size = lt.pointee.size
            return self._arith("/", diff, T.S64, Imm(size, T.S64), T.S64,
                               line)
        if T.is_pointer(rt):  # int + ptr
            lhs, lt, rhs, rt = rhs, rt, lhs, lt
            if op == "-":
                raise CodegenError(f"line {line}: int - pointer")
        size = lt.pointee.size
        scaled, _ = self._arith("*", rhs, rt, Imm(size, T.S64), T.S64, line)
        offset = self.coerce(scaled, T.S64, T.U64, line)
        if isinstance(lhs, Imm) and isinstance(offset, Imm) \
                and self.opts.fold:
            base = int(lhs.value)
            delta = int(offset.value)
            value = base + delta if op == "+" else base - delta
            return Imm(value & ((1 << 64) - 1), lt), lt
        dst = self.regs.new(lt)
        lhs64 = lhs if isinstance(lhs, (Reg, Imm)) else lhs
        self.emit(Instr("add" if op == "+" else "sub", lt, dst,
                        [lhs64, offset], line=line))
        return dst, lt

    def _compare(self, node: A.Binary):
        lhs, lt = self.expr(node.left)
        rhs, rt = self.expr(node.right)
        if T.is_pointer(lt) or T.is_pointer(rt):
            ctype = T.U64
        else:
            ctype = T.common_type(lt, rt)
        lhs = self.coerce(lhs, lt, ctype, node.line)
        rhs = self.coerce(rhs, rt, ctype, node.line)
        cmp = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt",
               ">=": "ge"}[node.op]
        if isinstance(lhs, Imm) and isinstance(rhs, Imm) and self.opts.fold:
            result = {"eq": lhs.value == rhs.value,
                      "ne": lhs.value != rhs.value,
                      "lt": lhs.value < rhs.value,
                      "le": lhs.value <= rhs.value,
                      "gt": lhs.value > rhs.value,
                      "ge": lhs.value >= rhs.value}[cmp]
            return Imm(bool(result), T.BOOL), T.BOOL
        dst = self.regs.new(T.BOOL)
        self.emit(Instr("setp", ctype, dst, [lhs, rhs], cmp=cmp,
                        line=node.line))
        return dst, T.BOOL

    def _logical(self, node: A.Binary):
        lhs = self.condition(node.left)
        if isinstance(lhs, Imm):
            if node.op == "&&" and not lhs.value:
                return Imm(False, T.BOOL), T.BOOL
            if node.op == "||" and lhs.value:
                return Imm(True, T.BOOL), T.BOOL
            return self.condition(node.right), T.BOOL
        # Both sides of the kernels' conditions are side-effect free;
        # lower without branching (predicate logic), as nvcc does.
        rhs = self.condition(node.right)
        if isinstance(rhs, Imm):
            if node.op == "&&":
                return (lhs, T.BOOL) if rhs.value \
                    else (Imm(False, T.BOOL), T.BOOL)
            return (lhs, T.BOOL) if not rhs.value \
                else (Imm(True, T.BOOL), T.BOOL)
        dst = self.regs.new(T.BOOL)
        self.emit(Instr("and" if node.op == "&&" else "or", T.BOOL, dst,
                        [lhs, rhs], line=node.line))
        return dst, T.BOOL

    def condition(self, node: A.Expr):
        """Lower *node* as a branch condition → predicate Reg or Imm."""
        op, ctype = self.expr(node)
        return self._to_pred(op, ctype, node.line)

    def _to_pred(self, op: Operand, ctype, line):
        if ctype.is_bool:
            if isinstance(op, Imm):
                return Imm(bool(op.value), T.BOOL)
            return op
        if isinstance(op, Imm):
            return Imm(bool(op.value), T.BOOL)
        dst = self.regs.new(T.BOOL)
        zero = Imm(T.convert_const(0, ctype), ctype)
        self.emit(Instr("setp", ctype, dst, [op, zero], cmp="ne",
                        line=line))
        return dst

    def _expr_Ternary(self, node: A.Ternary):
        pred = self.condition(node.cond)
        if isinstance(pred, Imm):
            return self.expr(node.then if pred.value else node.other)
        if _is_pure_expr(node.then) and _is_pure_expr(node.other):
            then_op, then_t = self.expr(node.then)
            other_op, other_t = self.expr(node.other)
            ctype = T.common_type(then_t, other_t)
            then_op = self.coerce(then_op, then_t, ctype, node.line)
            other_op = self.coerce(other_op, other_t, ctype, node.line)
            dst = self.regs.new(ctype)
            self.emit(Instr("selp", ctype, dst, [then_op, other_op, pred],
                            line=node.line))
            return dst, ctype
        # Side effects: lower with control flow into a temporary.
        else_label = self._new_label("TELSE")
        end_label = self._new_label("TEND")
        self.emit(Instr("bra", T.VOID, target=else_label, pred=pred,
                        pred_neg=True, line=node.line))
        then_op, then_t = self.expr(node.then)
        result = self.regs.new(then_t)
        self.emit(Instr("mov", then_t, result, [then_op], line=node.line))
        self.emit(Instr("bra", T.VOID, target=end_label))
        self.place(else_label)
        other_op = self.expr_as(node.other, then_t)
        self.emit(Instr("mov", then_t, result, [other_op], line=node.line))
        self.place(end_label)
        return result, then_t

    # -- assignment ----------------------------------------------------

    def _expr_Assign(self, node: A.Assign):
        target = node.target
        if isinstance(target, A.Ident):
            return self._assign_var(node, target)
        if isinstance(target, A.Index):
            return self._assign_index(node, target)
        if isinstance(target, A.Unary) and target.op == "*":
            ptr, ptr_t = self.expr(target.operand)
            return self._assign_mem(node, ptr, ptr_t)
        raise CodegenError(
            f"line {node.line}: unsupported assignment target")

    def _assign_var(self, node: A.Assign, target: A.Ident):
        binding = self.lookup(target.name)
        if binding is None:
            raise CodegenError(
                f"line {node.line}: unknown identifier {target.name!r}")
        kind = binding[0]
        if kind == "imm":
            raise CodegenError(
                f"line {node.line}: cannot assign to compile-time "
                f"constant {target.name!r}")
        if kind == "param":
            # Writing a parameter: promote it to a mutable register.
            param = binding[1]
            current, ctype = self._expr_Ident(target)
            reg = self.regs.new(param.ctype)
            self.emit(Instr("mov", param.ctype, reg, [current],
                            line=node.line))
            self._rebind(target.name, ("reg", reg))
            binding = ("reg", reg)
            kind = "reg"
        if kind != "reg":
            raise CodegenError(
                f"line {node.line}: cannot assign to {target.name!r}")
        reg: Reg = binding[1]
        if node.op:
            lhs, lt = reg, reg.ctype
            rhs, rt = self.expr(node.value)
            value, vt = self._arith(node.op, lhs, lt, rhs, rt, node.line)
            value = self.coerce(value, vt, reg.ctype, node.line)
        else:
            value = self.expr_as(node.value, reg.ctype)
        self.emit(Instr("mov", reg.ctype, reg, [value], line=node.line))
        return reg, reg.ctype

    def _rebind(self, name: str, binding: tuple) -> None:
        for scope in reversed(self.scopes):
            if name in scope:
                scope[name] = binding
                return
        self.scopes[-1][name] = binding

    def _assign_index(self, node: A.Assign, target: A.Index):
        ptr, elem_t, space = self._index_address(target)
        return self._store_through(node, ptr, elem_t, space)

    def _assign_mem(self, node: A.Assign, ptr, ptr_t):
        if not T.is_pointer(ptr_t):
            raise CodegenError(
                f"line {node.line}: dereferencing a non-pointer")
        return self._store_through(node, ptr, ptr_t.pointee, ptr_t.space)

    def _store_through(self, node: A.Assign, ptr, elem_t, space):
        if node.op:
            old = self.regs.new(elem_t)
            self.emit(Instr("ld", elem_t, old, [ptr], space=space,
                            line=node.line))
            rhs, rt = self.expr(node.value)
            value, vt = self._arith(node.op, old, elem_t, rhs, rt,
                                    node.line)
            value = self.coerce(value, vt, elem_t, node.line)
        else:
            value = self.expr_as(node.value, elem_t)
        self.emit(Instr("st", elem_t, None, [ptr, value], space=space,
                        line=node.line))
        return value, elem_t

    def _expr_IncDec(self, node: A.IncDec):
        delta = A.IntLit(line=node.line, value=1)
        op = "+" if node.op == "++" else "-"
        if node.prefix:
            return self._expr_Assign(
                A.Assign(line=node.line, target=node.target, value=delta,
                         op=op))
        # Postfix: capture old value first.
        old_op, ctype = self.expr(node.target)
        old = self.regs.new(ctype)
        self.emit(Instr("mov", ctype, old, [old_op], line=node.line))
        self._expr_Assign(A.Assign(line=node.line, target=node.target,
                                   value=delta, op=op))
        return old, ctype

    # -- memory ----------------------------------------------------

    def _expr_Index(self, node: A.Index):
        ptr, elem_t, space = self._index_address(node)
        return self._load_elem(ptr, elem_t, space, node.line)

    def _index_address(self, node: A.Index):
        base, base_t = self.expr(node.base)
        if not T.is_pointer(base_t):
            raise CodegenError(
                f"line {node.line}: indexing a non-pointer")
        idx, idx_t = self.expr(node.index)
        ptr, ptr_t = self._pointer_arith("+", base, base_t, idx, idx_t,
                                         node.line)
        return ptr, base_t.pointee, base_t.space

    def _load(self, ptr, ptr_t, line):
        if not T.is_pointer(ptr_t):
            raise CodegenError(f"line {line}: dereferencing a non-pointer")
        return self._load_elem(ptr, ptr_t.pointee, ptr_t.space, line)

    def _load_elem(self, ptr, elem_t, space, line):
        dst = self.regs.new(elem_t)
        self.emit(Instr("ld", elem_t, dst, [ptr], space=space, line=line))
        return dst, elem_t

    # -- calls -----------------------------------------------------

    _MATH_1 = {
        "sqrtf": ("sqrt", T.F32), "sqrt": ("sqrt", T.F64),
        "rsqrtf": ("rsqrt", T.F32),
        "fabsf": ("abs", T.F32), "fabs": ("abs", T.F64),
        "abs": ("abs", T.S32),
        "floorf": ("floor", T.F32), "floor": ("floor", T.F64),
        "ceilf": ("ceil", T.F32), "ceil": ("ceil", T.F64),
        "truncf": ("trunc", T.F32),
        "rintf": ("round", T.F32), "roundf": ("round", T.F32),
        "__expf": ("exp2", T.F32), "expf": ("exp2", T.F32),
        "__logf": ("lg2", T.F32), "logf": ("lg2", T.F32),
        "__sinf": ("sin", T.F32), "sinf": ("sin", T.F32),
        "__cosf": ("cos", T.F32), "cosf": ("cos", T.F32),
    }

    def _expr_Call(self, node: A.Call):
        name = node.name
        if name in self._MATH_1 and len(node.args) == 1:
            opcode, ctype = self._MATH_1[name]
            arg = self.expr_as(node.args[0], ctype)
            if isinstance(arg, Imm) and self.opts.fold:
                folded = fold_unary_math(opcode, arg.value, ctype)
                if folded is not None:
                    return Imm(folded, ctype), ctype
            dst = self.regs.new(ctype)
            self.emit(Instr(opcode, ctype, dst, [arg], line=node.line))
            return dst, ctype
        if name in ("min", "max", "fminf", "fmaxf", "umin", "umax") \
                and len(node.args) == 2:
            return self._minmax(node)
        if name in ("__mul24", "__umul24") and len(node.args) == 2:
            ctype = T.S32 if name == "__mul24" else T.U32
            lhs = self.expr_as(node.args[0], ctype)
            rhs = self.expr_as(node.args[1], ctype)
            if isinstance(lhs, Imm) and isinstance(rhs, Imm) \
                    and self.opts.fold:
                folded = fold_binary("*", lhs.value, rhs.value, ctype)
                return Imm(folded, ctype), ctype
            dst = self.regs.new(ctype)
            self.emit(Instr("mul24", ctype, dst, [lhs, rhs],
                            line=node.line))
            return dst, ctype
        if name == "__fdividef" and len(node.args) == 2:
            lhs = self.expr_as(node.args[0], T.F32)
            rhs = self.expr_as(node.args[1], T.F32)
            dst = self.regs.new(T.F32)
            self.emit(Instr("div", T.F32, dst, [lhs, rhs], cmp="approx",
                            line=node.line))
            return dst, T.F32
        if name == "__fmaf_rn" or name == "fmaf":
            a = self.expr_as(node.args[0], T.F32)
            b = self.expr_as(node.args[1], T.F32)
            c = self.expr_as(node.args[2], T.F32)
            dst = self.regs.new(T.F32)
            self.emit(Instr("fma", T.F32, dst, [a, b, c], line=node.line))
            return dst, T.F32
        if name == "atomicAdd" and len(node.args) == 2:
            ptr, ptr_t = self.expr(node.args[0])
            if not T.is_pointer(ptr_t):
                raise CodegenError(
                    f"line {node.line}: atomicAdd needs a pointer")
            value = self.expr_as(node.args[1], ptr_t.pointee)
            dst = self.regs.new(ptr_t.pointee)
            self.emit(Instr("atom", ptr_t.pointee, dst, [ptr, value],
                            cmp="add", space=ptr_t.space, line=node.line))
            return dst, ptr_t.pointee
        if name == "__float2int_rn":
            arg = self.expr_as(node.args[0], T.F32)
            dst = self.regs.new(T.S32)
            self.emit(Instr("cvt", T.S32, dst, [arg], cmp="f32.rn",
                            line=node.line))
            return dst, T.S32
        if name == "__saturatef":
            arg = self.expr_as(node.args[0], T.F32)
            lo, _ = self._minmax_op("max", arg, Imm(0.0, T.F32), T.F32,
                                    node.line)
            return self._minmax_op("min", lo, Imm(1.0, T.F32), T.F32,
                                   node.line)
        if name in ("tex1Dfetch", "tex2D"):
            return self._texture_fetch(node)
        device_fn = self.gen.device_functions.get(name)
        if device_fn is not None:
            return self._inline_call(node, device_fn)
        raise CodegenError(
            f"line {node.line}: unknown function {name!r}")

    def _texture_fetch(self, node: A.Call):
        """tex1Dfetch(ref, i) / tex2D(ref, x, y) — §4's texture path."""
        if not node.args or not isinstance(node.args[0], A.Ident):
            raise CodegenError(
                f"line {node.line}: first argument of {node.name} must "
                "name a texture reference")
        tex_name = node.args[0].name
        decl = self.gen.textures.get(tex_name)
        if decl is None:
            raise CodegenError(
                f"line {node.line}: unknown texture {tex_name!r}")
        want_dims = 1 if node.name == "tex1Dfetch" else 2
        if decl.dims != want_dims:
            raise CodegenError(
                f"line {node.line}: texture {tex_name!r} is "
                f"{decl.dims}D; {node.name} needs {want_dims}D")
        if len(node.args) != 1 + want_dims:
            raise CodegenError(
                f"line {node.line}: {node.name} expects "
                f"{1 + want_dims} arguments")
        coord_t = T.S32 if node.name == "tex1Dfetch" else T.F32
        coords = [self.expr_as(a, coord_t) for a in node.args[1:]]
        dst = self.regs.new(decl.ctype)
        self.emit(Instr("tex", decl.ctype, dst,
                        [Special(tex_name)] + coords, space="tex",
                        cmp=f"{want_dims}d", line=node.line))
        return dst, decl.ctype

    def _minmax(self, node: A.Call):
        lhs, lt = self.expr(node.args[0])
        rhs, rt = self.expr(node.args[1])
        if node.name in ("fminf", "fmaxf"):
            ctype = T.F32
        elif node.name in ("umin", "umax"):
            ctype = T.U32
        else:
            ctype = T.common_type(lt, rt)
        lhs = self.coerce(lhs, lt, ctype, node.line)
        rhs = self.coerce(rhs, rt, ctype, node.line)
        op = "min" if "min" in node.name else "max"
        return self._minmax_op(op, lhs, rhs, ctype, node.line)

    def _minmax_op(self, op, lhs, rhs, ctype, line):
        if isinstance(lhs, Imm) and isinstance(rhs, Imm) and self.opts.fold:
            value = (min if op == "min" else max)(lhs.value, rhs.value)
            return Imm(T.convert_const(value, ctype), ctype), ctype
        dst = self.regs.new(ctype)
        self.emit(Instr(op, ctype, dst, [lhs, rhs], line=line))
        return dst, ctype

    def _inline_call(self, node: A.Call, fn: A.FuncDef):
        if self._inline_depth > 32:
            raise CodegenError(
                f"line {node.line}: device-function inlining too deep "
                f"(recursion in {fn.name!r}?)")
        if len(node.args) != len(fn.params):
            raise CodegenError(
                f"line {node.line}: {fn.name!r} expects "
                f"{len(fn.params)} arguments, got {len(node.args)}")
        if len(node.template_args) != len(fn.template_params):
            raise CodegenError(
                f"line {node.line}: {fn.name!r} expects "
                f"{len(fn.template_params)} template arguments, got "
                f"{len(node.template_args)}")
        self._inline_depth += 1
        self.push_scope()
        # Template parameters bind to compile-time constants — that is
        # their whole point (the §4 C++-template specialization route).
        for tname, targ in zip(fn.template_params, node.template_args):
            op, actual = self.expr(targ)
            if not isinstance(op, Imm):
                raise CodegenError(
                    f"line {node.line}: template argument {tname!r} of "
                    f"{fn.name!r} must be a compile-time constant")
            self.bind(tname, ("imm", op))
        for param, arg in zip(fn.params, node.args):
            op, actual = self.expr(arg)
            op = self.coerce(op, actual, param.ctype, node.line)
            if isinstance(op, Imm):
                self.bind(param.name, ("imm", op))
            else:
                reg = self.regs.new(param.ctype)
                self.emit(Instr("mov", param.ctype, reg, [op],
                                line=node.line))
                self.bind(param.name, ("reg", reg))
        ret_label = self._new_label(f"RET_{fn.name}")
        ret_reg = (None if fn.return_type.is_void
                   else self.regs.new(fn.return_type))
        self._ret_stack.append((ret_label, ret_reg))
        for stmt in fn.body:
            self.stmt(stmt)
        self._ret_stack.pop()
        self.place(ret_label)
        self.pop_scope()
        self._inline_depth -= 1
        if ret_reg is None:
            return Imm(0, T.S32), T.S32
        return ret_reg, fn.return_type


# ----------------------------------------------------------------------
# Module driver


class CodeGen:
    """Lowers a translation unit to an :class:`IRModule`."""

    def __init__(self, unit: A.TranslationUnit,
                 opts: Optional[CodegenOptions] = None):
        self.unit = unit
        self.opts = opts or CodegenOptions()
        self.device_functions: Dict[str, A.FuncDef] = {}
        self.const_globals: Dict[str, ConstGlobal] = {}
        self.textures = {t.name: t for t in unit.textures}

    def run(self) -> IRModule:
        from repro.kernelc.ir import TextureRef

        module = IRModule()
        for t in self.unit.textures:
            module.textures[t.name] = TextureRef(t.name, t.ctype,
                                                 t.dims)
        offset = 0
        for g in self.unit.globals:
            count = g.array_size if g.array_size is not None else 1
            ctype = g.ctype
            if T.is_pointer(ctype):
                raise CodegenError(
                    f"line {g.line}: pointer-typed constant globals are "
                    "not supported")
            offset = _align(offset, ctype.size)
            decl = ConstGlobal(g.name, ctype, count, offset)
            offset += decl.nbytes
            self.const_globals[g.name] = decl
            module.const_globals[g.name] = decl
        for fn in self.unit.functions:
            if not fn.is_kernel:
                self.device_functions[fn.name] = fn
        for fn in self.unit.functions:
            if fn.is_kernel:
                module.kernels[fn.name] = _FuncLowering(self, fn).lower()
        return module


# ----------------------------------------------------------------------
# Constant folding helpers (shared with the IR passes)


def fold_binary(op: str, a, b, ctype):
    """Fold a binary operation over Python-domain constants.

    Returns the folded value in the value domain of *ctype*, or ``None``
    when the operation is undefined (division by zero) — callers then
    emit the instruction and let the hardware produce its garbage.
    """
    try:
        if op == "+":
            value = a + b
        elif op == "-":
            value = a - b
        elif op == "*":
            value = a * b
        elif op == "/":
            if ctype.is_integer:
                if b == 0:
                    return None
                q = abs(a) // abs(b)
                value = q if (a >= 0) == (b >= 0) else -q
            else:
                if b == 0:
                    value = float("inf") if a > 0 else (
                        float("-inf") if a < 0 else float("nan"))
                else:
                    value = a / b
        elif op == "%":
            if b == 0:
                return None
            q = abs(a) // abs(b)
            q = q if (a >= 0) == (b >= 0) else -q
            value = a - q * b
        elif op == "&":
            value = int(a) & int(b)
        elif op == "|":
            value = int(a) | int(b)
        elif op == "^":
            value = int(a) ^ int(b)
        elif op == "<<":
            value = int(a) << (int(b) & (ctype.bits - 1))
        elif op == ">>":
            shift = int(b) & (ctype.bits - 1)
            if ctype.signed:
                value = int(a) >> shift
            else:
                mask = (1 << ctype.bits) - 1
                value = (int(a) & mask) >> shift
        else:
            return None
    except (OverflowError, ValueError):
        return None
    return T.convert_const(value, ctype)


def fold_unary_math(opcode: str, value, ctype):
    """Fold single-argument math ops used by the builtin table."""
    import math

    try:
        if opcode == "sqrt":
            result = math.sqrt(value)
        elif opcode == "rsqrt":
            result = 1.0 / math.sqrt(value)
        elif opcode == "abs":
            result = abs(value)
        elif opcode == "floor":
            result = math.floor(value)
        elif opcode == "ceil":
            result = math.ceil(value)
        elif opcode == "round":
            result = round(value)
        elif opcode == "trunc":
            result = math.trunc(value)
        else:
            return None
    except (ValueError, OverflowError):
        return None
    return T.convert_const(result, ctype)


def _align(offset: int, align: int) -> int:
    return (offset + align - 1) // align * align


def _cvt_tag(from_t) -> str:
    """Source-type tag recorded on cvt instructions."""
    if T.is_pointer(from_t):
        return "u64"
    return from_t.ptx_suffix().lstrip(".")


def _is_pure_expr(node: A.Expr) -> bool:
    """True when evaluating *node* has no side effects."""
    if isinstance(node, (A.IntLit, A.FloatLit, A.BoolLit, A.Ident,
                         A.BuiltinVar)):
        return True
    if isinstance(node, (A.Assign, A.IncDec)):
        return False
    if isinstance(node, A.Unary):
        return _is_pure_expr(node.operand)
    if isinstance(node, A.Binary):
        return _is_pure_expr(node.left) and _is_pure_expr(node.right)
    if isinstance(node, A.Ternary):
        return all(_is_pure_expr(x) for x in (node.cond, node.then,
                                              node.other))
    if isinstance(node, A.Index):
        return _is_pure_expr(node.base) and _is_pure_expr(node.index)
    if isinstance(node, A.Cast):
        return _is_pure_expr(node.operand)
    if isinstance(node, A.Call):
        # Math builtins are pure; atomics and user functions may not be.
        return (node.name in _FuncLowering._MATH_1
                or node.name in ("min", "max", "fminf", "fmaxf",
                                 "__mul24", "__umul24", "__fdividef")) \
            and all(_is_pure_expr(a) for a in node.args)
    if isinstance(node, A.Comma):
        return all(_is_pure_expr(p) for p in node.parts)
    return False


def _writes_var(stmts: List[A.Stmt], var: str) -> bool:
    """Does any statement in *stmts* assign to *var*?"""

    hit = False

    def visit_expr(node):
        nonlocal hit
        if hit or node is None or not isinstance(node, A.Expr):
            return
        if isinstance(node, A.Assign):
            if isinstance(node.target, A.Ident) and node.target.name == var:
                hit = True
                return
            visit_expr(node.target)
            visit_expr(node.value)
        elif isinstance(node, A.IncDec):
            if isinstance(node.target, A.Ident) and node.target.name == var:
                hit = True
                return
            visit_expr(node.target)
        elif isinstance(node, A.Unary):
            visit_expr(node.operand)
        elif isinstance(node, A.Binary):
            visit_expr(node.left)
            visit_expr(node.right)
        elif isinstance(node, A.Ternary):
            visit_expr(node.cond)
            visit_expr(node.then)
            visit_expr(node.other)
        elif isinstance(node, A.Index):
            visit_expr(node.base)
            visit_expr(node.index)
        elif isinstance(node, A.Cast):
            visit_expr(node.operand)
        elif isinstance(node, A.Call):
            for a in node.args:
                visit_expr(a)
        elif isinstance(node, A.Comma):
            for p in node.parts:
                visit_expr(p)

    def visit_stmt(node):
        nonlocal hit
        if hit or node is None:
            return
        if isinstance(node, A.DeclStmt):
            for name, _, size, init in node.decls:
                if name == var:
                    # Shadowing declaration: inner uses are a new var.
                    return
                visit_expr(size)
                visit_expr(init)
        elif isinstance(node, A.ExprStmt):
            visit_expr(node.expr)
        elif isinstance(node, A.If):
            visit_expr(node.cond)
            for s in node.then:
                visit_stmt(s)
            for s in node.other:
                visit_stmt(s)
        elif isinstance(node, A.For):
            visit_stmt(node.init)
            visit_expr(node.cond)
            visit_expr(node.step)
            for s in node.body:
                visit_stmt(s)
        elif isinstance(node, (A.While, A.DoWhile)):
            visit_expr(node.cond)
            for s in node.body:
                visit_stmt(s)
        elif isinstance(node, A.Block):
            for s in node.body:
                visit_stmt(s)
        elif isinstance(node, A.Return):
            visit_expr(node.value)

    for stmt in stmts:
        visit_stmt(stmt)
    return hit


def _has_loop_escape(stmts: List[A.Stmt]) -> bool:
    """True when *stmts* contain break/continue at this loop's level."""

    def scan(items, depth):
        for node in items:
            if isinstance(node, (A.Break, A.Continue)) and depth == 0:
                return True
            if isinstance(node, A.If):
                if scan(node.then, depth) or scan(node.other, depth):
                    return True
            elif isinstance(node, A.Block):
                if scan(node.body, depth):
                    return True
            elif isinstance(node, (A.For, A.While, A.DoWhile)):
                if scan(node.body, depth + 1):
                    return True
        return False

    return scan(stmts, 0)

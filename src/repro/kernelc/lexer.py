"""Tokenizer for the kernel language and the preprocessor.

The same token stream serves both the preprocessor (which works on raw
preprocessing tokens, line by line) and the parser (which consumes the
fully expanded program).  Tokens carry source positions for diagnostics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


class LexError(Exception):
    """Raised on malformed input (bad characters, unterminated comments)."""


KEYWORDS = {
    "if", "else", "for", "while", "do", "return", "break", "continue",
    "const", "unsigned", "signed", "void", "int", "float", "double",
    "char", "short", "long", "bool", "struct", "sizeof", "true", "false",
    "__global__", "__device__", "__shared__", "__constant__",
    "__restrict__", "__forceinline__", "static", "inline", "volatile",
    "template", "typename", "typedef",
}

# Multi-character operators, longest first so maximal munch works.
_PUNCT = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->", "##", "::",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}", "#",
]
_PUNCT_RE = "|".join(re.escape(p) for p in _PUNCT)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<newline>\n)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>
        (?:\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)
        [fFlL]?
    )
  | (?P<int>0[xX][0-9a-fA-F]+[uUlL]*|\d+[uUlL]*)
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<char>'(?:[^'\\\n]|\\.)')
  | (?P<punct>%s)
    """ % _PUNCT_RE,
    re.VERBOSE | re.DOTALL,
)


@dataclass
class Token:
    """A lexical token.

    ``kind`` is one of ``id``, ``kw``, ``int``, ``float``, ``string``,
    ``char``, ``punct``, ``newline``, ``eof``.  ``text`` is the exact
    source spelling; numeric values are decoded lazily by the parser.
    """

    kind: str
    text: str
    line: int = 0
    col: int = 0
    #: Macro hide set used by the preprocessor to prevent recursive
    #: re-expansion; irrelevant after preprocessing.
    hide: frozenset = field(default_factory=frozenset, compare=False)

    def is_punct(self, text: str) -> bool:
        return self.kind == "punct" and self.text == text

    def is_kw(self, text: str) -> bool:
        return self.kind == "kw" and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.text!r}, L{self.line})"


def tokenize(source: str, keep_newlines: bool = False) -> List[Token]:
    """Tokenize *source* into a list of tokens (without a trailing EOF).

    Args:
        source: program text.  Line continuations (``\\`` before a
            newline) are spliced before scanning.
        keep_newlines: when True, emit ``newline`` tokens so the
            preprocessor can recognize directive boundaries.

    Raises:
        LexError: on characters outside the language.
    """
    source = source.replace("\\\r\n", "").replace("\\\n", "")
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if not m:
            snippet = source[pos : pos + 20]
            raise LexError(f"line {line}: unexpected character {snippet!r}")
        kind = m.lastgroup
        text = m.group()
        col = pos - line_start + 1
        pos = m.end()
        if kind == "ws":
            continue
        if kind in ("newline", "comment"):
            newlines = text.count("\n")
            if kind == "newline" or newlines:
                if keep_newlines:
                    tokens.append(Token("newline", "\n", line, col))
                line += max(newlines, 1 if kind == "newline" else 0)
                line_start = pos
            continue
        if kind == "id" and text in KEYWORDS:
            kind = "kw"
        tokens.append(Token(kind, text, line, col))
    return tokens


def decode_int(text: str) -> tuple:
    """Decode an integer literal -> (value, is_unsigned, is_long)."""
    t = text
    unsigned = False
    is_long = False
    while t and t[-1] in "uUlL":
        if t[-1] in "uU":
            unsigned = True
        else:
            is_long = True
        t = t[:-1]
    value = int(t, 0)
    return value, unsigned, is_long


def decode_float(text: str) -> tuple:
    """Decode a float literal -> (value, is_double).

    An ``f``/``F`` suffix selects single precision; the unsuffixed form
    is double, as in C.
    """
    t = text
    is_double = True
    while t and t[-1] in "fFlL":
        if t[-1] in "fF":
            is_double = False
        t = t[:-1]
    return float(t), is_double


class TokenStream:
    """Cursor over a token list with lookahead, used by the parser."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self._eof = Token("eof", "<eof>",
                          tokens[-1].line if tokens else 1, 0)

    def peek(self, offset: int = 0) -> Token:
        i = self.pos + offset
        return self.tokens[i] if i < len(self.tokens) else self._eof

    def next(self) -> Token:
        tok = self.peek()
        self.pos += 1
        return tok

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            self.pos += 1
            return tok
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise LexError(
                f"line {tok.line}: expected {want!r}, found {tok.text!r}"
            )
        self.pos += 1
        return tok

"""Flexible-specialization scaffolding (the ``gpu::ctrt`` equivalent).

The dissertation's Appendix B kernel toggles each parameter between
run-time evaluation and compile-time specialization with ``CT_``-prefixed
boolean macros plus C++ template utilities (``gpu::ctrt``).  Our kernel
language keeps the preprocessor but not C++ namespaces/templates, so the
same pattern is expressed purely with macros; this module *generates*
that boilerplate so application kernels stay readable.

For a parameter ``FOO`` with run-time expression ``fooArg``,
:func:`ctrt_block` emits::

    #ifdef CT_FOO
    #define FOO_VAL (FOO)
    #else
    #define FOO_VAL (fooArg)
    #endif

Kernels then use ``FOO_VAL`` everywhere.  Specializing = compiling with
``defines={"CT_FOO": 1, "FOO": 128}``; leaving both out keeps the kernel
fully run-time evaluated.  One source, both regimes — the paper's core
productivity claim.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple


def ctrt_block(params: Mapping[str, str]) -> str:
    """Generate CT/RT toggle scaffolding for *params*.

    Args:
        params: mapping of macro name -> run-time fallback expression,
            e.g. ``{"LOOP_COUNT": "loopCount", "STRIDE": "argA * argB"}``.

    Returns:
        Preprocessor text to paste ahead of the kernel definition.
    """
    lines = ["// --- generated CT/RT parameter toggles ---"]
    for name, runtime_expr in params.items():
        lines.append(f"#ifdef CT_{name}")
        lines.append(f"#define {name}_VAL ({name})")
        lines.append("#else")
        lines.append(f"#define {name}_VAL ({runtime_expr})")
        lines.append("#endif")
    lines.append("// --- end generated toggles ---")
    return "\n".join(lines) + "\n"


def specialization_defines(values: Mapping[str, object],
                           enable: Optional[Iterable[str]] = None
                           ) -> Dict[str, object]:
    """Build the ``-D`` dictionary that specializes *values*.

    Args:
        values: parameter name -> concrete value.
        enable: subset of parameter names to specialize (default: all).
            Everything else stays run-time evaluated — the mixed regimes
            of the dissertation's Appendix B kernel.

    Returns:
        defines suitable for :func:`repro.kernelc.nvcc`, containing both
        the ``CT_NAME`` toggle and the ``NAME`` value for each enabled
        parameter.
    """
    chosen = set(values) if enable is None else set(enable)
    defines: Dict[str, object] = {}
    for name in chosen:
        if name not in values:
            raise KeyError(f"no value supplied for parameter {name!r}")
        defines[f"CT_{name}"] = 1
        defines[name] = values[name]
    return defines


def specialize(source: str, entry: str, arch: str = "sm_20",
               headers=None, **values):
    """Source-to-source specialization (the Appendix-F ``specialize()``).

    §4.4 sketches the alternative to ``-D`` definitions for toolchains
    that compile from source at run time (OpenCL, later CUDA): replace
    the identifiers *textually* before compilation.  This helper does
    exactly that — each keyword argument's name is substituted with its
    value as a source token — then compiles and returns the requested
    kernel.

    Example::

        kernel = specialize(SRC, "linearRowFilter", KSIZE=7, ANCHOR=3)
    """
    import re

    from repro.kernelc.compiler import nvcc

    rewritten = source
    for name, value in values.items():
        if isinstance(value, bool):
            token = "1" if value else "0"
        elif isinstance(value, float):
            token = repr(value) + "f"
        else:
            token = str(value)
        rewritten = re.sub(rf"\b{re.escape(name)}\b", token, rewritten)
    module = nvcc(rewritten, arch=arch, headers=headers)
    return module.kernel(entry)


#: The demonstration kernel of Listings 4.1/4.2 and Appendix B, written
#: once and compilable in any mixture of RE and SK regimes.
FLEXIBLE_MATHTEST = ctrt_block({
    "LOOP_COUNT": "loopCount",
    "ARG_A": "argA",
    "ARG_B": "argB",
    "BLOCK_DIM_X": "blockDim.x",
}) + """
__global__ void mathTest(int* in, int* out, int argA, int argB,
                         int loopCount) {
    int acc = 0;

    const unsigned int stride = ARG_A_VAL * ARG_B_VAL;
    const unsigned int offset = blockIdx.x * BLOCK_DIM_X_VAL + threadIdx.x;

    for (int i = 0; i < LOOP_COUNT_VAL; i++) {
        acc += *(in + offset + i * stride);
    }

    *(out + offset) = acc;
    return;
}
"""

"""PTX-like intermediate representation.

The IR is a typed, virtual-register, load/store representation with
labels and (optionally predicated) branches — the same abstraction level
as the PTX listings in the dissertation's Appendices C and D.  Virtual
registers are unlimited; a register-usage accounting pass
(:mod:`repro.kernelc.passes.regalloc`) later computes the per-thread
register footprint that drives the occupancy model, mirroring the
PTX → SASS register assignment step of the real toolchain.

Memory spaces: ``global``, ``shared``, ``const``, ``local``, ``param``.
Special-register reads (thread/block indices and dimensions) use ``mov``
from a :class:`Special` operand, as PTX does (``mov.u32 %r1, %tid.x``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.kernelc import typesys as T

# ----------------------------------------------------------------------
# Operands


@dataclass(frozen=True)
class Reg:
    """A virtual register.  ``name`` is unique within a kernel."""

    name: str
    ctype: object

    def __hash__(self) -> int:  # names are unique per kernel
        return hash(self.name)

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate constant operand."""

    value: object
    ctype: object

    def __hash__(self) -> int:
        return hash((self.value, self.ctype.name
                     if hasattr(self.ctype, "name") else str(self.ctype)))

    def __str__(self) -> str:
        if isinstance(self.value, float):
            return f"0F{self.value!r}" if self.ctype is T.F32 else repr(self.value)
        return str(self.value)


@dataclass(frozen=True)
class Special:
    """A special (hardware) register, e.g. ``tid.x`` or ``ntid.y``."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


Operand = Union[Reg, Imm, Special]


# ----------------------------------------------------------------------
# Instructions

#: Opcodes with no side effects (candidates for DCE / CSE).
#: Texture fetches read immutable memory within a launch, but are kept
#: out of PURE_OPS so they survive like loads (removable only via the
#: unused-destination rule in DCE).
PURE_OPS = {
    "mov", "cvt", "add", "sub", "mul", "mul24", "mulhi", "mad", "fma",
    "div", "rem", "neg", "abs", "min", "max", "and", "or", "xor", "not",
    "shl", "shr", "setp", "selp", "sqrt", "rsqrt", "rcp", "floor",
    "ceil", "round", "trunc", "exp2", "lg2", "sin", "cos", "sad",
}

#: Opcodes that read memory (still removable if the result is unused,
#: except volatile — which the subset does not model).
LOAD_OPS = {"ld"}

#: Commutative binary opcodes (used by CSE's operand canonicalization).
COMMUTATIVE_OPS = {"add", "mul", "mul24", "and", "or", "xor", "min", "max"}


@dataclass
class Instr:
    """One IR instruction.

    Attributes:
        op: opcode mnemonic (see module docstring).
        dtype: operation type (:class:`~repro.kernelc.typesys.ScalarType`
            or pointer type).
        dst: destination register or None.
        srcs: operand list.
        cmp: comparison for ``setp`` (eq/ne/lt/le/gt/ge).
        space: memory space for ``ld``/``st``/``atom``.
        target: label name for ``bra``.
        pred: optional guard predicate register.
        pred_neg: when True the guard is ``@!pred``.
        line: originating source line (diagnostics only).
    """

    op: str
    dtype: object = T.S32
    dst: Optional[Reg] = None
    srcs: List[Operand] = field(default_factory=list)
    cmp: str = ""
    space: str = ""
    target: str = ""
    pred: Optional[Reg] = None
    pred_neg: bool = False
    line: int = 0

    def is_pure(self) -> bool:
        return self.op in PURE_OPS

    def is_memory(self) -> bool:
        return self.op in ("ld", "st", "atom")

    def mnemonic(self) -> str:
        parts = [self.op]
        if self.cmp:
            parts.append(self.cmp)
        if self.space:
            parts.append(self.space)
        if self.op not in ("bra", "bar", "exit", "ret", "membar"):
            suffix = self.dtype.ptx_suffix().lstrip(".")
            parts.append(suffix)
        return ".".join(parts)

    def __str__(self) -> str:
        guard = ""
        if self.pred is not None:
            guard = f"@{'!' if self.pred_neg else ''}{self.pred} "
        ops: List[str] = []
        if self.dst is not None:
            ops.append(str(self.dst))
        if self.op == "ld":
            ops.append(f"[{self.srcs[0]}]")
            ops.extend(str(s) for s in self.srcs[1:])
        elif self.op == "st":
            ops = [f"[{self.srcs[0]}]"] + [str(s) for s in self.srcs[1:]]
        elif self.op == "atom":
            ops.append(f"[{self.srcs[0]}]")
            ops.extend(str(s) for s in self.srcs[1:])
        else:
            ops.extend(str(s) for s in self.srcs)
        if self.op == "bra":
            ops.append(self.target)
        body = f"{self.mnemonic()} " + ", ".join(ops)
        return f"\t{guard}{body.rstrip()};"


@dataclass
class Label:
    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


BodyItem = Union[Instr, Label]


# ----------------------------------------------------------------------
# Kernels and modules


@dataclass
class SharedDecl:
    """A block-shared array: element type + element count + byte offset."""

    name: str
    ctype: object
    count: int
    offset: int = 0

    @property
    def nbytes(self) -> int:
        return self.count * self.ctype.size


@dataclass
class IRKernel:
    """A compiled kernel: signature, body, and memory layout metadata."""

    name: str
    params: List[Tuple[str, object]]
    body: List[BodyItem] = field(default_factory=list)
    shared: Dict[str, SharedDecl] = field(default_factory=dict)
    local_arrays: Dict[str, SharedDecl] = field(default_factory=dict)
    launch_bounds: Optional[Tuple[int, int]] = None
    #: Filled by the regalloc pass: 32-bit register equivalents per thread.
    reg_count: int = 0
    line: int = 0

    @property
    def shared_bytes(self) -> int:
        """Static shared memory required per block."""
        return sum(d.nbytes for d in self.shared.values())

    @property
    def local_bytes(self) -> int:
        """Per-thread local (spill) memory."""
        return sum(d.nbytes for d in self.local_arrays.values())

    def instructions(self) -> List[Instr]:
        return [item for item in self.body if isinstance(item, Instr)]

    def static_instruction_count(self) -> int:
        return len(self.instructions())

    def param_index(self, name: str) -> int:
        for i, (pname, _) in enumerate(self.params):
            if pname == name:
                return i
        raise KeyError(name)

    def to_ptx(self) -> str:
        """Render the kernel in PTX-like text (Appendix C/D style)."""
        lines = []
        params = ", ".join(
            f".param {t.ptx_suffix().lstrip('.')} {n}"
            for n, t in self.params)
        lines.append(f".entry {self.name} ({params})")
        lines.append("{")
        for decl in self.shared.values():
            lines.append(
                f"\t.shared .align {decl.ctype.size} "
                f".b8 {decl.name}[{decl.nbytes}];")
        for decl in self.local_arrays.values():
            lines.append(
                f"\t.local .align {decl.ctype.size} "
                f".b8 {decl.name}[{decl.nbytes}];")
        for item in self.body:
            lines.append(str(item))
        lines.append("}")
        return "\n".join(lines)


@dataclass
class ConstGlobal:
    """Module-scope __constant__ memory declaration."""

    name: str
    ctype: object
    count: int
    offset: int = 0

    @property
    def nbytes(self) -> int:
        return self.count * self.ctype.size


@dataclass
class TextureRef:
    """A module-scope texture reference awaiting a host-side binding."""

    name: str
    ctype: object
    dims: int


@dataclass
class IRModule:
    """A compiled translation unit: kernels plus constant-memory layout."""

    kernels: Dict[str, IRKernel] = field(default_factory=dict)
    const_globals: Dict[str, ConstGlobal] = field(default_factory=dict)
    textures: Dict[str, TextureRef] = field(default_factory=dict)

    @property
    def const_bytes(self) -> int:
        return sum(g.nbytes for g in self.const_globals.values())

    def to_ptx(self) -> str:
        lines = ["// generated by repro.kernelc", ".version 2.3",
                 ".target sm_20", ""]
        for g in self.const_globals.values():
            lines.append(
                f".const .align {g.ctype.size} .b8 {g.name}[{g.nbytes}];")
        for kernel in self.kernels.values():
            lines.append("")
            lines.append(kernel.to_ptx())
        return "\n".join(lines)


class RegFactory:
    """Allocates uniquely named virtual registers per kernel."""

    _PREFIX = {"pred": "p", "float": "f", "int": "r", "ptr": "rd"}

    def __init__(self) -> None:
        self._counter = 0

    def new(self, ctype) -> Reg:
        self._counter += 1
        kind = ctype.kind if not T.is_pointer(ctype) else "ptr"
        if kind == "bool":
            kind = "pred"
        prefix = self._PREFIX.get(kind, "r")
        if kind == "int" and ctype.bits == 64:
            prefix = "rd"
        if kind == "float" and ctype.bits == 64:
            prefix = "fd"
        return Reg(f"{prefix}{self._counter}", ctype)


def renumber(kernel: IRKernel) -> None:
    """Renumber virtual registers densely after passes (cosmetic)."""
    factory = RegFactory()
    mapping: Dict[Reg, Reg] = {}

    def remap(reg: Reg) -> Reg:
        if reg not in mapping:
            mapping[reg] = factory.new(reg.ctype)
        return mapping[reg]

    for instr in kernel.instructions():
        if instr.dst is not None:
            instr.dst = remap(instr.dst)
        instr.srcs = [remap(s) if isinstance(s, Reg) else s
                      for s in instr.srcs]
        if instr.pred is not None:
            instr.pred = remap(instr.pred)

"""Control-flow graph over the linear IR.

Used by the optimization passes (dataflow constant propagation,
liveness-based register accounting) and by the SIMT executor, which
needs immediate post-dominators to pick warp reconvergence points
(the standard IPDOM scheme).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.kernelc.ir import Instr, IRKernel, Label


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence.

    ``start``/``end`` index into the kernel's flattened instruction
    list (``end`` exclusive).  Successors/predecessors are block ids.
    """

    bid: int
    start: int
    end: int
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


class CFG:
    """Control-flow graph of a kernel body.

    The body is flattened: labels are dropped and branch targets become
    instruction indices (``self.label_index``).  ``self.instrs[i]`` is
    the i-th executable instruction.
    """

    def __init__(self, kernel: IRKernel):
        self.kernel = kernel
        self.instrs: List[Instr] = []
        self.label_index: Dict[str, int] = {}
        for item in kernel.body:
            if isinstance(item, Label):
                self.label_index[item.name] = len(self.instrs)
            else:
                self.instrs.append(item)
        self.blocks: List[BasicBlock] = []
        self.block_of_instr: List[int] = []
        self._build_blocks()
        self._ipdom: Optional[List[Optional[int]]] = None

    # ------------------------------------------------------------------

    def _build_blocks(self) -> None:
        n = len(self.instrs)
        leaders = {0} if n else set()
        for i, instr in enumerate(self.instrs):
            if instr.op == "bra":
                leaders.add(self.label_index[instr.target])
                if i + 1 < n:
                    leaders.add(i + 1)
            elif instr.op == "exit" and i + 1 < n:
                leaders.add(i + 1)
        ordered = sorted(leaders)
        starts = {s: bid for bid, s in enumerate(ordered)}
        for bid, start in enumerate(ordered):
            end = ordered[bid + 1] if bid + 1 < len(ordered) else n
            self.blocks.append(BasicBlock(bid, start, end))
        self.block_of_instr = [0] * n
        for block in self.blocks:
            for i in range(block.start, block.end):
                self.block_of_instr[i] = block.bid
        for block in self.blocks:
            if block.end == block.start:
                continue
            last = self.instrs[block.end - 1]
            succs: List[int] = []
            if last.op == "bra":
                succs.append(starts[self.label_index[last.target]])
                if last.pred is not None and block.end < n:
                    succs.append(starts[block.end])
            elif last.op == "exit":
                pass
            elif block.end < n:
                succs.append(starts[block.end])
            block.succs = succs
        for block in self.blocks:
            for s in block.succs:
                self.blocks[s].preds.append(block.bid)

    # ------------------------------------------------------------------
    # Post-dominance (for IPDOM reconvergence)

    def ipdom_instr(self) -> Dict[int, int]:
        """Map: branch-instruction index -> reconvergence instruction index.

        Computed as the immediate post-dominator of the branch's block,
        taken at its first instruction.  Branches whose post-dominator
        is the virtual exit reconverge at ``len(instrs)`` (kernel end).
        """
        ipdom = self._post_dominators()
        out: Dict[int, int] = {}
        n = len(self.instrs)
        for i, instr in enumerate(self.instrs):
            if instr.op != "bra" or instr.pred is None:
                continue
            bid = self.block_of_instr[i]
            p = ipdom[bid]
            out[i] = self.blocks[p].start if p is not None else n
        return out

    def _post_dominators(self) -> List[Optional[int]]:
        """Immediate post-dominator per block (None = virtual exit)."""
        if self._ipdom is not None:
            return self._ipdom
        nblocks = len(self.blocks)
        exit_id = nblocks  # virtual exit node
        forward_exit_preds = [b.bid for b in self.blocks if not b.succs]
        # Reverse-graph adjacency: edge exit->b for each b without succs,
        # and edge s->b for each forward edge b->s.
        radj: List[List[int]] = [[] for _ in range(nblocks + 1)]
        radj[exit_id] = list(forward_exit_preds)
        for b in self.blocks:
            for s in b.succs:
                radj[s].append(b.bid)
        # Reverse postorder on the reverse graph starting at exit.
        visited = [False] * (nblocks + 1)
        order: List[int] = []

        def dfs(u: int) -> None:
            stack = [(u, iter(radj[u]))]
            visited[u] = True
            while stack:
                node, it = stack[-1]
                advanced = False
                for v in it:
                    if not visited[v]:
                        visited[v] = True
                        stack.append((v, iter(radj[v])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        dfs(exit_id)
        rpo = list(reversed(order))
        rpo_index = {b: i for i, b in enumerate(rpo)}
        idom: List[Optional[int]] = [None] * (nblocks + 1)
        idom[exit_id] = exit_id

        def intersect(a: int, b: int) -> int:
            while a != b:
                while rpo_index[a] > rpo_index[b]:
                    a = idom[a]
                while rpo_index[b] > rpo_index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for u in rpo:
                if u == exit_id:
                    continue
                # Predecessors of u in the reverse graph = forward succs,
                # plus exit if u has no forward succs.
                preds = list(self.blocks[u].succs) if u < nblocks else []
                if u < nblocks and not self.blocks[u].succs:
                    preds = [exit_id]
                new = None
                for p in preds:
                    if idom[p] is None or p not in rpo_index:
                        continue
                    new = p if new is None else intersect(new, p)
                if new is not None and idom[u] != new:
                    idom[u] = new
                    changed = True
        result: List[Optional[int]] = []
        for bid in range(nblocks):
            d = idom[bid]
            result.append(None if d in (None, exit_id) else d)
        self._ipdom = result
        return result

    # ------------------------------------------------------------------

    def rebuild_body(self) -> None:
        """Write the (possibly mutated) flat form back into the kernel.

        Passes that delete instructions mark them by setting ``op`` to
        ``'nop'``; this drops nops, re-emits labels, and removes labels
        that are no longer referenced.
        """
        used_labels = {ins.target for ins in self.instrs
                       if ins.op == "bra"}
        index_to_labels: Dict[int, List[str]] = {}
        for name, idx in self.label_index.items():
            if name in used_labels:
                index_to_labels.setdefault(idx, []).append(name)
        body = []
        for i, instr in enumerate(self.instrs):
            for name in index_to_labels.get(i, ()):
                body.append(Label(name))
            if instr.op != "nop":
                body.append(instr)
        tail = len(self.instrs)
        for name in index_to_labels.get(tail, ()):
            body.append(Label(name))
        self.kernel.body = body

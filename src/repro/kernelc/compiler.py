"""Compiler driver — the reproduction's ``nvcc``.

``nvcc(source, defines={...}, arch='sm_20')`` runs the preprocessor
(where ``defines`` plays the role of ``-D NAME=value`` command-line
macros), parses, lowers, optimizes, and returns a
:class:`CompiledModule` whose kernels carry the metadata the rest of
the system consumes: per-thread register count, static shared memory,
constant memory, and the PTX-like listing.

Per the dissertation (§4.4), specialization is *purely* a matter of
which macros are defined at compile time: the same source compiles
fully run-time evaluated (RE) when the ``CT_*`` toggles are absent and
specialized (SK) when they are present.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.faults import hooks as fault_hooks
from repro.kernelc import typesys as T
from repro.kernelc.codegen import CodeGen, CodegenError, CodegenOptions
from repro.kernelc.ir import IRKernel, IRModule
from repro.kernelc.lexer import LexError
from repro.kernelc.parser import ParseError, Parser
from repro.kernelc.passes import run_pipeline
from repro.kernelc.preprocessor import Preprocessor, PreprocessorError

#: Compute-capability macro per architecture, as nvcc defines it.
ARCH_MACROS = {"sm_10": 100, "sm_11": 110, "sm_12": 120, "sm_13": 130,
               "sm_20": 200, "sm_21": 210, "sm_30": 300, "sm_35": 350}


class CompileError(Exception):
    """Any front-end or middle-end failure, with context attached."""


@dataclass
class CompiledKernel:
    """One compiled kernel plus the resource metadata launches need."""

    name: str
    ir: IRKernel
    module: "CompiledModule"

    @property
    def reg_count(self) -> int:
        return self.ir.reg_count

    @property
    def shared_bytes(self) -> int:
        return self.ir.shared_bytes

    @property
    def local_bytes(self) -> int:
        return self.ir.local_bytes

    @property
    def static_instructions(self) -> int:
        return self.ir.static_instruction_count()

    def to_ptx(self) -> str:
        return self.ir.to_ptx()


@dataclass
class CompiledModule:
    """A compiled translation unit (the CUDA 'module')."""

    ir: IRModule
    arch: str
    defines: Dict[str, object]
    source: str
    opt_level: int
    compile_seconds: float = 0.0
    kernels: Dict[str, CompiledKernel] = field(default_factory=dict)

    @property
    def const_bytes(self) -> int:
        return self.ir.const_bytes

    def kernel(self, name: str) -> CompiledKernel:
        try:
            return self.kernels[name]
        except KeyError:
            raise CompileError(
                f"module has no kernel {name!r}; available: "
                f"{sorted(self.kernels)}") from None

    def to_ptx(self) -> str:
        return self.ir.to_ptx()


def nvcc(source: str,
         defines: Optional[Mapping[str, object]] = None,
         arch: str = "sm_20",
         opt_level: int = 3,
         headers: Optional[Mapping[str, str]] = None,
         unroll: bool = True,
         max_unroll: int = 4096) -> CompiledModule:
    """Compile kernel source, specializing via *defines*.

    Args:
        source: CUDA-C-subset kernel source.
        defines: ``-D`` macro definitions; the specialization interface.
            Values may be int, float, bool, or raw token strings.
        arch: target architecture (``sm_13``/``sm_20`` for the two
            GPUs the dissertation evaluates, ``sm_35`` for the
            Kepler-class K20).  Sets ``__CUDA_ARCH__``.
        opt_level: 0 disables the optimizing passes (for testing);
            3 is the default full pipeline.
        headers: virtual ``#include`` files.
        unroll: allow automatic full unrolling of constant-trip loops.
        max_unroll: largest trip count eligible for unrolling.

    Returns:
        A :class:`CompiledModule`.

    Raises:
        CompileError: wrapping any preprocessor/parse/lowering failure.
    """
    from repro.obs.trace import current_tracer
    tracer = current_tracer()
    if tracer is None:
        return _nvcc_impl(source, defines, arch, opt_level, headers,
                          unroll, max_unroll)
    with tracer.span("nvcc", "compile", arch=arch,
                     opt_level=opt_level,
                     defines=",".join(sorted(defines or {}))) as span:
        module = _nvcc_impl(source, defines, arch, opt_level, headers,
                            unroll, max_unroll)
        span.attrs["kernels"] = ",".join(sorted(module.kernels))
        span.attrs["compile_ms"] = module.compile_seconds * 1e3
        return module


def _nvcc_impl(source, defines, arch, opt_level, headers, unroll,
               max_unroll) -> CompiledModule:
    """The untraced compile path (see :func:`nvcc`)."""
    if arch not in ARCH_MACROS:
        raise CompileError(f"unknown arch {arch!r}; expected one of "
                           f"{sorted(ARCH_MACROS)}")
    injector = fault_hooks.ACTIVE
    if injector is not None:
        # Fault sites: a crashed/garbage nvcc invocation and a hung one.
        # The detail string carries the -D names so plans can target
        # only specialized (CT_*) compiles.
        detail = ",".join(sorted(defines or {}))
        injector.check("nvcc.compile", detail=detail)
        injector.check("nvcc.timeout", detail=detail)
    started = time.perf_counter()
    all_defines: Dict[str, object] = {"__CUDA_ARCH__": ARCH_MACROS[arch],
                                      "__CUDACC__": 1}
    if defines:
        all_defines.update(defines)
    try:
        tokens = Preprocessor(all_defines, headers).process(source)
        unit = Parser(tokens).parse()
        opts = CodegenOptions(unroll=unroll and opt_level >= 1,
                              max_unroll=max_unroll,
                              fold=opt_level >= 1)
        ir_module = CodeGen(unit, opts).run()
        run_pipeline(ir_module, opt_level)
    except (PreprocessorError, LexError, ParseError, CodegenError) as exc:
        raise CompileError(str(exc)) from exc
    elapsed = time.perf_counter() - started
    module = CompiledModule(ir=ir_module, arch=arch,
                            defines=dict(defines or {}), source=source,
                            opt_level=opt_level,
                            compile_seconds=elapsed)
    for name, kernel in ir_module.kernels.items():
        module.kernels[name] = CompiledKernel(name, kernel, module)
    return module

"""C-like scalar and pointer types for the kernel language.

The kernel language supports the scalar types the dissertation's kernels
use (``int``, ``unsigned int``, ``float``, ``double``, and the 64-bit
integers that back pointers) plus pointers to them.  Types double as the
IR's operand types, so conversion and promotion rules live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class ScalarType:
    """A scalar machine type.

    Attributes:
        name: C spelling (``int``, ``unsigned int``, ``float``...).
        kind: one of ``'int'``, ``'float'``, ``'bool'``, ``'void'``.
        bits: width in bits (0 for void).
        signed: meaningful only for integers.
    """

    name: str
    kind: str
    bits: int
    signed: bool = True

    def __hash__(self) -> int:  # cheap: name determines identity
        return hash(self.name)

    @property
    def size(self) -> int:
        """Size in bytes."""
        return self.bits // 8

    @property
    def is_integer(self) -> bool:
        return self.kind == "int"

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_void(self) -> bool:
        return self.kind == "void"

    @property
    def is_bool(self) -> bool:
        return self.kind == "bool"

    def np_dtype(self) -> np.dtype:
        """The NumPy dtype used to hold lane values of this type."""
        if self.kind == "bool":
            return np.dtype(np.bool_)
        if self.kind == "float":
            return np.dtype(np.float32 if self.bits == 32 else np.float64)
        if self.kind == "int":
            table = {
                (8, True): np.int8,
                (8, False): np.uint8,
                (16, True): np.int16,
                (16, False): np.uint16,
                (32, True): np.int32,
                (32, False): np.uint32,
                (64, True): np.int64,
                (64, False): np.uint64,
            }
            return np.dtype(table[(self.bits, self.signed)])
        raise ValueError(f"no dtype for {self.name}")

    def ptx_suffix(self) -> str:
        """The PTX-style type suffix used when printing IR (e.g. ``.s32``)."""
        if self.kind == "bool":
            return ".pred"
        if self.kind == "float":
            return f".f{self.bits}"
        return f".{'s' if self.signed else 'u'}{self.bits}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


VOID = ScalarType("void", "void", 0)
BOOL = ScalarType("bool", "bool", 1)
S8 = ScalarType("char", "int", 8, True)
U8 = ScalarType("unsigned char", "int", 8, False)
S16 = ScalarType("short", "int", 16, True)
U16 = ScalarType("unsigned short", "int", 16, False)
S32 = ScalarType("int", "int", 32, True)
U32 = ScalarType("unsigned int", "int", 32, False)
S64 = ScalarType("long long", "int", 64, True)
U64 = ScalarType("unsigned long long", "int", 64, False)
F32 = ScalarType("float", "float", 32)
F64 = ScalarType("double", "float", 64)

#: Types addressable by name in kernel source.
NAMED_TYPES = {
    t.name: t
    for t in (VOID, S8, U8, S16, U16, S32, U32, S64, U64, F32, F64)
}
NAMED_TYPES["size_t"] = U64
NAMED_TYPES["unsigned"] = U32
NAMED_TYPES["uchar"] = U8
NAMED_TYPES["uint"] = U32
NAMED_TYPES["ushort"] = U16


@dataclass(frozen=True)
class PointerType:
    """A pointer to a scalar type in a particular memory space.

    Memory spaces follow CUDA: ``global`` (default for kernel pointer
    arguments), ``shared``, ``const``, ``local``.
    """

    pointee: ScalarType
    space: str = "global"

    def __hash__(self) -> int:
        return hash((self.pointee.name, self.space))

    @property
    def size(self) -> int:
        return 8

    @property
    def bits(self) -> int:
        return 64

    @property
    def kind(self) -> str:
        return "ptr"

    @property
    def is_integer(self) -> bool:
        return False

    @property
    def is_float(self) -> bool:
        return False

    @property
    def is_void(self) -> bool:
        return False

    @property
    def is_bool(self) -> bool:
        return False

    signed = False

    def np_dtype(self) -> np.dtype:
        return np.dtype(np.uint64)

    def ptx_suffix(self) -> str:
        return ".u64"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.pointee}*"


CType = object  # ScalarType | PointerType; kept loose for 3.9 compat


def is_pointer(t: CType) -> bool:
    return isinstance(t, PointerType)


def common_type(a: CType, b: CType) -> CType:
    """Usual arithmetic conversions for a binary operator.

    Pointer + integer keeps the pointer type.  Otherwise the wider /
    "floatier" type wins, with unsigned beating signed at equal width
    (matching C semantics closely enough for kernel code).
    """
    if is_pointer(a):
        return a
    if is_pointer(b):
        return b
    if a.is_float or b.is_float:
        if a.is_float and b.is_float:
            return a if a.bits >= b.bits else b
        return a if a.is_float else b
    if a.is_bool:
        a = S32
    if b.is_bool:
        b = S32
    # Integer promotion: everything below 32 bits promotes to int.
    if a.bits < 32:
        a = S32
    if b.bits < 32:
        b = S32
    if a.bits != b.bits:
        return a if a.bits > b.bits else b
    if a.signed != b.signed:
        return a if not a.signed else b
    return a


def convert_const(value, t: CType):
    """Convert a Python constant to the Python value domain of type *t*.

    Integers wrap modulo 2**bits with the proper sign; floats are rounded
    to the representable value via NumPy so constant folding matches what
    the simulator computes at run time.
    """
    if is_pointer(t):
        return int(value) & 0xFFFFFFFFFFFFFFFF
    if t.is_bool:
        return bool(value)
    if t.is_float:
        return float(np.dtype(t.np_dtype()).type(value))
    if t.is_integer:
        mask = (1 << t.bits) - 1
        v = int(value) & mask
        if t.signed and v >= (1 << (t.bits - 1)):
            v -= 1 << t.bits
        return v
    raise ValueError(f"cannot convert constant to {t}")

"""Generic configuration sweep machinery."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple


@dataclass
class SweepRecord:
    """One evaluated configuration point."""

    config: dict
    seconds: float
    reg_count: int = 0
    occupancy: float = 0.0
    valid: bool = True
    error: str = ""

    def key(self) -> Tuple:
        return tuple(sorted(self.config.items()))


class Sweeper:
    """Evaluates a run function over a configuration grid.

    The run function receives one config dict and returns a
    :class:`SweepRecord`; configurations that cannot launch (occupancy
    failures — a real phenomenon the dissertation's sweeps also hit)
    come back ``valid=False`` and stay in the record list so coverage
    tables can show the holes.
    """

    def __init__(self, run: Callable[[dict], SweepRecord]):
        self.run = run
        self.records: List[SweepRecord] = []

    def sweep(self, configs: Iterable[dict]) -> List[SweepRecord]:
        for config in configs:
            try:
                record = self.run(dict(config))
            except Exception as exc:  # occupancy/compile failures
                record = SweepRecord(config=dict(config),
                                     seconds=float("inf"), valid=False,
                                     error=f"{type(exc).__name__}: {exc}")
            self.records.append(record)
        return self.records


def best_record(records: List[SweepRecord]) -> SweepRecord:
    """The fastest valid record."""
    valid = [r for r in records if r.valid]
    if not valid:
        raise ValueError("no configuration in the sweep could run: "
                         + "; ".join(r.error for r in records[:3]))
    return min(valid, key=lambda r: r.seconds)


def grid_configs(**axes) -> List[dict]:
    """Cartesian product of named axes into config dicts."""
    configs: List[dict] = [{}]
    for name, values in axes.items():
        configs = [dict(c, **{name: v}) for c in configs for v in values]
    return configs

"""Generic configuration sweep machinery."""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple


@dataclass
class SweepRecord:
    """One evaluated configuration point."""

    config: dict
    seconds: float
    reg_count: int = 0
    occupancy: float = 0.0
    valid: bool = True
    error: str = ""

    def key(self) -> Tuple:
        return tuple(sorted(self.config.items()))


class Sweeper:
    """Evaluates a run function over a configuration grid.

    The run function receives one config dict and returns a
    :class:`SweepRecord`; configurations that cannot launch (occupancy
    failures — a real phenomenon the dissertation's sweeps also hit)
    come back ``valid=False`` and stay in the record list so coverage
    tables can show the holes.
    """

    def __init__(self, run: Callable[[dict], SweepRecord],
                 jobs: int = 1):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.run = run
        self.jobs = jobs
        self.records: List[SweepRecord] = []
        #: Simulator cache activity attributed to the last ``sweep()``
        #: call: hit/miss deltas for the launch-plan cache and the
        #: batched engine's gang-prototype cache.  A healthy sweep over
        #: one kernel shows ~1 miss and hits for every other launch.
        #:
        #: Caveat: the underlying counters are *process-wide*, so when
        #: two sweeps run concurrently each window also sees the other
        #: sweep's traffic — every report stays bounded by the combined
        #: global delta, but per-sweep attribution is skewed.  Run
        #: sweeps sequentially when exact attribution matters.
        self.cache_report: Dict[str, int] = {}

    def _eval(self, config: dict) -> SweepRecord:
        try:
            return self.run(dict(config))
        except Exception as exc:  # occupancy/compile failures
            return SweepRecord(config=dict(config),
                               seconds=float("inf"), valid=False,
                               error=f"{type(exc).__name__}: {exc}")

    def sweep(self, configs: Iterable[dict]) -> List[SweepRecord]:
        configs = list(configs)
        before = _cache_counters()
        try:
            if self.jobs == 1 or len(configs) <= 1:
                for config in configs:
                    self.records.append(self._eval(config))
                return self.records
            # Worker threads each evaluate whole configurations; the
            # run function builds its own GPU context per call, so
            # workers never share simulator state.  ``map`` keeps
            # result order == config order, so records are
            # deterministic regardless of which worker finishes first.
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                self.records.extend(pool.map(self._eval, configs))
            return self.records
        finally:
            after = _cache_counters()
            self.cache_report = {k: after[k] - before[k] for k in after}


    def error_taxonomy(self) -> Dict[str, int]:
        """Invalid records grouped by error class, with counts.

        The sweep-level half of the observability story: together with
        ``Pipeline.health_report()`` it makes every failed
        configuration diagnosable by *kind* rather than by reading N
        raw message strings.
        """
        return dict(Counter(_error_class(r.error)
                            for r in self.records if not r.valid))


def _error_class(error: str) -> str:
    """``"SimError: bad launch"`` -> ``"SimError"``."""
    head = error.split(":", 1)[0].strip()
    return head or "UnknownError"


def _cache_counters() -> Dict[str, int]:
    """Current simulator cache counters, namespaced per cache."""
    from repro.gpusim import gang_cache_stats, plan_cache_stats
    counters = {}
    for prefix, stats in (("plan", plan_cache_stats()),
                          ("gang", gang_cache_stats())):
        for key in ("hits", "misses"):
            counters[f"{prefix}_{key}"] = stats[key]
    return counters


def best_record(records: List[SweepRecord]) -> SweepRecord:
    """The fastest valid record (ties broken by config key).

    The explicit tie-break makes sweep optima — and every table built
    from them — reproducible no matter how the records were ordered or
    which worker produced them first.
    """
    valid = [r for r in records if r.valid]
    if not valid:
        # Group by error class so an all-invalid sweep is diagnosable
        # at a glance: every distinct failure kind appears, counted,
        # with one example message each.
        groups: Dict[str, List[object]] = {}
        for r in records:
            entry = groups.setdefault(_error_class(r.error),
                                      [0, r.error])
            entry[0] += 1
        detail = "; ".join(
            f"{cls} x{count} (e.g. {example})"
            for cls, (count, example) in sorted(groups.items()))
        raise ValueError(
            f"no configuration in the sweep could run ({len(records)} "
            f"tried): {detail}")
    return min(valid, key=lambda r: (r.seconds, r.key()))


def grid_configs(**axes) -> List[dict]:
    """Cartesian product of named axes into config dicts."""
    configs: List[dict] = [{}]
    for name, values in axes.items():
        configs = [dict(c, **{name: v}) for c in configs for v in values]
    return configs

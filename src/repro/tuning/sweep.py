"""Generic configuration sweep machinery."""

from __future__ import annotations

import pickle
from concurrent.futures import (BrokenExecutor, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.reporting import format_table
from repro.runtime.context import ExecutionContext, using_context

POOLS = ("thread", "process")


@dataclass
class SweepRecord:
    """One evaluated configuration point."""

    config: dict
    seconds: float
    reg_count: int = 0
    occupancy: float = 0.0
    valid: bool = True
    error: str = ""
    #: Position of this record in the sweeper's cumulative evaluation
    #: sequence (set by ``sweep()``; indices keep counting across
    #: calls, so pruned multi-batch sweeps — the AutoTuner — never
    #: alias).  Records of one call are always returned sorted by it.
    index: int = -1
    #: Plan/gang cache counters charged by runs that evaluated in a
    #: private context of their own (harness/process runs); empty for
    #: closure runs, which charge the sweep's context directly.
    counters: Dict[str, int] = field(default_factory=dict)
    #: site -> fired count from the run's fault injector (chaos
    #: sweeps); empty when no fault plan was installed.
    faults: Dict[str, int] = field(default_factory=dict)
    #: Tracer export from a run that traced in a private context of
    #: its own (a ``trace=True`` :class:`HarnessRunner` evaluation);
    #: the owning :class:`Sweeper` grafts it back into its own trace
    #: as a ``cell:<index>`` subtree.  None for untraced runs.
    trace: Optional[Dict[str, object]] = None
    #: The private run context's ``metrics_snapshot()`` (traced
    #: harness runs only).
    metrics: Optional[Dict[str, object]] = None
    #: Per-launch :class:`~repro.obs.profile.LaunchProfile` records of
    #: the evaluation, in launch order (traced harness runs only) —
    #: the AutoTuner's diagnosis input and the rows behind
    #: :meth:`Sweeper.limiter_report`.
    profiles: List[object] = field(default_factory=list)

    def key(self) -> Tuple:
        return tuple(sorted(self.config.items()))


def _eval_config(run: Callable[[dict], SweepRecord],
                 config: dict) -> SweepRecord:
    try:
        return run(dict(config))
    except Exception as exc:  # occupancy/compile failures
        return SweepRecord(config=dict(config),
                           seconds=float("inf"), valid=False,
                           error=f"{type(exc).__name__}: {exc}")


def _process_eval(payload) -> Tuple[int, SweepRecord]:
    """Process-pool worker entry: evaluate one indexed config.

    The unpickled *run* rebuilds whatever context it needs (a
    :class:`~repro.tuning.app_sweeps.HarnessRunner` builds a fresh
    :class:`ExecutionContext`, re-installing any shipped fault plan);
    nothing from the parent's contexts is assumed to exist here.
    """
    index, run, config = payload
    record = _eval_config(run, config)
    record.index = index
    return index, record


class Sweeper:
    """Evaluates a run function over a configuration grid.

    The run function receives one config dict and returns a
    :class:`SweepRecord`; configurations that cannot launch (occupancy
    failures — a real phenomenon the dissertation's sweeps also hit)
    come back ``valid=False`` and stay in the record list so coverage
    tables can show the holes.

    Args:
        run: the evaluation function.  ``pool="process"`` requires it
            to be picklable (a :class:`HarnessRunner` or plain
            function, not a closure).
        jobs: worker count; 1 evaluates inline.
        pool: ``"thread"`` (workers share this process) or
            ``"process"`` (each worker is a subprocess that rebuilds
            its own execution state from the pickled run).
        context: the :class:`ExecutionContext` the sweep evaluates
            under; a fresh private one by default, so concurrent
            sweeps in one process never share caches or counters.
        start_method: multiprocessing start method for
            ``pool="process"`` (None = platform default; ``"spawn"``
            exercises a cold interpreter per worker).
        fleet: a :class:`~repro.runtime.fleet.DeviceFleet` to shard
            the grid across instead of this sweeper's own pool
            (``jobs``/``pool`` are then ignored).  Cells stripe over
            the fleet's members under its placement policy and merge
            back in grid order, bit-identical to an unfleeted sweep;
            worker deaths surface as typed ``FleetWorkerError``
            records, mirroring the ``WorkerCrashError`` contract.
        trace: enable the sweep context's tracer.  Every cell records
            an ``eval:<index>`` span (thread-pool cells become roots on
            their worker threads); cells that traced inside a private
            context of their own (a ``trace=True``
            :class:`~repro.tuning.app_sweeps.HarnessRunner`, including
            under ``pool="process"``) additionally graft their shipped
            trace back in as a ``cell:<index>`` subtree.
    """

    def __init__(self, run: Callable[[dict], SweepRecord],
                 jobs: int = 1, pool: str = "thread",
                 context: Optional[ExecutionContext] = None,
                 start_method: Optional[str] = None,
                 trace: bool = False,
                 fleet=None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if pool not in POOLS:
            raise ValueError(f"unknown pool {pool!r}; "
                             f"expected one of {POOLS}")
        self.run = run
        self.jobs = jobs
        self.pool = pool
        self.start_method = start_method
        self.fleet = fleet
        #: Every evaluation of this sweep is charged to this context —
        #: its plan/gang counters see no other sweep's traffic.
        self.ctx = context or ExecutionContext(name="sweep")
        self.records: List[SweepRecord] = []
        #: The sweep-level instrument registry (one counter taxonomy,
        #: see GLOSSARY "counter namespace"): ``cache.*`` gauges hold
        #: the last call's cache deltas, ``sweep.calls`` /
        #: ``sweep.cells`` / ``error.<class>`` counters accumulate, and
        #: the ``sweep.cell_seconds`` histogram summarizes valid cells'
        #: modeled time.  :attr:`cache_report` and
        #: :meth:`error_taxonomy` are thin views over it.
        self.metrics = MetricsRegistry()
        if trace:
            self.ctx.enable_tracing("sweep")

    def _eval(self, index: int, config: dict) -> SweepRecord:
        with using_context(self.ctx):
            tracer = self.ctx.tracer
            if tracer is None:
                record = _eval_config(self.run, config)
            else:
                with tracer.span(f"eval:{index}", "sweep",
                                 config=_config_note(config)) as span:
                    record = _eval_config(self.run, config)
                    span.attrs["valid"] = record.valid
                    if record.valid:
                        span.attrs["sim_seconds"] = record.seconds
            record.index = index
            return record

    def sweep(self, configs: Iterable[dict]) -> List[SweepRecord]:
        configs = list(configs)
        base = len(self.records)
        before = self.ctx.cache_counters()
        tracer = self.ctx.tracer
        new: List[SweepRecord] = []
        try:
            if tracer is None:
                new = self._eval_all(configs, base)
            else:
                with tracer.span("sweep", "sweep", cells=len(configs),
                                 jobs=self.jobs, pool=self.pool):
                    new = self._eval_all(configs, base)
                    # Per-cell aggregation: harness/process cells
                    # traced in their own private context; fold each
                    # shipped trace in as a child subtree, grid order.
                    for record in new:
                        if record.trace:
                            tracer.graft(record.trace,
                                         f"cell:{record.index}",
                                         index=record.index,
                                         valid=record.valid)
            self.records.extend(new)
            return self.records
        finally:
            self._account(new, before)

    def _eval_all(self, configs: List[dict],
                  base: int = 0) -> List[SweepRecord]:
        if self.fleet is not None:
            # Shard the grid across the fleet's members; the fleet
            # handles placement, typed crash records, and grid-order
            # merge, and each cell's counters ride its record back
            # into _account exactly as pool cells' do.
            new = self.fleet.map_grid(self.run, configs, base)
        elif self.jobs == 1 or len(configs) <= 1:
            new = [self._eval(base + i, c)
                   for i, c in enumerate(configs)]
        elif self.pool == "process":
            new = self._sweep_process(configs, base)
        else:
            # Worker threads each evaluate whole configurations
            # under the sweep's context; the run function builds
            # its own GPU per call, so workers never share
            # simulator buffers.
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                new = list(pool.map(
                    self._eval, range(base, base + len(configs)),
                    configs))
        # Grid order regardless of pool type or completion order.
        new.sort(key=lambda r: r.index)
        return new

    def _account(self, new: List[SweepRecord],
                 before: Dict[str, int]) -> None:
        """Fold a finished ``sweep()`` call into :attr:`metrics`.

        Cache deltas — the launch-plan and gang-prototype hit/miss
        traffic of this call, summed over the sweep context and the
        per-record private contexts — land as ``cache.*`` gauges
        (last call wins, which is exactly what :attr:`cache_report`
        reports); cell and error-class counts accumulate as counters.
        A healthy sweep over one kernel shows ~1 miss and hits for
        every other launch.
        """
        after = self.ctx.cache_counters()
        report = {k: after[k] - before[k] for k in after}
        for record in new:
            for k, v in record.counters.items():
                report[k] = report.get(k, 0) + v
        for key, value in report.items():
            self.metrics.gauge(f"cache.{key}", value)
        self.metrics.inc("sweep.calls")
        self.metrics.inc("sweep.cells", len(new))
        for record in new:
            if record.valid:
                self.metrics.observe("sweep.cell_seconds",
                                     record.seconds)
            else:
                self.metrics.inc(
                    f"error.{_error_class(record.error)}")

    @property
    def cache_report(self) -> Dict[str, int]:
        """Cache activity attributed to the last ``sweep()`` call.

        Exact hit/miss deltas for the launch-plan cache and the
        batched engine's gang-prototype cache (``plan_hits`` /
        ``plan_misses`` / ``gang_hits`` / ``gang_misses`` — historical
        keys, kept verbatim).  A thin view over the ``cache.*`` gauges
        in :attr:`metrics`; empty before the first call.
        """
        gauges = self.metrics.snapshot()["gauges"]
        return {name[len("cache."):]: int(value)
                for name, value in gauges.items()
                if name.startswith("cache.")}

    def _sweep_process(self, configs: List[dict],
                       base: int = 0) -> List[SweepRecord]:
        try:
            pickle.dumps(self.run)
        except Exception as exc:
            raise ValueError(
                "pool='process' needs a picklable run callable; "
                "closures over arrays are not — use a HarnessRunner "
                f"(repro.tuning.app_sweeps) instead: {exc}") from exc
        import multiprocessing as mp
        mp_context = (mp.get_context(self.start_method)
                      if self.start_method else None)
        results: Dict[int, SweepRecord] = {}
        with ProcessPoolExecutor(max_workers=self.jobs,
                                 mp_context=mp_context) as pool:
            futures = [pool.submit(_process_eval,
                                   (base + i, self.run, dict(config)))
                       for i, config in enumerate(configs)]
            # Collect in submission order rather than as_completed: a
            # worker death breaks the whole executor, and per-future
            # collection lets every victim config surface as a typed
            # WorkerCrashError record instead of one opaque crash
            # killing the sweep (and every already-finished record
            # keeps its result).
            for i, future in enumerate(futures):
                try:
                    index, record = future.result()
                except (BrokenExecutor, OSError, RuntimeError) as exc:
                    index = base + i
                    record = SweepRecord(
                        config=dict(configs[i]), seconds=float("inf"),
                        valid=False,
                        error=(f"WorkerCrashError: process-pool worker "
                               f"died evaluating cell {index} "
                               f"({type(exc).__name__}: {exc})"),
                        index=index)
                results[index] = record
        return [results[i] for i in sorted(results)]

    def gang_cache_stats(self) -> Dict[str, int]:
        """Gang-prototype hit/miss counters for the last sweep call."""
        return {"hits": self.cache_report.get("gang_hits", 0),
                "misses": self.cache_report.get("gang_misses", 0)}

    def trace_cache_stats(self) -> Dict[str, int]:
        """Trace-JIT counters for the last sweep call.

        All zero unless the run launched on the ``"traced"`` engine;
        a healthy traced sweep shows one ``records`` per kernel trace
        and ``hits`` for every other gang quantum.
        """
        return {name[len("trace_"):]: count
                for name, count in self.cache_report.items()
                if name.startswith("trace_")}

    def error_taxonomy(self) -> Dict[str, int]:
        """Invalid records grouped by error class, with counts.

        The sweep-level half of the observability story: together with
        ``Pipeline.health_report()`` it makes every failed
        configuration diagnosable by *kind* rather than by reading N
        raw message strings.  A thin view over the ``error.<class>``
        counters in :attr:`metrics` (historical bare class names kept).
        """
        return {name[len("error."):]: count
                for name, count
                in self.metrics.counters("error.").items()}

    def limiter_report(self) -> Dict[str, Dict[str, int]]:
        """Distribution of launch-profile limiters over all records.

        Counts every :class:`~repro.obs.profile.LaunchProfile` the
        records carry (traced harness runs; untraced records
        contribute nothing) by its occupancy limiter and its modeled
        boundedness — the AutoTuner's diagnosis inputs, exposed so
        they are independently testable::

            {"occupancy_limit": {"registers": 4, "blocks": 2},
             "bound": {"latency": 5, "issue": 1}}
        """
        occ: Dict[str, int] = {}
        bound: Dict[str, int] = {}
        for record in self.records:
            for profile in record.profiles:
                limit = str(getattr(profile, "occupancy_limit", "?"))
                occ[limit] = occ.get(limit, 0) + 1
                b = str(getattr(profile, "bound", "?"))
                bound[b] = bound.get(b, 0) + 1
        return {"occupancy_limit": occ, "bound": bound}

    def slowest_report(self, n: int = 5) -> str:
        """The *n* slowest valid cells, as an aligned text table.

        The sweep-level profiling summary: modeled time, register
        pressure, and occupancy per cell, worst first — where to point
        a traced re-run (``trace=True`` + ``export_trace``) when a
        grid's tail looks wrong.
        """
        ranked = sorted((r for r in self.records if r.valid),
                        key=lambda r: (-r.seconds, r.key()))[:n]
        rows = [[r.index, _config_note(r.config),
                 f"{r.seconds * 1e3:.3f}", r.reg_count,
                 f"{r.occupancy:.2f}"] for r in ranked]
        return format_table(
            ["cell", "config", "ms", "regs", "occ"], rows,
            title=f"slowest {len(rows)} of {len(self.records)} cells")


def _config_note(config: dict) -> str:
    """One config dict as a stable ``k=v`` note for spans/tables."""
    return " ".join(f"{k}={v}" for k, v in sorted(config.items()))


def _error_class(error: str) -> str:
    """``"SimError: bad launch"`` -> ``"SimError"``."""
    head = error.split(":", 1)[0].strip()
    return head or "UnknownError"


def best_record(records: List[SweepRecord]) -> SweepRecord:
    """The fastest valid record (ties broken by config key).

    The explicit tie-break makes sweep optima — and every table built
    from them — reproducible no matter how the records were ordered or
    which worker produced them first.
    """
    valid = [r for r in records if r.valid]
    if not valid:
        # Group by error class so an all-invalid sweep is diagnosable
        # at a glance: every distinct failure kind appears, counted,
        # with one example message each.
        groups: Dict[str, List[object]] = {}
        for r in records:
            entry = groups.setdefault(_error_class(r.error),
                                      [0, r.error])
            entry[0] += 1
        detail = "; ".join(
            f"{cls} x{count} (e.g. {example})"
            for cls, (count, example) in sorted(groups.items()))
        raise ValueError(
            f"no configuration in the sweep could run ({len(records)} "
            f"tried): {detail}")
    return min(valid, key=lambda r: (r.seconds, r.key()))


def grid_configs(**axes) -> List[dict]:
    """Cartesian product of named axes into config dicts."""
    configs: List[dict] = [{}]
    for name, values in axes.items():
        configs = [dict(c, **{name: v}) for c in configs for v in values]
    return configs

"""Configuration-space exploration (the autotuning companion of §3.2).

Kernel specialization makes implementation parameters cheap to change
(a recompile instead of a rewrite); this package supplies the sweep
machinery that finds per-(problem, device) optima and the
percent-of-peak analyses behind Tables 6.13, 6.15-6.18, 6.20-6.22 and
Figures 6.1/6.2.
"""

from repro.tuning.sweep import (POOLS, SweepRecord, Sweeper, best_record,
                                grid_configs)
from repro.tuning.grids import (percent_of_peak, peak_grid_text,
                                contour_series)
from repro.tuning.autotune import (APP_RULES, AutoTuner, SECONDS_RTOL,
                                   TuneResult, diagnose)
from repro.tuning.app_sweeps import (HarnessRunner, bp_sweep,
                                     harness_autotune, harness_sweep,
                                     piv_sweep, tm_sweep)

__all__ = ["POOLS", "Sweeper", "SweepRecord", "best_record",
           "grid_configs", "percent_of_peak", "peak_grid_text",
           "contour_series", "HarnessRunner", "harness_sweep",
           "harness_autotune", "piv_sweep", "tm_sweep", "bp_sweep",
           "APP_RULES", "AutoTuner", "SECONDS_RTOL", "TuneResult",
           "diagnose"]

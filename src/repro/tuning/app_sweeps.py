"""Application-specific sweep adapters.

Each builds the workload once and evaluates configurations with sampled
(non-functional) launches, which is how autotuning over the simulator
stays affordable: a handful of representative blocks per configuration,
extrapolated by the timing model.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.apps.backprojection import Backprojector, BPConfig, BPProblem
from repro.apps.piv import PIVConfig, PIVProblem, PIVProcessor
from repro.apps.template_matching import (MatchConfig, MatchProblem,
                                          TemplateMatcher)
from repro.gpupf.cache import KernelCache
from repro.gpusim import DeviceSpec, GPU
from repro.tuning.sweep import SweepRecord, Sweeper, grid_configs

_SHARED_CACHE = KernelCache()


def piv_sweep(problem: PIVProblem, device: DeviceSpec,
              img_a: np.ndarray, img_b: np.ndarray,
              rb_values: Iterable[int], thread_values: Iterable[int],
              variant: str = "tree", specialize: bool = True,
              sample_blocks: int = 2,
              cache: Optional[KernelCache] = None,
              jobs: int = 1,
              engine: Optional[str] = None) -> List[SweepRecord]:
    """Sweep (rb, threads) for one PIV problem on one device."""
    cache = cache or _SHARED_CACHE

    def run(config: dict) -> SweepRecord:
        cfg = PIVConfig(variant=variant, rb=config["rb"],
                        threads=config["threads"],
                        specialize=specialize, functional=False,
                        sample_blocks=sample_blocks, engine=engine)
        proc = PIVProcessor(problem, cfg, device=device, cache=cache)
        result = proc.run(img_a, img_b)
        return SweepRecord(config=config, seconds=result.kernel_seconds,
                           reg_count=result.reg_count,
                           occupancy=result.occupancy)

    sweeper = Sweeper(run, jobs=jobs)
    return sweeper.sweep(grid_configs(rb=list(rb_values),
                                      threads=list(thread_values)))


def tm_sweep(problem: MatchProblem, template: np.ndarray,
             frame: np.ndarray, tile_sizes, thread_values,
             device: DeviceSpec, specialize: bool = True,
             sample_blocks: int = 2,
             cache: Optional[KernelCache] = None,
             jobs: int = 1,
             engine: Optional[str] = None) -> List[SweepRecord]:
    """Sweep (tile, threads) for one template-matching problem."""
    cache = cache or _SHARED_CACHE

    def run(config: dict) -> SweepRecord:
        tw, th = config["tile"]
        cfg = MatchConfig(tile_w=tw, tile_h=th,
                          threads=config["threads"],
                          specialize=specialize, functional=False,
                          sample_blocks=sample_blocks, engine=engine)
        matcher = TemplateMatcher(problem, template, cfg, device=device,
                                  cache=cache)
        result = matcher.match(frame)
        return SweepRecord(config=config,
                           seconds=result.kernel_seconds,
                           reg_count=matcher.numerator_reg_count())

    sweeper = Sweeper(run, jobs=jobs)
    return sweeper.sweep(grid_configs(tile=list(tile_sizes),
                                      threads=list(thread_values)))


def bp_sweep(problem: BPProblem, projections: np.ndarray,
             block_shapes, zb_values, device: DeviceSpec,
             specialize: bool = True, sample_blocks: int = 2,
             cache: Optional[KernelCache] = None,
             jobs: int = 1,
             engine: Optional[str] = None) -> List[SweepRecord]:
    """Sweep (block shape, zb) for a backprojection problem."""
    cache = cache or _SHARED_CACHE

    def run(config: dict) -> SweepRecord:
        bx, by = config["block"]
        cfg = BPConfig(block_x=bx, block_y=by, zb=config["zb"],
                       specialize=specialize, functional=False,
                       sample_blocks=sample_blocks, engine=engine)
        bp = Backprojector(problem, cfg, device=device, cache=cache)
        result = bp.run(projections)
        return SweepRecord(config=config, seconds=result.kernel_seconds,
                           reg_count=result.reg_count,
                           occupancy=result.occupancy)

    sweeper = Sweeper(run, jobs=jobs)
    return sweeper.sweep(grid_configs(block=list(block_shapes),
                                      zb=list(zb_values)))

"""Application-specific sweep adapters.

Each builds the workload once and evaluates configurations with sampled
(non-functional) launches, which is how autotuning over the simulator
stays affordable: a handful of representative blocks per configuration,
extrapolated by the timing model.

Two styles:

* :class:`HarnessRunner` + :func:`harness_sweep` — the picklable path.
  The runner carries only a :class:`~repro.apps.harness.ProblemSpec`
  (seeds, not arrays) and rebuilds everything per evaluation via
  :func:`~repro.apps.harness.run_request`, so it works identically
  with ``pool="thread"`` and ``pool="process"``.
* the legacy ``piv_sweep`` / ``tm_sweep`` / ``bp_sweep`` closures —
  thread-only (closures over input arrays don't pickle), kept for
  callers that already hold generated inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional

import numpy as np

from repro.apps.backprojection import Backprojector, BPConfig, BPProblem
from repro.apps.harness import (ProblemSpec, RunRequest, get_harness,
                                run_request)
from repro.apps.piv import PIVConfig, PIVProblem, PIVProcessor
from repro.apps.template_matching import (MatchConfig, MatchProblem,
                                          TemplateMatcher)
from repro.faults.plan import FaultPlan
from repro.gpusim import DeviceSpec
from repro.tuning.autotune import APP_RULES, AutoTuner
from repro.tuning.sweep import SweepRecord, Sweeper, grid_configs


@dataclass(frozen=True)
class HarnessRunner:
    """A picklable sweep evaluator: grid config dict -> SweepRecord.

    Every ``__call__`` goes through
    :func:`repro.apps.harness.run_request`, which builds a fresh
    private :class:`ExecutionContext` and (when ``fault_plan`` is set)
    re-installs the seeded injector inside whatever worker runs it —
    the guarantee that makes chaos sweeps work under process pools.
    Because each evaluation is hermetic, results are bit-identical
    across ``jobs``/pool choices.
    """

    app: str
    spec: ProblemSpec
    specialize: bool = True
    sample_blocks: int = 2
    functional: bool = False
    engine: Optional[str] = None
    fault_plan: Optional[FaultPlan] = None
    #: Trace each evaluation inside its private context; the span
    #: export and metrics snapshot ride the record back (the Sweeper
    #: grafts them into its own trace as ``cell:<index>`` subtrees).
    trace: bool = False

    def __call__(self, config: dict) -> SweepRecord:
        harness = get_harness(self.app)
        app_config = harness.sweep_config(
            config, specialize=self.specialize,
            sample_blocks=self.sample_blocks,
            functional=self.functional, engine=self.engine)
        result = run_request(RunRequest(self.spec, app_config,
                                        fault_plan=self.fault_plan,
                                        trace=self.trace))
        return SweepRecord(config=config, seconds=result.seconds,
                           reg_count=result.reg_count,
                           occupancy=result.occupancy,
                           counters=result.counters,
                           faults=result.faults,
                           trace=result.trace,
                           metrics=result.metrics,
                           profiles=list(result.profiles))


def harness_sweep(app: str, problem, axes: Mapping[str, Iterable], *,
                  device: str = "c2070", seed: int = 0,
                  memory_bytes: int = 64 * 1024 * 1024,
                  specialize: bool = True, sample_blocks: int = 2,
                  functional: bool = False,
                  engine: Optional[str] = None,
                  fault_plan: Optional[FaultPlan] = None,
                  jobs: int = 1, pool: str = "thread",
                  start_method: Optional[str] = None,
                  trace: bool = False, fleet=None,
                  autotune: bool = False, **tuner_options) -> Sweeper:
    """Sweep *axes* for one app via the picklable harness protocol.

    Returns the :class:`Sweeper` after running, so callers read
    ``.records`` (grid order) and the exact ``.cache_report``.  With
    ``trace=True`` every cell is traced in its worker (thread or
    process) and the sweeper's own trace aggregates the cells.

    ``fleet`` shards the grid across a
    :class:`~repro.runtime.fleet.DeviceFleet` instead of a local pool
    (*device* must be one of the fleet's device models); records merge
    back in grid order, bit-identical to the unfleeted sweep.

    ``autotune=True`` replaces the exhaustive grid walk with the
    profile-guided :class:`~repro.tuning.autotune.AutoTuner`
    (``tuner_options`` — ``budget``, ``probes``, ``patience``, … —
    forward to it): the returned sweeper's ``records`` then hold only
    the pruned evaluation sequence and the tuner itself hangs off
    ``sweeper.tuner``.
    """
    if autotune:
        tuner = harness_autotune(
            app, problem, axes, device=device, seed=seed,
            memory_bytes=memory_bytes, specialize=specialize,
            sample_blocks=sample_blocks, engine=engine,
            fault_plan=fault_plan, jobs=jobs, pool=pool,
            start_method=start_method, trace=trace, **tuner_options)
        tuner.sweeper.tuner = tuner
        return tuner.sweeper
    if tuner_options:
        raise TypeError("tuner options "
                        f"{sorted(tuner_options)} need autotune=True")
    spec = ProblemSpec(app, problem, seed=seed, device=device,
                       memory_bytes=memory_bytes)
    runner = HarnessRunner(app, spec, specialize=specialize,
                           sample_blocks=sample_blocks,
                           functional=functional, engine=engine,
                           fault_plan=fault_plan, trace=trace)
    sweeper = Sweeper(runner, jobs=jobs, pool=pool,
                      start_method=start_method, trace=trace,
                      fleet=fleet)
    sweeper.sweep(grid_configs(**{k: list(v) for k, v in axes.items()}))
    return sweeper


def harness_autotune(app: str, problem, axes: Mapping[str, Iterable],
                     *, device: str = "c2070", seed: int = 0,
                     memory_bytes: int = 64 * 1024 * 1024,
                     specialize: bool = True, sample_blocks: int = 2,
                     engine: Optional[str] = None,
                     fault_plan: Optional[FaultPlan] = None,
                     jobs: int = 1, pool: str = "thread",
                     start_method: Optional[str] = None,
                     trace: bool = False, **tuner_options) -> AutoTuner:
    """Profile-guided pruned tuning of *axes* for one app.

    Builds a ``trace=True`` :class:`HarnessRunner` (launch profiles
    must ride each record back — that is the diagnosis signal), wires
    it to an :class:`~repro.tuning.autotune.AutoTuner` under the
    app's :data:`~repro.tuning.autotune.APP_RULES`, runs
    :meth:`~repro.tuning.autotune.AutoTuner.tune`, and returns the
    tuner (``.result`` holds the verdict, ``.records`` the pruned
    evaluation sequence).  Evaluation still goes through a
    :class:`Sweeper`, so ``jobs``/``pool``/``fault_plan`` behave
    exactly as in :func:`harness_sweep` and records stay bit-identical
    across pool flavors.  ``tuner_options`` (``budget``, ``probes``,
    ``extra_probes``, ``patience``, ``quorum``, ``max_passes``,
    ``rules``, ``seed`` as ``tuner_seed``) forward to the tuner.
    """
    spec = ProblemSpec(app, problem, seed=seed, device=device,
                       memory_bytes=memory_bytes)
    runner = HarnessRunner(app, spec, specialize=specialize,
                           sample_blocks=sample_blocks,
                           functional=False, engine=engine,
                           fault_plan=fault_plan, trace=True)
    tuner_options.setdefault("rules", APP_RULES.get(app))
    if "tuner_seed" in tuner_options:
        tuner_options["seed"] = tuner_options.pop("tuner_seed")
    tuner = AutoTuner(runner,
                      {k: list(v) for k, v in axes.items()},
                      jobs=jobs, pool=pool, start_method=start_method,
                      trace=trace, **tuner_options)
    tuner.tune()
    return tuner


def piv_sweep(problem: PIVProblem, device: DeviceSpec,
              img_a: np.ndarray, img_b: np.ndarray,
              rb_values: Iterable[int], thread_values: Iterable[int],
              variant: str = "tree", specialize: bool = True,
              sample_blocks: int = 2,
              cache=None,
              jobs: int = 1,
              engine: Optional[str] = None) -> List[SweepRecord]:
    """Sweep (rb, threads) for one PIV problem on one device."""

    def run(config: dict) -> SweepRecord:
        cfg = PIVConfig(variant=variant, rb=config["rb"],
                        threads=config["threads"],
                        specialize=specialize, functional=False,
                        sample_blocks=sample_blocks, engine=engine)
        proc = PIVProcessor(problem, cfg, device=device, cache=cache)
        result = proc.run(img_a, img_b)
        return SweepRecord(config=config, seconds=result.kernel_seconds,
                           reg_count=result.reg_count,
                           occupancy=result.occupancy)

    sweeper = Sweeper(run, jobs=jobs)
    cache = cache or sweeper.ctx.kernel_cache
    return sweeper.sweep(grid_configs(rb=list(rb_values),
                                      threads=list(thread_values)))


def tm_sweep(problem: MatchProblem, template: np.ndarray,
             frame: np.ndarray, tile_sizes, thread_values,
             device: DeviceSpec, specialize: bool = True,
             sample_blocks: int = 2,
             cache=None,
             jobs: int = 1,
             engine: Optional[str] = None) -> List[SweepRecord]:
    """Sweep (tile, threads) for one template-matching problem."""

    def run(config: dict) -> SweepRecord:
        tw, th = config["tile"]
        cfg = MatchConfig(tile_w=tw, tile_h=th,
                          threads=config["threads"],
                          specialize=specialize, functional=False,
                          sample_blocks=sample_blocks, engine=engine)
        matcher = TemplateMatcher(problem, template, cfg, device=device,
                                  cache=cache)
        result = matcher.match(frame)
        return SweepRecord(config=config,
                           seconds=result.kernel_seconds,
                           reg_count=matcher.numerator_reg_count())

    sweeper = Sweeper(run, jobs=jobs)
    cache = cache or sweeper.ctx.kernel_cache
    return sweeper.sweep(grid_configs(tile=list(tile_sizes),
                                      threads=list(thread_values)))


def bp_sweep(problem: BPProblem, projections: np.ndarray,
             block_shapes, zb_values, device: DeviceSpec,
             specialize: bool = True, sample_blocks: int = 2,
             cache=None,
             jobs: int = 1,
             engine: Optional[str] = None) -> List[SweepRecord]:
    """Sweep (block shape, zb) for a backprojection problem."""

    def run(config: dict) -> SweepRecord:
        bx, by = config["block"]
        cfg = BPConfig(block_x=bx, block_y=by, zb=config["zb"],
                       specialize=specialize, functional=False,
                       sample_blocks=sample_blocks, engine=engine)
        bp = Backprojector(problem, cfg, device=device, cache=cache)
        result = bp.run(projections)
        return SweepRecord(config=config, seconds=result.kernel_seconds,
                           reg_count=result.reg_count,
                           occupancy=result.occupancy)

    sweeper = Sweeper(run, jobs=jobs)
    cache = cache or sweeper.ctx.kernel_cache
    return sweeper.sweep(grid_configs(block=list(block_shapes),
                                      zb=list(zb_values)))

"""Percent-of-peak grids and contour series (Tables 6.21/6.22, Figures
6.1/6.2).

The dissertation's closing analysis shows that *no fixed configuration
is optimal everywhere*: each (problem, device) pair has its own peak,
and clamping a parameter costs a measurable fraction of it.  These
helpers turn sweep records into that presentation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.tuning.sweep import SweepRecord, best_record


def percent_of_peak(records: Sequence[SweepRecord], row_key: str,
                    col_key: str):
    """(rows, cols, grid) where grid[i][j] = % of the sweep's peak.

    Invalid (unlaunchable) cells are None.
    """
    valid = [r for r in records if r.valid]
    peak = best_record(list(records)).seconds
    rows = sorted({r.config[row_key] for r in records})
    cols = sorted({r.config[col_key] for r in records})
    grid: List[List[Optional[float]]] = [
        [None] * len(cols) for _ in rows]
    for r in records:
        i = rows.index(r.config[row_key])
        j = cols.index(r.config[col_key])
        if r.valid:
            grid[i][j] = 100.0 * peak / r.seconds
    return rows, cols, grid


def peak_grid_text(records, row_key, col_key, row_label=None,
                   col_label=None) -> Tuple[List[str], List[List]]:
    """Headers+rows for reporting.format_table: % of peak per cell."""
    rows, cols, grid = percent_of_peak(records, row_key, col_key)
    headers = [f"{row_label or row_key}\\{col_label or col_key}"] + \
        [str(c) for c in cols]
    body = []
    for value, line in zip(rows, grid):
        body.append([value] + [("-" if cell is None else f"{cell:.0f}%")
                               for cell in line])
    return headers, body


def contour_series(records, row_key, col_key):
    """Figure-style series: one (row_value, [(col, pct), ...]) per row.

    This is the printable equivalent of the Figure 6.1/6.2 contour
    plots — each series traces relative performance along the thread
    axis for one register-count level.
    """
    rows, cols, grid = percent_of_peak(records, row_key, col_key)
    series = []
    for value, line in zip(rows, grid):
        pts = [(c, round(p, 1)) for c, p in zip(cols, line)
               if p is not None]
        series.append((value, pts))
    return series

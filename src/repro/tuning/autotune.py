"""Profile-guided autotuning over configuration grids (DESIGN.md §10).

The exhaustive :class:`~repro.tuning.sweep.Sweeper` pays for every
point of a configuration grid.  The :class:`AutoTuner` closes the loop
the observability stack opened: every traced launch already emits a
:class:`~repro.obs.profile.LaunchProfile` (occupancy and its limiter,
coalesced transactions, divergence, stalls, the modeled boundedness),
so a handful of *probe* evaluations is enough to diagnose what limits
the kernel and to search only the neighborhood that diagnosis says can
move the needle.

The procedure (each step deterministic in ``(axes, seed)``):

1. **Probe** — evaluate a small stratified probe set: ``probes``
   points spread along the grid diagonal in index space (endpoints
   included, indices rounded half-up), plus ``extra_probes`` seeded
   uniform picks.  Probes run through the same :class:`Sweeper` as
   everything else, so pools, caches, fault plans, and metrics apply.
2. **Diagnose** — for each valid probe carrying profiles, classify
   the *dominant* launch (largest modeled seconds) into one limiter
   label via :func:`diagnose`.  The incumbent (fastest) probe's label
   is adopted iff at least ``quorum`` of the diagnosable probes agree
   with it; otherwise the tuner falls back to the full grid.
3. **Expand** — walk the axes in the order the diagnosis rule names
   (:data:`APP_RULES`): numeric axes by an outward ring search around
   the incumbent (offsets +1, -1, +2, -2, … — a direction dies after
   ``patience`` consecutive non-improvements), tuple/categorical axes
   by an in-order scan with the same early stop.  Passes over the
   axis list repeat while the incumbent keeps moving (already-seen
   configs are never re-evaluated), up to ``max_passes``.
4. **Stop** — on a pass with no improvement, on budget exhaustion, or
   after the full-grid fallback.

``budget=N`` is a hard cap: the tuner never performs more than N
evaluations, truncating the probe set, walk rounds, and even the
fallback deterministically.  With ``budget=None`` (default) the
fallback may spend up to the full grid — the <25 %-of-grid target
(ROADMAP) is a property of the agreeing-diagnosis fast path, which the
Table 6.21/6.22 workload grids take; :data:`SECONDS_RTOL` documents
the modeled-seconds tolerance within which a pruned optimum is
considered equivalent to the exhaustive one.

Every decision is recorded: ``tuner.*`` counters/gauges on the
sweeper's :class:`~repro.obs.metrics.MetricsRegistry`
(``tuner.limiter.<label>`` per diagnosed probe, ``tuner.diagnosis``,
``tuner.fallback``, ``tuner.evals``…), ``tuner:<phase>`` spans when
the sweep context traces, and a plain-string :attr:`AutoTuner.decisions`
log that determinism tests compare verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Number
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

import numpy as np

from repro.faults.errors import FaultError
from repro.tuning.sweep import (SweepRecord, Sweeper, best_record,
                                grid_configs)

__all__ = ["APP_RULES", "AutoTuner", "DIV_RATIO", "LIMITER_LABELS",
           "OCC_LOW", "SECONDS_RTOL", "TuneResult", "diagnose"]

#: Documented equivalence tolerance on modeled seconds: a pruned
#: optimum within this relative distance of the exhaustive optimum
#: counts as matching (the paper's tables report whole percents).
SECONDS_RTOL = 0.01

#: Occupancy below which a ``registers`` / ``shared memory`` occupancy
#: limiter is diagnosed as the bottleneck.
OCC_LOW = 0.5

#: Divergent-branch fraction above which divergence is the diagnosis.
DIV_RATIO = 0.05

#: Every label :func:`diagnose` can produce.
LIMITER_LABELS = ("occupancy", "divergence", "bandwidth", "latency",
                  "issue")

#: Diagnosis rules per app (DESIGN.md §10): limiter label -> the axis
#: priority order the expansion walks.  Occupancy/issue diagnoses lead
#: with the register-pressure knob (PIV ``rb``, backprojection ``zb``),
#: latency leads with the thread/TLP knob, bandwidth with the
#: coalescing-shape knob (thread count, tile, block shape).
APP_RULES: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "piv": {
        "occupancy": ("rb", "threads"),
        "issue": ("rb", "threads"),
        "latency": ("threads", "rb"),
        "bandwidth": ("threads", "rb"),
        "divergence": ("threads", "rb"),
    },
    "template_matching": {
        "occupancy": ("threads", "tile"),
        "issue": ("tile", "threads"),
        "latency": ("threads", "tile"),
        "bandwidth": ("tile", "threads"),
        "divergence": ("tile", "threads"),
    },
    "backprojection": {
        "occupancy": ("zb", "block"),
        "issue": ("zb", "block"),
        "latency": ("zb", "block"),
        "bandwidth": ("block", "zb"),
        "divergence": ("block", "zb"),
    },
}


def diagnose(profile) -> str:
    """Classify one :class:`LaunchProfile` into a limiter label.

    The rule table (DESIGN.md §10), first match wins:

    1. ``occupancy`` — occupancy below :data:`OCC_LOW` *and* capped by
       register or shared-memory pressure (the knobs specialization
       moves);
    2. ``divergence`` — more than :data:`DIV_RATIO` of retired
       instructions were divergent branches;
    3. otherwise the timing model's own boundedness: ``bandwidth``,
       ``latency``, or ``issue``.
    """
    occ = float(getattr(profile, "occupancy", 1.0))
    limit = str(getattr(profile, "occupancy_limit", ""))
    if occ < OCC_LOW and limit in ("registers", "shared memory"):
        return "occupancy"
    instructions = int(getattr(profile, "instructions", 0))
    divergent = int(getattr(profile, "divergent_branches", 0))
    if instructions and divergent / instructions > DIV_RATIO:
        return "divergence"
    bound = str(getattr(profile, "bound", ""))
    return bound if bound in ("bandwidth", "latency", "issue") \
        else "issue"


@dataclass(frozen=True)
class ProbeDiagnosis:
    """One probe's limiter classification (``label == ""``: no
    profile rode back, so the probe is undiagnosable)."""

    config: dict
    label: str
    kernel: str = ""
    seconds: float = 0.0


@dataclass
class TuneResult:
    """What one :meth:`AutoTuner.tune` produced."""

    best: SweepRecord
    records: List[SweepRecord]
    evals: int
    grid_size: int
    diagnosis: str
    diagnoses: List[ProbeDiagnosis]
    fallback: bool
    reason: str
    passes: int
    #: Config keys in exact evaluation order (the determinism
    #: contract: same seed -> same sequence).
    sequence: List[Tuple] = field(default_factory=list)

    @property
    def frac(self) -> float:
        """Fraction of the grid actually evaluated."""
        return self.evals / self.grid_size if self.grid_size else 0.0


def _axis_is_numeric(values: Sequence) -> bool:
    return all(isinstance(v, Number) and not isinstance(v, bool)
               for v in values)


def _key(config: dict) -> Tuple:
    return tuple(sorted(config.items()))


def _better(a: SweepRecord, b: Optional[SweepRecord]) -> bool:
    """Strict improvement under :func:`best_record`'s total order."""
    if not a.valid:
        return False
    if b is None or not b.valid:
        return True
    return (a.seconds, a.key()) < (b.seconds, b.key())


class AutoTuner:
    """Profile-guided pruned search over a configuration grid.

    Args:
        run: the evaluation callable (``config dict -> SweepRecord``).
            For profile-guided mode it must attach launch profiles to
            its records — a ``trace=True``
            :class:`~repro.tuning.app_sweeps.HarnessRunner` does; a
            profile-less run still works but always takes the
            full-grid fallback.
        axes: the grid, as ``name -> value list`` (values keep their
            declared order; neighborhoods are index neighborhoods).
        rules: limiter label -> axis priority order; missing labels
            (and ``rules=None``) walk the axes in declared order.
            :data:`APP_RULES` has the per-app tables.
        probes: diagonal probe count (endpoints always included).
        extra_probes: additional seeded uniform probe picks.
        seed: seeds the extra-probe RNG (and nothing else).
        budget: hard evaluation cap (None = uncapped).
        patience: consecutive non-improvements that kill a walk
            direction / categorical scan.
        quorum: fraction of diagnosable probes that must share the
            incumbent's label; below it the tuner falls back.
        max_passes: cap on expansion passes over the axis list.
        jobs / pool / start_method / context / trace: forwarded to the
            internal :class:`Sweeper` (one per tuner; its ``records``
            are exactly the tuner's evaluations, in eval order).
    """

    def __init__(self, run: Callable[[dict], SweepRecord],
                 axes: Mapping[str, Sequence], *,
                 rules: Optional[Mapping[str, Sequence[str]]] = None,
                 probes: int = 3, extra_probes: int = 0, seed: int = 0,
                 budget: Optional[int] = None, patience: int = 2,
                 quorum: float = 0.5, max_passes: int = 4,
                 jobs: int = 1, pool: str = "thread",
                 start_method: Optional[str] = None,
                 context=None, trace: bool = False):
        if probes < 1:
            raise ValueError(f"probes must be >= 1, got {probes}")
        if extra_probes < 0:
            raise ValueError("extra_probes must be >= 0")
        if budget is not None and budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if not 0.0 <= quorum <= 1.0:
            raise ValueError("quorum must be in [0, 1]")
        self.axes: Dict[str, list] = {k: list(v)
                                      for k, v in axes.items()}
        if not self.axes or any(not v for v in self.axes.values()):
            raise ValueError("every axis needs at least one value")
        rules = rules or {}
        for label, order in rules.items():
            unknown = [a for a in order if a not in self.axes]
            if unknown:
                raise ValueError(f"rule {label!r} names unknown axes "
                                 f"{unknown}; have {sorted(self.axes)}")
        self.rules = {label: tuple(order)
                      for label, order in rules.items()}
        self.grid = grid_configs(**self.axes)
        self.probes = probes
        self.extra_probes = extra_probes
        self.seed = seed
        self.budget = budget
        self.patience = patience
        self.quorum = quorum
        self.max_passes = max_passes
        self.sweeper = Sweeper(run, jobs=jobs, pool=pool,
                               context=context,
                               start_method=start_method, trace=trace)
        self._seen: Dict[Tuple, SweepRecord] = {}
        #: Plain-string decision log, one entry per probe pick,
        #: diagnosis, walk step, and fallback — the determinism
        #: contract compares it verbatim across runs.
        self.decisions: List[str] = []
        self.result: Optional[TuneResult] = None

    # -- evaluation plumbing -------------------------------------------

    @property
    def records(self) -> List[SweepRecord]:
        """Every evaluated record, in evaluation order."""
        return self.sweeper.records

    @property
    def metrics(self):
        """The sweeper's registry (``tuner.*`` + ``sweep.*``)."""
        return self.sweeper.metrics

    def _budget_left(self) -> float:
        if self.budget is None:
            return float("inf")
        return self.budget - len(self.records)

    def _evaluate(self, configs: List[dict],
                  phase: str) -> List[SweepRecord]:
        """Evaluate *configs* (deduplicated, budget-truncated) through
        the sweeper; returns one record per requested config (cached
        records included), in request order."""
        fresh, fresh_keys = [], set()
        for config in configs:
            key = _key(config)
            if key in self._seen or key in fresh_keys:
                continue
            if len(fresh) >= self._budget_left():
                self.decisions.append(f"{phase}:budget-truncated")
                break
            fresh_keys.add(key)
            fresh.append(config)
        if fresh:
            tracer = self.sweeper.ctx.tracer
            if tracer is None:
                new = self.sweeper.sweep(fresh)[-len(fresh):]
            else:
                with tracer.span(f"tuner:{phase}", "tuner",
                                 cells=len(fresh)):
                    new = self.sweeper.sweep(fresh)[-len(fresh):]
            for record in new:
                self._seen[record.key()] = record
                self.decisions.append(
                    f"{phase}:eval:" + " ".join(
                        f"{k}={v}" for k, v in sorted(
                            record.config.items())))
        return [self._seen[_key(c)] for c in configs
                if _key(c) in self._seen]

    # -- probe phase ---------------------------------------------------

    def _diagonal_indices(self) -> List[Tuple[int, ...]]:
        names = list(self.axes)
        lens = [len(self.axes[n]) for n in names]
        count = max(1, min(self.probes, max(lens)))
        picks = []
        for i in range(count):
            if count == 1:
                frac = (0, 1)
            else:
                frac = (i, count - 1)
            # Round half up so the midpoint of an even-length axis
            # lands on the upper-middle index, deterministically.
            idx = tuple(((k - 1) * 2 * frac[0] + frac[1])
                        // (2 * frac[1]) for k in lens)
            picks.append(idx)
        return picks

    def _probe_configs(self) -> List[dict]:
        names = list(self.axes)
        seen, probes = set(), []
        for idx in self._diagonal_indices():
            if idx in seen:
                continue
            seen.add(idx)
            probes.append({n: self.axes[n][i]
                           for n, i in zip(names, idx)})
        if self.extra_probes:
            rng = np.random.default_rng(self.seed)
            lens = [len(self.axes[n]) for n in names]
            picked = 0
            # Bounded rejection sampling keeps the draw sequence (and
            # with it the probe set) a pure function of the seed.
            for _ in range(16 * self.extra_probes):
                if picked >= self.extra_probes:
                    break
                idx = tuple(int(rng.integers(k)) for k in lens)
                if idx in seen:
                    continue
                seen.add(idx)
                picked += 1
                probes.append({n: self.axes[n][i]
                               for n, i in zip(names, idx)})
        for config in probes:
            self.decisions.append("probe:" + " ".join(
                f"{k}={v}" for k, v in sorted(config.items())))
        return probes

    # -- diagnosis -----------------------------------------------------

    @staticmethod
    def _diagnose_record(record: SweepRecord) -> ProbeDiagnosis:
        if not record.valid or not record.profiles:
            return ProbeDiagnosis(config=record.config, label="")
        dominant = max(record.profiles,
                       key=lambda p: float(getattr(p, "seconds", 0.0)))
        return ProbeDiagnosis(
            config=record.config, label=diagnose(dominant),
            kernel=str(getattr(dominant, "kernel", "")),
            seconds=float(getattr(dominant, "seconds", 0.0)))

    def _choose(self, probe_records: List[SweepRecord]
                ) -> Tuple[str, str, List[ProbeDiagnosis]]:
        """(label, fallback reason, per-probe diagnoses); empty label
        means fall back."""
        diagnoses = [self._diagnose_record(r) for r in probe_records]
        for d in diagnoses:
            if d.label:
                self.metrics.inc(f"tuner.limiter.{d.label}")
        incumbent = None
        for record in probe_records:
            if _better(record, incumbent):
                incumbent = record
        if incumbent is None:
            return "", "all probes invalid", diagnoses
        labelled = [d for d in diagnoses if d.label]
        if not labelled:
            return "", "no probe produced a launch profile", diagnoses
        incumbent_diag = next(
            (d for d, r in zip(diagnoses, probe_records)
             if r is incumbent), None)
        chosen = incumbent_diag.label \
            if incumbent_diag and incumbent_diag.label \
            else labelled[0].label
        agree = sum(d.label == chosen for d in labelled) / len(labelled)
        self.decisions.append(
            f"diagnose:{chosen}:agree={agree:.2f}")
        if agree < self.quorum:
            counts = sorted({d.label for d in labelled})
            return "", (f"diagnoses disagree ({', '.join(counts)}: "
                        f"{agree:.0%} share < {self.quorum:.0%} "
                        "quorum)"), diagnoses
        return chosen, "", diagnoses

    # -- expansion -----------------------------------------------------

    def _incumbent(self) -> Optional[SweepRecord]:
        best = None
        for record in self.records:
            if _better(record, best):
                best = record
        return best

    def _walk_numeric(self, axis: str) -> bool:
        """Ring search along *axis* around the incumbent; True iff the
        incumbent improved."""
        values = self.axes[axis]
        start = self._incumbent()
        if start is None or len(values) <= 1:
            return False
        center = values.index(start.config[axis])
        improved = False
        streak = {+1: 0, -1: 0}
        alive = {+1, -1}
        step = 0
        while alive and self._budget_left() > 0:
            step += 1
            batch, dirs = [], []
            for direction in (+1, -1):
                if direction not in alive:
                    continue
                idx = center + direction * step
                if not 0 <= idx < len(values):
                    alive.discard(direction)
                    continue
                config = dict(start.config)
                config[axis] = values[idx]
                batch.append(config)
                dirs.append(direction)
            if not batch:
                break
            self._evaluate(batch, phase=f"walk:{axis}")
            incumbent = self._incumbent()
            for direction, config in zip(dirs, batch):
                record = self._seen.get(_key(config))
                if record is None:  # budget-truncated mid-batch
                    alive.discard(direction)
                    continue
                if _better(record, incumbent) or record is incumbent:
                    improved = True
                    streak[direction] = 0
                    incumbent = record
                else:
                    streak[direction] += 1
                    if streak[direction] >= self.patience:
                        alive.discard(direction)
        return improved

    def _scan_categorical(self, axis: str) -> bool:
        """In-order early-stopped scan of a non-numeric axis with the
        other axes pinned at the incumbent; True iff improved."""
        values = self.axes[axis]
        start = self._incumbent()
        if start is None or len(values) <= 1:
            return False
        improved, streak = False, 0
        for value in values:
            if value == start.config[axis]:
                continue
            if streak >= self.patience or self._budget_left() <= 0:
                break
            config = dict(start.config)
            config[axis] = value
            before = self._incumbent()
            self._evaluate([config], phase=f"scan:{axis}")
            record = self._seen.get(_key(config))
            if record is not None and _better(record, before):
                improved, streak = True, 0
            else:
                streak += 1
        return improved

    def _expand(self, label: str) -> int:
        """Coordinate passes over the rule's axis order; returns the
        number of passes run."""
        order = self.rules.get(label) or tuple(self.axes)
        # Rule orders may name a subset; un-named axes follow in
        # declared order so every axis stays reachable.
        order = tuple(order) + tuple(a for a in self.axes
                                     if a not in order)
        passes = 0
        while passes < self.max_passes and self._budget_left() > 0:
            passes += 1
            self.decisions.append(f"pass:{passes}")
            improved = False
            for axis in order:
                if _axis_is_numeric(self.axes[axis]):
                    improved |= self._walk_numeric(axis)
                else:
                    improved |= self._scan_categorical(axis)
            if not improved:
                break
        return passes

    # -- fallback and completion ---------------------------------------

    def _fallback(self, reason: str) -> None:
        self.metrics.inc("tuner.fallback")
        self.decisions.append(f"fallback:{reason}")
        remaining = [c for c in self.grid
                     if _key(c) not in self._seen]
        self._evaluate(remaining, phase="fallback")

    def _raise_if_faulted(self) -> None:
        """All-invalid tuning under a single fault class re-raises it
        typed, so chaos callers dispatch on kind, not on strings."""
        if not self.records or any(r.valid for r in self.records):
            return
        classes = {r.error.split(":", 1)[0].strip()
                   for r in self.records}
        if len(classes) != 1:
            return
        name = classes.pop()
        for cls in FaultError.__subclasses__():
            if cls.__name__ == name:
                raise cls(self.records[0].error)

    def tune(self) -> TuneResult:
        """Run the probe → diagnose → expand (or fallback) pipeline.

        Raises:
            FaultError: every evaluation failed with one injected
                fault class (chaos sweeps).
            ValueError: no configuration could run at all.
        """
        probe_records = self._evaluate(self._probe_configs(),
                                       phase="probe")
        self.metrics.inc("tuner.probes", len(probe_records))
        label, reason, diagnoses = self._choose(probe_records)
        passes = 0
        if label:
            self.metrics.inc(f"tuner.diagnosis.{label}")
            before = len(self.records)
            passes = self._expand(label)
            self.metrics.inc("tuner.expansions",
                             len(self.records) - before)
            self.metrics.inc("tuner.passes", passes)
        else:
            self._fallback(reason)
        self._raise_if_faulted()
        evals = len(self.records)
        self.metrics.gauge("tuner.evals", evals)
        self.metrics.gauge("tuner.grid", len(self.grid))
        self.result = TuneResult(
            best=best_record(self.records), records=self.records,
            evals=evals, grid_size=len(self.grid),
            diagnosis=label, diagnoses=diagnoses,
            fallback=not label, reason=reason, passes=passes,
            sequence=[r.key() for r in self.records])
        return self.result

"""repro — reproduction of *Kernel Specialization for Improved
Adaptability and Performance on GPUs* (N. Moore, 2012 / IPPS 2013).

The one-stop imports for the common workflow::

    from repro import nvcc, GPU, TESLA_C1060, TESLA_C2070

    module = nvcc(SOURCE, defines={"TILE": 16})   # specialize
    gpu = GPU(TESLA_C2070)
    result = gpu.launch(module.kernel("mykernel"), grid, block, args)

Subpackages:

* :mod:`repro.kernelc` — the CUDA-C-subset compiler (``nvcc``).
* :mod:`repro.gpusim` — the SIMT GPU simulator (both device models).
* :mod:`repro.gpupf`  — the GPU Prototyping Framework (§4.4).
* :mod:`repro.apps`   — template matching, PIV, backprojection (Ch. 5).
* :mod:`repro.baselines` — the CPU / FPGA comparator models.
* :mod:`repro.tuning` — configuration sweeps and peak analyses.
"""

from repro.gpusim import GPU, TESLA_C1060, TESLA_C2070
from repro.kernelc import CompileError, nvcc

__version__ = "1.0.0"
__all__ = ["nvcc", "CompileError", "GPU", "TESLA_C1060", "TESLA_C2070",
           "__version__"]

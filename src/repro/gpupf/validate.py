"""Validation and parameterization harness (the §4.4.2 MATLAB tool).

The dissertation paired GPU-PF with a MATLAB-based tool that verified
GPU outputs against reference code, explored parameterizations, and
collected performance data.  This module is its Python equivalent:
compare any pipeline/kernel output against a reference function over a
set of parameter points, producing a pass/fail report with error
statistics and timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np


@dataclass
class ValidationCase:
    """One compared parameter point."""

    label: str
    passed: bool
    max_abs_err: float
    max_rel_err: float
    ref_seconds: float
    gpu_seconds: float
    detail: str = ""


@dataclass
class ValidationReport:
    """Aggregate over all compared points."""

    cases: List[ValidationCase] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.cases) and all(c.passed for c in self.cases)

    @property
    def failures(self) -> List[ValidationCase]:
        return [c for c in self.cases if not c.passed]

    def summary(self) -> str:
        lines = [f"validation: {len(self.cases)} cases, "
                 f"{len(self.failures)} failures"]
        for c in self.cases:
            status = "PASS" if c.passed else "FAIL"
            lines.append(
                f"  [{status}] {c.label}: max|err|={c.max_abs_err:.3g} "
                f"rel={c.max_rel_err:.3g} "
                f"(ref {c.ref_seconds * 1e3:.1f} ms, "
                f"gpu-sim {c.gpu_seconds * 1e6:.1f} us){c.detail}")
        return "\n".join(lines)


class Validator:
    """Runs implementation-vs-reference comparisons over parameters.

    Args:
        run_gpu: ``params -> (ndarray, simulated_seconds)``.
        run_reference: ``params -> ndarray``.
        atol / rtol: acceptance tolerances (fp32 pipelines typically
            need ~1e-4 absolute on normalized data).
    """

    def __init__(self, run_gpu: Callable, run_reference: Callable,
                 atol: float = 1e-4, rtol: float = 1e-4):
        self.run_gpu = run_gpu
        self.run_reference = run_reference
        self.atol = atol
        self.rtol = rtol

    def check(self, params: dict,
              label: Optional[str] = None) -> ValidationCase:
        label = label or ", ".join(f"{k}={v}" for k, v in params.items())
        t0 = time.perf_counter()
        expected = np.asarray(self.run_reference(params))
        ref_seconds = time.perf_counter() - t0
        got, gpu_seconds = self.run_gpu(params)
        got = np.asarray(got)
        if got.shape != expected.shape:
            return ValidationCase(
                label=label, passed=False, max_abs_err=float("inf"),
                max_rel_err=float("inf"), ref_seconds=ref_seconds,
                gpu_seconds=gpu_seconds,
                detail=f" shape {got.shape} != {expected.shape}")
        abs_err = np.abs(got.astype(np.float64)
                         - expected.astype(np.float64))
        scale = np.maximum(np.abs(expected.astype(np.float64)), 1e-30)
        max_abs = float(abs_err.max()) if abs_err.size else 0.0
        max_rel = float((abs_err / scale).max()) if abs_err.size else 0.0
        passed = bool(np.allclose(got, expected, atol=self.atol,
                                  rtol=self.rtol))
        return ValidationCase(label=label, passed=passed,
                              max_abs_err=max_abs, max_rel_err=max_rel,
                              ref_seconds=ref_seconds,
                              gpu_seconds=gpu_seconds)

    def sweep(self, param_points: Iterable[dict]) -> ValidationReport:
        report = ValidationReport()
        for params in param_points:
            report.cases.append(self.check(params))
        return report

"""GPU-PF — the GPU Prototyping Framework (dissertation §4.4.1).

A host-side framework for building streaming GPU processing pipelines
out of three concept classes:

* **Parameters** (Table 4.1) — scalar/structured values that everything
  else is defined in terms of;
* **Resources** (Tables 4.2/4.3) — modules, kernels, memories, textures,
  whose concrete realization (allocation size, compiled binary) is a
  function of parameters;
* **Actions** (Table 4.4) — memory copies, kernel executions, user
  functions, and file I/O, executed on a schedule each pipeline
  iteration.

A program's lifetime has three phases: **specification** (build the
object graph — nothing is allocated), **refresh** (allocate and compile
everything whose parameters changed, including running nvcc for kernel
specialization, with binary caching), and **execution** (iterate the
pipeline).  Parameter updates mark dependents dirty; the next refresh
touches only the affected subgraph.
"""

from repro.gpupf.cache import KernelCache
from repro.gpupf.params import (ArrayTraits, BooleanParam, FloatParam,
                                IntParam, MemoryExtent, MemorySubset,
                                PairParam, Parameter, PointerParam,
                                Schedule, StepParam, TripletParam,
                                TypeParam)
from repro.gpupf.pipeline import (Pipeline, PipelineError,
                                  PipelineFaultError)

__all__ = [
    "Pipeline", "PipelineError", "PipelineFaultError", "KernelCache",
    "Parameter", "IntParam", "FloatParam", "BooleanParam",
    "PointerParam", "TripletParam", "PairParam", "TypeParam",
    "StepParam", "MemoryExtent", "MemorySubset", "Schedule",
    "ArrayTraits",
]

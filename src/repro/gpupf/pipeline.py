"""The GPU-PF pipeline: specification → refresh → execution.

Factory methods build the object graph during specification (nothing
allocates or compiles); :meth:`Pipeline.refresh` realizes dirty
resources in creation order (dependencies are created before their
dependents by construction); :meth:`Pipeline.run` iterates the
pipeline, firing scheduled actions and advancing step parameters and
subset windows.  Appendix-G-style log output records what each phase
did.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.faults.errors import FaultError
from repro.faults.retry import RetryPolicy, retry_call
from repro.gpupf import actions as act
from repro.gpupf import params as par
from repro.gpupf import resources as res
from repro.gpupf.cache import KernelCache
from repro.kernelc.compiler import CompileError
from repro.obs.metrics import MetricsRegistry
from repro.runtime.context import (ExecutionContext, current_context,
                                   using_context)


class PipelineError(Exception):
    """Specification errors (duplicate names, unknown references...)."""


class PipelineFaultError(PipelineError):
    """A fault exhausted the resilience budget; names the fault site.

    Raised instead of the underlying :class:`~repro.faults.FaultError`
    once retries (and, for specialized compiles, the RE fallback) are
    spent — so pipeline callers always see a typed, diagnosable error
    that records *where* the system gave up.
    """

    def __init__(self, message: str, site: str = "unknown",
                 phase: str = ""):
        super().__init__(message)
        self.site = site
        self.phase = phase


class Pipeline:
    """A GPU-PF application pipeline bound to one simulated device."""

    def __init__(self, gpu, name: str = "pipeline",
                 cache: Optional[KernelCache] = None,
                 verbose: bool = False,
                 engine: Optional[str] = None,
                 retry: Optional[RetryPolicy] = None,
                 context: Optional[ExecutionContext] = None,
                 trace: bool = False):
        self.gpu = gpu
        #: The ExecutionContext this pipeline charges its work to:
        #: explicit > the GPU's > the caller's current one.
        self.ctx = (context or getattr(gpu, "ctx", None)
                    or current_context())
        self.name = name
        self.cache = cache or self.ctx.kernel_cache
        self.verbose = verbose
        #: Simulator engine for every kernel_exec of this pipeline
        #: (None = process default); per-action ``engine=`` overrides.
        self.engine = engine
        #: Retry budget for transient compile/launch faults.
        self.retry = retry or RetryPolicy()
        self.params: Dict[str, par.Parameter] = {}
        self.resources: Dict[str, res.Resource] = {}
        self.actions: Dict[str, act.Action] = {}
        self._subsets: List[res.SubsetMemory] = []
        self._steps: List[par.StepParam] = []
        self.iteration = 0
        self.log: List[str] = []
        self.refresh_count = 0
        #: Fault/retry/degradation accounting, one counter taxonomy:
        #: ``fault.<site>`` / ``retry.<site>`` / ``pipeline.fallbacks``
        #: counters (see health_report(), the thin view over this).
        #: Per-pipeline so two pipelines on one context stay exact;
        #: every increment is mirrored into ``ctx.metrics`` for
        #: context-wide aggregation.
        self.metrics = MetricsRegistry()
        self._degraded: Dict[str, str] = {}  # module name -> reason
        if trace:
            self.ctx.enable_tracing(name)

    # -- logging -----------------------------------------------------

    def _log(self, message: str) -> None:
        self.log.append(message)
        if self.verbose:
            print(f"[{self.name}] {message}")

    # -- resilience ----------------------------------------------------

    def _record_fault(self, site: str, where: str) -> None:
        self.metrics.inc(f"fault.{site}")
        self.ctx.metrics.inc(f"fault.{site}")
        tracer = self.ctx.tracer
        if tracer is not None:
            tracer.event(f"fault.{site}", "fault", where=where,
                         pipeline=self.name)
        self._log(f"fault: {site} at {where}")

    def _record_retry(self, site: str, where: str, attempt: int,
                      delay: float) -> None:
        # A retried attempt is also an observed fault: both counters
        # move so health_report() never under-reports fault traffic.
        self.metrics.inc(f"fault.{site}")
        self.metrics.inc(f"retry.{site}")
        self.ctx.metrics.inc(f"fault.{site}")
        self.ctx.metrics.inc(f"retry.{site}")
        tracer = self.ctx.tracer
        if tracer is not None:
            tracer.event(f"retry.{site}", "fault", where=where,
                         attempt=attempt, backoff_ms=delay * 1e3,
                         pipeline=self.name)
        self._log(f"retry: {where} attempt {attempt} failed at {site}; "
                  f"backing off {delay * 1e3:.2f} ms")

    @staticmethod
    def _re_defines(defines: Mapping[str, object]) -> Dict[str, object]:
        """Strip specialization from a -D set: the RE regime.

        Drops every ``CT_*`` toggle and its companion value macro;
        structural defines (buffer caps and the like) survive, since
        removing them could change results.
        """
        return {name: value for name, value in defines.items()
                if not name.startswith("CT_")
                and f"CT_{name}" not in defines}

    def _compile_module(self, mres: "res.ModuleResource",
                        arch: str) -> tuple:
        """Compile with the full degradation ladder.

        SK compile -> bounded retry -> recompile as RE (no
        specialization defines, same results, recorded as degraded) ->
        :class:`PipelineFaultError`.  Returns ``(module, degraded)``.
        """
        defines = mres.resolved_defines()

        def compile_with(defs):
            def attempt():
                return self.cache.compile(
                    mres.source, defines=defs, arch=arch,
                    opt_level=mres.opt_level, headers=mres.headers)
            return retry_call(
                attempt, policy=self.retry,
                on_retry=lambda exc, att, delay: self._record_retry(
                    getattr(exc, "site", "nvcc.compile"), mres.name,
                    att, delay),
                deadline=self.ctx.deadline)

        try:
            module, _ = compile_with(defines)
            return module, False
        except (CompileError, FaultError) as exc:
            site = getattr(exc, "site", "nvcc.compile")
            self._record_fault(site, f"module {mres.name}")
            fallback = self._re_defines(defines)
            if fallback == dict(defines):
                raise PipelineFaultError(
                    f"module {mres.name!r}: compile failed at fault "
                    f"site {site} after {self.retry.max_attempts} "
                    f"attempts: {exc}", site=site,
                    phase="refresh") from exc
            self._log(f"refresh: module {mres.name} SK compile failed "
                      f"({type(exc).__name__}); degrading to RE")
            try:
                module, _ = compile_with(fallback)
            except (CompileError, FaultError) as exc2:
                site2 = getattr(exc2, "site", "nvcc.compile")
                self._record_fault(site2, f"module {mres.name} (RE)")
                raise PipelineFaultError(
                    f"module {mres.name!r}: SK compile and RE fallback "
                    f"both failed at fault site {site2}: {exc2}",
                    site=site2, phase="refresh") from exc2
            reason = (f"SK compile failed at {site}; running RE "
                      "variant (bit-identical results, unspecialized "
                      "performance)")
            self.metrics.inc("pipeline.fallbacks")
            self.ctx.metrics.inc("pipeline.fallbacks")
            self._degraded[mres.name] = reason
            tracer = self.ctx.tracer
            if tracer is not None:
                tracer.event(f"degraded.{mres.name}", "fault",
                             site=site, pipeline=self.name)
            self._log(f"refresh: module {mres.name} DEGRADED to RE "
                      f"({site})")
            return module, True

    def health_report(self) -> Dict[str, object]:
        """Everything that faulted, retried, or degraded, by site.

        The error-taxonomy counterpart to :meth:`timing_report`: chaos
        runs and production monitors read this to verify no fault went
        unobserved.  A thin view over :attr:`metrics` — the counters
        live in the registry as ``fault.<site>`` / ``retry.<site>`` /
        ``pipeline.fallbacks``; the report keeps its historical keys
        and bare site names.
        """
        return {
            "pipeline": self.name,
            "faults": {name[len("fault."):]: count
                       for name, count
                       in self.metrics.counters("fault.").items()},
            "retries": {name[len("retry."):]: count
                        for name, count
                        in self.metrics.counters("retry.").items()},
            "degraded": dict(self._degraded),
            "fallbacks": self.metrics.counter("pipeline.fallbacks"),
            "cache": self.cache.stats(),
            "refreshes": self.refresh_count,
            "iterations": self.iteration,
        }

    def export_trace(self, path: str) -> None:
        """Write this pipeline's trace as Chrome-trace JSON to *path*.

        Requires ``trace=True`` (or a tracer enabled on the context);
        embeds the context's :meth:`metrics_snapshot` under
        ``otherData.metrics``.  Open the file in ``chrome://tracing``
        or https://ui.perfetto.dev.
        """
        tracer = self.ctx.tracer
        if tracer is None:
            raise PipelineError(
                "no tracer on this pipeline's context; construct the "
                "Pipeline with trace=True (or ctx.enable_tracing())")
        from repro.obs.export import write_trace
        write_trace(path, tracer.to_dict(),
                    metrics=self.ctx.metrics_snapshot())

    # -- registration helpers ------------------------------------------

    def _add_param(self, p):
        if p.name in self.params:
            raise PipelineError(f"duplicate parameter {p.name!r}")
        self.params[p.name] = p
        return p

    def _add_resource(self, r):
        if r.name in self.resources:
            raise PipelineError(f"duplicate resource {r.name!r}")
        self.resources[r.name] = r
        return r

    def _add_action(self, a):
        if a.name in self.actions:
            raise PipelineError(f"duplicate action {a.name!r}")
        self.actions[a.name] = a
        return a

    # -- parameter factories (Table 4.1) -------------------------------

    def int_param(self, name, value=0):
        return self._add_param(par.IntParam(name, int(value)))

    def float_param(self, name, value=0.0):
        return self._add_param(par.FloatParam(name, float(value)))

    def bool_param(self, name, value=False):
        return self._add_param(par.BooleanParam(name, bool(value)))

    def pointer_param(self, name, value=0):
        return self._add_param(par.PointerParam(name, int(value)))

    def triplet_param(self, name, value=(1, 1, 1)):
        p = par.TripletParam(name)
        p.set(value)
        return self._add_param(p)

    def pair_param(self, name, value=(0, 0)):
        p = par.PairParam(name)
        p.set(value)
        return self._add_param(p)

    def type_param(self, name, value="float32"):
        p = par.TypeParam(name)
        p.set(value)
        return self._add_param(p)

    def step_param(self, name, start, stop, stride=1):
        p = self._add_param(par.StepParam(name, start, stop, stride))
        self._steps.append(p)
        return p

    def extent_param(self, name, shape, elem_size):
        return self._add_param(par.MemoryExtent(name, shape, elem_size))

    def subset_param(self, name, offset, count, stride=0):
        return self._add_param(par.MemorySubset(name, offset, count,
                                                stride))

    def schedule_param(self, name, period=1, delay=0):
        return self._add_param(par.Schedule(name, period, delay))

    def array_traits(self, name, **kwargs):
        return self._add_param(par.ArrayTraits(name, **kwargs))

    def derived_param(self, name, inputs, fn):
        p = par.IntParam(name)
        return self._add_param(p.derive_from(list(inputs), fn))

    # -- resource factories (Tables 4.2/4.3) ---------------------------

    def module(self, name, source, defines=None, arch=None, headers=None,
               opt_level=3):
        return self._add_resource(res.ModuleResource(
            name, self, source, defines=defines, arch=arch,
            headers=headers, opt_level=opt_level))

    def kernel(self, name, module, entry=None):
        return self._add_resource(res.KernelResource(
            name, self, module, entry or name))

    def host_memory(self, name, extent, dtype=None):
        return self._add_resource(res.HostMemory(name, self, extent,
                                                 dtype))

    def global_memory(self, name, extent):
        return self._add_resource(res.GlobalMemory(name, self, extent))

    def constant_memory(self, name, module, symbol):
        return self._add_resource(res.ConstantMemory(name, self, module,
                                                     symbol))

    def subset(self, name, parent, window, reset_period=0):
        s = self._add_resource(res.SubsetMemory(name, self, parent,
                                                window, reset_period))
        self._subsets.append(s)
        return s

    def texture(self, name, module, memory, traits=None, symbol=None):
        return self._add_resource(res.TextureResource(
            name, self, module, memory, traits, symbol=symbol))

    # -- action factories (Table 4.4) -----------------------------------

    def copy(self, name, src, dst, schedule=None):
        return self._add_action(act.MemoryCopy(name, self, src, dst,
                                               schedule))

    def kernel_exec(self, name, kernel, grid, block, args,
                    dynamic_smem=0, schedule=None, functional=True,
                    sample_blocks=8, engine=None):
        return self._add_action(act.KernelExecution(
            name, self, kernel, grid, block, args,
            dynamic_smem=dynamic_smem, schedule=schedule,
            functional=functional, sample_blocks=sample_blocks,
            engine=engine if engine is not None else self.engine))

    def user_function(self, name, fn, schedule=None):
        return self._add_action(act.UserFunction(name, self, fn,
                                                 schedule))

    def file_io(self, name, memory, path, mode="read", schedule=None):
        return self._add_action(act.FileIO(name, self, memory, path,
                                           mode, schedule))

    # -- phases ---------------------------------------------------------

    def refresh(self) -> int:
        """Realize every dirty resource; returns how many were touched.

        Resources realize in creation order, which is dependency order
        because factories require dependencies as constructed objects.
        Runs with :attr:`ctx` activated, so compile/cache
        instrumentation that resolves through the current context
        (:func:`~repro.obs.trace.current_tracer`, fault hooks) charges
        this pipeline's context even when the caller holds another.
        """
        tracer = self.ctx.tracer
        with using_context(self.ctx):
            if tracer is None:
                return self._refresh_impl()
            with tracer.span(f"refresh:{self.name}",
                             "pipeline") as span:
                touched = self._refresh_impl()
                span.attrs["touched"] = touched
                return touched

    def _refresh_impl(self) -> int:
        started = time.perf_counter()
        touched = 0
        for resource in self.resources.values():
            try:
                changed = resource.refresh()
            except PipelineError:
                raise
            except FaultError as exc:
                # Typed faults that no resilience layer absorbed
                # (allocation OOM, mostly) surface as PipelineError
                # subclasses naming the site — never a bare Exception.
                self._record_fault(exc.site, f"resource {resource.name}")
                raise PipelineFaultError(
                    f"refresh: resource {resource.name!r} failed at "
                    f"fault site {exc.site}: {exc}", site=exc.site,
                    phase="refresh") from exc
            if changed:
                touched += 1
                detail = ""
                if isinstance(resource, res.ModuleResource):
                    state = "cache hit" if resource.cache_hit \
                        else "compiled"
                    if resource.degraded:
                        state += ", degraded to RE"
                    detail = (f" [{state}, "
                              f"{resource.last_compile_seconds * 1e3:.2f}"
                              " ms]")
                elif isinstance(resource, res.KernelResource):
                    k = resource.compiled
                    detail = (f" [{k.reg_count} regs, "
                              f"{k.shared_bytes} B smem, "
                              f"{k.static_instructions} instrs]")
                elif isinstance(resource, res.GlobalMemory):
                    detail = f" [{resource.nbytes} B at " \
                             f"0x{resource.addr:x}]"
                self._log(f"refresh: {type(resource).__name__} "
                          f"{resource.name}{detail}")
        elapsed = time.perf_counter() - started
        if touched:
            self.refresh_count += 1
            self._log(f"refresh: {touched} resources updated in "
                      f"{elapsed * 1e3:.2f} ms")
        return touched

    def run(self, iterations: int = 1) -> float:
        """Execute *iterations* pipeline iterations.

        Returns the simulated seconds spent (kernels + transfers).
        A refresh happens automatically before the first iteration and
        after any parameter change.
        """
        tracer = self.ctx.tracer
        with using_context(self.ctx):
            if tracer is None:
                return self._run_impl(iterations)
            with tracer.span(f"run:{self.name}", "pipeline",
                             iterations=iterations) as span:
                total = self._run_impl(iterations)
                span.attrs["sim_seconds"] = total
                return total

    def _run_impl(self, iterations: int) -> float:
        total = 0.0
        for _ in range(iterations):
            self.refresh()
            for action in self.actions.values():
                if action.fires(self.iteration):
                    seconds = action.run(self.iteration)
                    total += seconds
                    self._log(f"iter {self.iteration}: {action.name} "
                              f"({seconds * 1e6:.1f} us sim)")
            for subset_res in self._subsets:
                subset_res.advance(self.iteration)
            for step in self._steps:
                step.advance()
            self.iteration += 1
        return total

    # -- conveniences -----------------------------------------------

    def timing_report(self) -> str:
        """Per-operation and high-level timing (Appendix G.4-G.7).

        One line per action with run counts, total/mean simulated time,
        and share of the pipeline total; a summary line splits kernel
        execution from data movement.
        """
        lines = [f"=== {self.name}: per-operation timing "
                 f"({self.iteration} iterations) ==="]
        total = self.simulated_seconds() or 1e-30
        kernel_s = transfer_s = other_s = 0.0
        for action in self.actions.values():
            mean = (action.simulated_seconds / action.runs
                    if action.runs else 0.0)
            lines.append(
                f"  {action.name:24s} {type(action).__name__:16s} "
                f"runs={action.runs:<4d} "
                f"total={action.simulated_seconds * 1e3:8.3f} ms  "
                f"mean={mean * 1e6:8.1f} us  "
                f"{100 * action.simulated_seconds / total:5.1f}%")
            kind = type(action).__name__
            if kind == "KernelExecution":
                kernel_s += action.simulated_seconds
            elif kind == "MemoryCopy":
                transfer_s += action.simulated_seconds
            else:
                other_s += action.simulated_seconds
        lines.append(f"=== high-level: kernels {kernel_s * 1e3:.3f} ms "
                     f"({100 * kernel_s / total:.0f}%), transfers "
                     f"{transfer_s * 1e3:.3f} ms "
                     f"({100 * transfer_s / total:.0f}%), total "
                     f"{total * 1e3:.3f} ms ===")
        return "\n".join(lines)

    def set_param(self, name: str, value) -> None:
        try:
            self.params[name].set(value)
        except KeyError:
            raise PipelineError(f"unknown parameter {name!r}") from None

    def simulated_seconds(self) -> float:
        return sum(a.simulated_seconds for a in self.actions.values())

    def upload(self, memory: res.GlobalMemory, array: np.ndarray) -> None:
        """Direct host→device write outside the action system."""
        self.gpu.gmem.write(memory.device_address(),
                            np.ascontiguousarray(array))

    def download(self, memory: res.GlobalMemory, dtype,
                 shape) -> np.ndarray:
        count = int(np.prod(shape))
        return self.gpu.memcpy_dtoh(memory.device_address(), dtype,
                                    count).reshape(shape)

"""GPU-PF action types (dissertation Table 4.4).

Actions execute on their schedule each pipeline iteration.  The single
:class:`MemoryCopy` covers every endpoint combination by dispatching on
the underlying memory kinds, as the dissertation's framework does
("Single function transfers data properly according to underlying
memory types at each end point").

Host↔device transfers are charged against a PCIe model so application
pipelines report realistic end-to-end times.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.faults.errors import FaultError
from repro.faults.retry import retry_call
from repro.gpupf.params import Parameter, Schedule, TripletParam
from repro.gpupf.resources import (ConstantMemory, GlobalMemory,
                                   HostMemory, KernelResource,
                                   MemoryResource, Resource,
                                   ResourceError, SubsetMemory,
                                   TextureResource, _resolve)

#: PCIe 2.0 x16 effective bandwidth and per-transfer latency.
PCIE_BANDWIDTH = 5.7e9
PCIE_LATENCY = 10e-6


class ActionError(Exception):
    """Bad action specification or execution failure."""


class Action:
    """Base class: a scheduled pipeline step."""

    def __init__(self, name: str, pipeline,
                 schedule: Optional[Schedule] = None):
        self.name = name
        self.pipeline = pipeline
        self.schedule = schedule or Schedule(f"{name}.schedule", 1, 0)
        self.enabled = True
        self.runs = 0
        self.simulated_seconds = 0.0

    def fires(self, iteration: int) -> bool:
        return self.enabled and self.schedule.fires(iteration)

    def execute(self, iteration: int) -> float:
        """Run once; returns simulated seconds spent."""
        raise NotImplementedError  # pragma: no cover

    def run(self, iteration: int) -> float:
        tracer = self.pipeline.ctx.tracer
        if tracer is None:
            seconds = self.execute(iteration)
        else:
            with tracer.span(f"action:{self.name}", "action",
                             kind=type(self).__name__,
                             iteration=iteration) as span:
                seconds = self.execute(iteration)
                span.attrs["sim_seconds"] = seconds
        self.runs += 1
        self.simulated_seconds += seconds
        return seconds


def _transfer_seconds(nbytes: int) -> float:
    return PCIE_LATENCY + nbytes / PCIE_BANDWIDTH


class MemoryCopy(Action):
    """Copy between any two memory references."""

    def __init__(self, name: str, pipeline, src: MemoryResource,
                 dst: MemoryResource,
                 schedule: Optional[Schedule] = None):
        super().__init__(name, pipeline, schedule)
        self.src = src
        self.dst = dst

    def _endpoint_kind(self, mem: MemoryResource) -> str:
        return mem.kind

    def execute(self, iteration: int) -> float:
        src, dst = self.src, self.dst
        gpu = self.pipeline.gpu
        skind, dkind = src.kind, dst.kind
        nbytes = min(src.nbytes, dst.nbytes)
        if skind == "host" and dkind == "global":
            data = src.array
            flat = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
            gpu.gmem.write(dst.device_address(),
                           flat[: dst.nbytes])
            return _transfer_seconds(nbytes)
        if skind == "global" and dkind == "host":
            raw = gpu.memcpy_dtoh(src.device_address(), np.uint8, nbytes)
            dst_arr = dst.array
            view = dst_arr.reshape(-1).view(np.uint8)
            view[:nbytes] = raw
            return _transfer_seconds(nbytes)
        if skind == "global" and dkind == "global":
            raw = gpu.memcpy_dtoh(src.device_address(), np.uint8, nbytes)
            gpu.gmem.write(dst.device_address(), raw)
            # Device-to-device: charged at device bandwidth (read+write).
            bw = gpu.spec.mem_bandwidth_gbs * 1e9
            return 2 * nbytes / bw
        if skind == "host" and dkind == "host":
            dst.array.reshape(-1).view(np.uint8)[:nbytes] = \
                np.ascontiguousarray(src.array).view(np.uint8) \
                .reshape(-1)[:nbytes]
            return 0.0
        if skind == "host" and dkind == "const":
            gpu.memcpy_to_symbol(dst.module_res.module, dst.symbol,
                                 src.array)
            return _transfer_seconds(nbytes)
        raise ActionError(
            f"copy {self.name}: unsupported endpoints "
            f"{skind} -> {dkind}")


class KernelExecution(Action):
    """A kernel launch: configuration plus arguments.

    Arguments may be literals, parameters, or memory resources (which
    contribute their device addresses); textures contribute theirs.
    """

    def __init__(self, name: str, pipeline, kernel: KernelResource,
                 grid, block, args: Sequence[object],
                 dynamic_smem: Union[int, Parameter] = 0,
                 schedule: Optional[Schedule] = None,
                 functional: bool = True,
                 sample_blocks: int = 8,
                 engine: Optional[str] = None):
        super().__init__(name, pipeline, schedule)
        self.kernel = kernel
        self.grid = grid
        self.block = block
        self.args = list(args)
        self.dynamic_smem = dynamic_smem
        self.functional = functional
        self.sample_blocks = sample_blocks
        self.engine = engine
        self.last_result = None

    def _resolve_arg(self, arg):
        if isinstance(arg, (MemoryResource, TextureResource)):
            return arg.device_address()
        return _resolve(arg)

    def execute(self, iteration: int) -> float:
        compiled = self.kernel.compiled
        if compiled is None:
            raise ActionError(
                f"exec {self.name}: kernel not realized — did refresh "
                "run?")
        grid = _resolve(self.grid)
        block = _resolve(self.block)
        args = [self._resolve_arg(a) for a in self.args]

        def launch():
            return self.pipeline.gpu.launch(
                compiled, grid, block, args,
                dynamic_smem=int(_resolve(self.dynamic_smem)),
                functional=self.functional,
                sample_blocks=self.sample_blocks,
                engine=self.engine)

        if self.pipeline.ctx.injector is None:
            result = launch()  # fast path: no injector, no snapshots
        else:
            result = self._launch_resilient(launch)
        self.last_result = result
        return result.seconds

    def _launch_resilient(self, launch):
        """Retry transient launch faults from a dirty-tracked rollback.

        Watchdog kills and detected ECC errors leave device memory
        partially written; an armed :meth:`GlobalMemory.begin_epoch`
        saves per-allocation pre-images as the kernel writes, and each
        retry rolls back only the buffers the launch actually dirtied
        (instead of copying the whole allocated heap up front), so a
        completed run is bit-identical to a fault-free one.  Exhausted
        budgets raise a typed PipelineFaultError naming the fault site.
        """
        from repro.gpupf.pipeline import PipelineFaultError
        pipe = self.pipeline
        gmem = pipe.gpu.gmem
        gmem.begin_epoch()

        def on_retry(exc, attempt, delay):
            site = getattr(exc, "site", "launch.fail")
            pipe._record_retry(site, f"action {self.name}", attempt,
                               delay)
            gmem.rollback_epoch()  # stays armed for the next attempt

        try:
            result, _ = retry_call(launch, policy=pipe.retry,
                                   on_retry=on_retry,
                                   deadline=pipe.ctx.deadline)
            return result
        except FaultError as exc:
            pipe._record_fault(exc.site, f"action {self.name}")
            raise PipelineFaultError(
                f"action {self.name!r}: launch failed at fault site "
                f"{exc.site} after {pipe.retry.max_attempts} attempts: "
                f"{exc}", site=exc.site, phase="execute") from exc
        finally:
            gmem.end_epoch()


class UserFunction(Action):
    """Arbitrary host-side callback (validation hooks, mostly)."""

    def __init__(self, name: str, pipeline, fn: Callable,
                 schedule: Optional[Schedule] = None):
        super().__init__(name, pipeline, schedule)
        self.fn = fn

    def execute(self, iteration: int) -> float:
        self.fn(self.pipeline, iteration)
        return 0.0


class FileIO(Action):
    """Binary data input or output (``.npy`` on disk ↔ host memory)."""

    def __init__(self, name: str, pipeline, memory: MemoryResource,
                 path: str, mode: str = "read",
                 schedule: Optional[Schedule] = None):
        super().__init__(name, pipeline, schedule)
        if mode not in ("read", "write"):
            raise ActionError(f"FileIO mode must be read/write: {mode!r}")
        if memory.kind != "host":
            raise ActionError("FileIO endpoints must be host memory")
        self.memory = memory
        self.path = path
        self.mode = mode

    def execute(self, iteration: int) -> float:
        if self.mode == "read":
            data = np.load(self.path)
            target = self.memory.array
            target.reshape(-1)[: data.size] = \
                data.astype(target.dtype).reshape(-1)
        else:
            np.save(self.path, self.memory.array)
        return 0.0

"""GPU-PF resource types (dissertation Tables 4.2 and 4.3).

Resources realize themselves from parameters during the refresh phase:
modules compile (through the kernel cache), memories allocate, kernels
resolve entry points, textures bind.  Each resource remembers the
parameter versions it was realized against, so refresh touches only
what changed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.gpupf.params import (ArrayTraits, MemoryExtent, MemorySubset,
                                Parameter, TypeParam)


class ResourceError(Exception):
    """Specification or realization failure."""


class Resource:
    """Base class: realized from parameters, versioned like them."""

    def __init__(self, name: str, pipeline):
        self.name = name
        self.pipeline = pipeline
        self._param_deps: List[Parameter] = []
        self._resource_deps: List["Resource"] = []
        self._seen: Optional[tuple] = None
        self.version = 0

    def depends_on(self, *deps) -> None:
        for d in deps:
            if isinstance(d, Parameter):
                self._param_deps.append(d)
            elif isinstance(d, Resource):
                self._resource_deps.append(d)
            elif d is not None:
                raise ResourceError(
                    f"{self.name}: bad dependency {d!r}")

    def _stamp(self) -> tuple:
        return (tuple(p.current_version() for p in self._param_deps),
                tuple(r.version for r in self._resource_deps))

    def dirty(self) -> bool:
        return self._seen != self._stamp()

    def refresh(self) -> bool:
        """Realize if dirty; returns True when work was done."""
        if not self.dirty():
            return False
        self.realize()
        self._seen = self._stamp()
        self.version += 1
        return True

    def realize(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


def _resolve(value):
    """Parameter-or-literal -> concrete value."""
    return value.value if isinstance(value, Parameter) else value


class ModuleResource(Resource):
    """A CUDA module: source compiled with (possibly parametric) -D
    defines.  Recompiles whenever a referenced parameter changes —
    this is the kernel-specialization hook."""

    def __init__(self, name: str, pipeline, source: str,
                 defines: Optional[Mapping[str, object]] = None,
                 arch: Optional[Union[str, Parameter]] = None,
                 headers: Optional[Mapping[str, str]] = None,
                 opt_level: int = 3):
        super().__init__(name, pipeline)
        self.source = source
        self.defines = dict(defines or {})
        self.arch = arch
        self.headers = headers
        self.opt_level = opt_level
        self.module = None
        self.last_compile_seconds = 0.0
        self.cache_hit = False
        #: True when the last realize fell back to the RE variant.
        self.degraded = False
        for value in self.defines.values():
            if isinstance(value, Parameter):
                self.depends_on(value)
        if isinstance(arch, Parameter):
            self.depends_on(arch)

    def resolved_defines(self) -> Dict[str, object]:
        return {k: _resolve(v) for k, v in self.defines.items()}

    def realize(self) -> None:
        arch = _resolve(self.arch) if self.arch is not None \
            else self.pipeline.gpu.spec.arch
        cache = self.pipeline.cache
        before = cache.stats()["hits"]
        # The pipeline owns the resilience ladder: retry transient
        # compile faults, degrade SK -> RE on hard failure, and only
        # then raise a typed PipelineFaultError.
        self.module, self.degraded = \
            self.pipeline._compile_module(self, arch)
        self.cache_hit = cache.stats()["hits"] > before
        self.last_compile_seconds = self.module.compile_seconds


class KernelResource(Resource):
    """An entry point within a module."""

    def __init__(self, name: str, pipeline, module: ModuleResource,
                 entry: str):
        super().__init__(name, pipeline)
        self.module_res = module
        self.entry = entry
        self.compiled = None
        self.depends_on(module)

    def realize(self) -> None:
        if self.module_res.module is None:
            raise ResourceError(
                f"kernel {self.name}: module not realized")
        self.compiled = self.module_res.module.kernel(self.entry)

    @property
    def reg_count(self) -> int:
        return self.compiled.reg_count if self.compiled else 0


class MemoryResource(Resource):
    """Common interface for every memory kind (Table 4.3)."""

    kind = "abstract"

    @property
    def nbytes(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def device_address(self) -> int:
        raise ResourceError(f"{self.name} has no device address")


class HostMemory(MemoryResource):
    """Host-side buffer (malloc'd / pinned — one NumPy array here)."""

    kind = "host"

    def __init__(self, name: str, pipeline, extent: MemoryExtent,
                 dtype: Optional[Union[np.dtype, TypeParam]] = None):
        super().__init__(name, pipeline)
        self.extent = extent
        self.dtype_param = dtype
        self.array: Optional[np.ndarray] = None
        self.depends_on(extent)
        if isinstance(dtype, Parameter):
            self.depends_on(dtype)

    def _dtype(self) -> np.dtype:
        if self.dtype_param is not None:
            return np.dtype(_resolve(self.dtype_param))
        return np.dtype(f"V{self.extent.elem_size}") \
            if self.extent.elem_size not in (1, 2, 4, 8) \
            else {1: np.uint8, 2: np.uint16, 4: np.float32,
                  8: np.float64}[self.extent.elem_size]

    def realize(self) -> None:
        self.array = np.zeros(self.extent.shape, dtype=self._dtype())

    @property
    def nbytes(self) -> int:
        return self.extent.nbytes


class GlobalMemory(MemoryResource):
    """Device global memory (pitched/linear)."""

    kind = "global"

    def __init__(self, name: str, pipeline, extent: MemoryExtent):
        super().__init__(name, pipeline)
        self.extent = extent
        self.addr: Optional[int] = None
        self.depends_on(extent)

    def realize(self) -> None:
        if self.addr is not None:
            self.pipeline.gpu.free(self.addr)
        self.addr = self.pipeline.gpu.malloc(max(self.extent.nbytes, 1))

    def device_address(self) -> int:
        if self.addr is None:
            raise ResourceError(f"{self.name}: not realized yet")
        return self.addr

    @property
    def nbytes(self) -> int:
        return self.extent.nbytes


class ConstantMemory(MemoryResource):
    """A module's __constant__ symbol."""

    kind = "const"

    def __init__(self, name: str, pipeline, module: ModuleResource,
                 symbol: str):
        super().__init__(name, pipeline)
        self.module_res = module
        self.symbol = symbol
        self.depends_on(module)

    def realize(self) -> None:
        decl = self.module_res.module.ir.const_globals.get(self.symbol)
        if decl is None:
            raise ResourceError(
                f"{self.name}: module has no constant {self.symbol!r}")
        self._decl = decl

    @property
    def nbytes(self) -> int:
        return self._decl.nbytes


class SubsetMemory(MemoryResource):
    """A moving window over another memory reference.

    Usable anywhere a full reference is; advances by its subset
    parameter's stride each pipeline iteration, wrapping at the parent's
    end (Table 4.3 "Can move subset through the full memory reference
    over time" — this is how frame sequences stream through a fixed
    device allocation).
    """

    def __init__(self, name: str, pipeline, parent: MemoryResource,
                 subset: MemorySubset, reset_period: int = 0):
        super().__init__(name, pipeline)
        self.parent = parent
        self.subset = subset
        self.reset_period = reset_period
        self._iteration_offset = 0
        self.depends_on(parent, subset)

    @property
    def kind(self):
        return self.parent.kind

    def realize(self) -> None:
        self._iteration_offset = 0

    def advance(self, iteration: int) -> None:
        if self.reset_period and iteration % self.reset_period == 0:
            self._iteration_offset = 0
            return
        self._iteration_offset += self.subset.stride

    def _elem_size(self) -> int:
        return self.parent.extent.elem_size

    def current_offset_elems(self) -> int:
        total = self.parent.extent.count
        count = self.subset.count
        offset = self.subset.offset + self._iteration_offset
        if count > total:
            raise ResourceError(
                f"{self.name}: window larger than parent")
        limit = total - count
        return offset % (limit + 1) if limit else 0

    def device_address(self) -> int:
        return (self.parent.device_address()
                + self.current_offset_elems() * self._elem_size())

    @property
    def array(self) -> np.ndarray:
        flat = self.parent.array.reshape(-1)
        start = self.current_offset_elems()
        return flat[start : start + self.subset.count]

    @property
    def nbytes(self) -> int:
        return self.subset.count * self._elem_size()


class TextureResource(Resource):
    """A texture reference bound to a memory reference.

    Realization performs the actual ``cudaBindTexture[2D]`` against the
    module's declared texture symbol, with the traits parameter
    supplying filter/addressing modes (Table 4.1's ArrayTraits).
    """

    def __init__(self, name: str, pipeline, module: ModuleResource,
                 memory: MemoryResource,
                 traits: Optional[ArrayTraits] = None,
                 symbol: Optional[str] = None):
        super().__init__(name, pipeline)
        self.module_res = module
        self.memory = memory
        self.traits = traits
        self.symbol = symbol or name
        self.depends_on(module, memory)
        if traits is not None:
            self.depends_on(traits)

    def realize(self) -> None:
        if self.memory.kind != "global":
            raise ResourceError(
                f"texture {self.name}: can only bind global memory, "
                f"not {self.memory.kind}")
        module = self.module_res.module
        if module is None:
            raise ResourceError(
                f"texture {self.name}: module not realized")
        shape = self.memory.extent.shape
        width = shape[-1]
        height = shape[0] if len(shape) > 1 else 1
        traits = self.traits.value if self.traits is not None else {
            "filter": "point", "address": "clamp", "normalized": False}
        self.pipeline.gpu.bind_texture(
            module, self.symbol, self.memory.device_address(),
            width=width, height=height,
            address=traits["address"], filter=traits["filter"])

    def device_address(self) -> int:
        return self.memory.device_address()

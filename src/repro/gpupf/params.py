"""GPU-PF parameter types (dissertation Table 4.1).

Every parameter carries a version counter; resources and actions record
the version they last saw, and the refresh phase re-realizes exactly the
objects whose parameter versions moved.  Parameters may also *derive*
from other parameters via a function, forming the dependency hierarchy
of Figure 4.1.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np


class Parameter:
    """Base class: a named, versioned value."""

    def __init__(self, name: str, value=None):
        self.name = name
        self._value = value
        self.version = 1
        self._derive: Optional[Callable] = None
        self._inputs: List[Parameter] = []

    # -- value access ----------------------------------------------

    @property
    def value(self):
        if self._derive is not None:
            return self._derive(*[p.value for p in self._inputs])
        return self._value

    def set(self, value) -> None:
        """Update the value, bumping the version (dirtying dependents)."""
        if self._derive is not None:
            raise ValueError(
                f"parameter {self.name!r} is derived; set its inputs")
        if self._coerce is not None:
            value = self._coerce(value)
        # Explicit None check first: some coerced types (np.dtype)
        # treat None as a valid comparison partner.
        if self._value is None or value != self._value:
            self._value = value
            self.version += 1

    _coerce: Optional[Callable] = None

    def derive_from(self, inputs: Sequence["Parameter"],
                    fn: Callable) -> "Parameter":
        """Make this parameter a pure function of *inputs*."""
        self._derive = fn
        self._inputs = list(inputs)
        return self

    def current_version(self) -> int:
        """Version including derived inputs."""
        if self._derive is not None:
            return sum(p.current_version() for p in self._inputs)
        return self.version

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name}={self.value!r})"


class IntParam(Parameter):
    """Scalar integer parameter."""

    _coerce = staticmethod(int)


class FloatParam(Parameter):
    """Scalar floating point parameter."""

    _coerce = staticmethod(float)


class BooleanParam(Parameter):
    """True/false parameter."""

    _coerce = staticmethod(bool)


class PointerParam(Parameter):
    """A raw device pointer value."""

    _coerce = staticmethod(int)


class TripletParam(Parameter):
    """Three integers — commonly grid and block dimensions.

    Individual elements are addressable via :meth:`element`.
    """

    @staticmethod
    def _coerce(value):
        if isinstance(value, int):
            return (value, 1, 1)
        items = tuple(int(v) for v in value)
        return items + (1,) * (3 - len(items))

    def element(self, index: int) -> Parameter:
        p = IntParam(f"{self.name}[{index}]")
        return p.derive_from([self], lambda t: t[index])

    @property
    def count(self) -> int:
        x, y, z = self.value
        return x * y * z


class PairParam(Parameter):
    """Two integers."""

    @staticmethod
    def _coerce(value):
        a, b = value
        return (int(a), int(b))

    def element(self, index: int) -> Parameter:
        p = IntParam(f"{self.name}[{index}]")
        return p.derive_from([self], lambda t: t[index])


class TypeParam(Parameter):
    """A data type (int32, uint8, float32, float64...)."""

    @staticmethod
    def _coerce(value):
        return np.dtype(value)

    @property
    def itemsize(self) -> int:
        return self.value.itemsize


class StepParam(Parameter):
    """Self-updating parameter iterating a range with a stride.

    ``advance()`` is called by the pipeline after each iteration; the
    value wraps at the end of the range.
    """

    def __init__(self, name: str, start: int, stop: int, stride: int = 1):
        super().__init__(name, int(start))
        self.start = int(start)
        self.stop = int(stop)
        self.stride = int(stride)

    def advance(self) -> None:
        nxt = self._value + self.stride
        if (self.stride > 0 and nxt >= self.stop) or \
                (self.stride < 0 and nxt <= self.stop):
            nxt = self.start
        self._value = nxt
        self.version += 1


class MemoryExtent(Parameter):
    """Geometry (up to three dimensions) and element size of a memory
    reference.  Value: ``(shape_tuple, element_size)``."""

    def __init__(self, name: str, shape: Sequence[int], elem_size: int):
        shape = tuple(int(s) for s in shape)
        super().__init__(name, (shape, int(elem_size)))

    @staticmethod
    def _coerce(value):
        shape, elem = value
        return (tuple(int(s) for s in shape), int(elem))

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value[0]

    @property
    def elem_size(self) -> int:
        return self.value[1]

    @property
    def count(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        return self.count * self.elem_size


class MemorySubset(Parameter):
    """Subrange of a memory extent with a per-iteration stride.

    Value: ``(offset_elems, count_elems, stride_elems)``.  The owning
    subset view advances by ``stride_elems`` each pipeline iteration and
    wraps when the window would run past the parent extent.
    """

    def __init__(self, name: str, offset: int, count: int,
                 stride: int = 0):
        super().__init__(name, (int(offset), int(count), int(stride)))

    @staticmethod
    def _coerce(value):
        o, c, s = value
        return (int(o), int(c), int(s))

    @property
    def offset(self) -> int:
        return self.value[0]

    @property
    def count(self) -> int:
        return self.value[1]

    @property
    def stride(self) -> int:
        return self.value[2]


class Schedule(Parameter):
    """Period between events and delay before the first occurrence.

    Value: ``(period, delay)``.  An action with schedule (p, d) runs on
    iterations i where ``i >= d`` and ``(i - d) % p == 0``.
    """

    def __init__(self, name: str, period: int = 1, delay: int = 0):
        super().__init__(name, (int(period), int(delay)))

    @staticmethod
    def _coerce(value):
        if isinstance(value, int):
            return (int(value), 0)
        p, d = value
        return (int(p), int(d))

    def fires(self, iteration: int) -> bool:
        period, delay = self.value
        if iteration < delay or period <= 0:
            return False
        return (iteration - delay) % period == 0


class ArrayTraits(Parameter):
    """Properties used by CUDA texture/array memory types.

    Value: dict with keys ``filter`` ('point'|'linear'), ``address``
    ('clamp'|'wrap'|'border'), ``normalized`` (bool).
    """

    def __init__(self, name: str, filter: str = "point",
                 address: str = "clamp", normalized: bool = False):
        super().__init__(name, self._coerce(
            {"filter": filter, "address": address,
             "normalized": bool(normalized)}))

    @staticmethod
    def _coerce(value):
        out = {"filter": "point", "address": "clamp", "normalized": False}
        out.update(value)
        if out["filter"] not in ("point", "linear"):
            raise ValueError(f"bad texture filter {out['filter']!r}")
        if out["address"] not in ("clamp", "wrap", "border"):
            raise ValueError(f"bad address mode {out['address']!r}")
        return out

"""Compiled-kernel cache.

§4.3: "The framework ... caches generated binaries.  If the same set of
parameters is encountered, the previously generated kernel can be loaded
quickly."  Keys combine a hash of the source, the sorted macro
definitions, the target architecture, and the optimization level.  An
optional on-disk layer persists modules across processes.

Robustness properties:

* **Thread-safe.**  ``Sweeper(jobs=N)`` worker threads share one cache;
  all counter updates and ``_memory`` writes happen under a lock, and a
  per-key single-flight latch guarantees concurrent requests for the
  same key compile exactly once (the rest wait and take a hit).
* **Latch waits are bounded.**  A waiter blocks on the leader's latch
  for at most ``latch_timeout`` seconds; past that it assumes the
  leader crashed or wedged (a hung nvcc, a killed worker thread),
  *steals leadership* — releasing every other stale waiter — and
  compiles itself.  A live-but-slow leader finishing later is harmless
  (compilation is deterministic; last store wins).  Each takeover is
  counted in the ``latch_timeouts`` stat and the current context's
  ``cache.latch_timeout`` metric, so a wedged holder can never silence
  other requests forever.
* **Crash-safe disk entries.**  Writes go through a temp file +
  ``os.replace``; a corrupt or legacy-version entry is *quarantined*
  (renamed to ``<key>.mod.corrupt``) after its failed unpickle, counted
  in the ``corrupt`` stat, and never re-read — the entry is recompiled
  and rewritten in place.
* **Fault-injectable.**  The ``cache.corrupt`` fault site corrupts the
  bytes read from disk, exercising the quarantine path deterministically
  (see :mod:`repro.faults`).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from typing import Dict, Mapping, Optional

from repro.faults import hooks as fault_hooks
from repro.kernelc.compiler import CompiledModule, nvcc

#: On-disk entry layout version.  Bump whenever the pickled module
#: graph changes shape; stale files then recompile instead of
#: unpickling garbage into the running process.
_FORMAT_VERSION = 2


def cache_key(source: str, defines: Optional[Mapping[str, object]],
              arch: str, opt_level: int) -> str:
    """Stable digest of one compilation request."""
    h = hashlib.sha256()
    h.update(source.encode())
    for name in sorted(defines or {}):
        h.update(f"-D{name}={(defines or {})[name]!r}".encode())
    h.update(arch.encode())
    h.update(str(opt_level).encode())
    return h.hexdigest()


class KernelCache:
    """In-memory (and optionally on-disk) compiled-module cache."""

    #: Default bound on a single-flight latch wait (seconds).  Long
    #: enough that no honest compile ever trips it; short enough that a
    #: crashed latch holder cannot wedge other requests forever.
    LATCH_TIMEOUT = 30.0

    def __init__(self, disk_dir: Optional[str] = None,
                 latch_timeout: Optional[float] = None):
        self._memory: Dict[str, CompiledModule] = {}
        self._lock = threading.RLock()
        self._in_flight: Dict[str, threading.Event] = {}
        self.disk_dir = disk_dir
        self.latch_timeout = (self.LATCH_TIMEOUT if latch_timeout is None
                              else latch_timeout)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.latch_timeouts = 0
        if disk_dir:
            os.makedirs(disk_dir, exist_ok=True)

    def compile(self, source: str,
                defines: Optional[Mapping[str, object]] = None,
                arch: str = "sm_20", opt_level: int = 3,
                headers: Optional[Mapping[str, str]] = None,
                ) -> CompiledModule:
        """nvcc with caching; headers participate in the key."""
        key_src = source
        if headers:
            key_src += "".join(f"\n//@{n}\n{headers[n]}"
                               for n in sorted(headers))
        key = cache_key(key_src, defines, arch, opt_level)
        # Resolved per call, like fault_hooks.ACTIVE below: the cache
        # may be shared by threads tracing into different contexts.
        from repro.obs.trace import current_tracer
        tracer = current_tracer()
        while True:
            with self._lock:
                module = self._memory.get(key)
                if module is not None:
                    self.hits += 1
                    if tracer is not None:
                        tracer.event("cache.hit", "cache",
                                     key=key[:16])
                    return module
                latch = self._in_flight.get(key)
                if latch is None:
                    latch = threading.Event()
                    self._in_flight[key] = latch
                    break  # we are the leader for this key
            # Another thread is compiling this key: wait (bounded), then
            # re-check.  If the leader finished or failed, the re-check
            # makes us hit or lead; if the wait *times out* the leader
            # is presumed crashed/wedged — steal leadership by retiring
            # its latch (waking every other stale waiter) and loop to
            # compile ourselves.
            if not latch.wait(timeout=self.latch_timeout):
                with self._lock:
                    self.latch_timeouts += 1
                    if self._in_flight.get(key) is latch:
                        del self._in_flight[key]
                latch.set()
                self._note_latch_timeout(key)
        try:
            module = self._load_from_disk(key)
            if module is not None:
                with self._lock:
                    self._memory[key] = module
                    self.hits += 1
                if tracer is not None:
                    tracer.event("cache.disk_hit", "cache",
                                 key=key[:16])
                return module
            with self._lock:
                self.misses += 1
            if tracer is not None:
                tracer.event("cache.miss", "cache", key=key[:16])
            module = nvcc(source, defines=defines, arch=arch,
                          opt_level=opt_level, headers=headers)
            with self._lock:
                self._memory[key] = module
            self._store_to_disk(key, module)
            return module
        finally:
            with self._lock:
                # Only retire *our own* latch: a waiter that timed out
                # may have already replaced it with its own.
                if self._in_flight.get(key) is latch:
                    del self._in_flight[key]
            latch.set()

    def _note_latch_timeout(self, key: str) -> None:
        """Charge one latch takeover to the current context's metrics."""
        try:
            from repro.runtime.context import current_context
            current_context().metrics.inc("cache.latch_timeout")
        except Exception:  # pragma: no cover - metrics must never wedge
            pass

    # -- disk layer ----------------------------------------------------

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir, key + ".mod")

    def _load_from_disk(self, key: str) -> Optional[CompiledModule]:
        if not self.disk_dir:
            return None
        path = self._disk_path(key)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError:
            return None
        injector = fault_hooks.ACTIVE
        if injector is not None:
            raw = injector.corrupt_bytes("cache.corrupt", raw,
                                         detail=key[:16])
        try:
            version, module = pickle.loads(raw)
        except Exception:
            self._quarantine(path)
            return None
        if version != _FORMAT_VERSION or \
                not isinstance(module, CompiledModule):
            self._quarantine(path)
            return None
        return module

    def _store_to_disk(self, key: str, module: CompiledModule) -> None:
        if not self.disk_dir:
            return
        path = self._disk_path(key)
        tmp = path + f".tmp{os.getpid()}.{threading.get_ident()}"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump((_FORMAT_VERSION, module), fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            pass

    def _quarantine(self, path: str) -> None:
        """Move a bad entry aside so it is never unpickled again."""
        with self._lock:
            self.corrupt += 1
        try:
            from repro.runtime.context import current_context
            current_context().events.record("cache.quarantine",
                                            path=os.path.basename(path))
        except Exception:  # pragma: no cover - forensics must never wedge
            pass
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- observability -------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """hits / misses / corrupt / latch_timeouts, read atomically."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "corrupt": self.corrupt,
                    "latch_timeouts": self.latch_timeouts}

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0
            self.corrupt = 0
            self.latch_timeouts = 0


def __getattr__(name: str):
    # Deprecated shim: ``cache.DEFAULT_CACHE`` is now the current
    # ExecutionContext's kernel cache, so legacy callers stay scoped.
    if name == "DEFAULT_CACHE":
        from repro.runtime.context import current_context
        return current_context().kernel_cache
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

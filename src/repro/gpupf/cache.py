"""Compiled-kernel cache.

§4.3: "The framework ... caches generated binaries.  If the same set of
parameters is encountered, the previously generated kernel can be loaded
quickly."  Keys combine a hash of the source, the sorted macro
definitions, the target architecture, and the optimization level.  An
optional on-disk layer persists modules across processes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Dict, Mapping, Optional

from repro.kernelc.compiler import CompiledModule, nvcc

#: On-disk entry layout version.  Bump whenever the pickled module
#: graph changes shape; stale files then recompile instead of
#: unpickling garbage into the running process.
_FORMAT_VERSION = 2


def cache_key(source: str, defines: Optional[Mapping[str, object]],
              arch: str, opt_level: int) -> str:
    """Stable digest of one compilation request."""
    h = hashlib.sha256()
    h.update(source.encode())
    for name in sorted(defines or {}):
        h.update(f"-D{name}={(defines or {})[name]!r}".encode())
    h.update(arch.encode())
    h.update(str(opt_level).encode())
    return h.hexdigest()


class KernelCache:
    """In-memory (and optionally on-disk) compiled-module cache."""

    def __init__(self, disk_dir: Optional[str] = None):
        self._memory: Dict[str, CompiledModule] = {}
        self.disk_dir = disk_dir
        self.hits = 0
        self.misses = 0
        if disk_dir:
            os.makedirs(disk_dir, exist_ok=True)

    def compile(self, source: str,
                defines: Optional[Mapping[str, object]] = None,
                arch: str = "sm_20", opt_level: int = 3,
                headers: Optional[Mapping[str, str]] = None,
                ) -> CompiledModule:
        """nvcc with caching; headers participate in the key."""
        key_src = source
        if headers:
            key_src += "".join(f"\n//@{n}\n{headers[n]}"
                               for n in sorted(headers))
        key = cache_key(key_src, defines, arch, opt_level)
        module = self._memory.get(key)
        if module is not None:
            self.hits += 1
            return module
        if self.disk_dir:
            path = os.path.join(self.disk_dir, key + ".mod")
            if os.path.exists(path):
                try:
                    with open(path, "rb") as fh:
                        version, module = pickle.load(fh)
                    if version == _FORMAT_VERSION:
                        self._memory[key] = module
                        self.hits += 1
                        return module
                except Exception:
                    pass  # corrupt/legacy entry: recompile below
        self.misses += 1
        module = nvcc(source, defines=defines, arch=arch,
                      opt_level=opt_level, headers=headers)
        self._memory[key] = module
        if self.disk_dir:
            path = os.path.join(self.disk_dir, key + ".mod")
            tmp = path + f".tmp{os.getpid()}"
            try:
                with open(tmp, "wb") as fh:
                    pickle.dump((_FORMAT_VERSION, module), fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except OSError:
                pass
        return module

    def clear(self) -> None:
        self._memory.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide default cache used by Pipeline unless one is injected.
DEFAULT_CACHE = KernelCache()

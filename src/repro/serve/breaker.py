"""Circuit breaker over the specialized-kernel compile path.

PR 3's degradation ladder absorbs *one* SK compile failure per module:
retry, then recompile as RE (bit-identical results, unspecialized
performance).  Under a persistently poisoned compiler every request
still pays the full failed-SK-attempt cost before degrading.  The
breaker lifts that decision to the service: after
``failure_threshold`` consecutive requests showing compile faults it
*opens*, and the supervisor dispatches subsequent requests pre-degraded
(``RunRequest.degrade=True`` — straight to RE, no SK attempt, still
bit-identical).  After ``reset_timeout`` seconds it *half-opens*: one
probe request runs with specialization; a clean probe closes the
breaker, a faulty one re-opens it.

Dispatch protocol: the supervisor calls :meth:`acquire` per dispatched
request and gets back a mode — ``"sk"`` (specialize normally),
``"probe"`` (the one half-open canary), or ``"degrade"`` (strip SK).
When the request resolves it calls :meth:`record` with the observed
compile-fault count and the same mode; a probe that never resolves
(worker crash, deadline kill) is released with :meth:`abort_probe` so
the next dispatch can probe again.

The clock is injectable so unit tests drive state transitions
deterministically; the service wires ``time.monotonic``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Fault sites that count as compile-path failures for the breaker.
COMPILE_SITES = ("nvcc.compile", "nvcc.timeout")


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probes."""

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[
                     Callable[[str, str], None]] = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock
        #: Called as ``hook(old_state, new_state)`` on every state
        #: change, with the breaker lock held — keep it cheap and
        #: reentrancy-free (the service wires its flight recorder,
        #: which only takes its own lock).  Exceptions are swallowed:
        #: telemetry must never wedge dispatch.
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0        # consecutive compile-faulty requests
        self._opened_at = 0.0
        self._probing = False     # a half-open probe is in flight
        self.trips = 0
        self.probes = 0

    def _set_state(self, new_state: str) -> None:
        """Transition (lock held); fires :attr:`on_transition`."""
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if self.on_transition is not None:
            try:
                self.on_transition(old, new_state)
            except Exception:
                pass

    # -- dispatch-side ---------------------------------------------------

    def acquire(self) -> str:
        """Mode for the next dispatched request: sk | probe | degrade."""
        with self._lock:
            if self._state == CLOSED:
                return "sk"
            if self._state == OPEN and self.clock() - self._opened_at \
                    >= self.reset_timeout:
                self._set_state(HALF_OPEN)
                self._probing = True
                self.probes += 1
                return "probe"
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                self.probes += 1
                return "probe"
            return "degrade"

    def abort_probe(self) -> None:
        """The in-flight probe died unresolved; allow another."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probing = False

    # -- result-side -----------------------------------------------------

    def record(self, compile_faults: int, mode: str) -> None:
        """Fold one resolved request into the breaker.

        *compile_faults* is how many compile-site faults the request
        observed (absorbed-by-retry faults count — they are the early
        warning).  Degraded requests never touch the SK path, so they
        neither heal nor harm the breaker.
        """
        with self._lock:
            if mode == "degrade":
                return
            if compile_faults > 0:
                self._failures += 1
                if mode == "probe" or self._state == HALF_OPEN:
                    self._set_state(OPEN)
                    self._opened_at = self.clock()
                    self._probing = False
                elif self._state == CLOSED \
                        and self._failures >= self.failure_threshold:
                    self._set_state(OPEN)
                    self._opened_at = self.clock()
                    self.trips += 1
            else:
                self._failures = 0
                if mode == "probe":
                    self._set_state(CLOSED)
                    self._probing = False

    # -- observability ---------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            if self._state == OPEN and self.clock() - self._opened_at \
                    >= self.reset_timeout:
                return HALF_OPEN  # due for a probe at next dispatch
            return self._state

    def stats(self) -> Dict[str, object]:
        with self._lock:
            age = (self.clock() - self._opened_at
                   if self._state != CLOSED else 0.0)
            return {"state": self._state,
                    "consecutive_failures": self._failures,
                    "trips": self.trips, "probes": self.probes,
                    "open_age_s": age}

"""The serve worker process: warm contexts, heartbeats, one request at
a time.

Each worker owns one end of a duplex pipe to the supervisor.  A
daemon thread beats on the pipe every ``heartbeat_interval`` seconds
so the supervisor can tell "busy" from "dead or wedged"; the main
thread blocks on :meth:`Connection.recv` for work.

The warm path is the whole point of the daemon (§4.3: specialization
cost is amortized by reuse): the worker keeps one long-lived
:class:`~repro.runtime.context.ExecutionContext` *per device model*
and evaluates every request against it via
``run_request(request, context=ctx)``, so repeated specs hit the
compiled-binary, launch-plan, gang-prototype, and trace caches instead
of rebuilding them per request.  Hermeticity survives because
per-request state (fault injector, tracer, deadline) is scoped inside
``run_request`` and cache hits are bit-identical to misses by
construction.

Every evaluation ends in exactly one reply: ``("result", req_id,
"ok", RunResult)`` or ``("result", req_id, "err", exception)`` — the
exception *instance* ships (type, fault site, and fields survive
pickling), so the supervisor can map it onto the ServiceError ladder.
A worker that dies instead of replying is the supervisor's problem,
by design.
"""

from __future__ import annotations

import threading
import time
from typing import Dict

from repro.apps.harness import RunRequest, run_request
from repro.gpusim import DEVICES
from repro.runtime.context import ExecutionContext
from repro.serve.chaos import CrashRequest, SleepRequest

#: Message tags on the worker->supervisor pipe.
MSG_READY = "ready"
MSG_HEARTBEAT = "hb"
MSG_RESULT = "result"


def _heartbeat_loop(conn, send_lock: threading.Lock,
                    interval: float, stop: threading.Event) -> None:
    while not stop.wait(interval):
        try:
            with send_lock:
                conn.send((MSG_HEARTBEAT, time.monotonic()))
        except (OSError, ValueError, BrokenPipeError):
            return  # supervisor went away; the process is dying anyway


def _evaluate(msg, contexts: Dict[str, ExecutionContext]):
    """Evaluate one ("run", id, request, delivery) message."""
    _, _req_id, request, delivery = msg
    if isinstance(request, (CrashRequest, SleepRequest)):
        return request.execute(delivery)
    if not isinstance(request, RunRequest):
        raise TypeError(f"worker cannot evaluate "
                        f"{type(request).__name__}")
    device = request.spec.device
    ctx = contexts.get(device)
    if ctx is None:
        ctx = ExecutionContext(device=DEVICES[device],
                               name=f"serve:{device}")
        contexts[device] = ctx
    return run_request(request, context=ctx)


def worker_main(worker_id: str, conn,
                heartbeat_interval: float = 0.2) -> None:
    """Process entry point: serve requests until told to stop."""
    send_lock = threading.Lock()
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(conn, send_lock, heartbeat_interval, stop),
        name=f"{worker_id}-heartbeat", daemon=True)
    beat.start()
    contexts: Dict[str, ExecutionContext] = {}
    try:
        with send_lock:
            conn.send((MSG_READY, time.monotonic()))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # supervisor side closed: shut down
            if msg[0] == "stop":
                return
            if msg[0] != "run":
                continue  # unknown message: ignore, stay alive
            req_id = msg[1]
            try:
                result = _evaluate(msg, contexts)
                reply = (MSG_RESULT, req_id, "ok", result)
            except Exception as exc:
                reply = (MSG_RESULT, req_id, "err", exc)
            try:
                with send_lock:
                    conn.send(reply)
            except (OSError, ValueError, BrokenPipeError):
                return
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:
            pass

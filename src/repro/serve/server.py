"""TCP front end for the specialization service.

:class:`ServiceServer` binds a localhost socket and bridges the wire
protocol onto a :class:`~repro.serve.supervisor.SpecializationService`.
Frames are ``(op, ...)`` tuples (see :mod:`repro.serve.wire` for the
framing and the localhost-only trust model):

* ``("run", RunRequest, deadline_or_None[, client_name])`` →
  ``("ok", RunResult)`` or ``("err", ServiceError-instance)`` —
  the optional client name feeds per-client attribution, falling
  back to the connection's peer address;
* ``("health",)`` → ``("ok", health-dict)``;
* ``("metrics",)`` → ``("ok", prometheus-exposition-text)`` — the
  service metrics snapshot rendered by
  :func:`repro.obs.prom.prom_exposition`, ready to proxy to a scrape
  endpoint;
* ``("ping",)`` → ``("ok", "pong")``.

Each accepted connection gets its own thread and handles one request
at a time in order — concurrency comes from multiple connections, and
the real multiplexing happens behind admission control in the
supervisor.  Errors ship as *instances* so the client re-raises the
exact typed ladder (:class:`~repro.serve.errors.ServiceError`
subclasses) the in-process API raises.
"""

from __future__ import annotations

import socket
import threading
from typing import List, Optional, Tuple

from repro.serve.errors import (ServiceError, ServiceProtocolError,
                                ServiceRequestError)
from repro.serve.supervisor import SpecializationService
from repro.serve.wire import recv_frame, send_frame


class ServiceServer:
    """Accept loop + per-connection request threads."""

    def __init__(self, service: SpecializationService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._stopping = False
        self.connections = 0

    def start(self) -> "ServiceServer":
        if self._accept_thread is not None:
            raise RuntimeError("server already started")
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True)
        self._accept_thread.start()
        return self

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def stop(self) -> None:
        self._stopping = True
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(2.0)
        for thread in list(self._conn_threads):
            thread.join(2.0)

    # -- internals -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed: shutting down
            self.connections += 1
            self.service.metrics.inc("serve.connections")
            thread = threading.Thread(
                target=self._serve_conn, args=(conn, addr),
                name=f"serve-conn-{addr[1]}", daemon=True)
            thread.start()
            self._conn_threads.append(thread)
            self._conn_threads = [t for t in self._conn_threads
                                  if t.is_alive()]

    def _serve_conn(self, conn: socket.socket, addr) -> None:
        client = f"{addr[0]}:{addr[1]}"
        try:
            while not self._stopping:
                try:
                    msg = recv_frame(conn)
                except EOFError:
                    return  # client hung up cleanly
                except ServiceProtocolError as exc:
                    self._reply(conn, ("err", exc))
                    return  # stream state unknown: drop the connection
                self._reply(conn, self._handle(msg, client))
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _reply(self, conn: socket.socket, reply) -> None:
        try:
            send_frame(conn, reply)
        except OSError:
            pass  # client vanished mid-reply; nothing to salvage

    def _handle(self, msg, client: str):
        try:
            if not isinstance(msg, tuple) or not msg:
                raise ServiceProtocolError(
                    f"expected an (op, ...) tuple, got "
                    f"{type(msg).__name__}")
            op = msg[0]
            if op == "ping":
                return ("ok", "pong")
            if op == "health":
                return ("ok", self.service.health())
            if op == "metrics":
                from repro.obs.prom import prom_exposition
                return ("ok",
                        prom_exposition(self.service.metrics.snapshot()))
            if op == "run":
                request = msg[1]
                deadline = msg[2] if len(msg) > 2 else None
                name = msg[3] if len(msg) > 3 and msg[3] else client
                future = self.service.submit(request, deadline=deadline,
                                             client=name)
                return ("ok", future.result())
            raise ServiceProtocolError(f"unknown op {op!r}")
        except ServiceError as exc:
            return ("err", exc)
        except Exception as exc:  # keep the contract: always typed
            return ("err", ServiceRequestError(
                f"{type(exc).__name__}: {exc}", cause=exc))

"""The specialization service: supervised worker pool + dispatch loop.

:class:`SpecializationService` is the tentpole of the serve subsystem.
It owns a fixed set of worker *slots*, each running (or restarting
into) one warm :mod:`repro.serve.worker` process, and a single
supervisor thread that multiplexes everything over
:func:`multiprocessing.connection.wait`:

* **dispatch** — admitted entries go to idle workers in FIFO order;
  the circuit breaker decides per dispatch whether the request runs
  specialized, degraded to RE, or as the half-open probe;
* **crash detection** — a worker pipe hitting EOF (or its process
  dying) fails the slot; the in-flight entry is redispatched to
  another worker under the at-most-N-retries contract, then resolved
  as :class:`~repro.serve.errors.ServiceWorkerError`;
* **hang detection** — workers heartbeat on the pipe; a busy *or*
  idle worker whose last beat is older than ``hang_timeout`` is
  killed and treated exactly like a crash;
* **deadline backstop** — a request still running ``kill_grace``
  past its deadline gets its worker killed and resolves as
  :class:`~repro.serve.errors.ServiceDeadlineError`; cooperative
  deadline checks inside the worker normally fire long before this;
* **restart pacing** — slot restarts back off on the service's
  seeded :class:`~repro.faults.retry.RetryPolicy` schedule, so a
  crash-looping worker cannot hot-spin the supervisor, and the
  pacing is deterministic per seed;
* **drain shutdown** — ``shutdown(drain=True)`` stops admission,
  lets queued + in-flight work finish, then stops workers; abort
  mode resolves everything pending as
  :class:`~repro.serve.errors.ServiceShutdownError` instead.

Threading contract: the supervisor thread is the only thing that
touches worker handles; ``submit`` runs in caller threads and only
touches the admission queue, the wake channel, and service counters.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import socket
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Mapping, Optional

from repro.apps.harness import RunRequest, RunResult
from repro.faults.errors import DeadlineExceeded
from repro.faults.retry import RetryPolicy
from repro.obs.events import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceContext, Tracer
from repro.serve.admission import AdmissionController, Entry
from repro.serve.breaker import COMPILE_SITES, CircuitBreaker
from repro.serve.errors import (ServiceDeadlineError, ServiceError,
                                ServiceRequestError, ServiceShutdownError,
                                ServiceWorkerError)
from repro.serve.worker import (MSG_HEARTBEAT, MSG_READY, MSG_RESULT,
                                worker_main)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one service instance (all times in seconds)."""

    workers: int = 2
    queue_capacity: int = 16
    #: Extra dispatches allowed after a worker crash: a request is
    #: attempted at most ``1 + max_redispatch`` times total.
    max_redispatch: int = 2
    heartbeat_interval: float = 0.1
    #: A worker silent this long is presumed wedged and killed.
    hang_timeout: float = 3.0
    #: How far past its deadline a running request may overrun before
    #: the supervisor kills the worker out from under it.
    kill_grace: float = 0.5
    #: Supervisor loop tick (upper bound on event-detection latency).
    tick: float = 0.05
    #: multiprocessing start method; None = platform default.
    start_method: Optional[str] = None
    breaker_threshold: int = 3
    breaker_reset: float = 1.0
    #: Paces slot restarts after crashes (seeded => deterministic).
    restart_backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=8, base_delay=0.05, max_delay=2.0, seed=1009))
    #: Flight-recorder ring size (newest events kept for forensics).
    event_capacity: int = 256
    #: SLO thresholds, histogram name -> seconds: observations above
    #: the threshold bump ``slo.breach.{name}``.  The special key
    #: ``"client.latency_s"`` applies to *every* per-client latency
    #: histogram (``client.{name}.latency_s``), so one number sets the
    #: whole fleet's client SLO; other keys register verbatim (e.g.
    #: ``"serve.queue_wait_s": 0.25``).
    slo: Optional[Mapping[str, float]] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_redispatch < 0:
            raise ValueError("max_redispatch must be >= 0")


class WorkerHandle:
    """One live worker process bound to a slot."""

    def __init__(self, slot: int, generation: int, proc, conn):
        self.slot = slot
        self.generation = generation
        self.id = f"w{slot}g{generation}"
        self.proc = proc
        self.conn = conn
        self.busy: Optional[Entry] = None
        self.started_at = time.monotonic()
        self.last_beat = self.started_at
        self.dispatched_at = 0.0
        self.deadline_kill = False  # our kill, not the worker's fault
        #: Device keys this worker has already built a warm context
        #: for (the worker keeps one per device); dispatch prefers a
        #: worker already warm for a request's device, so a
        #: heterogeneous fleet workload lands on hot caches.
        self.warm_devices: set = set()


class SpecializationService:
    """Supervised warm-worker pool behind admission control."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        cfg = self.config
        self.metrics = MetricsRegistry()
        #: Bounded ring of typed events (see :mod:`repro.obs.events`):
        #: worker lifecycle, breaker transitions, sheds, redispatches,
        #: plus whatever traced workers ship back.  `/health` renders
        #: it and ``--flight-recorder`` dumps it on crash.
        self.recorder = FlightRecorder(capacity=cfg.event_capacity,
                                       origin="supervisor")
        #: Supervisor-side tracer; None until :meth:`enable_tracing`.
        #: When set, every dispatched :class:`RunRequest` carries a
        #: :class:`~repro.obs.trace.TraceContext` and the shipped
        #: worker span tree is grafted under a ``request:{id}`` span —
        #: one export shows admission → queue → worker → launch.
        self.tracer: Optional[Tracer] = None
        self.admission = AdmissionController(
            cfg.queue_capacity, on_shed=self._on_shed)
        self.breaker = CircuitBreaker(
            failure_threshold=cfg.breaker_threshold,
            reset_timeout=cfg.breaker_reset,
            on_transition=self._on_breaker_transition)
        self._client_slo: Optional[float] = None
        for name, threshold in dict(cfg.slo or {}).items():
            if name == "client.latency_s":
                self._client_slo = float(threshold)
            else:
                self.metrics.set_slo(name, threshold)
        self._mp = multiprocessing.get_context(cfg.start_method)
        self._ids = itertools.count(1)
        self._handles: List[Optional[WorkerHandle]] = \
            [None] * cfg.workers
        self._restart_at: List[float] = [0.0] * cfg.workers
        self._crash_streak: List[int] = [0] * cfg.workers
        self._generation: List[int] = [0] * cfg.workers
        self._restart_delays = cfg.restart_backoff.schedule() \
            or [cfg.restart_backoff.base_delay]
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._thread: Optional[threading.Thread] = None
        self._stopping = False
        self._drain = True
        self._stopped = threading.Event()
        self._started = False
        self._started_at = 0.0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "SpecializationService":
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(target=self._loop,
                                        name="serve-supervisor",
                                        daemon=True)
        self._thread.start()
        return self

    def __enter__(self) -> "SpecializationService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    @property
    def running(self) -> bool:
        return self._started and not self._stopped.is_set()

    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the service; *drain* finishes pending work first."""
        if not self._started:
            return
        self.admission.close()
        if not drain:
            for entry in self.admission.drain_pending():
                entry.complete(error=ServiceShutdownError(
                    "service aborted before request ran"))
        self._drain = drain
        self._stopping = True
        self._wake()
        self._thread.join(timeout)
        if self._thread.is_alive():  # drain overran: abort the rest
            self._drain = False
            for entry in self.admission.drain_pending():
                entry.complete(error=ServiceShutdownError(
                    "service drain timed out; request abandoned"))
            self._wake()
            self._thread.join(5.0)

    # -- client surface --------------------------------------------------

    def submit(self, request, deadline: Optional[float] = None,
               client: str = "") -> Future:
        """Admit one request; returns its future or raises typed.

        *deadline* is an absolute ``time.monotonic()`` timestamp; for
        :class:`RunRequest` it is pushed into the request itself so
        the worker's cooperative deadline checks see it too.
        """
        if deadline is None:
            deadline = getattr(request, "deadline", None)
        elif isinstance(request, RunRequest) \
                and request.deadline != deadline:
            request = dataclasses.replace(request, deadline=deadline)
        entry = Entry(id=next(self._ids), request=request,
                      future=Future(), deadline=deadline, client=client,
                      on_complete=self._attribute)
        try:
            self.admission.admit(entry)
        except ServiceError:
            self.metrics.inc(f"client.{client or 'anon'}.rejected")
            raise
        self.metrics.inc("serve.submitted")
        self.metrics.inc(f"client.{client or 'anon'}.submitted")
        self._wake()
        return entry.future

    def _on_shed(self, entry: Entry) -> None:
        self.metrics.inc("serve.shed")
        self.recorder.record("admission.shed",
                             client=entry.client or "anon",
                             why="queue_full")

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self.recorder.record("breaker.transition",
                             from_state=old, to_state=new)

    def enable_tracing(self, name: str = "serve") -> Tracer:
        """Attach the supervisor tracer (idempotent).

        From then on every dispatched :class:`RunRequest` is traced
        end-to-end: the worker ships its span tree back and
        :meth:`_on_result` grafts it — under synthetic ``queue`` /
        ``worker:{id}`` phase spans — below a ``request:{id}`` span in
        this tracer.
        """
        if self.tracer is None:
            self.tracer = Tracer(name)
        return self.tracer

    def export_trace(self, path: str) -> str:
        """Write the supervisor trace (plus metrics + flight events)
        as Chrome-trace JSON to *path*; returns the path."""
        if self.tracer is None:
            raise RuntimeError("tracing is not enabled on this service")
        from repro.obs.export import write_trace
        write_trace(path, self.tracer.to_dict(),
                    metrics=self.metrics.snapshot(),
                    events=self.recorder.events())
        return path

    def _attribute(self, entry: Entry, ok: bool) -> None:
        """Per-client outcome accounting (Entry resolution hook).

        Thread-safety: runs wherever the entry resolves (supervisor
        thread, or the caller's thread on pre-dispatch failures);
        MetricsRegistry is lock-protected, so that's fine.
        """
        name = entry.client or "anon"
        self.metrics.inc(f"client.{name}.{'ok' if ok else 'err'}")

    def run(self, request, deadline: Optional[float] = None,
            timeout: Optional[float] = None, client: str = ""):
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(request, deadline=deadline,
                           client=client).result(timeout)

    def health(self) -> Dict[str, object]:
        from repro.serve.health import health_report
        return health_report(self)

    # -- supervisor internals (supervisor thread only) -------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except OSError:
            pass

    def _spawn(self, slot: int) -> None:
        parent, child = self._mp.Pipe(duplex=True)
        self._generation[slot] += 1
        gen = self._generation[slot]
        worker_id = f"w{slot}g{gen}"
        proc = self._mp.Process(
            target=worker_main,
            args=(worker_id, child, self.config.heartbeat_interval),
            name=f"serve-{worker_id}", daemon=True)
        proc.start()
        child.close()  # parent keeps one end only, so EOF means death
        self._handles[slot] = WorkerHandle(slot, gen, proc, parent)
        self.metrics.inc("serve.worker.spawn")
        self.recorder.record("worker.spawn", worker=worker_id,
                             pid=proc.pid)

    def _kill_worker(self, handle: WorkerHandle) -> None:
        try:
            handle.proc.kill()
        except (OSError, AttributeError):
            pass

    def _worker_died(self, slot: int, reason: str) -> None:
        handle = self._handles[slot]
        if handle is None:
            return
        self._handles[slot] = None
        entry = handle.busy
        handle.busy = None
        try:
            handle.conn.close()
        except OSError:
            pass
        self._kill_worker(handle)
        handle.proc.join(1.0)
        now = time.monotonic()
        if handle.deadline_kill:
            # Our own deadline backstop: the slot is healthy, restart
            # immediately and keep the crash streak clean.
            self._restart_at[slot] = now
        else:
            self._crash_streak[slot] += 1
            streak = self._crash_streak[slot]
            delay = self._restart_delays[
                min(streak - 1, len(self._restart_delays) - 1)]
            self._restart_at[slot] = now + delay
            self.metrics.inc("serve.worker.crash")
        self.recorder.record("worker.exit", worker=handle.id, why=reason)
        if entry is None or entry.done:
            return
        if entry.probe:
            self.breaker.abort_probe()
        if entry.expired(now):
            entry.complete(error=ServiceDeadlineError(
                f"request {entry.id} deadline expired while its worker "
                f"died ({reason})", phase="running"))
        elif entry.attempts >= 1 + self.config.max_redispatch:
            entry.complete(error=ServiceWorkerError(
                f"request {entry.id} lost {entry.attempts} workers "
                f"({reason}); redispatch budget "
                f"({self.config.max_redispatch}) exhausted",
                attempts=entry.attempts))
            self.metrics.inc("serve.err")
        else:
            self.admission.requeue_front(entry)
            self.metrics.inc("serve.redispatch")
            self.recorder.record("redispatch", request=entry.id,
                                 attempts=entry.attempts)

    def _dispatch(self, handle: WorkerHandle, entry: Entry) -> None:
        entry.attempts += 1
        request = entry.request
        if isinstance(request, RunRequest):
            mode = self.breaker.acquire()
            entry.probe = mode == "probe"
            entry.degrade = mode == "degrade"
            if entry.degrade and not request.degrade:
                request = dataclasses.replace(request, degrade=True)
                self.metrics.inc("serve.degraded_dispatch")
            if self.tracer is not None and request.trace_ctx is None:
                request = dataclasses.replace(
                    request, trace_ctx=TraceContext(
                        trace_id=f"req{entry.id}",
                        parent=f"request:{entry.id}",
                        client=entry.client))
        handle.busy = entry
        handle.dispatched_at = time.monotonic()
        entry.dispatched_at = handle.dispatched_at
        self.metrics.observe("serve.queue_wait_s",
                             handle.dispatched_at - entry.admitted_at)
        try:
            handle.conn.send(("run", entry.id, request, entry.attempts))
        except (OSError, ValueError, BrokenPipeError):
            self._worker_died(handle.slot, "send failed")
            return
        device = getattr(getattr(request, "spec", None), "device", None)
        if device:
            handle.warm_devices.add(device)
        self.metrics.inc("serve.dispatch")

    def _map_worker_error(self, exc: Exception) -> ServiceError:
        if isinstance(exc, ServiceError):
            return exc
        if isinstance(exc, DeadlineExceeded):
            return ServiceDeadlineError(str(exc), phase=exc.site)
        return ServiceRequestError(
            f"{type(exc).__name__}: {exc}", cause=exc,
            site=getattr(exc, "site", "unknown"))

    def _breaker_mode(self, entry: Entry, degraded: bool) -> str:
        if entry.degrade or degraded:
            return "degrade"
        return "probe" if entry.probe else "sk"

    def _on_result(self, handle: WorkerHandle, msg) -> None:
        _, req_id, status, payload = msg
        entry = handle.busy
        handle.busy = None
        self._crash_streak[handle.slot] = 0
        if entry is None or entry.id != req_id:
            return  # stale reply from a superseded dispatch
        now = time.monotonic()
        if status == "ok":
            if isinstance(payload, RunResult):
                payload.worker = handle.id
                payload.attempts = entry.attempts
                compile_faults = sum(payload.faults.get(s, 0)
                                     for s in COMPILE_SITES)
                self.breaker.record(
                    compile_faults,
                    self._breaker_mode(entry, payload.degraded))
                self._telemetry(handle, entry, payload, now)
            if entry.complete(result=payload):
                self.metrics.inc("serve.ok")
                self.metrics.observe("serve.latency_s",
                                     now - entry.admitted_at)
                self._observe_latency(entry, payload, now)
        else:
            exc = payload
            site = getattr(exc, "site", "")
            if isinstance(site, str) and site.startswith("nvcc."):
                self.breaker.record(
                    1, self._breaker_mode(entry, False))
            elif entry.probe:
                self.breaker.abort_probe()
            if entry.complete(error=self._map_worker_error(exc)):
                self.metrics.inc("serve.err")

    def _observe_latency(self, entry: Entry, payload, now: float) -> None:
        """Per-client / per-device / per-phase latency histograms."""
        latency = now - entry.admitted_at
        client = entry.client or "anon"
        name = f"client.{client}.latency_s"
        if self._client_slo is not None:
            # Idempotent registration: the config's one client SLO
            # applies to every client histogram as it appears.
            self.metrics.set_slo(name, self._client_slo)
        self.metrics.observe(name, latency)
        device = getattr(getattr(entry.request, "spec", None),
                         "device", None)
        if device:
            self.metrics.observe(f"serve.device.{device}.latency_s",
                                 latency)
        if entry.dispatched_at:
            exec_s = getattr(payload, "wall_seconds", 0.0) \
                or max(0.0, now - entry.dispatched_at)
            self.metrics.observe("serve.exec_s", exec_s)

    def _telemetry(self, handle: WorkerHandle, entry: Entry,
                   payload: RunResult, now: float) -> None:
        """Fold a traced worker result into the supervisor's plane.

        Ships three things back from the worker: flight events (into
        :attr:`recorder`, re-originated to the worker id), per-phase
        compile/launch time (summed from the shipped span tree's
        categories into ``serve.phase.*`` histograms), and — when
        supervisor tracing is on — the span tree itself, grafted under
        a ``request:{id}`` span with synthetic ``queue`` and
        ``worker:{id}`` phase spans so the export reads
        admission → queue → worker → launch end-to-end.
        """
        if payload.events:
            self.recorder.extend(payload.events, origin=handle.id)
        trace = payload.trace
        if not trace:
            return
        spans = trace.get("spans") or []
        if spans:
            self.metrics.observe(
                "serve.phase.compile_s",
                sum(s["dur"] for s in spans if s["cat"] == "compile"))
            self.metrics.observe(
                "serve.phase.launch_s",
                sum(s["dur"] for s in spans if s["cat"] == "launch"))
        if self.tracer is None or not spans:
            return
        queue_wait = max(0.0, entry.dispatched_at - entry.admitted_at)
        exec_wall = getattr(payload, "wall_seconds", 0.0) \
            or max(0.0, now - entry.dispatched_at)
        base = min(s["start"] for s in spans)
        extent = max(s["start"] + s["dur"] for s in spans) - base
        # The worker span must contain the shipped subtree even when
        # the two clocks disagree slightly.
        exec_dur = max(exec_wall, extent)
        # Synthetic phase spans: the graft wrapper itself becomes the
        # request:{id} span, so the export's roots are the two phases.
        synthetic = [
            {"sid": 1, "parent": None, "name": "queue", "cat": "serve",
             "start": 0.0, "dur": queue_wait, "tid": 0,
             "attrs": {"client": entry.client or "anon"}},
            {"sid": 2, "parent": None, "name": f"worker:{handle.id}",
             "cat": "serve", "start": queue_wait, "dur": exec_dur,
             "tid": 0, "attrs": {"worker": handle.id,
                                 "attempts": entry.attempts}},
        ]
        shift = (queue_wait + exec_dur - extent) - base
        for s in spans:
            synthetic.append({
                "sid": s["sid"] + 2,
                "parent": s["parent"] + 2 if s["parent"] is not None
                else 2,
                "name": s["name"], "cat": s["cat"],
                "start": s["start"] + shift, "dur": s["dur"],
                "tid": s["tid"], "attrs": s["attrs"]})
        self.tracer.graft(
            {"name": trace.get("name", f"req{entry.id}"),
             "spans": synthetic},
            f"request:{entry.id}", cat="serve",
            client=entry.client or "anon", worker=handle.id,
            attempts=entry.attempts)

    def _check_worker(self, handle: WorkerHandle, now: float) -> None:
        """Deadline backstop + hang detection for one live worker."""
        entry = handle.busy
        if entry is not None and entry.deadline is not None \
                and now > entry.deadline + self.config.kill_grace:
            if entry.probe:
                self.breaker.abort_probe()
            entry.complete(error=ServiceDeadlineError(
                f"request {entry.id} overran its deadline by more than "
                f"kill_grace={self.config.kill_grace}s; worker "
                f"{handle.id} killed", phase="running"))
            handle.busy = None
            handle.deadline_kill = True
            self.metrics.inc("serve.deadline_kill")
            self.metrics.inc("serve.err")
            self.recorder.record("deadline.kill", request=entry.id,
                                 worker=handle.id)
            self._kill_worker(handle)
            self._worker_died(handle.slot, "deadline backstop")
            return
        if now - handle.last_beat > self.config.hang_timeout:
            self.metrics.inc("serve.hang_kill")
            self.recorder.record("worker.kill", worker=handle.id,
                                 why="heartbeat stale")
            self._kill_worker(handle)
            self._worker_died(handle.slot, "heartbeat stale")

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _read_conn(self, slot: int) -> None:
        handle = self._handles[slot]
        while handle is not None and self._handles[slot] is handle:
            try:
                if not handle.conn.poll():
                    return
                msg = handle.conn.recv()
            except (EOFError, OSError):
                self._worker_died(slot, "pipe closed")
                return
            tag = msg[0]
            if tag in (MSG_READY, MSG_HEARTBEAT):
                handle.last_beat = time.monotonic()
            elif tag == MSG_RESULT:
                handle.last_beat = time.monotonic()
                self._on_result(handle, msg)

    def _idle_worker(self) -> Optional[WorkerHandle]:
        for handle in self._handles:
            if handle is not None and handle.busy is None:
                return handle
        return None

    def _affine_worker(self, entry: Entry) -> Optional[WorkerHandle]:
        """An idle worker already warm for the entry's device, if any.

        Device-affinity placement (the fleet's policy, applied to the
        service's worker pool): under a heterogeneous workload, a
        request preferentially lands on a worker that has already
        built the warm per-device context its spec needs, instead of
        paying a cold compile on whichever slot was first-idle.
        """
        device = getattr(getattr(entry.request, "spec", None),
                         "device", None)
        if device is None:
            return None
        for handle in self._handles:
            if handle is not None and handle.busy is None \
                    and device in handle.warm_devices:
                self.metrics.inc("serve.affinity_hit")
                return handle
        return None

    def _busy_count(self) -> int:
        return sum(1 for h in self._handles
                   if h is not None and h.busy is not None)

    def _loop(self) -> None:
        cfg = self.config
        try:
            while True:
                now = time.monotonic()
                if self._stopping and not self._drain:
                    break
                if self._stopping and self._drain \
                        and self.admission.depth == 0 \
                        and self._busy_count() == 0:
                    break
                for slot in range(cfg.workers):
                    if self._handles[slot] is None \
                            and now >= self._restart_at[slot]:
                        self._spawn(slot)
                for handle in list(self._handles):
                    if handle is not None:
                        self._check_worker(handle, now)
                self.admission.sweep_expired()
                while True:
                    handle = self._idle_worker()
                    if handle is None:
                        break
                    entry = self.admission.next_ready()
                    if entry is None:
                        break
                    self._dispatch(self._affine_worker(entry) or handle,
                                   entry)
                waitables = [self._wake_r]
                for handle in self._handles:
                    if handle is not None:
                        waitables.append(handle.conn)
                try:
                    ready = _conn_wait(waitables, timeout=cfg.tick)
                except OSError:
                    ready = []
                for obj in ready:
                    if obj is self._wake_r:
                        self._drain_wake()
                        continue
                    for slot, handle in enumerate(self._handles):
                        if handle is not None and handle.conn is obj:
                            self._read_conn(slot)
                            break
        finally:
            self._teardown()

    def _teardown(self) -> None:
        shutdown_err = ServiceShutdownError(
            "service stopped before request completed")
        for entry in self.admission.drain_pending():
            entry.complete(error=shutdown_err)
        for slot, handle in enumerate(self._handles):
            if handle is None:
                continue
            if handle.busy is not None and not handle.busy.done:
                handle.busy.complete(error=shutdown_err)
                handle.busy = None
            try:
                handle.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 2.0
        for handle in self._handles:
            if handle is None:
                continue
            handle.proc.join(max(0.0, deadline - time.monotonic()))
            if handle.proc.is_alive():
                self._kill_worker(handle)
                handle.proc.join(1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._handles = [None] * self.config.workers
        self._stopped.set()
        self.recorder.record("note", text="service stopped")

"""``python -m repro.serve`` — run the specialization daemon.

Binds localhost (see :mod:`repro.serve.wire` for the trust model),
prints the bound address on stdout (machine-readable first line:
``serve: HOST PORT``), and serves until SIGINT/SIGTERM, then drains.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.faults.retry import RetryPolicy
from repro.serve.server import ServiceServer
from repro.serve.supervisor import ServiceConfig, SpecializationService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Resilient specialization-as-a-service daemon.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (keep it local)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, printed)")
    parser.add_argument("--workers", type=int, default=2,
                        help="warm worker processes")
    parser.add_argument("--queue-capacity", type=int, default=16,
                        help="admission queue bound (beyond = shed)")
    parser.add_argument("--heartbeat", type=float, default=0.1,
                        help="worker heartbeat interval, seconds")
    parser.add_argument("--hang-timeout", type=float, default=3.0,
                        help="stale-heartbeat kill threshold, seconds")
    parser.add_argument("--max-redispatch", type=int, default=2,
                        help="extra dispatches after worker crashes")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        help="consecutive compile faults to trip")
    parser.add_argument("--breaker-reset", type=float, default=1.0,
                        help="seconds before a half-open probe")
    parser.add_argument("--start-method", default=None,
                        choices=("fork", "spawn", "forkserver"),
                        help="multiprocessing start method")
    parser.add_argument("--restart-seed", type=int, default=1009,
                        help="seed for the restart backoff schedule")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="enable end-to-end tracing; write the "
                             "grafted Chrome-trace JSON to PATH on "
                             "shutdown")
    parser.add_argument("--flight-recorder", default=None,
                        metavar="PATH",
                        help="dump the flight recorder to PATH on "
                             "shutdown (and on an uncaught crash)")
    parser.add_argument("--slo", action="append", default=[],
                        metavar="NAME=SECONDS",
                        help="SLO threshold for a latency histogram, "
                             "e.g. client.latency_s=0.5 (repeatable)")
    return parser


def _parse_slo(pairs) -> dict:
    slo = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise SystemExit(f"--slo expects NAME=SECONDS, got {pair!r}")
        try:
            slo[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"--slo {name}: {value!r} is not a number") from None
    return slo


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = ServiceConfig(
        workers=args.workers, queue_capacity=args.queue_capacity,
        max_redispatch=args.max_redispatch,
        heartbeat_interval=args.heartbeat,
        hang_timeout=args.hang_timeout,
        start_method=args.start_method,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        restart_backoff=RetryPolicy(max_attempts=8, base_delay=0.05,
                                    max_delay=2.0,
                                    seed=args.restart_seed),
        slo=_parse_slo(args.slo) or None)
    service = SpecializationService(config)
    if args.trace:
        service.enable_tracing("serve-daemon")
    if args.flight_recorder:
        service.recorder.install_crash_dump(args.flight_recorder)
    service.start()
    server = ServiceServer(service, host=args.host,
                           port=args.port).start()
    host, port = server.address
    print(f"serve: {host} {port}", flush=True)
    print(f"workers={config.workers} queue={config.queue_capacity} "
          f"breaker={config.breaker_threshold}@{config.breaker_reset}s",
          flush=True)

    stop = threading.Event()

    def _signal(_signum, _frame):
        stop.set()

    signal.signal(signal.SIGINT, _signal)
    signal.signal(signal.SIGTERM, _signal)
    try:
        stop.wait()
    finally:
        print("serve: draining", flush=True)
        server.stop()
        service.shutdown(drain=True)
        if args.trace:
            service.export_trace(args.trace)
            print(f"serve: trace written to {args.trace}", flush=True)
        if args.flight_recorder:
            service.recorder.dump_json(args.flight_recorder)
            print(f"serve: flight recorder dumped to "
                  f"{args.flight_recorder}", flush=True)
        print("serve: stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The typed service-error ladder.

Every request a client submits to the serve daemon resolves to exactly
one of: a bit-identical :class:`~repro.apps.harness.RunResult`, or a
:class:`ServiceError` subclass — never a hang, a wrong answer, or a
bare exception.  Each subclass names *why* the service gave up, so
clients dispatch on class (and ``code``) instead of string-matching:

* :class:`ServiceOverloadError` — admission control shed the request
  because the bounded queue was full (back off and retry later);
* :class:`ServiceDeadlineError` — the request's deadline expired
  before or during evaluation;
* :class:`ServiceWorkerError` — the evaluating worker crashed more
  times than the at-most-N-retries redispatch contract allows;
* :class:`ServiceShutdownError` — the service is draining or stopped;
* :class:`ServiceProtocolError` — a malformed frame or unknown op;
* :class:`ServiceRequestError` — the request itself failed with a
  typed evaluation error (hard fault past the degradation ladder,
  malformed spec, ...); the original exception instance rides along
  as ``.cause`` so tests and clients can still dispatch on it.

All of these pickle cleanly (message in ``args``, extras in
``__dict__``), which is what lets the TCP server ship the *instance*
back to the client and re-raise it with type and fields intact.
"""

from __future__ import annotations

from repro.faults.errors import DeadlineExceeded, WorkerCrashError

__all__ = [
    "ServiceError", "ServiceOverloadError", "ServiceDeadlineError",
    "ServiceWorkerError", "ServiceShutdownError", "ServiceProtocolError",
    "ServiceRequestError", "WorkerCrashError", "DeadlineExceeded",
]


class ServiceError(Exception):
    """Base class for every typed serve-daemon failure."""

    code: str = "service"


class ServiceOverloadError(ServiceError):
    """Admission control shed this request: the queue is full.

    Load shedding is the robustness contract here — the service
    answers *now* with a typed error instead of queueing unboundedly
    and answering never.
    """

    code = "overload"

    def __init__(self, message: str = "service overloaded",
                 depth: int = -1, capacity: int = -1):
        super().__init__(message)
        self.depth = depth
        self.capacity = capacity


class ServiceDeadlineError(ServiceError):
    """The request's deadline expired (queued, pre-launch, or mid-run)."""

    code = "deadline"

    def __init__(self, message: str = "request deadline expired",
                 phase: str = "unknown"):
        super().__init__(message)
        self.phase = phase  # "queued" | "before-launch" | "running" ...


class ServiceWorkerError(ServiceError):
    """Worker crashes exhausted the redispatch budget for this request."""

    code = "worker"

    def __init__(self, message: str = "worker crashed",
                 attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts


class ServiceShutdownError(ServiceError):
    """The service is draining or stopped; the request was not run."""

    code = "shutdown"


class ServiceProtocolError(ServiceError):
    """A malformed wire frame or unknown operation."""

    code = "protocol"


class ServiceRequestError(ServiceError):
    """The evaluation itself failed with a typed error.

    Exception chaining (``__cause__``) does not survive pickling, so
    the original exception instance is carried explicitly in
    ``.cause`` (it lives in ``__dict__`` and pickles with the rest).
    """

    code = "request"

    def __init__(self, message: str = "request evaluation failed",
                 cause: Exception = None, site: str = "unknown"):
        super().__init__(message)
        self.cause = cause
        self.site = site

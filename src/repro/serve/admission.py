"""Admission control: a bounded queue that sheds instead of growing.

Every submitted request becomes an :class:`Entry` and must pass
:meth:`AdmissionController.admit` *in the caller's thread*: a full
queue raises :class:`~repro.serve.errors.ServiceOverloadError` right
there — the client gets a typed answer now, and the supervisor's
dispatch latency stays bounded by ``capacity`` no matter how fast
requests arrive.  Expired deadlines are rejected at the door too
(cheapest possible deadline miss), and swept from the queue before
every dispatch so a stale request never occupies a worker.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.serve.errors import (ServiceDeadlineError,
                                ServiceOverloadError,
                                ServiceShutdownError)


@dataclass
class Entry:
    """One admitted request, from submit to future completion."""

    id: int
    request: object
    future: Future
    deadline: Optional[float] = None
    client: str = ""
    attempts: int = 0          # dispatches so far (crash = redispatch)
    probe: bool = False        # half-open breaker probe
    degrade: bool = False      # dispatched pre-degraded to RE
    admitted_at: float = field(default_factory=time.monotonic)
    #: When the (latest) dispatch handed this entry to a worker; 0.0
    #: until first dispatched.  Lets the supervisor split latency into
    #: queue-wait vs execution phases per request.
    dispatched_at: float = 0.0
    #: Resolution hook, called exactly once as ``hook(entry, ok)``
    #: when the future resolves.  The service sets it to its
    #: per-client attribution recorder — completion is the one point
    #: every outcome path (worker reply, crash, deadline, shutdown)
    #: funnels through, so counting here can't miss a resolution.
    on_complete: Optional[Callable[["Entry", bool], None]] = None
    _done = False

    def complete(self, result=None, error: Optional[BaseException] = None
                 ) -> bool:
        """Resolve the future exactly once; returns False when late.

        Crash handling, deadline kills, and worker replies can race on
        one entry; first resolution wins and the rest are no-ops.
        """
        if self._done:
            return False
        self._done = True
        if error is not None:
            self.future.set_exception(error)
        else:
            self.future.set_result(result)
        if self.on_complete is not None:
            try:
                self.on_complete(self, error is None)
            except Exception:
                pass  # attribution must never break resolution
        return True

    @property
    def done(self) -> bool:
        return self._done

    def expired(self, now: Optional[float] = None) -> bool:
        return (self.deadline is not None
                and (now if now is not None else time.monotonic())
                >= self.deadline)


class AdmissionController:
    """Bounded FIFO of :class:`Entry` with load shedding."""

    def __init__(self, capacity: int,
                 on_shed: Optional[Callable[[Entry], None]] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._pending: Deque[Entry] = deque()
        self._lock = threading.Lock()
        self._closed = False
        self._on_shed = on_shed
        self.shed = 0
        self.admitted = 0

    def admit(self, entry: Entry) -> None:
        """Queue *entry* or raise a typed refusal (caller's thread)."""
        now = time.monotonic()
        with self._lock:
            if self._closed:
                raise ServiceShutdownError(
                    "service is draining; request not admitted")
            if entry.expired(now):
                raise ServiceDeadlineError(
                    "request deadline expired before admission",
                    phase="queued")
            if len(self._pending) >= self.capacity:
                self.shed += 1
                if self._on_shed is not None:
                    self._on_shed(entry)
                raise ServiceOverloadError(
                    f"queue full ({len(self._pending)}/"
                    f"{self.capacity}); request shed",
                    depth=len(self._pending), capacity=self.capacity)
            self._pending.append(entry)
            self.admitted += 1

    def next_ready(self) -> Optional[Entry]:
        """Pop the oldest live entry; expired ones resolve in place."""
        now = time.monotonic()
        while True:
            with self._lock:
                if not self._pending:
                    return None
                entry = self._pending.popleft()
            if entry.expired(now):
                entry.complete(error=ServiceDeadlineError(
                    f"request {entry.id} deadline expired after "
                    f"{now - entry.admitted_at:.3f}s in queue",
                    phase="queued"))
                continue
            return entry

    def sweep_expired(self) -> int:
        """Resolve every queued entry whose deadline already passed.

        Runs on the supervisor tick so a deadline miss gets its typed
        answer promptly even when no worker frees up to trigger
        :meth:`next_ready`.
        """
        now = time.monotonic()
        expired: List[Entry] = []
        with self._lock:
            if not self._pending:
                return 0
            live: Deque[Entry] = deque()
            for entry in self._pending:
                (expired if entry.expired(now) else live).append(entry)
            self._pending = live
        for entry in expired:
            entry.complete(error=ServiceDeadlineError(
                f"request {entry.id} deadline expired after "
                f"{now - entry.admitted_at:.3f}s in queue",
                phase="queued"))
        return len(expired)

    def requeue_front(self, entry: Entry) -> None:
        """Put a crashed dispatch back at the head (keeps FIFO order)."""
        with self._lock:
            self._pending.appendleft(entry)

    def close(self) -> None:
        """Stop admitting; queued entries still drain."""
        with self._lock:
            self._closed = True

    def drain_pending(self) -> List[Entry]:
        """Remove and return everything still queued (abort path)."""
        with self._lock:
            entries = list(self._pending)
            self._pending.clear()
        return entries

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"depth": len(self._pending),
                    "capacity": self.capacity, "shed": self.shed,
                    "admitted": self.admitted,
                    "closed": int(self._closed)}

"""Health reporting: one structured snapshot of service liveness.

:func:`health_report` assembles the `/health`-style answer the ISSUE
asks for — worker liveness (pid, busy/idle, heartbeat age, restart
counts), queue depth and shed counts, circuit-breaker state, and the
service metrics snapshot — as a plain dict of scalars and strings so
it pickles over the wire and dumps as JSON unchanged.

The report is advisory and read-mostly: it samples supervisor state
without stopping the dispatch loop, so a field can be a tick stale.
That is the right trade — health checks must never contend with the
work they are checking.
"""

from __future__ import annotations

import time
from typing import Dict, List


def _worker_rows(service) -> List[Dict[str, object]]:
    now = time.monotonic()
    rows: List[Dict[str, object]] = []
    for slot in range(service.config.workers):
        handle = service._handles[slot]
        if handle is None:
            rows.append({
                "slot": slot, "id": None, "pid": None, "alive": False,
                "busy": None, "beat_age_s": None,
                "restarts": service._generation[slot],
                "crash_streak": service._crash_streak[slot],
                "restart_in_s": max(
                    0.0, service._restart_at[slot] - now),
            })
            continue
        busy = handle.busy
        rows.append({
            "slot": slot, "id": handle.id, "pid": handle.proc.pid,
            "alive": bool(handle.proc.is_alive()),
            "busy": busy.id if busy is not None else None,
            "beat_age_s": now - handle.last_beat,
            "restarts": service._generation[slot],
            "crash_streak": service._crash_streak[slot],
            "restart_in_s": 0.0,
        })
    return rows


def _client_rows(service) -> Dict[str, Dict[str, int]]:
    """Aggregate the ``client.<name>.<event>`` counters per client.

    The submit/resolution paths attribute every request to the
    ``client`` tag it carried (``anon`` when untagged); this folds
    those counters into one row per client —
    ``{"alice": {"submitted": 3, "ok": 2, "err": 1}}`` — so `/health`
    answers *who* is loading the service, not just how much.
    """
    rows: Dict[str, Dict[str, int]] = {}
    for name, count in service.metrics.counters("client.").items():
        tail = name[len("client."):]
        client, _, event = tail.rpartition(".")
        if not client:
            continue
        rows.setdefault(client, {})[event] = count
    return rows


def health_report(service) -> Dict[str, object]:
    """Build the full health dict for one service instance."""
    if service._stopped.is_set():
        status = "stopped"
    elif service._stopping or service.admission.stats()["closed"]:
        status = "draining"
    elif not service._started:
        status = "new"
    else:
        status = "ok"
    now = time.monotonic()
    return {
        "status": status,
        "uptime_s": (now - service._started_at
                     if service._started else 0.0),
        "workers": _worker_rows(service),
        "queue": service.admission.stats(),
        "breaker": service.breaker.stats(),
        "clients": _client_rows(service),
        "metrics": service.metrics.snapshot(),
        "events": [{"age_s": now - t, "event": msg}
                   for t, msg in list(service._events)],
    }

"""Health reporting: one structured snapshot of service liveness.

:func:`health_report` assembles the `/health`-style answer the ISSUE
asks for — worker liveness (pid, busy/idle, heartbeat age, restart
counts), queue depth and shed counts, circuit-breaker state, per-client
rows with latency quantiles and SLO breach counts, the service metrics
snapshot, and the flight recorder — as a plain dict of scalars and
strings so it pickles over the wire and dumps as JSON unchanged.

The report is advisory and read-mostly: it samples supervisor state
without stopping the dispatch loop, so a field can be a tick stale.
That is the right trade — health checks must never contend with the
work they are checking.
"""

from __future__ import annotations

import time
from typing import Dict, List


def _worker_rows(service) -> List[Dict[str, object]]:
    now = time.monotonic()
    rows: List[Dict[str, object]] = []
    for slot in range(service.config.workers):
        handle = service._handles[slot]
        if handle is None:
            rows.append({
                "slot": slot, "id": None, "pid": None, "alive": False,
                "busy": None, "beat_age_s": None,
                "restarts": service._generation[slot],
                "crash_streak": service._crash_streak[slot],
                "restart_in_s": max(
                    0.0, service._restart_at[slot] - now),
            })
            continue
        busy = handle.busy
        rows.append({
            "slot": slot, "id": handle.id, "pid": handle.proc.pid,
            "alive": bool(handle.proc.is_alive()),
            "busy": busy.id if busy is not None else None,
            "beat_age_s": now - handle.last_beat,
            "restarts": service._generation[slot],
            "crash_streak": service._crash_streak[slot],
            "restart_in_s": 0.0,
        })
    return rows


def _client_rows(service) -> Dict[str, Dict[str, object]]:
    """Per-client rows: outcome counters + latency quantiles + SLO.

    The submit/resolution paths attribute every request to the
    ``client`` tag it carried (``anon`` when untagged); this folds the
    ``client.<name>.<event>`` counters into one row per client and
    adds the client latency histogram's p50/p95/p99 estimates
    (``p50_s`` / ``p95_s`` / ``p99_s``, present once the client has a
    completed request) plus ``slo_breach`` (observations over the
    configured client SLO) — so `/health` answers *who* is loading the
    service, how slow their tail is, and whether the SLO holds.
    """
    rows: Dict[str, Dict[str, object]] = {}
    breaches: Dict[str, int] = {}
    for name, count in service.metrics.counters("slo.breach.client."
                                                ).items():
        tail = name[len("slo.breach.client."):]
        client = tail[:-len(".latency_s")] \
            if tail.endswith(".latency_s") else tail
        breaches[client] = count
    for name, count in service.metrics.counters("client.").items():
        tail = name[len("client."):]
        client, _, event = tail.rpartition(".")
        if not client:
            continue
        rows.setdefault(client, {})[event] = count
    for client, row in rows.items():
        quantiles = service.metrics.quantiles(
            f"client.{client}.latency_s")
        for key, value in quantiles.items():
            row[f"{key}_s"] = value
        if client in breaches or service._client_slo is not None:
            row["slo_breach"] = breaches.get(client, 0)
    return rows


def _slo_section(service) -> Dict[str, object]:
    """Configured thresholds and every breach counter, one place."""
    return {"thresholds": service.metrics.slos(),
            "breaches": service.metrics.counters("slo.breach.")}


def health_report(service) -> Dict[str, object]:
    """Build the full health dict for one service instance."""
    if service._stopped.is_set():
        status = "stopped"
    elif service._stopping or service.admission.stats()["closed"]:
        status = "draining"
    elif not service._started:
        status = "new"
    else:
        status = "ok"
    now = time.monotonic()
    flight = service.recorder.dump()
    return {
        "status": status,
        "uptime_s": (now - service._started_at
                     if service._started else 0.0),
        "workers": _worker_rows(service),
        "queue": service.admission.stats(),
        "breaker": service.breaker.stats(),
        "clients": _client_rows(service),
        "metrics": service.metrics.snapshot(),
        "slo": _slo_section(service),
        # Legacy human-readable event log shape, now fed by the typed
        # flight recorder; the structured form rides in "flight".
        "events": [{"age_s": now - e["t"],
                    "event": _event_line(e)}
                   for e in flight["events"]],
        "flight": flight,
    }


def _event_line(event: Dict[str, object]) -> str:
    attrs = event.get("attrs") or {}
    note = " ".join(f"{k}={v}" for k, v in attrs.items())
    return f"{event.get('kind', '?')} {note}".strip()

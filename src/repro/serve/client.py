"""Client surfaces for the specialization service.

Two clients with one API (``run`` / ``run_many`` / ``health`` /
``ping``), so tests and tools swap transports freely:

* :class:`ServiceClient` — TCP, for a daemon started with
  ``python -m repro.serve``.  One socket, one request in flight at a
  time; open several clients for concurrency (the daemon multiplexes
  behind admission control either way).
* :class:`InProcClient` — wraps a
  :class:`~repro.serve.supervisor.SpecializationService` in the same
  process, skipping the socket but keeping the exact error surface.

Both re-raise the service's typed errors
(:class:`~repro.serve.errors.ServiceError` subclasses) as instances,
so ``except ServiceOverloadError`` works identically over either
transport.
"""

from __future__ import annotations

import socket
from typing import Iterable, List, Optional

from repro.serve.errors import ServiceProtocolError
from repro.serve.wire import recv_frame, send_frame


class ServiceClient:
    """Talk to a serve daemon over its localhost socket."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 connect_timeout: float = 5.0, client: str = ""):
        self.address = (host, port)
        self.client = client
        self._sock = socket.create_connection(self.address,
                                              timeout=connect_timeout)
        self._sock.settimeout(None)  # request latency is the service's
        self._closed = False

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def _call(self, frame):
        send_frame(self._sock, frame)
        reply = recv_frame(self._sock)
        if not isinstance(reply, tuple) or len(reply) != 2:
            raise ServiceProtocolError(
                f"malformed reply frame: {type(reply).__name__}")
        status, payload = reply
        if status == "err":
            raise payload
        return payload

    def run(self, request, deadline: Optional[float] = None,
            client: Optional[str] = None):
        """Evaluate one request; returns its RunResult or raises typed.

        *client* names the caller for the service's per-client
        attribution (``client.*`` counters, ``/health`` rows); it
        defaults to the name given at construction, and the server
        falls back to the peer address when neither is set.
        """
        name = client if client is not None else self.client
        return self._call(("run", request, deadline, name))

    def run_many(self, requests: Iterable,
                 deadline: Optional[float] = None,
                 client: Optional[str] = None) -> List:
        """Evaluate requests in order on this connection."""
        return [self.run(request, deadline=deadline, client=client)
                for request in requests]

    def health(self) -> dict:
        return self._call(("health",))

    def metrics_text(self) -> str:
        """The daemon's metrics in Prometheus text exposition format."""
        return self._call(("metrics",))

    def ping(self) -> str:
        return self._call(("ping",))


class InProcClient:
    """The same client surface over an in-process service."""

    def __init__(self, service, client: str = "inproc"):
        self.service = service
        self.client = client

    def __enter__(self) -> "InProcClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def close(self) -> None:
        pass

    def run(self, request, deadline: Optional[float] = None,
            client: Optional[str] = None):
        return self.service.run(request, deadline=deadline,
                                client=client or self.client)

    def run_many(self, requests: Iterable,
                 deadline: Optional[float] = None,
                 client: Optional[str] = None) -> List:
        futures = [self.service.submit(r, deadline=deadline,
                                       client=client or self.client)
                   for r in requests]
        return [f.result() for f in futures]

    def health(self) -> dict:
        return self.service.health()

    def metrics_text(self) -> str:
        from repro.obs.prom import prom_exposition
        return prom_exposition(self.service.metrics.snapshot())

    def ping(self) -> str:
        return "pong" if self.service.running else "stopped"

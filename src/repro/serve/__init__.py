"""Specialization-as-a-service: a resilient daemon over the run protocol.

The serve subsystem turns the per-request harness
(:func:`repro.apps.harness.run_request`) into a long-running service:
a supervised pool of warm worker processes sharing per-device
:class:`~repro.runtime.context.ExecutionContext` caches, behind
admission control, per-request deadlines, a circuit breaker on the SK
compile path, and `/health` reporting.  Start a daemon with
``python -m repro.serve``; embed one with
:class:`SpecializationService` + :class:`InProcClient`.

The robustness contract (verified by ``tests/test_serve.py``): every
submitted request resolves to a bit-identical
:class:`~repro.apps.harness.RunResult` or a typed
:class:`ServiceError` — never a hang, a wrong answer, or a bare
exception — under worker crashes, hangs, poisoned compiles, deadline
pressure, and overload.
"""

from repro.serve.admission import AdmissionController, Entry
from repro.serve.breaker import COMPILE_SITES, CircuitBreaker
from repro.serve.chaos import CrashRequest, KamikazeRunner, SleepRequest
from repro.serve.client import InProcClient, ServiceClient
from repro.serve.errors import (DeadlineExceeded, ServiceDeadlineError,
                                ServiceError, ServiceOverloadError,
                                ServiceProtocolError, ServiceRequestError,
                                ServiceShutdownError, ServiceWorkerError,
                                WorkerCrashError)
from repro.serve.health import health_report
from repro.serve.server import ServiceServer
from repro.serve.supervisor import (ServiceConfig, SpecializationService,
                                    WorkerHandle)
from repro.serve.wire import MAX_FRAME, recv_frame, send_frame

__all__ = [
    "AdmissionController", "Entry",
    "CircuitBreaker", "COMPILE_SITES",
    "CrashRequest", "SleepRequest", "KamikazeRunner",
    "ServiceClient", "InProcClient",
    "ServiceError", "ServiceOverloadError", "ServiceDeadlineError",
    "ServiceWorkerError", "ServiceShutdownError",
    "ServiceProtocolError", "ServiceRequestError",
    "WorkerCrashError", "DeadlineExceeded",
    "health_report", "ServiceServer",
    "ServiceConfig", "SpecializationService", "WorkerHandle",
    "send_frame", "recv_frame", "MAX_FRAME",
]

"""Chaos instrumentation for the serve daemon and process-pool sweeps.

Deterministic ways to hurt workers, used by the regression suites and
the CI chaos job.  Everything here is a plain picklable dataclass so
it crosses process boundaries exactly like real work:

* :class:`CrashRequest` — the receiving serve worker SIGKILLs itself
  *before* replying, exercising supervisor crash detection and the
  at-most-N-retries redispatch contract end to end.
* :class:`SleepRequest` — the worker busy-holds for ``seconds``,
  deliberately ignoring deadlines: the supervisor's
  deadline + ``kill_grace`` backstop (and queue backpressure under
  load) is the thing under test.
* :class:`KamikazeRunner` — a sweep run-callable that SIGKILLs its
  own pool worker on selected cells, for
  :class:`~repro.tuning.sweep.Sweeper` worker-death regression tests.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Tuple

from repro.tuning.sweep import SweepRecord


@dataclass(frozen=True)
class CrashRequest:
    """Kill the worker that dequeues this request (no reply is sent)."""

    #: Crash only on the first ``crashes`` deliveries; a later
    #: redispatch of the same request succeeds.  0 = always crash.
    crashes: int = 0
    #: Nominal app label echoed into the success result (when any).
    app: str = "chaos.crash"

    def execute(self, delivery: int):
        """Run worker-side; *delivery* is the dispatch attempt (1-based)."""
        if self.crashes == 0 or delivery <= self.crashes:
            os.kill(os.getpid(), signal.SIGKILL)
        from repro.apps.harness import RunResult
        return RunResult(app=self.app, seconds=0.0)


@dataclass(frozen=True)
class SleepRequest:
    """Hold the worker for ``seconds`` (ignores deadlines on purpose)."""

    seconds: float = 0.1
    app: str = "chaos.sleep"

    def execute(self, delivery: int):
        time.sleep(self.seconds)
        from repro.apps.harness import RunResult
        return RunResult(app=self.app, seconds=self.seconds)


@dataclass(frozen=True)
class KamikazeRunner:
    """Sweep evaluator that SIGKILLs its pool worker on chosen cells.

    The surviving cells return tiny valid records, so a
    ``Sweeper(jobs=N, pool="process")`` sweep over this runner proves
    both halves of the worker-death contract: victims surface as
    ``WorkerCrashError`` records in ``error_taxonomy()`` and finished
    cells keep their results.
    """

    crash_cells: Tuple[int, ...] = ()
    axis: str = "cell"

    def __call__(self, config: dict) -> SweepRecord:
        cell = config[self.axis]
        if cell in self.crash_cells:
            os.kill(os.getpid(), signal.SIGKILL)
        return SweepRecord(config=dict(config),
                           seconds=0.001 * (cell + 1))

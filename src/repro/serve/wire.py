"""Length-prefixed pickle framing over a stream socket.

The serve daemon speaks the PR 4 run protocol verbatim — picklable
:class:`~repro.apps.harness.RunRequest` in,
:class:`~repro.apps.harness.RunResult` (or a pickled
:class:`~repro.serve.errors.ServiceError` instance) out — so the wire
layer only needs framing: an 8-byte big-endian length followed by the
pickle bytes.  Frames are capped at :data:`MAX_FRAME` to keep a
corrupt or hostile length prefix from ballooning a read into memory
exhaustion; anything malformed raises
:class:`~repro.serve.errors.ServiceProtocolError`.

Trust model: the daemon binds localhost and the protocol is pickle —
the same trust boundary as the process-pool sweeps that already ship
pickled requests between local processes.  Do not expose the port
beyond the machine.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

from repro.serve.errors import ServiceProtocolError

#: struct format of the length prefix (8-byte unsigned big-endian).
_HEADER = struct.Struct("!Q")

#: Hard cap on a single frame (1 GiB) — far above any real RunResult,
#: low enough to bound the damage of a garbage length prefix.
MAX_FRAME = 1 << 30


def send_frame(sock, obj: Any) -> None:
    """Pickle *obj* and write one length-prefixed frame to *sock*."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock, n: int) -> bytes:
    """Read exactly *n* bytes or raise on EOF mid-frame."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> Any:
    """Read one frame from *sock*; EOFError on a clean close.

    A clean close *between* frames raises plain :class:`EOFError`
    (callers treat it as end-of-conversation); a torn or oversized
    frame raises :class:`ServiceProtocolError`.
    """
    header = sock.recv(_HEADER.size)
    if not header:
        raise EOFError("connection closed")
    while len(header) < _HEADER.size:
        more = sock.recv(_HEADER.size - len(header))
        if not more:
            raise ServiceProtocolError(
                f"torn frame header ({len(header)} of "
                f"{_HEADER.size} bytes)")
        header += more
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ServiceProtocolError(
            f"frame length {length} exceeds cap {MAX_FRAME}")
    try:
        payload = _recv_exact(sock, length)
    except EOFError as exc:
        raise ServiceProtocolError(f"torn frame body: {exc}") from exc
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise ServiceProtocolError(
            f"undecodable frame payload: {type(exc).__name__}: "
            f"{exc}") from exc

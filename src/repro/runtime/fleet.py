"""DeviceFleet: shard one workload across N simulated devices.

The simulator historically modeled one GPU per process; this module
makes *fleets* of simulated devices a first-class runtime object.  A
:class:`DeviceFleet` owns N :class:`FleetMember` slots — each one
device model (any mix of registry keys, e.g. ``["c1060", "c2070",
"k20"]`` or a homogeneous ``["c2070"] * 4``) with its own queue,
execution backend, and warm :class:`~repro.runtime.context
.ExecutionContext` — and shards work across them:

* :meth:`run_requests` — a stream of picklable
  :class:`~repro.apps.harness.RunRequest`\\ s, each placed on a member
  modeling the request's device;
* :meth:`map_grid` — a sweep-shaped configuration grid evaluated by a
  Sweeper-style runner, cells striped across compatible members and
  merged back in grid order (``Sweeper(fleet=...)`` wires this in
  transparently).

**Placement.**  A request is only *eligible* for members whose device
model matches its spec (results depend on the device — placement must
never change an answer, only where it is computed).  Among eligible
members the policy picks:

* ``least-loaded`` (default) — fewest in-flight entries, ties to the
  fewest total dispatches, then member order;
* ``round-robin`` — stripe eligible members in order;
* ``affinity`` — a stable CRC of the work's identity pins identical
  work to the same member, maximizing warm-cache reuse.

**Bit-identical merge.**  Every evaluation is hermetic (the PR 4
protocol), so sharding is result-transparent by construction: merged
results equal a single-device run of the same workload in submission /
grid order, regardless of member count, backend, or completion order.
The fleet chaos tests assert exactly this.

**Fault contract.**  ``pool="process"`` members run work in a
subprocess (reusing the process-pool machinery sweeps already trust).
A worker death revives the member's executor and redispatches the
in-flight entry — to a different eligible member when one exists — at
most ``max_redispatch`` extra times, after which the entry resolves as
a typed :class:`FleetWorkerError` (requests) or a typed invalid record
(grid cells).  Never a hang, never a wrong answer.

**Observability.**  ``fleet.*`` counters on :attr:`DeviceFleet.metrics`
(``fleet.dispatch`` / ``fleet.redispatch`` / ``fleet.worker_crash`` /
``fleet.errors``...), :meth:`cache_report` aggregating the members'
plan/gang/trace cache deltas, :meth:`health_report` with per-member
liveness, and modeled-time accounting (:meth:`makespan_seconds` /
:meth:`busy_seconds`) — the fleet's throughput axis, measured in the
same simulated seconds every sweep table reports.
"""

from __future__ import annotations

import dataclasses
import zlib
from concurrent.futures import (BrokenExecutor, Future,
                                ProcessPoolExecutor, ThreadPoolExecutor)
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, List,
                    Optional, Sequence)

from repro.gpusim.device import DEVICES
from repro.obs.events import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceContext, Tracer
from repro.runtime.context import ExecutionContext

if TYPE_CHECKING:  # pragma: no cover - import cycle: harness needs gpusim
    from repro.apps.harness import RunRequest, RunResult

#: Execution backends a fleet member may use.  ``inline`` evaluates at
#: submit time on the caller's thread (the determinism oracle),
#: ``thread`` gives each member one worker thread and a *warm* member
#: context, ``process`` gives each member one worker subprocess (cold
#: hermetic evaluations, real isolation, crash semantics).
FLEET_POOLS = ("inline", "thread", "process")

PLACEMENTS = ("least-loaded", "round-robin", "affinity")


class FleetError(Exception):
    """Base of the fleet's typed error ladder."""


class FleetPlacementError(FleetError):
    """No fleet member models the device the work needs."""


class FleetWorkerError(FleetError):
    """A member's worker died and the redispatch budget is exhausted."""

    def __init__(self, message: str, attempts: int = 1):
        super().__init__(message)
        self.attempts = attempts


def _stable_hash(value: object) -> int:
    """Deterministic (process-independent) hash for affinity placement."""
    return zlib.crc32(repr(value).encode())


def _process_request(request: "RunRequest") -> "RunResult":
    """Process-backend entry: hermetic cold evaluation (PR 4 contract)."""
    from repro.apps.harness import run_request
    return run_request(request)


def _process_cell(payload):
    """Process-backend grid-cell entry: mirrors ``Sweeper._process_eval``."""
    from repro.tuning.sweep import _eval_config
    index, run, config = payload
    record = _eval_config(run, config)
    record.index = index
    return record


class FleetMember:
    """One simulated device slot: a device model + queue + backend."""

    def __init__(self, ordinal: int, device: str, pool: str,
                 mp_context=None):
        if device not in DEVICES:
            raise FleetPlacementError(
                f"unknown device {device!r}; expected one of "
                f"{tuple(sorted(DEVICES))}")
        self.ordinal = ordinal
        self.device = device
        self.key = f"{device}:{ordinal}"
        self.pool = pool
        self._mp_context = mp_context
        self.spec = DEVICES[device]
        #: Warm per-member context (thread backend evaluates requests
        #: against it, serve-worker style; inline/process backends keep
        #: it for engine/device bookkeeping only).
        self.ctx = ExecutionContext(device=self.spec,
                                    name=f"fleet:{self.key}")
        self._executor = None
        self.generation = 0      # executor revivals after crashes
        self.in_flight = 0
        self.dispatched = 0
        self.completed = 0
        self.errors = 0
        #: Modeled simulated seconds this member spent executing.
        self.busy_seconds = 0.0
        #: Aggregated per-evaluation cache-counter deltas.
        self.counters: Dict[str, int] = {}

    # -- backend ---------------------------------------------------------

    def executor(self):
        if self._executor is None and self.pool != "inline":
            if self.pool == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=1, mp_context=self._mp_context)
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix=f"fleet-{self.key}")
            self.generation += 1
        return self._executor

    def revive(self) -> None:
        """Replace a broken executor (crashed process worker)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        self.executor()

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def submit(self, fn: Callable, *args) -> Future:
        self.in_flight += 1
        self.dispatched += 1
        if self.pool == "inline":
            future: Future = Future()
            try:
                future.set_result(fn(*args))
            except BaseException as exc:
                future.set_exception(exc)
            return future
        return self.executor().submit(fn, *args)

    def settle(self, result=None, error: bool = False) -> None:
        """Account one collected evaluation."""
        self.in_flight = max(0, self.in_flight - 1)
        if error:
            self.errors += 1
            return
        self.completed += 1
        seconds = getattr(result, "seconds", None)
        if isinstance(seconds, (int, float)) \
                and seconds == seconds and seconds != float("inf"):
            self.busy_seconds += seconds
        for k, v in (getattr(result, "counters", None) or {}).items():
            self.counters[k] = self.counters.get(k, 0) + v

    def stats(self) -> Dict[str, object]:
        return {"member": self.key, "device": self.spec.name,
                "pool": self.pool, "generation": self.generation,
                "in_flight": self.in_flight,
                "dispatched": self.dispatched,
                "completed": self.completed, "errors": self.errors,
                "busy_modeled_s": self.busy_seconds,
                # Trace-engine counters from the aggregated result
                # deltas (warm thread members also accumulate them via
                # their context's cache counters riding each result).
                "trace": {
                    "hits": self.counters.get("trace_hits", 0),
                    "deopts": self.counters.get("trace_deopts", 0),
                    "records": self.counters.get("trace_records", 0),
                }}


class DeviceFleet:
    """N simulated devices behind one sharding scheduler."""

    def __init__(self, devices: Sequence[str], *,
                 pool: str = "thread",
                 placement: str = "least-loaded",
                 max_redispatch: int = 1,
                 start_method: Optional[str] = None,
                 name: str = "fleet"):
        if not devices:
            raise ValueError("a fleet needs at least one device")
        if pool not in FLEET_POOLS:
            raise ValueError(f"unknown fleet pool {pool!r}; expected "
                             f"one of {FLEET_POOLS}")
        if placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r}; "
                             f"expected one of {PLACEMENTS}")
        if max_redispatch < 0:
            raise ValueError("max_redispatch must be >= 0")
        self.name = name
        self.pool = pool
        self.placement = placement
        self.max_redispatch = max_redispatch
        mp_context = None
        if pool == "process" and start_method is not None:
            import multiprocessing
            mp_context = multiprocessing.get_context(start_method)
        self.members: List[FleetMember] = [
            FleetMember(i, device, pool, mp_context)
            for i, device in enumerate(devices)]
        self.metrics = MetricsRegistry()
        self.metrics.gauge("fleet.members", len(self.members))
        #: Typed event ring: placements, crashes, redispatches (see
        #: :mod:`repro.obs.events`), surfaced by :meth:`health_report`.
        self.recorder = FlightRecorder(capacity=128, origin=name)
        #: Fleet-side tracer; None until :meth:`enable_tracing`.  When
        #: set, dispatched requests carry a TraceContext and shipped
        #: span trees graft under ``request:{index}`` wrappers.
        self.tracer: Optional[Tracer] = None
        self._rr: Dict[str, int] = {}
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "DeviceFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop every member's backend (idempotent)."""
        self._closed = True
        for member in self.members:
            member.shutdown()

    # -- observability ---------------------------------------------------

    def enable_tracing(self, name: Optional[str] = None) -> Tracer:
        """Attach the fleet tracer (idempotent): every request
        dispatched afterwards runs traced, and its shipped span tree
        is grafted under a ``request:{index}`` span here, so one
        export shows the whole sharded batch."""
        if self.tracer is None:
            self.tracer = Tracer(name or self.name)
        return self.tracer

    def export_trace(self, path: str) -> str:
        """Write the fleet trace + metrics + events to *path*."""
        if self.tracer is None:
            raise RuntimeError("tracing is not enabled on this fleet")
        from repro.obs.export import write_trace
        write_trace(path, self.tracer.to_dict(),
                    metrics=self.metrics.snapshot(),
                    events=self.recorder.events())
        return path

    # -- placement -------------------------------------------------------

    def eligible(self, device: str) -> List[FleetMember]:
        """Members whose model matches *device* (fleet order)."""
        return [m for m in self.members if m.device == device]

    def place(self, device: str, affinity_key: object = None,
              exclude: Optional[FleetMember] = None) -> FleetMember:
        """Pick the member one piece of *device* work runs on.

        Raises:
            FleetPlacementError: the fleet has no member modeling
                *device* — a heterogeneous-workload configuration bug,
                reported with the fleet's actual composition.
        """
        candidates = self.eligible(device)
        if not candidates:
            raise FleetPlacementError(
                f"no member of fleet {self.name!r} models device "
                f"{device!r}; fleet is "
                f"{[m.key for m in self.members]} "
                f"(registry devices: {tuple(sorted(DEVICES))})")
        if exclude is not None and len(candidates) > 1:
            candidates = [m for m in candidates if m is not exclude]
        if self.placement == "affinity":
            return candidates[_stable_hash(affinity_key)
                              % len(candidates)]
        if self.placement == "round-robin":
            n = self._rr.get(device, 0)
            self._rr[device] = n + 1
            return candidates[n % len(candidates)]
        return min(candidates,
                   key=lambda m: (m.in_flight, m.dispatched, m.ordinal))

    # -- request sharding ------------------------------------------------

    def run_requests(self, requests: Iterable["RunRequest"], *,
                     return_errors: bool = False) -> List[object]:
        """Shard a stream of requests; results in submission order.

        Each request evaluates exactly as it would alone — warm member
        context on the thread backend (the serve warm path, bit-
        identical by the cache contract), hermetic cold context on
        inline/process — so the merged list is bit-identical to a
        sequential single-device run.  Failures resolve as typed
        errors: raised at their position by default, or returned
        in-place as exception objects with ``return_errors=True``.
        """
        if self._closed:
            raise FleetError(f"fleet {self.name!r} is shut down")
        pending = []
        for i, request in enumerate(requests):
            device = request.spec.device
            member = self.place(device, affinity_key=(
                request.spec.app, request.spec.seed, device))
            if self.tracer is not None and request.trace_ctx is None:
                request = dataclasses.replace(
                    request, trace_ctx=TraceContext(
                        trace_id=f"req{i}", parent=f"request:{i}"))
            self.recorder.record("fleet.place", member=member.key,
                                 policy=self.placement)
            future = self._submit_request(member, request)
            self.metrics.inc("fleet.dispatch")
            pending.append([i, member, request, future, 1])
        self.metrics.inc("fleet.batches")
        results: List[object] = []
        for slot in pending:
            results.append(self._collect_request(slot, return_errors))
        return results

    def _submit_request(self, member: FleetMember,
                        request: "RunRequest") -> Future:
        if member.pool == "thread":
            # Warm path: reuse the member's long-lived context so
            # repeated specs hit its compiled/plan/gang/trace caches.
            from repro.apps.harness import run_request
            return member.submit(run_request, request, member.ctx)
        return member.submit(_process_request, request)

    def _collect_request(self, slot, return_errors: bool):
        from repro.apps.harness import RunResult
        index, member, request, future, attempts = slot
        while True:
            try:
                result = future.result()
            except (BrokenExecutor, OSError) as exc:
                member.settle(error=True)
                self.metrics.inc("fleet.worker_crash")
                self.recorder.record("fleet.worker_crash",
                                     member=member.key)
                member.revive()
                if attempts > self.max_redispatch:
                    self.metrics.inc("fleet.errors")
                    error = FleetWorkerError(
                        f"request {index} lost {attempts} fleet "
                        f"worker(s) on {member.key} "
                        f"({type(exc).__name__}: {exc}); redispatch "
                        f"budget ({self.max_redispatch}) exhausted",
                        attempts=attempts)
                    if return_errors:
                        return error
                    raise error from exc
                member = self.place(request.spec.device,
                                    affinity_key=index, exclude=member)
                future = self._submit_request(member, request)
                attempts += 1
                self.metrics.inc("fleet.redispatch")
                self.recorder.record("fleet.redispatch",
                                     member=member.key, request=index)
                continue
            except Exception as exc:
                member.settle(error=True)
                self.metrics.inc("fleet.errors")
                if return_errors:
                    return exc
                raise
            member.settle(result)
            if isinstance(result, RunResult) and not result.worker:
                result.worker = member.key
                result.attempts = attempts
            if isinstance(result, RunResult):
                self._graft_result(index, member, result, attempts)
            return result

    def _graft_result(self, index: int, member: FleetMember,
                      result: "RunResult", attempts: int) -> None:
        """Fold a traced result into the fleet's telemetry plane."""
        if result.events:
            self.recorder.extend(result.events, origin=member.key)
        if self.tracer is None or not result.trace:
            return
        if not result.trace.get("spans"):
            return
        self.tracer.graft(result.trace, f"request:{index}", cat="fleet",
                          member=member.key, attempts=attempts)

    # -- grid sharding ---------------------------------------------------

    def map_grid(self, run: Callable[[dict], object],
                 configs: Iterable[dict], base: int = 0) -> List[object]:
        """Shard a sweep grid's cells; records merged in grid order.

        The fleet analogue of ``Sweeper._eval_all`` (and what
        ``Sweeper(fleet=...)`` delegates to): *run* maps one config
        dict to a :class:`~repro.tuning.sweep.SweepRecord`, each cell
        is placed on a member eligible for the runner's device (read
        off ``run.spec.device`` when present; any member otherwise),
        and evaluation semantics match the Sweeper's exactly — cell
        exceptions become typed invalid records, worker deaths
        redispatch then surface as typed ``FleetWorkerError`` records.
        """
        if self._closed:
            raise FleetError(f"fleet {self.name!r} is shut down")
        from repro.tuning.sweep import _eval_config
        configs = list(configs)
        device = getattr(getattr(run, "spec", None), "device", None)
        if device is not None:
            self.eligible(device) or self.place(device)  # raise typed
        self.metrics.inc("fleet.shards")
        pending = []
        for i, config in enumerate(configs):
            index = base + i
            member = (self.place(device, affinity_key=tuple(
                sorted(config.items()))) if device is not None
                else self._any_member(config))
            future = self._submit_cell(member, index, run, config)
            self.metrics.inc("fleet.dispatch")
            pending.append([index, member, run, config, future, 1])
        records = [self._collect_cell(slot, device) for slot in pending]
        for record in records:
            seconds = getattr(record, "seconds", None)
            if getattr(record, "valid", False) and seconds is not None:
                self.metrics.observe("fleet.cell_seconds", seconds)
        return records

    def _any_member(self, config: dict) -> FleetMember:
        if self.placement == "affinity":
            return self.members[
                _stable_hash(tuple(sorted(config.items())))
                % len(self.members)]
        if self.placement == "round-robin":
            n = self._rr.get("*", 0)
            self._rr["*"] = n + 1
            return self.members[n % len(self.members)]
        return min(self.members,
                   key=lambda m: (m.in_flight, m.dispatched, m.ordinal))

    def _submit_cell(self, member: FleetMember, index: int, run,
                     config: dict) -> Future:
        from repro.tuning.sweep import _eval_config

        if member.pool == "process":
            return member.submit(_process_cell,
                                 (index, run, dict(config)))

        def eval_cell():
            record = _eval_config(run, dict(config))
            record.index = index
            return record

        return member.submit(eval_cell)

    def _collect_cell(self, slot, device):
        from repro.tuning.sweep import SweepRecord
        index, member, run, config, future, attempts = slot
        while True:
            try:
                record = future.result()
            except (BrokenExecutor, OSError, RuntimeError) as exc:
                member.settle(error=True)
                self.metrics.inc("fleet.worker_crash")
                self.recorder.record("fleet.worker_crash",
                                     member=member.key)
                member.revive()
                if attempts > self.max_redispatch:
                    self.metrics.inc("fleet.errors")
                    return SweepRecord(
                        config=dict(config), seconds=float("inf"),
                        valid=False,
                        error=(f"FleetWorkerError: cell {index} lost "
                               f"{attempts} fleet worker(s) on "
                               f"{member.key} ({type(exc).__name__}: "
                               f"{exc}); redispatch budget "
                               f"({self.max_redispatch}) exhausted"),
                        index=index)
                member = (self.place(device, affinity_key=index,
                                     exclude=member)
                          if device is not None else
                          self._any_member(config))
                future = self._submit_cell(member, index, run, config)
                attempts += 1
                self.metrics.inc("fleet.redispatch")
                continue
            member.settle(record, error=not getattr(record, "valid",
                                                    True))
            return record

    # -- fleet-level reports ---------------------------------------------

    def cache_report(self) -> Dict[str, int]:
        """Aggregated cache-counter deltas across every member.

        Sums the per-evaluation plan/gang/trace counter deltas each
        result carried (the same ``plan_hits`` / ``gang_hits`` /
        ``trace_*`` keys :attr:`Sweeper.cache_report` uses), plus —
        on the warm thread backend — the members' own context
        counters, so warm-path hits are visible either way.
        """
        report: Dict[str, int] = {}
        for member in self.members:
            for k, v in member.counters.items():
                report[k] = report.get(k, 0) + v
        return report

    def busy_seconds(self) -> float:
        """Total modeled seconds executed across the fleet."""
        return sum(m.busy_seconds for m in self.members)

    def makespan_seconds(self) -> float:
        """Modeled completion time of the sharded workload.

        The busiest member bounds the fleet: with N devices running
        concurrently (in simulated time), the workload finishes when
        the most-loaded one does.  ``busy / makespan`` is the fleet's
        modeled throughput multiple over a single device — the number
        BENCH_fleet.json tracks.
        """
        return max((m.busy_seconds for m in self.members), default=0.0)

    def health_report(self) -> Dict[str, object]:
        """Liveness + load + error picture of the whole fleet."""
        status = "shutdown" if self._closed else "ok"
        if not self._closed and any(m.errors for m in self.members):
            status = "degraded"
        return {
            "status": status,
            "name": self.name,
            "pool": self.pool,
            "placement": self.placement,
            "devices": [m.device for m in self.members],
            "members": [m.stats() for m in self.members],
            "busy_modeled_s": self.busy_seconds(),
            "makespan_modeled_s": self.makespan_seconds(),
            "metrics": self.metrics.snapshot(),
            "flight": self.recorder.dump(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DeviceFleet {self.name!r} "
                f"[{', '.join(m.key for m in self.members)}] "
                f"pool={self.pool} placement={self.placement}>")

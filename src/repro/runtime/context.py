"""Scoped execution state: one :class:`ExecutionContext` per host.

Everything the simulator stack historically kept in module-level
globals lives here as instance state:

* the default :class:`~repro.gpusim.device.DeviceSpec` and execution
  engine selection (``serial`` / ``batched``),
* the launch-plan cache and its hit/miss counters
  (:func:`repro.gpusim.executor.plan_for`),
* the batched engine's gang-prototype counters
  (:func:`repro.gpusim.engine.gang_cache_stats`),
* the sampled-launch block-pick memo
  (:func:`repro.gpusim.launcher._block_indices`),
* the compiled-kernel binary cache
  (:class:`repro.gpupf.cache.KernelCache`),
* the fault injector (:mod:`repro.faults.hooks`),
* a free-form per-context counter registry (:meth:`bump`).

A process-wide *default* context preserves every legacy entry point:
module-level shims (``fault_hooks.ACTIVE``, ``plan_cache_stats()``,
``DEFAULT_CACHE``...) resolve against :func:`current_context`, which is
the innermost :func:`using_context` on this thread or else the default.
Sweeps and process workers build their own contexts, so two concurrent
sweeps in one process report fully independent cache/gang counters.
"""

from __future__ import annotations

import os
import threading
from collections import Counter
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Union

from repro.faults.plan import FaultInjector, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.device import DeviceSpec

#: The execution engines a launch may name.
ENGINES = ("serial", "batched")


class ExecutionContext:
    """Owns all mutable state one simulated host context needs.

    Args:
        device: default :class:`DeviceSpec` for ``GPU()`` constructed
            under this context (defaults to the Tesla C2070 model).
        engine: default execution engine for launches that do not name
            one; falls back to ``REPRO_SIM_ENGINE`` or ``"batched"``.
        kernel_cache: compiled-binary cache; a fresh private
            :class:`KernelCache` unless one is injected.
        injector: an optional pre-installed fault injector.
    """

    def __init__(self, device: Optional["DeviceSpec"] = None,
                 engine: Optional[str] = None,
                 kernel_cache=None,
                 injector: Optional[FaultInjector] = None,
                 name: str = "context"):
        self.name = name
        if device is None:
            # Deferred for the same reason as KernelCache below: the
            # gpusim package init imports engine.py, which imports this
            # module for ENGINES/current_context.
            from repro.gpusim.device import TESLA_C2070
            device = TESLA_C2070
        self.device = device
        self.engine = self._validate_engine(
            engine or os.environ.get("REPRO_SIM_ENGINE", "batched"))
        if kernel_cache is None:
            # Deferred: gpupf.cache imports faults.hooks, which resolves
            # through this module; importing it lazily keeps the package
            # import graph acyclic.
            from repro.gpupf.cache import KernelCache
            kernel_cache = KernelCache()
        self.kernel_cache = kernel_cache
        self.injector: Optional[FaultInjector] = injector
        #: (id(kernel_ir), device.name) -> KernelPlan (see executor).
        self.plan_cache: Dict = {}
        self.plan_stats: Dict[str, int] = {"hits": 0, "misses": 0}
        #: Gang-prototype hit/miss counters (protos ride KernelPlans).
        self.gang_stats: Dict[str, int] = {"hits": 0, "misses": 0}
        #: (grid3, sample_blocks) -> representative block picks.
        self.sample_cache: Dict = {}
        #: Free-form per-context counters (sweep bookkeeping etc.).
        self.counters: Counter = Counter()
        self._fault_lock = threading.Lock()

    # -- engine selection ----------------------------------------------

    @staticmethod
    def _validate_engine(name: str) -> str:
        if name not in ENGINES:
            raise ValueError(f"unknown execution engine {name!r}; "
                             f"expected one of {ENGINES}")
        return name

    def set_engine(self, name: str) -> str:
        """Set this context's default engine; returns the previous."""
        previous = self.engine
        self.engine = self._validate_engine(name)
        return previous

    # -- fault injection ------------------------------------------------

    def install_faults(self, plan: Union[FaultPlan, FaultInjector]
                       ) -> FaultInjector:
        """Install *plan* on this context; returns the live injector.

        Exactly one injector may be active per context — nested
        installs are a test bug and raise immediately.
        """
        injector = plan if isinstance(plan, FaultInjector) \
            else FaultInjector(plan)
        with self._fault_lock:
            if self.injector is not None:
                raise RuntimeError(
                    "fault injection is already active on this context; "
                    "clear_faults() the current injector first")
            self.injector = injector
        return injector

    def clear_faults(self) -> None:
        """Remove the active injector (idempotent)."""
        with self._fault_lock:
            self.injector = None

    @contextmanager
    def injecting(self, plan: Union[FaultPlan, FaultInjector]
                  ) -> Iterator[FaultInjector]:
        """Install *plan* for the dynamic extent; always clears."""
        injector = self.install_faults(plan)
        try:
            yield injector
        finally:
            self.clear_faults()

    # -- cache maintenance ----------------------------------------------

    def clear_plan_cache(self) -> None:
        """Drop cached launch plans (gang prototypes ride along)."""
        self.plan_cache.clear()
        self.sample_cache.clear()

    def cache_counters(self) -> Dict[str, int]:
        """Flat, namespaced cache counters for delta accounting."""
        return {"plan_hits": self.plan_stats["hits"],
                "plan_misses": self.plan_stats["misses"],
                "gang_hits": self.gang_stats["hits"],
                "gang_misses": self.gang_stats["misses"]}

    # -- stats registry --------------------------------------------------

    def bump(self, counter: str, n: int = 1) -> int:
        """Increment a named per-context counter; returns the new value."""
        self.counters[counter] += n
        return self.counters[counter]

    def stats(self) -> Dict[str, object]:
        """Everything countable about this context, namespaced."""
        return {
            "name": self.name,
            "device": self.device.name,
            "engine": self.engine,
            "plan": dict(self.plan_stats, size=len(self.plan_cache)),
            "gang": dict(self.gang_stats),
            "kernel_cache": self.kernel_cache.stats(),
            "counters": dict(self.counters),
        }

    # -- activation ------------------------------------------------------

    def activate(self):
        """``with ctx.activate():`` — make this the current context."""
        return using_context(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ExecutionContext {self.name!r} device={self.device.name}"
                f" engine={self.engine}>")


# ---------------------------------------------------------------------
# Default / current context plumbing.
# ---------------------------------------------------------------------

_DEFAULT: Optional[ExecutionContext] = None
_DEFAULT_LOCK = threading.Lock()
_TLS = threading.local()


def default_context() -> ExecutionContext:
    """The lazily-created process-wide default context.

    Legacy module-level entry points (``fault_hooks.ACTIVE``,
    ``DEFAULT_CACHE``, ``plan_cache_stats()``...) resolve here when no
    scoped context is active on the calling thread.
    """
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = ExecutionContext(name="default")
    return _DEFAULT


def current_context() -> ExecutionContext:
    """The innermost activated context on this thread, or the default."""
    stack = getattr(_TLS, "stack", None)
    if stack:
        return stack[-1]
    return default_context()


@contextmanager
def using_context(ctx: ExecutionContext) -> Iterator[ExecutionContext]:
    """Make *ctx* the current context for the dynamic extent.

    Scoping is per-thread: worker threads of a sweep activate the
    sweep's context without disturbing other threads.
    """
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()

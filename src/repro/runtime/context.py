"""Scoped execution state: one :class:`ExecutionContext` per host.

Everything the simulator stack historically kept in module-level
globals lives here as instance state:

* the default :class:`~repro.gpusim.device.DeviceSpec` and execution
  engine selection (``serial`` / ``batched``),
* the launch-plan cache and its hit/miss counters
  (:func:`repro.gpusim.executor.plan_for`),
* the batched engine's gang-prototype counters
  (:func:`repro.gpusim.engine.gang_cache_stats`),
* the sampled-launch block-pick memo
  (:func:`repro.gpusim.launcher._block_indices`),
* the compiled-kernel binary cache
  (:class:`repro.gpupf.cache.KernelCache`),
* the fault injector (:mod:`repro.faults.hooks`),
* the metrics registry and optional tracer (:mod:`repro.obs`) behind
  the free-form counter API (:meth:`bump`).

**Counter namespace convention.**  Free-form counter and metric names
are dotted ``subsystem.event`` strings — ``fault.launch.fail``,
``retry.nvcc.compile``, ``sweep.cells``, ``error.SimError``,
``cache.plan_hits`` — so one flat :meth:`MetricsRegistry.snapshot`
stays greppable by prefix and collision-free across subsystems (see
GLOSSARY.md "counter namespace").  :meth:`cache_counters` predates the
convention and keeps its flat underscore keys (``plan_hits`` ...)
because sweep delta-accounting and tests depend on them verbatim; the
namespaced equivalents appear under ``cache.*`` in
:meth:`metrics_snapshot`.

A process-wide *default* context preserves every legacy entry point:
module-level shims (``fault_hooks.ACTIVE``, ``plan_cache_stats()``,
``DEFAULT_CACHE``...) resolve against :func:`current_context`, which is
the innermost :func:`using_context` on this thread or else the default.
Sweeps and process workers build their own contexts, so two concurrent
sweeps in one process report fully independent cache/gang counters.
"""

from __future__ import annotations

import os
import threading
from collections import Counter
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Union

from repro.faults.plan import FaultInjector, FaultPlan
from repro.obs.events import FlightRecorder
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.device import DeviceSpec

#: The execution engines a launch may name.  ``serial`` is the oracle,
#: ``batched`` the gang interpreter, ``traced`` the trace-JIT layered
#: on top of it (see :mod:`repro.gpusim.trace`).
ENGINES = ("serial", "batched", "traced")

#: Environment override consulted by engine resolution: setting
#: ``REPRO_ENGINE=traced`` upgrades default/``batched`` selections to
#: the trace-JIT without touching call sites.  Explicit ``serial``
#: requests are never overridden — differential tests must always be
#: able to reach the oracle.
ENGINE_ENV = "REPRO_ENGINE"

#: Per-context trace-JIT counter names (``ExecutionContext.trace_stats``).
TRACE_STAT_NAMES = ("hits", "misses", "records", "deopts", "aborts")


def _engine_env_default() -> str:
    """The engine name the environment selects when none is given."""
    return (os.environ.get(ENGINE_ENV)
            or os.environ.get("REPRO_SIM_ENGINE", "batched"))


class ExecutionContext:
    """Owns all mutable state one simulated host context needs.

    Args:
        device: default :class:`DeviceSpec` for ``GPU()`` constructed
            under this context (defaults to the Tesla C2070 model).
        engine: default execution engine for launches that do not name
            one; falls back to ``REPRO_SIM_ENGINE`` or ``"batched"``.
        kernel_cache: compiled-binary cache; a fresh private
            :class:`KernelCache` unless one is injected.
        injector: an optional pre-installed fault injector.
    """

    def __init__(self, device: Optional["DeviceSpec"] = None,
                 engine: Optional[str] = None,
                 kernel_cache=None,
                 injector: Optional[FaultInjector] = None,
                 name: str = "context"):
        self.name = name
        if device is None:
            # Deferred for the same reason as KernelCache below: the
            # gpusim package init imports engine.py, which imports this
            # module for ENGINES/current_context.
            from repro.gpusim.device import TESLA_C2070
            device = TESLA_C2070
        self.device = device
        self.engine = self._validate_engine(
            engine or _engine_env_default())
        if kernel_cache is None:
            # Deferred: gpupf.cache imports faults.hooks, which resolves
            # through this module; importing it lazily keeps the package
            # import graph acyclic.
            from repro.gpupf.cache import KernelCache
            kernel_cache = KernelCache()
        self.kernel_cache = kernel_cache
        self.injector: Optional[FaultInjector] = injector
        #: (id(kernel_ir), device.name) -> KernelPlan (see executor).
        self.plan_cache: Dict = {}
        self.plan_stats: Dict[str, int] = {"hits": 0, "misses": 0}
        #: Gang-prototype hit/miss counters (protos ride KernelPlans).
        self.gang_stats: Dict[str, int] = {"hits": 0, "misses": 0}
        #: Trace-JIT counters (compiled traces ride KernelPlans too;
        #: see repro.gpusim.trace.trace_cache_stats).
        self.trace_stats: Dict[str, int] = {
            name: 0 for name in TRACE_STAT_NAMES}
        #: (grid3, sample_blocks) -> representative block picks.
        self.sample_cache: Dict = {}
        #: Named counters/gauges/histograms (``subsystem.event`` keys;
        #: always on — see the module docstring).
        self.metrics = MetricsRegistry()
        #: Bounded flight recorder of structured events (always on,
        #: like :attr:`metrics` — recording is an O(1) deque append;
        #: see :mod:`repro.obs.events`).  Traced requests ship their
        #: event delta back on the RunResult.
        self.events = FlightRecorder(capacity=256, origin=name)
        #: Structured span recorder; None = tracing off (the
        #: zero-overhead sentinel, like ``injector``).  Hot paths must
        #: only ever do ``if ctx.tracer is not None:``.
        self.tracer: Optional["Tracer"] = None
        #: Per-request deadline as a ``time.monotonic()`` timestamp, or
        #: None (unbounded).  Set by the serve worker (or any caller)
        #: around one evaluation; the compile/launch retry paths pass
        #: it into :func:`repro.faults.retry.retry_call`, which aborts
        #: with :class:`~repro.faults.errors.DeadlineExceeded` rather
        #: than backing off past it.
        self.deadline: Optional[float] = None
        self._fault_lock = threading.Lock()

    # -- engine selection ----------------------------------------------

    @staticmethod
    def _validate_engine(name: str) -> str:
        if name not in ENGINES:
            raise ValueError(
                f"unknown execution engine {name!r}; valid engines are "
                + ", ".join(repr(e) for e in ENGINES)
                + " (or set the REPRO_ENGINE environment variable, e.g. "
                  "REPRO_ENGINE=traced, to upgrade defaults)")
        return name

    def set_engine(self, name: str) -> str:
        """Set this context's default engine; returns the previous."""
        previous = self.engine
        self.engine = self._validate_engine(name)
        return previous

    # -- fault injection ------------------------------------------------

    def install_faults(self, plan: Union[FaultPlan, FaultInjector]
                       ) -> FaultInjector:
        """Install *plan* on this context; returns the live injector.

        Exactly one injector may be active per context — nested
        installs are a test bug and raise immediately.
        """
        injector = plan if isinstance(plan, FaultInjector) \
            else FaultInjector(plan)
        with self._fault_lock:
            if self.injector is not None:
                raise RuntimeError(
                    "fault injection is already active on this context; "
                    "clear_faults() the current injector first")
            self.injector = injector
        return injector

    def clear_faults(self) -> None:
        """Remove the active injector (idempotent)."""
        with self._fault_lock:
            self.injector = None

    @contextmanager
    def injecting(self, plan: Union[FaultPlan, FaultInjector]
                  ) -> Iterator[FaultInjector]:
        """Install *plan* for the dynamic extent; always clears."""
        injector = self.install_faults(plan)
        try:
            yield injector
        finally:
            self.clear_faults()

    # -- deadlines -------------------------------------------------------

    def deadline_remaining(self, clock=None) -> Optional[float]:
        """Seconds until :attr:`deadline`, or None when unbounded."""
        if self.deadline is None:
            return None
        import time as _time
        return self.deadline - (clock or _time.monotonic)()

    def deadline_expired(self, clock=None) -> bool:
        """True when a deadline is set and already in the past."""
        remaining = self.deadline_remaining(clock)
        return remaining is not None and remaining <= 0

    @contextmanager
    def deadline_scope(self, deadline: Optional[float]
                       ) -> Iterator["ExecutionContext"]:
        """Set :attr:`deadline` for the dynamic extent; always restores."""
        previous = self.deadline
        self.deadline = deadline
        try:
            yield self
        finally:
            self.deadline = previous

    # -- cache maintenance ----------------------------------------------

    def clear_plan_cache(self) -> None:
        """Drop cached launch plans (gang prototypes ride along)."""
        self.plan_cache.clear()
        self.sample_cache.clear()

    def cache_counters(self) -> Dict[str, int]:
        """Plan/gang cache counters for exact delta accounting.

        Returns flat keys ``plan_hits`` / ``plan_misses`` /
        ``gang_hits`` / ``gang_misses`` / ``trace_hits`` /
        ``trace_misses`` / ``trace_records`` / ``trace_deopts`` /
        ``trace_aborts`` — historical underscore names,
        NOT the dotted ``subsystem.event`` convention, because
        :class:`~repro.tuning.sweep.Sweeper` delta-accounting and its
        tests compare these dicts verbatim.  The namespaced ``cache.*``
        spellings live in :meth:`metrics_snapshot`.
        """
        counters = {"plan_hits": self.plan_stats["hits"],
                    "plan_misses": self.plan_stats["misses"],
                    "gang_hits": self.gang_stats["hits"],
                    "gang_misses": self.gang_stats["misses"]}
        for name in TRACE_STAT_NAMES:
            counters[f"trace_{name}"] = self.trace_stats[name]
        return counters

    # -- observability ---------------------------------------------------

    def enable_tracing(self, name: Optional[str] = None) -> "Tracer":
        """Attach (or return) this context's :class:`Tracer`.

        Idempotent: a second call returns the existing tracer so
        nested ``trace=True`` layers (harness inside sweep inside
        pipeline) share one span tree.
        """
        if self.tracer is None:
            from repro.obs.trace import Tracer
            self.tracer = Tracer(name or f"{self.name}")
        return self.tracer

    def disable_tracing(self) -> None:
        """Detach the tracer (idempotent); recorded spans are dropped."""
        self.tracer = None

    def bump(self, counter: str, n: int = 1) -> int:
        """Increment a named per-context counter; returns the new value.

        *counter* should follow the ``subsystem.event`` namespace
        convention (module docstring).  Delegates to
        :attr:`metrics` — ``bump`` is the legacy spelling of
        ``ctx.metrics.inc``.
        """
        self.metrics.inc(counter, n)
        return self.metrics.counter(counter)

    @property
    def counters(self) -> Counter:
        """Legacy view of the registry's counters (read-only copy)."""
        return Counter(self.metrics.counters())

    def metrics_snapshot(self) -> Dict[str, object]:
        """The registry snapshot plus the cache counters, one taxonomy.

        Merges :meth:`MetricsRegistry.snapshot` with the plan/gang
        cache counters (as ``cache.plan_hits`` ...) and the kernel
        cache's stats (``cache.kernel_hits`` ...), so one dict answers
        every "how many" question about this context.
        """
        snap = self.metrics.snapshot()
        counters = snap["counters"]
        for key, value in self.cache_counters().items():
            counters[f"cache.{key}"] = counters.get(f"cache.{key}", 0) \
                + value
        for key, value in self.kernel_cache.stats().items():
            counters[f"cache.kernel_{key}"] = \
                counters.get(f"cache.kernel_{key}", 0) + value
        return snap

    def stats(self) -> Dict[str, object]:
        """Everything countable about this context, namespaced."""
        return {
            "name": self.name,
            "device": self.device.name,
            "engine": self.engine,
            "plan": dict(self.plan_stats, size=len(self.plan_cache)),
            "gang": dict(self.gang_stats),
            "trace": dict(self.trace_stats),
            "kernel_cache": self.kernel_cache.stats(),
            "counters": self.metrics.counters(),
        }

    # -- activation ------------------------------------------------------

    def activate(self):
        """``with ctx.activate():`` — make this the current context."""
        return using_context(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ExecutionContext {self.name!r} device={self.device.name}"
                f" engine={self.engine}>")


# ---------------------------------------------------------------------
# Default / current context plumbing.
# ---------------------------------------------------------------------

_DEFAULT: Optional[ExecutionContext] = None
_DEFAULT_LOCK = threading.Lock()
_TLS = threading.local()


def default_context() -> ExecutionContext:
    """The lazily-created process-wide default context.

    Legacy module-level entry points (``fault_hooks.ACTIVE``,
    ``DEFAULT_CACHE``, ``plan_cache_stats()``...) resolve here when no
    scoped context is active on the calling thread.
    """
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = ExecutionContext(name="default")
    return _DEFAULT


def current_context() -> ExecutionContext:
    """The innermost activated context on this thread, or the default."""
    stack = getattr(_TLS, "stack", None)
    if stack:
        return stack[-1]
    return default_context()


@contextmanager
def using_context(ctx: ExecutionContext) -> Iterator[ExecutionContext]:
    """Make *ctx* the current context for the dynamic extent.

    Scoping is per-thread: worker threads of a sweep activate the
    sweep's context without disturbing other threads.
    """
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()

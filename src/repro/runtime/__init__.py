"""repro.runtime — host-context ownership of execution state.

The dissertation's host framework assumes one context owns the
compiler, the binary cache, and the device (§4.4); this package makes
that ownership explicit.  :class:`ExecutionContext` scopes everything
the simulator stack used to keep in module globals — device spec,
engine selection, launch-plan/gang caches and their counters, the
kernel binary cache, the fault injector, and a per-context stats
registry — so concurrent sweeps (threads *or* processes) get fully
independent state.

:class:`DeviceFleet` builds on that scoping to shard one workload
across N per-device contexts — a fleet of simulated GPUs behind one
scheduler with placement policies, typed fault semantics, and
bit-identical result merge (DESIGN.md §12).
"""

from repro.runtime.context import (ENGINES, ExecutionContext,
                                   current_context, default_context,
                                   using_context)
from repro.runtime.fleet import (FLEET_POOLS, PLACEMENTS, DeviceFleet,
                                 FleetError, FleetMember,
                                 FleetPlacementError, FleetWorkerError)

__all__ = ["ExecutionContext", "current_context", "default_context",
           "using_context", "ENGINES", "DeviceFleet", "FleetMember",
           "FleetError", "FleetPlacementError", "FleetWorkerError",
           "FLEET_POOLS", "PLACEMENTS"]

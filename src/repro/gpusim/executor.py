"""Warp-vectorized SIMT interpreter.

Executes one thread block of a compiled kernel the way an SM does:
warps of 32 lanes run in lockstep over NumPy lane-arrays; divergence is
handled with the standard immediate-post-dominator reconvergence stack;
``bar.sync`` rendezvous suspends warps until the whole block arrives.

For speed, kernels are first lowered to an execution *plan*
(:class:`KernelPlan`): virtual registers become integer indices into a
flat list, immediate operands become pre-broadcast lane arrays, branch
targets become instruction indices, and issue costs are resolved
against the device model once.  The interpreter then dispatches on
plain tuples — no IR-object hashing in the hot loop.

While executing, each warp accumulates the micro-architectural event
counts the timing model consumes: issue cycles, global-memory
transactions (via the coalescing rules), shared-memory bank replays,
and scoreboard stalls (a read of a register with an outstanding load).
The scoreboard is what makes register blocking pay off in the simulator
exactly as on hardware: batching independent loads ahead of their uses
removes stall events, trading thread-level for instruction-level
parallelism (§2.3 of the dissertation).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gpusim import coalescing
from repro.gpusim.device import DeviceSpec, cost_class
from repro.gpusim.memory import FlatMemory, GlobalMemory, MemoryError_
from repro.kernelc import typesys as T
from repro.kernelc.cfg import CFG
from repro.kernelc.ir import Imm, Instr, IRKernel, Reg, Special

WARP = 32

#: Latency charged per scoreboard stall on a shared-memory load.
SHARED_LATENCY = 30


class SimError(Exception):
    """Runtime fault in the simulated kernel (bad access, bad sync...)."""


@dataclass
class WarpStats:
    """Per-warp event counters for the timing model."""

    issue_cycles: float = 0.0
    instructions: int = 0
    mem_transactions: int = 0
    mem_bytes: int = 0
    global_stalls: int = 0
    shared_stalls: int = 0
    barriers: int = 0
    divergent_branches: int = 0
    atomics: int = 0


@dataclass
class BlockStats:
    """Aggregated per-block statistics."""

    warps: List[WarpStats] = field(default_factory=list)

    @property
    def issue_cycles(self) -> float:
        return sum(w.issue_cycles for w in self.warps)

    @property
    def mem_bytes(self) -> int:
        return sum(w.mem_bytes for w in self.warps)

    @property
    def mem_transactions(self) -> int:
        return sum(w.mem_transactions for w in self.warps)

    @property
    def instructions(self) -> int:
        return sum(w.instructions for w in self.warps)

    def latency_bound(self, device: DeviceSpec) -> float:
        """Serial completion time of the slowest warp (cycles)."""
        bound = 0.0
        for w in self.warps:
            cycles = (w.issue_cycles
                      + w.global_stalls * device.mem_latency
                      + w.shared_stalls * SHARED_LATENCY)
            bound = max(bound, cycles)
        return bound


class PlannedInstr:
    """One instruction, pre-resolved for fast interpretation."""

    __slots__ = ("op", "ctype", "np_dtype", "itemsize", "cmp", "space",
                 "target", "pred", "pred_neg", "dst", "dst_dtype",
                 "srcs", "reg_srcs", "cost", "param_name", "is_bool")

    def __init__(self):
        self.pred = -1
        self.pred_neg = False
        self.dst = -1
        self.target = -1
        self.param_name = None


class KernelPlan:
    """Pre-computed execution structures shared across blocks."""

    def __init__(self, kernel: IRKernel, device: DeviceSpec):
        # Weak so a cached plan never pins a dead kernel module.
        self._kernel_ref = weakref.ref(kernel)
        self.device = device
        cfg = CFG(kernel)
        self.label_index = cfg.label_index
        self.ipdom = cfg.ipdom_instr()
        self._reg_index: Dict[Reg, int] = {}
        self._reg_dtypes: List[np.dtype] = []
        self.instrs: List[PlannedInstr] = [
            self._plan(i) for i in cfg.instrs]
        self.n_regs = len(self._reg_dtypes)
        self.n = len(self.instrs)
        # Gang prototypes (repro.gpusim.engine): per-(block_dim,
        # grid_dim) warp lane layouts reused across launches.  Stored
        # on the plan so their lifetime rides the plan cache — evicted
        # together when the kernel IR dies or the cache is cleared.
        self.gang_protos: Dict[Tuple, object] = {}
        # Compiled gang traces (repro.gpusim.trace): keyed
        # (entry_pc, active-lane signature).  Riding the plan gives
        # traces the same lifetime/eviction story as gang prototypes.
        self.traces: Dict[Tuple, object] = {}
        #: Failed recording attempts per trace key; keys that keep
        #: aborting (member divergence every run) stop being retried.
        self.trace_aborts: Dict[Tuple, int] = {}
        #: Keys with a recording in flight this batch, so sibling
        #: warps don't redundantly record the same region.
        self.trace_pending = set()
        #: Memoized single-row shared-memory conflict factors/indices
        #: for the trace engine's row-uniform fast path, keyed by raw
        #: address/mask bytes (patterns are tid-derived and recur).
        self.shared_rows: Dict[Tuple, Tuple] = {}
        #: Memoized whole-gang shared factors/indices for patterns no
        #: row canonicalisation collapses (ctaid-derived addressing);
        #: geometry functions, so they recur across launches.
        self.shared_pats: Dict[Tuple, Tuple] = {}
        #: Memoized global coalescing/index results keyed by 256-byte
        #: base-relative address bytes, so per-run allocations (the
        #: bump allocator never reuses addresses) still hit.
        self.global_pats: Dict[Tuple, Tuple] = {}

    @property
    def kernel(self) -> Optional[IRKernel]:
        return self._kernel_ref()

    def _reg(self, reg: Reg) -> int:
        idx = self._reg_index.get(reg)
        if idx is None:
            idx = len(self._reg_dtypes)
            self._reg_index[reg] = idx
            self._reg_dtypes.append(reg.ctype.np_dtype())
        return idx

    def _operand(self, operand, want_dtype: Optional[np.dtype]):
        """-> ('r', idx, cast_or_None) | ('c', array) | ('s', name)."""
        if isinstance(operand, Reg):
            idx = self._reg(operand)
            have = operand.ctype.np_dtype()
            cast = want_dtype if (want_dtype is not None
                                  and have != want_dtype) else None
            return ("r", idx, cast)
        if isinstance(operand, Imm):
            dtype = want_dtype or operand.ctype.np_dtype()
            arr = np.full(WARP, operand.value, dtype=dtype)
            arr.flags.writeable = False
            return ("c", arr, None)
        if isinstance(operand, Special):
            return ("s", operand.name, want_dtype)
        raise SimError(f"bad operand {operand!r}")

    def _plan(self, instr: Instr) -> PlannedInstr:
        p = PlannedInstr()
        p.op = instr.op
        p.ctype = instr.dtype
        p.cmp = instr.cmp
        p.space = instr.space
        p.is_bool = getattr(instr.dtype, "is_bool", False)
        try:
            p.np_dtype = instr.dtype.np_dtype()
        except (ValueError, KeyError):
            p.np_dtype = np.dtype(np.int32)
        p.itemsize = getattr(instr.dtype, "size", 4)
        if instr.pred is not None:
            p.pred = self._reg(instr.pred)
            p.pred_neg = instr.pred_neg
        if instr.dst is not None:
            p.dst = self._reg(instr.dst)
            p.dst_dtype = instr.dst.ctype.np_dtype()
        else:
            p.dst_dtype = p.np_dtype
        if instr.op == "bra":
            p.target = self.label_index[instr.target]
        # Per-position operand target dtypes.
        want: List[Optional[np.dtype]] = []
        if instr.op in ("cvt",):
            want = [None]
        elif instr.op in ("shl", "shr"):
            want = [p.np_dtype, None]
        elif instr.op == "selp":
            want = [p.np_dtype, p.np_dtype, None]
        elif instr.op == "tex":
            p.param_name = instr.srcs[0].name
            coord_np = np.dtype(np.int32) if instr.cmp == "1d" \
                else np.dtype(np.float32)
            p.srcs = tuple(self._operand(s, coord_np)
                           for s in instr.srcs[1:])
            p.reg_srcs = tuple(d[1] for d in p.srcs if d[0] == "r")
            p.cost = 0.0
            return p
        elif instr.op == "ld":
            want = [None]
            if instr.space == "param" and isinstance(instr.srcs[0],
                                                     Special):
                p.param_name = instr.srcs[0].name
        elif instr.op in ("st", "atom"):
            want = [None, p.np_dtype]
        else:
            want = [p.np_dtype] * len(instr.srcs)
        p.srcs = tuple(self._operand(s, w)
                       for s, w in zip(instr.srcs, want))
        reg_srcs = [d[1] for d in p.srcs if d[0] == "r"]
        if p.pred >= 0:
            reg_srcs.append(p.pred)
        p.reg_srcs = tuple(reg_srcs)
        if instr.op in ("ld", "st", "atom"):
            if instr.space == "param":
                p.cost = self.device.issue_cost["shared"]
            else:
                p.cost = 0.0  # memory costs computed per access
        else:
            p.cost = self.device.issue_cost[
                cost_class(instr.op, instr.dtype, instr.cmp)]
        return p


def _ctx(ctx):
    if ctx is None:
        from repro.runtime.context import current_context
        ctx = current_context()
    return ctx


def plan_for(kernel: IRKernel, device: DeviceSpec,
             ctx=None) -> KernelPlan:
    """A (cached) :class:`KernelPlan` for *kernel* on *device*.

    Sweeps launch the same kernel thousands of times; planning is pure
    per ``(kernel identity, device)``, so it is paid once here.  The
    cache lives on the :class:`~repro.runtime.context.ExecutionContext`
    (*ctx*, default current): entries key on ``(id(kernel_ir),
    device.name)`` and are evicted by a weakref finalizer when the
    kernel IR dies, so a recycled ``id()`` can never alias a stale
    plan.
    """
    ctx = _ctx(ctx)
    key = (id(kernel), device.name)
    plan = ctx.plan_cache.get(key)
    if plan is not None and plan.kernel is kernel:
        ctx.plan_stats["hits"] += 1
        return plan
    ctx.plan_stats["misses"] += 1
    tracer = ctx.tracer
    if tracer is not None:
        with tracer.span(f"plan:{kernel.name}", "plan",
                         device=device.name):
            plan = KernelPlan(kernel, device)
    else:
        plan = KernelPlan(kernel, device)
    ctx.plan_cache[key] = plan
    weakref.finalize(kernel, ctx.plan_cache.pop, key, None)
    return plan


def plan_cache_stats(ctx=None) -> Dict[str, int]:
    """Hit/miss counters plus cache size for *ctx* (default current)."""
    ctx = _ctx(ctx)
    return dict(ctx.plan_stats, size=len(ctx.plan_cache))


def clear_plan_cache(ctx=None) -> None:
    """Drop *ctx*'s cached plans and reset its counters (for tests)."""
    ctx = _ctx(ctx)
    ctx.clear_plan_cache()
    ctx.plan_stats["hits"] = 0
    ctx.plan_stats["misses"] = 0


_CMP_FN = {"eq": np.equal, "ne": np.not_equal, "lt": np.less,
           "le": np.less_equal, "gt": np.greater, "ge": np.greater_equal}


class _Warp:
    """Execution state of one warp."""

    __slots__ = ("block", "wid", "lane_mask", "regs", "stack", "stats",
                 "finished", "at_barrier", "specials", "outstanding",
                 "local", "lane_full")

    def __init__(self, block: "BlockExecutor", wid: int,
                 lane_mask: np.ndarray, specials: Dict[str, np.ndarray]):
        self.block = block
        self.wid = wid
        self.lane_mask = lane_mask
        self.lane_full = bool(lane_mask.all())
        self.regs: List[Optional[np.ndarray]] = \
            [None] * block.plan.n_regs
        # SIMT stack entries: [reconv_pc, mask, pc, covers_warp]
        self.stack: List[List] = [
            [block.plan.n, lane_mask.copy(), 0, True]]
        self.stats = WarpStats()
        self.finished = not lane_mask.any()
        self.at_barrier = False
        self.specials = specials
        self.outstanding: Dict[int, str] = {}
        local_bytes = block.kernel.local_bytes
        self.local = (FlatMemory(local_bytes * WARP, "local")
                      if local_bytes else None)

    # -- operand plumbing --------------------------------------------

    def read(self, desc) -> np.ndarray:
        kind, payload, cast = desc
        if kind == "r":
            arr = self.regs[payload]
            if arr is None:
                arr = np.zeros(WARP,
                               dtype=self.block.plan._reg_dtypes[payload])
                self.regs[payload] = arr
            if cast is not None:
                return arr.astype(cast)
            return arr
        if kind == "c":
            return payload
        arr = self.specials[payload]
        if cast is not None and arr.dtype != cast:
            return arr.astype(cast)
        return arr

    def write(self, p: PlannedInstr, value: np.ndarray,
              mask: np.ndarray, covers: bool) -> None:
        if value.dtype != p.dst_dtype:
            value = value.astype(p.dst_dtype)
        if covers:
            self.regs[p.dst] = value
        else:
            old = self.regs[p.dst]
            if old is None:
                old = np.zeros(WARP, dtype=p.dst_dtype)
            self.regs[p.dst] = np.where(mask, value, old)

    # -- main loop -----------------------------------------------------

    def run(self) -> str:
        """Execute until barrier ('bar') or completion ('exit')."""
        block = self.block
        plan = block.plan
        instrs = plan.instrs
        n = plan.n
        stats = self.stats
        outstanding = self.outstanding
        while True:
            if not self.stack:
                self.finished = True
                return "exit"
            top = self.stack[-1]
            reconv, mask, pc, covers = top[0], top[1], top[2], top[3]
            if not covers and not mask.any():
                self.stack.pop()
                continue
            if pc == reconv or pc >= n:
                self.stack.pop()
                if self.stack:
                    continue
                self.finished = True
                return "exit"
            p = instrs[pc]
            op = p.op
            if outstanding:
                self._score_read(p)
            exec_mask = mask
            exec_covers = covers
            if p.pred >= 0 and op != "bra":
                pred = self.regs[p.pred]
                if pred is None:
                    pred = np.zeros(WARP, dtype=bool)
                lane_take = pred != p.pred_neg
                exec_mask = mask & lane_take
                exec_covers = False
            if op == "bra":
                stats.issue_cycles += p.cost
                stats.instructions += 1
                new_pc = self._branch(p, top, mask, pc)
                if new_pc is not None:
                    top[2] = new_pc
                continue
            if op == "bar":
                if not covers or not self._mask_is_warp(mask):
                    raise SimError(
                        "__syncthreads() reached in divergent code — "
                        "undefined behaviour in CUDA, rejected here")
                stats.issue_cycles += p.cost or \
                    self.block.device.issue_cost["bar"]
                stats.instructions += 1
                stats.barriers += 1
                outstanding.clear()
                top[2] = pc + 1
                self.at_barrier = True
                return "bar"
            if op == "exit":
                self._terminate(mask)
                continue
            self._execute(p, exec_mask, exec_covers)
            top[2] = pc + 1

    def _mask_is_warp(self, mask: np.ndarray) -> bool:
        return bool((mask == self.lane_mask).all())

    def _score_read(self, p: PlannedInstr) -> None:
        outstanding = self.outstanding
        waited_g = waited_s = False
        for idx in p.reg_srcs:
            kind = outstanding.get(idx)
            if kind is not None:
                waited_g |= kind == "g"
                waited_s |= kind == "s"
        if waited_g:
            self.stats.global_stalls += 1
            outstanding.clear()
        elif waited_s:
            self.stats.shared_stalls += 1
            outstanding.clear()

    def _terminate(self, mask: np.ndarray) -> None:
        self.lane_mask = self.lane_mask & ~mask
        self.lane_full = False
        for entry in self.stack:
            entry[1] = entry[1] & ~mask
            entry[3] = False

    def _branch(self, p: PlannedInstr, top, mask, pc) -> Optional[int]:
        if p.pred < 0:
            return p.target
        pred = self.regs[p.pred]
        if pred is None:
            pred = np.zeros(WARP, dtype=bool)
        lane_take = pred != p.pred_neg
        taken = mask & lane_take
        fall = mask & ~lane_take
        any_taken = bool(taken.any())
        any_fall = bool(fall.any())
        if not any_taken:
            return pc + 1
        if not any_fall:
            return p.target
        # Divergence: reconverge at the immediate post-dominator.
        self.stats.divergent_branches += 1
        reconv = self.block.ipdom.get(pc, self.block.plan.n)
        top[2] = reconv  # the join resumes here with the full mask
        self.stack.append([reconv, fall, pc + 1, False])
        self.stack.append([reconv, taken, p.target, False])
        return None

    # -- instruction semantics -----------------------------------------

    def _execute(self, p: PlannedInstr, mask: np.ndarray,
                 covers: bool) -> None:
        op = p.op
        stats = self.stats
        stats.instructions += 1
        if op in ("ld", "st", "atom"):
            self._memory(p, mask, covers)
            return
        if op == "tex":
            self._tex(p, mask, covers)
            return
        stats.issue_cycles += p.cost
        if not covers and not mask.any():
            return
        srcs = p.srcs
        if op == "mov":
            self.write(p, self.read(srcs[0]), mask, covers)
            return
        if op == "add":
            self.write(p, self.read(srcs[0]) + self.read(srcs[1]),
                       mask, covers)
            return
        if op == "mul":
            self.write(p, self.read(srcs[0]) * self.read(srcs[1]),
                       mask, covers)
            return
        if op == "sub":
            self.write(p, self.read(srcs[0]) - self.read(srcs[1]),
                       mask, covers)
            return
        if op == "setp":
            a = self.read(srcs[0])
            b = self.read(srcs[1])
            self.write(p, _CMP_FN[p.cmp](a, b), mask, covers)
            return
        if op == "selp":
            a = self.read(srcs[0])
            b = self.read(srcs[1])
            sel = self.read(srcs[2])
            self.write(p, np.where(sel, a, b), mask, covers)
            return
        if op == "cvt":
            self._cvt(p, mask, covers)
            return
        if op in _BINARY:
            a = self.read(srcs[0])
            b = self.read(srcs[1])
            if p.is_bool and op in ("and", "or", "xor"):
                fn = {"and": np.logical_and, "or": np.logical_or,
                      "xor": np.logical_xor}[op]
                self.write(p, fn(a, b), mask, covers)
                return
            self.write(p, _BINARY[op](a, b, p), mask, covers)
            return
        if op in ("mad", "fma"):
            a = self.read(srcs[0])
            b = self.read(srcs[1])
            c = self.read(srcs[2])
            self.write(p, a * b + c, mask, covers)
            return
        if op in _UNARY:
            a = self.read(srcs[0])
            if op == "not" and p.is_bool:
                self.write(p, np.logical_not(a), mask, covers)
                return
            self.write(p, _UNARY[op](a, p), mask, covers)
            return
        raise SimError(f"unimplemented opcode {op!r}")

    def _cvt(self, p: PlannedInstr, mask, covers) -> None:
        value = self.read(p.srcs[0])
        if p.ctype.is_integer and value.dtype.kind == "f":
            if p.cmp.endswith(".rn"):
                value = np.rint(value)
            else:
                value = np.trunc(value)
            value = np.where(np.isfinite(value), value, 0.0)
        self.write(p, value.astype(p.np_dtype), mask, covers)

    # -- memory ------------------------------------------------------

    def _memory(self, p: PlannedInstr, mask: np.ndarray,
                covers: bool) -> None:
        device = self.block.device
        stats = self.stats
        space = p.space
        if space == "param":
            stats.issue_cycles += p.cost
            self.write(p, self.block.param_array(p.param_name,
                                                 p.np_dtype),
                       mask, covers)
            return
        itemsize = p.itemsize
        addrs = self.read(p.srcs[0])
        if addrs.dtype != np.uint64:
            addrs = addrs.astype(np.uint64)
        if p.op == "ld":
            value = self._do_load(space, addrs, p, mask)
            self.write(p, value, mask, covers)
            if space in ("global", "local"):
                self.outstanding[p.dst] = "g"
            elif space == "shared":
                self.outstanding[p.dst] = "s"
            return
        if p.op == "st":
            value = self.read(p.srcs[1])
            self._do_store(space, addrs, value, p, mask)
            return
        # atom (only .add is generated)
        if space not in ("global", "shared"):
            raise SimError(f"atomicAdd on {space} memory")
        mem = self.block.gmem if space == "global" else self.block.smem
        if space == "global" and mem._epoch is not None:
            mem.note_lanes(addrs, mask, itemsize)
        idx = mem.element_index(addrs, itemsize, mask)
        view = mem.view(p.np_dtype)
        old = view[idx].copy()
        np.add.at(view, idx[mask], self.read(p.srcs[1])[mask])
        self.write(p, old, mask, covers)
        stats.issue_cycles += device.issue_cost["atom"]
        stats.atomics += 1
        if space == "global":
            txn = coalescing.global_transactions(addrs, mask, itemsize,
                                                 device)
            stats.mem_transactions += txn
            stats.mem_bytes += txn * 32
            self.outstanding.clear()
            stats.global_stalls += 1  # atomics round-trip

    def _do_load(self, space, addrs, p: PlannedInstr,
                 mask) -> np.ndarray:
        device = self.block.device
        stats = self.stats
        itemsize = p.itemsize
        if space == "global":
            txn, nbytes = _global_traffic(addrs, mask, itemsize, device)
            stats.mem_transactions += txn
            stats.mem_bytes += nbytes
            stats.issue_cycles += device.mem_issue_cost * max(txn, 1)
            mem = self.block.gmem
            idx = mem.element_index(addrs, itemsize, mask)
            return mem.view(p.np_dtype)[idx]
        if space == "shared":
            factor = coalescing.shared_conflict_factor(addrs, mask,
                                                       itemsize, device)
            stats.issue_cycles += device.issue_cost["shared"] * factor
            mem = self.block.smem
            idx = mem.element_index(addrs, itemsize, mask)
            return mem.view(p.np_dtype)[idx]
        if space == "const":
            active = addrs[mask]
            distinct = np.unique(active).size if active.size else 1
            stats.issue_cycles += device.issue_cost["shared"] * distinct
            mem = self.block.cmem
            idx = mem.element_index(addrs, itemsize, mask)
            return mem.view(p.np_dtype)[idx]
        if space == "local":
            return self._local_access(addrs, None, p, mask)
        raise SimError(f"bad load space {space!r}")

    def _do_store(self, space, addrs, value, p: PlannedInstr,
                  mask) -> None:
        device = self.block.device
        stats = self.stats
        itemsize = p.itemsize
        if value.dtype != p.np_dtype:
            value = value.astype(p.np_dtype)
        if space == "global":
            txn, nbytes = _global_traffic(addrs, mask, itemsize, device)
            stats.mem_transactions += txn
            stats.mem_bytes += nbytes
            stats.issue_cycles += device.mem_issue_cost * max(txn, 1)
            mem = self.block.gmem
            if mem._epoch is not None:
                mem.note_lanes(addrs, mask, itemsize)
            idx = mem.element_index(addrs, itemsize, mask)
            mem.view(p.np_dtype)[idx[mask]] = value[mask]
            return
        if space == "shared":
            factor = coalescing.shared_conflict_factor(addrs, mask,
                                                       itemsize, device)
            stats.issue_cycles += device.issue_cost["shared"] * factor
            mem = self.block.smem
            idx = mem.element_index(addrs, itemsize, mask)
            mem.view(p.np_dtype)[idx[mask]] = value[mask]
            return
        if space == "local":
            self._local_access(addrs, value, p, mask)
            return
        if space == "const":
            raise SimError("stores to constant memory are illegal")
        raise SimError(f"bad store space {space!r}")

    def _tex(self, p: PlannedInstr, mask, covers) -> None:
        """Texture fetch through the (modelled) texture cache.

        Point or bilinear filtering with clamp/wrap/border addressing,
        per the bound :class:`TextureBinding`.  Traffic is charged at
        half the raw-global transaction count — the 2D-local texture
        cache is why the era's kernels (backprojection included) read
        through textures.
        """
        device = self.block.device
        stats = self.stats
        binding = self.block.texture_binding(p.param_name)
        itemsize = np.dtype(binding.np_dtype).itemsize
        base_elem = self.block.gmem.element_index(
            np.full(WARP, binding.addr, np.uint64), itemsize,
            np.ones(WARP, bool))[0]
        view = self.block.gmem.view(binding.np_dtype)

        def fetch(ix, iy):
            ixa, okx = _tex_address(ix, binding.width, binding.address)
            if binding.height > 1:
                iya, oky = _tex_address(iy, binding.height,
                                        binding.address)
            else:
                iya, oky = np.zeros_like(ixa), np.ones_like(okx)
            flat = base_elem + iya * binding.width + ixa
            value = view[flat]
            if binding.address == "border":
                value = np.where(okx & oky, value, 0)
            return value

        if p.cmp == "1d":
            idx = self.read(p.srcs[0]).astype(np.int64)
            # tex1Dfetch: unfiltered element access (clamped here).
            value = fetch(idx, None)
        else:
            x = self.read(p.srcs[0]).astype(np.float64)
            y = self.read(p.srcs[1]).astype(np.float64)
            if binding.filter == "point":
                value = fetch(np.floor(x).astype(np.int64),
                              np.floor(y).astype(np.int64))
            else:
                xb = x - 0.5
                yb = y - 0.5
                ix0 = np.floor(xb).astype(np.int64)
                iy0 = np.floor(yb).astype(np.int64)
                fx = (xb - ix0).astype(np.float32)
                fy = (yb - iy0).astype(np.float32)
                v00 = fetch(ix0, iy0)
                v01 = fetch(ix0 + 1, iy0)
                v10 = fetch(ix0, iy0 + 1)
                v11 = fetch(ix0 + 1, iy0 + 1)
                row0 = v00 * (1 - fx) + v01 * fx
                row1 = v10 * (1 - fx) + v11 * fx
                value = (row0 * (1 - fy) + row1 * fy).astype(
                    binding.np_dtype)
        self.write(p, np.asarray(value), mask, covers)
        active = int(mask.sum())
        txn = max(1, (active * itemsize + 127) // 128 // 2 + 1)
        stats.mem_transactions += txn
        stats.mem_bytes += txn * 32
        stats.issue_cycles += device.issue_cost["shared"]
        self.outstanding[p.dst] = "g"

    def _local_access(self, addrs, value, p: PlannedInstr, mask):
        """Per-thread local memory (DRAM-backed spill space).

        Each lane owns a disjoint slice of the warp's local buffer.
        Local memory is physically interleaved so lane-uniform offsets
        coalesce — but it still pays DRAM latency/bandwidth, which is
        the register-blocking penalty for RE kernels.
        """
        if self.local is None:
            raise SimError("kernel has no local memory but accesses it")
        device = self.block.device
        stats = self.stats
        itemsize = p.itemsize
        per_thread = self.local.size // WARP
        offsets = addrs.astype(np.int64) + _LANE_IDS * per_thread
        active = int(mask.sum())
        txn = max(1, (active * itemsize + 127) // 128)
        stats.mem_transactions += txn
        stats.mem_bytes += txn * 128
        stats.issue_cycles += device.mem_issue_cost * txn
        idx = self.local.element_index(offsets.astype(np.uint64),
                                       itemsize, mask)
        view = self.local.view(p.np_dtype)
        if value is None:
            return view[idx]
        view[idx[mask]] = value[mask]
        return None


_LANE_IDS = np.arange(WARP, dtype=np.int64)


@dataclass(frozen=True)
class TextureBinding:
    """Host-side texture binding (cudaBindTexture[2D])."""

    addr: int
    width: int
    height: int = 1
    np_dtype: object = np.float32
    address: str = "clamp"
    filter: str = "point"


def _tex_address(idx, n, mode):
    """Apply a texture addressing mode; returns (indices, in_range)."""
    ok = (idx >= 0) & (idx < n)
    if mode == "wrap":
        return idx % n, ok
    return np.clip(idx, 0, n - 1), ok


def _global_traffic(addrs, mask, itemsize, device) -> Tuple[int, int]:
    txn = coalescing.global_transactions(addrs, mask, itemsize, device)
    return txn, txn * device.coalesce_line_bytes()


# Binary/unary semantics over lane arrays ------------------------------


def _int_div(a, b, p):
    safe_b = np.where(b == 0, 1, b)
    if p.ctype.signed:
        q = np.abs(a.astype(np.int64)) // np.abs(
            safe_b.astype(np.int64))
        sign = np.where((a < 0) != (safe_b < 0), -1, 1)
        return (q * sign).astype(a.dtype)
    return a // safe_b


def _int_rem(a, b, p):
    q = _int_div(a, b, p)
    return (a - q * np.where(b == 0, 1, b)).astype(a.dtype)


def _div(a, b, p):
    if p.ctype.is_integer:
        return _int_div(a, b, p)
    return a / b


def _shift_amount(b, p):
    return (b.astype(np.int64) & (p.ctype.bits - 1))


def _shl(a, b, p):
    return a << _shift_amount(b, p).astype(a.dtype)


def _shr(a, b, p):
    return a >> _shift_amount(b, p).astype(a.dtype)


def _mulhi(a, b, p):
    if p.ctype.signed:
        prod = a.astype(np.int64) * b.astype(np.int64)
    else:
        prod = a.astype(np.uint64) * b.astype(np.uint64)
    return (prod >> 32).astype(p.np_dtype)


def _mul24(a, b, p):
    a64 = a.astype(np.int64) & 0xFFFFFF
    b64 = b.astype(np.int64) & 0xFFFFFF
    if p.ctype.signed:
        a64 = np.where(a64 & 0x800000, a64 - 0x1000000, a64)
        b64 = np.where(b64 & 0x800000, b64 - 0x1000000, b64)
    return (a64 * b64).astype(p.np_dtype)


def _wrap2(fn):
    def wrapped(a, b, p):
        return fn(a, b)
    return wrapped


_BINARY = {
    "mul24": _mul24,
    "mulhi": _mulhi,
    "div": _div,
    "rem": _int_rem,
    "and": _wrap2(np.bitwise_and),
    "or": _wrap2(np.bitwise_or),
    "xor": _wrap2(np.bitwise_xor),
    "shl": _shl,
    "shr": _shr,
    "min": _wrap2(np.minimum),
    "max": _wrap2(np.maximum),
}


def _wrap1(fn):
    def wrapped(a, p):
        return fn(a)
    return wrapped


_UNARY = {
    "neg": _wrap1(np.negative),
    "not": _wrap1(np.invert),
    "abs": _wrap1(np.abs),
    "sqrt": _wrap1(np.sqrt),
    "rsqrt": _wrap1(lambda a: 1.0 / np.sqrt(a)),
    "rcp": _wrap1(lambda a: 1.0 / a),
    "floor": _wrap1(np.floor),
    "ceil": _wrap1(np.ceil),
    "round": _wrap1(np.rint),
    "trunc": _wrap1(np.trunc),
    "exp2": _wrap1(np.exp2),
    "lg2": _wrap1(np.log2),
    "sin": _wrap1(np.sin),
    "cos": _wrap1(np.cos),
}


class BlockExecutor:
    """Executes one thread block and returns its statistics."""

    def __init__(self, kernel: IRKernel, device: DeviceSpec,
                 gmem: GlobalMemory, cmem: FlatMemory,
                 args: Dict[str, object], block_idx: Tuple[int, int, int],
                 block_dim: Tuple[int, int, int],
                 grid_dim: Tuple[int, int, int],
                 dynamic_smem: int = 0,
                 plan: Optional[KernelPlan] = None,
                 textures: Optional[Dict[str, "TextureBinding"]] = None):
        self.kernel = kernel
        self.device = device
        self.gmem = gmem
        self.cmem = cmem
        self.args = args
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        if plan is None:
            plan = KernelPlan(kernel, device)
        self.plan = plan
        self.ipdom = plan.ipdom
        self.smem = FlatMemory(kernel.shared_bytes + dynamic_smem,
                               "shared")
        self.textures = textures or {}
        self._param_arrays: Dict[Tuple[str, str], np.ndarray] = {}

    def texture_binding(self, name: str) -> "TextureBinding":
        binding = self.textures.get(name)
        if binding is None:
            raise SimError(
                f"texture {name!r} is not bound — call "
                "GPU.bind_texture() before launching")
        return binding

    def param_array(self, name: str, dtype) -> np.ndarray:
        key = (name, np.dtype(dtype).str)
        arr = self._param_arrays.get(key)
        if arr is None:
            try:
                value = self.args[name]
            except KeyError:
                raise SimError(
                    f"kernel argument {name!r} was not supplied")
            arr = np.full(WARP, value, dtype=dtype)
            arr.flags.writeable = False
            self._param_arrays[key] = arr
        return arr

    def run(self) -> BlockStats:
        bx, by, bz = self.block_dim
        nthreads = bx * by * bz
        if nthreads > self.device.max_threads_per_block:
            raise SimError(
                f"block of {nthreads} threads exceeds device limit "
                f"{self.device.max_threads_per_block}")
        nwarps = (nthreads + WARP - 1) // WARP
        warps: List[_Warp] = []
        linear = np.arange(WARP, dtype=np.uint32)
        for wid in range(nwarps):
            tids = wid * WARP + linear
            lane_mask = tids < nthreads
            safe = np.where(lane_mask, tids, 0)
            tid_x = (safe % bx).astype(np.uint32)
            tid_y = ((safe // bx) % by).astype(np.uint32)
            tid_z = (safe // (bx * by)).astype(np.uint32)
            specials = {
                "tid.x": tid_x, "tid.y": tid_y, "tid.z": tid_z,
                "ntid.x": np.full(WARP, bx, np.uint32),
                "ntid.y": np.full(WARP, by, np.uint32),
                "ntid.z": np.full(WARP, bz, np.uint32),
                "ctaid.x": np.full(WARP, self.block_idx[0], np.uint32),
                "ctaid.y": np.full(WARP, self.block_idx[1], np.uint32),
                "ctaid.z": np.full(WARP, self.block_idx[2], np.uint32),
                "nctaid.x": np.full(WARP, self.grid_dim[0], np.uint32),
                "nctaid.y": np.full(WARP, self.grid_dim[1], np.uint32),
                "nctaid.z": np.full(WARP, self.grid_dim[2], np.uint32),
            }
            for arr in specials.values():
                arr.flags.writeable = False
            warps.append(_Warp(self, wid, lane_mask, specials))

        # Round-robin with barrier rendezvous.  One errstate covers
        # the whole block: simulated kernels wrap/overflow like HW.
        guard = 0
        limit = 10_000_000
        ctx = np.errstate(all="ignore")
        ctx.__enter__()
        try:
            self._scheduler_loop(warps, guard, limit)
        finally:
            ctx.__exit__(None, None, None)
        return BlockStats(warps=[w.stats for w in warps])

    def _scheduler_loop(self, warps, guard, limit):
        while True:
            guard += 1
            if guard > limit:
                raise SimError("block execution did not terminate "
                               "(runaway loop in kernel?)")
            running = [w for w in warps if not w.finished
                       and not w.at_barrier]
            if not running:
                waiting = [w for w in warps if w.at_barrier]
                if not waiting:
                    break
                for w in waiting:
                    w.at_barrier = False
                continue
            for w in running:
                w.run()

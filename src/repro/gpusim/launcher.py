"""Device front-end: memory management and kernel launching.

:class:`GPU` is the simulated equivalent of a CUDA context on one
device: allocate and copy memory, bind constant symbols, and launch
compiled kernels over a grid.  Launches validate the configuration
against the occupancy calculator (as the real runtime's launch-failure
checks would) and return both functional effects (in device memory) and
a :class:`~repro.gpusim.timing.Timing` estimate.

For large parameter sweeps, ``sample_blocks`` executes a representative
subset of the grid and extrapolates timing; ``functional=True`` (the
default) executes every block so outputs can be validated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.faults.errors import ECCError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.engine import resolve_engine, run_blocks_batched
from repro.gpusim.executor import (BlockExecutor, BlockStats, SimError,
                                   TextureBinding, plan_for)
from repro.gpusim.memory import FlatMemory, GlobalMemory
from repro.gpusim.occupancy import Occupancy, occupancy
from repro.gpusim.timing import Timing, kernel_timing
from repro.kernelc import typesys as T
from repro.kernelc.compiler import CompiledKernel, CompiledModule
from repro.obs.profile import LaunchProfile

Dim = Union[int, Tuple[int, ...]]


def _as_dim3(value: Dim) -> Tuple[int, int, int]:
    if isinstance(value, int):
        return (value, 1, 1)
    items = tuple(int(v) for v in value)
    return items + (1,) * (3 - len(items))


@dataclass
class LaunchResult:
    """Everything a launch produced."""

    timing: Timing
    occupancy: Occupancy
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    blocks_executed: int
    stats: List[BlockStats] = field(default_factory=list)
    #: Per-launch micro-profile; populated only when the owning
    #: context is tracing (``ctx.tracer`` is not None).
    profile: Optional["LaunchProfile"] = None
    #: Trace-JIT activity during this launch (deltas of the owning
    #: context's ``trace_stats``); all zero unless the launch ran on
    #: the ``"traced"`` engine.
    trace_hits: int = 0
    trace_deopts: int = 0
    trace_records: int = 0

    @property
    def seconds(self) -> float:
        return self.timing.seconds

    @property
    def cycles(self) -> float:
        return self.timing.cycles

    @property
    def instructions(self) -> int:
        return sum(s.instructions for s in self.stats)


class GPU:
    """A simulated CUDA device context.

    Bound to an :class:`~repro.runtime.context.ExecutionContext`
    (*context*, default: the caller's current context), which supplies
    the default device spec, engine selection, launch-plan/sample
    caches, and the fault injector.
    """

    def __init__(self, spec: Optional[DeviceSpec] = None,
                 memory_bytes: int = 256 * 1024 * 1024,
                 context=None):
        if context is None:
            from repro.runtime.context import current_context
            context = current_context()
        self.ctx = context
        self.spec = spec or context.device
        self.gmem = GlobalMemory(memory_bytes)
        self._const: Dict[int, FlatMemory] = {}
        self._textures: Dict[tuple, TextureBinding] = {}

    # -- memory API ------------------------------------------------

    def malloc(self, nbytes: int) -> int:
        injector = self.ctx.injector
        if injector is not None:
            injector.check("memory.oom", detail=f"{nbytes}B")
        return self.gmem.alloc(nbytes)

    def alloc_array(self, array: np.ndarray) -> int:
        """Allocate and copy a host array to the device."""
        addr = self.malloc(array.nbytes)
        self.gmem.write(addr, array)
        return addr

    def zeros(self, count: int, dtype) -> int:
        """Allocate a zero-initialized typed buffer."""
        dtype = np.dtype(dtype)
        addr = self.malloc(count * dtype.itemsize)
        self.gmem.write(addr, np.zeros(count, dtype=dtype))
        return addr

    def memcpy_htod(self, addr: int, array: np.ndarray) -> None:
        self.gmem.write(addr, array)

    def memcpy_dtoh(self, addr: int, dtype, count: int) -> np.ndarray:
        return self.gmem.read(addr, dtype, count)

    def free(self, addr: int) -> None:
        self.gmem.free(addr)

    def reset(self) -> None:
        self.gmem.reset()
        self._const.clear()

    def memcpy_to_symbol(self, module: CompiledModule, name: str,
                         array: np.ndarray) -> None:
        """cudaMemcpyToSymbol: fill a module's __constant__ symbol."""
        decl = module.ir.const_globals.get(name)
        if decl is None:
            raise SimError(f"module has no constant symbol {name!r}")
        cmem = self._const_mem(module)
        raw = np.ascontiguousarray(array)
        if raw.nbytes > decl.nbytes:
            raise SimError(
                f"constant symbol {name!r} holds {decl.nbytes} bytes, "
                f"got {raw.nbytes}")
        cmem.write(decl.offset, raw)

    def bind_texture(self, module: CompiledModule, name: str,
                     addr: int, width: int, height: int = 1,
                     dtype=np.float32, address: str = "clamp",
                     filter: str = "point") -> None:
        """cudaBindTexture[2D]: attach device memory to a texture ref.

        The texture must be declared in *module*
        (``texture<float, 2> name;``); traits mirror the CUDA address
        mode (clamp/wrap/border) and filter mode (point/linear).
        """
        ref = module.ir.textures.get(name)
        if ref is None:
            raise SimError(f"module has no texture reference {name!r}")
        if ref.dims == 1 and height > 1:
            raise SimError(f"texture {name!r} is 1D")
        if address not in ("clamp", "wrap", "border"):
            raise SimError(f"bad address mode {address!r}")
        if filter not in ("point", "linear"):
            raise SimError(f"bad filter mode {filter!r}")
        self._textures[(id(module), name)] = TextureBinding(
            addr=int(addr), width=int(width), height=int(height),
            np_dtype=np.dtype(dtype), address=address, filter=filter)

    def _const_mem(self, module: CompiledModule) -> FlatMemory:
        key = id(module)
        if key not in self._const:
            if module.const_bytes > self.spec.const_bytes:
                raise SimError(
                    f"module needs {module.const_bytes} bytes of "
                    f"constant memory; device has "
                    f"{self.spec.const_bytes} (§2.4 limit)")
            self._const[key] = FlatMemory(
                max(module.const_bytes, 1), "const")
        return self._const[key]

    # -- launching -------------------------------------------------

    def launch(self, kernel: CompiledKernel, grid: Dim, block: Dim,
               args: Sequence[object],
               dynamic_smem: int = 0,
               functional: bool = True,
               sample_blocks: int = 8,
               engine: Optional[str] = None) -> LaunchResult:
        """Launch *kernel* over *grid* × *block*.

        Args:
            kernel: a :class:`CompiledKernel` from :func:`nvcc`.
            grid: grid dimensions (int or up-to-3 tuple).
            block: block dimensions.
            args: one value per kernel parameter (device addresses for
                pointers, Python numbers for scalars).
            dynamic_smem: extra dynamically-allocated shared memory.
            functional: execute every block (needed to validate
                outputs).  When False, only ``sample_blocks`` spread
                across the grid run, and timing is extrapolated.
            sample_blocks: number of blocks to execute when not
                functional.
            engine: ``"batched"`` gangs blocks through the wide
                interpreter (the default), ``"serial"`` runs one
                :class:`BlockExecutor` per block (the oracle), ``None``
                / ``"auto"`` uses :func:`repro.gpusim.default_engine`.
                Both produce bit-identical memory, stats and timing.

        When the owning context is tracing, the launch records a
        ``launch:<kernel>`` span (with the engine's ``gang:*`` child
        spans inside it) and attaches a
        :class:`~repro.obs.profile.LaunchProfile` to both the span and
        ``result.profile``; untraced launches skip all of it behind
        one ``ctx.tracer is None`` test.

        Raises:
            SimError / OccupancyError: invalid configuration or a
                runtime fault in the kernel.
        """
        tracer = self.ctx.tracer
        if tracer is None:
            return self._launch_impl(kernel, grid, block, args,
                                     dynamic_smem, functional,
                                     sample_blocks, engine)
        resolved = resolve_engine(engine, ctx=self.ctx)
        grid3 = _as_dim3(grid)
        block3 = _as_dim3(block)
        with tracer.span(
                f"launch:{kernel.name}", "launch",
                grid="x".join(str(v) for v in grid3),
                block="x".join(str(v) for v in block3),
                engine=resolved, functional=functional) as span:
            result = self._launch_impl(kernel, grid, block, args,
                                       dynamic_smem, functional,
                                       sample_blocks, engine)
            profile = LaunchProfile.from_launch(kernel, result, resolved)
            result.profile = profile
            tracer.profiles.append(profile)
            span.attrs.update(profile.attrs())
        metrics = self.ctx.metrics
        metrics.inc("launch.count")
        metrics.observe("launch.cycles", profile.cycles)
        metrics.observe("launch.occupancy", profile.occupancy)
        metrics.observe("launch.mem_transactions",
                        profile.mem_transactions)
        if profile.trace_deopts:
            # One flight event per traced launch that saw deopts — not
            # per deopt, which would put a recorder append inside the
            # engine's guard-failure loop.
            self.ctx.events.record("trace.deopt", kernel=kernel.name,
                                   deopts=profile.trace_deopts)
        return result

    def _launch_impl(self, kernel: CompiledKernel, grid: Dim,
                     block: Dim, args: Sequence[object],
                     dynamic_smem: int = 0,
                     functional: bool = True,
                     sample_blocks: int = 8,
                     engine: Optional[str] = None) -> LaunchResult:
        """The untraced launch path (see :meth:`launch`)."""
        engine = resolve_engine(engine, ctx=self.ctx)
        grid3 = _as_dim3(grid)
        block3 = _as_dim3(block)
        params = kernel.ir.params
        if len(args) != len(params):
            raise SimError(
                f"kernel {kernel.name!r} takes {len(params)} arguments "
                f"({[p[0] for p in params]}), got {len(args)}")
        arg_map: Dict[str, object] = {}
        for (name, ctype), value in zip(params, args):
            arg_map[name] = _convert_arg(name, ctype, value)
        smem_per_block = kernel.shared_bytes + dynamic_smem
        occ = occupancy(self.spec, block3[0] * block3[1] * block3[2],
                        kernel.reg_count, smem_per_block)
        cmem = self._const_mem(kernel.module)
        plan = plan_for(kernel.ir, self.spec, ctx=self.ctx)
        total_blocks = grid3[0] * grid3[1] * grid3[2]
        if total_blocks == 0:
            raise SimError("empty grid")
        indices = _block_indices(grid3, total_blocks, functional,
                                 sample_blocks, ctx=self.ctx)
        textures = {name: binding
                    for (mod_id, name), binding in self._textures.items()
                    if mod_id == id(kernel.module)}
        injector = self.ctx.injector
        if injector is not None:
            # Fault site: the driver rejects the launch outright
            # (before any block executes, so no side effects exist).
            injector.check("launch.fail", detail=kernel.name)
        trace_before = tuple(self.ctx.trace_stats.values())
        if engine in ("batched", "traced") and len(indices) > 1:
            # Tracing stays off while an injector is armed: every
            # FaultPlan site then sees the plain interpreter, whose
            # chaos semantics are the documented ones.
            stats = run_blocks_batched(
                kernel.ir, self.spec, self.gmem, cmem, arg_map,
                indices, block_dim=block3, grid_dim=grid3,
                dynamic_smem=dynamic_smem, plan=plan,
                textures=textures, ctx=self.ctx,
                traced=(engine == "traced" and injector is None))
        else:
            stats = []
            for bidx in indices:
                if injector is not None:
                    # Fault site: watchdog kill mid-launch.  Blocks
                    # executed so far have already written device
                    # memory — retrying callers must snapshot/restore.
                    injector.check("launch.watchdog",
                                   detail=f"{kernel.name}@{bidx}")
                executor = BlockExecutor(
                    kernel.ir, self.spec, self.gmem, cmem, arg_map,
                    block_idx=bidx, block_dim=block3, grid_dim=grid3,
                    dynamic_smem=dynamic_smem, plan=plan,
                    textures=textures)
                stats.append(executor.run())
        if injector is not None:
            # Fault site: transient ECC bit flip surfacing at launch
            # completion.  The flip mutates simulated DRAM for real,
            # then raises as a *detected* uncorrectable error, the way
            # ECC hardware fails a kernel whose data went bad.
            flipped = injector.maybe_flip(
                "memory.bitflip",
                self.gmem.data[:self.gmem.allocated_bytes],
                detail=kernel.name, on_flip=self.gmem.note_range)
            if flipped is not None:
                raise ECCError(
                    f"uncorrectable ECC error during {kernel.name!r} "
                    f"(device byte offset {flipped})")
        timing = kernel_timing(self.spec, occ, total_blocks, stats)
        ts = self.ctx.trace_stats
        delta = {name: after - before for (name, after), before
                 in zip(ts.items(), trace_before) if after != before}
        return LaunchResult(timing=timing, occupancy=occ, grid=grid3,
                            block=block3, blocks_executed=len(indices),
                            stats=stats,
                            trace_hits=delta.get("hits", 0),
                            trace_deopts=delta.get("deopts", 0),
                            trace_records=delta.get("records", 0))


#: Bound on each context's sampled-launch pick memo; the memo lives on
#: the ExecutionContext, keyed (grid3, sample_blocks).  Sweeps
#: re-launch the same grid hundreds of times with functional=False;
#: the pick list is pure geometry, so compute it once per shape.
_SAMPLE_CACHE_MAX = 512


def _block_indices(grid3, total_blocks, functional, sample_blocks,
                   ctx=None):
    gx, gy, gz = grid3
    if functional or total_blocks <= sample_blocks:
        return [(x, y, z)
                for z in range(gz) for y in range(gy) for x in range(gx)]
    if ctx is None:
        from repro.runtime.context import current_context
        ctx = current_context()
    cache = ctx.sample_cache
    key = (grid3, sample_blocks)
    cached = cache.get(key)
    if cached is not None:
        return cached
    # Spread samples across the grid so edge effects are represented.
    picks = np.linspace(0, total_blocks - 1, sample_blocks).astype(int)
    out = []
    for linear in dict.fromkeys(int(p) for p in picks):
        z, rem = divmod(linear, gx * gy)
        y, x = divmod(rem, gx)
        out.append((x, y, z))
    if len(cache) >= _SAMPLE_CACHE_MAX:
        cache.clear()
    cache[key] = out
    return out


def _convert_arg(name: str, ctype, value):
    if T.is_pointer(ctype):
        return int(value)
    if ctype.is_float:
        return float(value)
    if ctype.is_integer:
        return T.convert_const(int(value), ctype)
    raise SimError(f"cannot pass argument {name!r} of type {ctype}")

"""Trace-JIT over the batched gang interpreter.

The batched engine (:mod:`repro.gpusim.engine`) already retires one
warp-instruction for up to 128 blocks per interpreter step, but still
pays Python dispatch — operand decoding, the ``_execute`` if-chain,
scoreboard bookkeeping — per instruction.  For the kernels this
dissertation studies, every gang of a launch (and every launch of a
sweep) walks the *same* straight-line regions; this module records
that walk once and replays it as a flat generated-Python program of
whole-array NumPy statements.

How it works
------------

* **Recording.**  When tracing is enabled and a :class:`_GangWarp`
  starts a quantum with the canonical entry state (depth-1 stack,
  covering mask, empty scoreboard), and no compiled trace exists for
  the key ``(entry_pc, active-lane signature)``, a recorder attaches.
  The interpreter runs normally while appending one event per retired
  operation: executed instruction, branch outcome class
  (fall/taken/div), reconvergence pop, barrier, exit.  Recording
  survives barriers (one trace spans the whole kernel).  A gang
  *split* — member blocks disagreeing on a branch class — ends the
  recording at that branch, and the continuation past it is captured
  by a separate *chain* trace keyed on the deopt state (below);
  recordings abort only on genuinely untraceable events (unsupported
  ops, oversized traces), and keys that keep aborting are poisoned
  after a few attempts.

* **Compilation.**  The event list is lowered to a list of coarse ops:

  - ``SEG``: a generated Python function of inlined NumPy statements
    covering a run of straight-line instructions.  Arithmetic is
    emitted as direct array expressions; loads/stores/atomics/textures
    call back into the interpreter's exact ``_memory``/``_tex``
    helpers (they carry all transaction/stall modelling).  Scoreboard
    stalls are *statically* simulated at compile time — the
    ``outstanding`` dict is deterministic given the instruction
    stream — and emitted as plain counter increments.  Per-instruction
    ``issue_cycles`` additions are kept in original order so the
    float64 chains match the interpreter bit for bit.
  - ``BRA``: a guard.  It re-evaluates the predicate and checks every
    member still falls in the *recorded* branch class; on agreement it
    applies the branch (pushing taken/fall entries for a divergent
    branch).  Nonconforming members are split off and deoptimized
    while the conforming majority keeps replaying; when every member
    fails, the whole fragment **deoptimizes** (and may immediately
    attach a continuation trace — see ``_chain``).  When compile-time
    analysis proved the predicate and mask row-uniform, the guard
    checks row 0 only (32 lanes instead of M·32) and fails
    all-or-nothing.
  - ``POP`` / ``BAR`` / ``EXIT`` / ``FIN``: reconvergence pops,
    barrier rendezvous (replay resumes mid-trace next quantum), and
    the two finish forms.

* **Deoptimization.**  Every guard carries the symbolic interpreter
  state at its program point: the stack's ``(reconv, pc, covers)``
  entries (masks are live — replay maintains them exactly) and the
  scoreboard snapshot.  On guard failure the warp's stack and
  ``outstanding`` are restored and the quantum falls through to the
  ordinary interpreter loop, which re-executes the guarded
  instruction with full splitting semantics.  Deopt is therefore
  always bit-exact, never best-effort.

* **Caching.**  Compiled traces ride the :class:`KernelPlan`
  (``plan.traces``) exactly like gang prototypes, so the
  :class:`~repro.runtime.context.ExecutionContext` plan cache gives
  sweeps and repeated launches trace reuse for free, and
  ``clear_plan_cache()`` evicts traces too.  Counters live in
  ``ctx.trace_stats`` and surface through ``cache_counters()`` /
  ``cache.*`` metrics / ``Sweeper.cache_report``.

* **Fast paths.**  The compiler runs a static row-uniformity analysis
  over registers and mask-stack levels: values proven identical
  across member rows may be stored as single-row ``(WARP,)`` arrays
  (NumPy broadcasting widens them lazily; splits and deopts keep them
  valid because row selection on a row-uniform value is the
  identity), and guards on proven-uniform predicates test one row.
  Shared-memory traffic additionally gets per-placement address-
  pattern memos (``plan.shared_rows`` / ``plan.shared_pats``) with a
  contiguous row-slice special case, and global loads/stores memoize
  block-relative patterns (``plan.global_pats``) with bounds
  re-checked per placement.

Fault injection: the launcher only enables tracing when no injector is
installed, so every ``FaultPlan`` site sees the plain interpreter and
chaos semantics are unchanged.

Correctness invariants the design leans on (see DESIGN.md §9):

* Inside a trace no mask row is ever empty: entry masks cover whole
  warps, and a guard only admits a divergent branch when *both* arms
  are non-empty for *every* member — which is what the recorded class
  ``div`` asserts.  Emptiness appears only via ``exit``, which ends
  the trace.
* The scoreboard is a deterministic function of the instruction
  stream, so stalls can be decided at compile time; the runtime
  ``outstanding`` dict may go stale during replay but is rewritten
  from the static snapshot at every deopt and cleared at barriers.
* Predicated-off arithmetic the interpreter skips is value-neutral to
  execute anyway (writes are masked; NumPy under ``errstate(ignore)``
  raises nothing), so segments run unconditionally.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gpusim import coalescing
from repro.gpusim.executor import (WARP, SimError, _BINARY, _UNARY)
from repro.gpusim.memory import MemoryError_

__all__ = ["GangTrace", "trace_cache_stats", "MAX_EVENTS"]

#: Recording aborts past this many events (a trace is a full loop
#: unroll; unbounded kernels would compile forever).
MAX_EVENTS = int(os.environ.get("REPRO_TRACE_MAX_EVENTS", 32768))

#: Recording attempts per key before the key is poisoned.
_MAX_ABORTS = 4

# Compiled-op tags.
_OP_SEG, _OP_BRA, _OP_POP, _OP_BAR, _OP_FIN, _OP_EXIT = range(6)

_KIND_CODE = {"fall": 0, "taken": 1, "div": 2}

_CMP_OPERATORS = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
                  "gt": ">", "ge": ">="}

_INLINE_BINARY = {
    "and": "np.bitwise_and({a}, {b})",
    "or": "np.bitwise_or({a}, {b})",
    "xor": "np.bitwise_xor({a}, {b})",
    "min": "np.minimum({a}, {b})",
    "max": "np.maximum({a}, {b})",
}

_INLINE_UNARY = {
    "neg": "np.negative({a})",
    "not": "np.invert({a})",
    "abs": "np.abs({a})",
    "sqrt": "np.sqrt({a})",
    "rsqrt": "(1.0 / np.sqrt({a}))",
    "rcp": "(1.0 / {a})",
    "floor": "np.floor({a})",
    "ceil": "np.ceil({a})",
    "round": "np.rint({a})",
    "trunc": "np.trunc({a})",
    "exp2": "np.exp2({a})",
    "lg2": "np.log2({a})",
    "sin": "np.sin({a})",
    "cos": "np.cos({a})",
}


def _strict() -> bool:
    return bool(os.environ.get("REPRO_TRACE_STRICT"))


def trace_cache_stats(ctx=None) -> Dict[str, int]:
    """Trace-JIT counters for *ctx* (default: the current context).

    ``hits``/``misses`` count trace-cache lookups at quantum entry,
    ``records`` successful compilations, ``deopts`` guard failures
    that fell back to the interpreter, ``aborts`` abandoned
    recordings (gang splits, unsupported ops, oversized traces).
    """
    if ctx is None:
        from repro.runtime.context import current_context
        ctx = current_context()
    return dict(ctx.trace_stats)


class GangTrace:
    """One compiled straight-line gang program."""

    __slots__ = ("key", "ops", "n_events", "n_segments", "sources")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entry = ("deopt-chain" if self.key[0] == "d"
                 else f"pc={self.key[0]}")
        return (f"<GangTrace {entry} ops={len(self.ops)} "
                f"segments={self.n_segments} events={self.n_events}>")


class _Recorder:
    """Event sink attached to a recording :class:`_GangWarp`."""

    __slots__ = ("key", "events")

    def __init__(self, key):
        self.key = key
        self.events: List[tuple] = []


class _CompileAbort(Exception):
    """Trace cannot be compiled; fall back to the interpreter."""


# ---------------------------------------------------------------------
# Runtime helpers shared by generated segments.
# ---------------------------------------------------------------------

def _reg_zeros(w, i):
    """Materialize a never-written register, exactly like ``_read``."""
    arr = np.zeros((w.M, WARP), dtype=w.batch.plan._reg_dtypes[i])
    w.regs[i] = arr
    return arr


#: Global address-pattern memo entries per plan before the cache
#: resets.
_GPAT_CAP = 4096


def _glob_rel(a, m):
    """Base-relative addresses under a 256-byte-aligned shift.

    ``cudaMalloc`` aligns allocations to 256 bytes and every coalescing
    segment size (32/64/128) divides 256, so keying a lane-address
    pattern relative to this base makes it recur across launches that
    place the same access shape in different allocations — the bump
    allocator never reuses addresses, so absolute keys would never hit
    for per-run buffers.  Inactive lanes are zeroed: they hold stale
    register bytes (often absolute pointers from earlier launches)
    that would otherwise defeat the memo, and every consumer of a
    cached entry ignores them anyway.
    """
    if m.all():
        s = int(a.min()) & ~0xFF
        return s, a - s
    if m.any():
        s = int(a[m].min()) & ~0xFF
        return s, np.where(m, a, s) - s
    return 0, np.where(m, a, 0)


def _global_pattern(w, key, a, m, itemsize, s):
    """Compute and cache one global access pattern's txns + indices.

    The entry stores base-relative element indices plus the active
    lanes' byte extent ``[lo, hi)`` relative to the shift *s*, so a hit
    revalidates bounds with two scalar compares and rebuilds exact
    absolute indices by adding the new base back.  Alignment is
    shift-invariant (*s* and the heap base are both 256-aligned and
    ``itemsize`` divides 256).  Validation raises *before* anything is
    cached.
    """
    batch = w.batch
    mem = batch.gmem
    txns = coalescing.global_transactions_batch(a, m, itemsize,
                                                batch.device)
    fm = m.reshape(-1)
    idx = mem.element_index(a.reshape(-1), itemsize, fm)
    if fm.any():
        offs = a[m].astype(np.int64) - s
        lo = int(offs.min())
        hi = int(offs.max()) + itemsize
    else:
        lo = hi = None
    idx_rel = np.where(fm, idx - (s - mem._BASE) // itemsize, 0)
    cache = batch.plan.global_pats
    if len(cache) >= _GPAT_CAP:
        cache.clear()
    cache[key] = (txns, idx_rel, lo, hi)
    return cache[key]


def _glob_index(w, a, m, itemsize):
    """Memoized (transactions, element indices) for one global access.

    Returns the exact values ``global_transactions_batch`` and
    ``element_index`` would produce, raising the same out-of-bounds and
    misalignment diagnostics on the same inputs.
    """
    mem = w.batch.gmem
    if 256 % itemsize:
        txns = coalescing.global_transactions_batch(a, m, itemsize,
                                                    w.batch.device)
        idx = mem.element_index(a.reshape(-1), itemsize, m.reshape(-1))
        return txns, idx
    s, rel = _glob_rel(a, m)
    key = (itemsize, rel.tobytes(), np.packbits(m).tobytes())
    hit = w.batch.plan.global_pats.get(key)
    if hit is None:
        hit = _global_pattern(w, key, a, m, itemsize, s)
    txns, idx_rel, lo, hi = hit
    base = s - mem._BASE
    if lo is not None and (base + lo < 0 or base + hi > mem.size):
        # Same relative pattern, but this placement is out of bounds:
        # the uncached path raises the exact diagnostic.
        mem.element_index(a.reshape(-1), itemsize, m.reshape(-1))
    idx = np.where(m.reshape(-1), idx_rel + base // itemsize, 0)
    return txns, idx


def _ldg(w, p, a, m):
    """Global load, inlined: mirrors ``_do_load(space='global')``."""
    batch = w.batch
    device = batch.device
    itemsize = p.itemsize
    txns, idx = _glob_index(w, a, m, itemsize)
    line = device.coalesce_line_bytes()
    w.mem_transactions += txns
    w.mem_bytes += txns * line
    w.issue_cycles += device.mem_issue_cost * np.maximum(txns, 1)
    mem = batch.gmem
    return mem.view(p.np_dtype)[idx].reshape(w.M, WARP)


def _stg(w, p, a, v, m):
    """Global store, inlined: mirrors ``_do_store(space='global')``."""
    batch = w.batch
    device = batch.device
    itemsize = p.itemsize
    if v.dtype != p.np_dtype:
        v = v.astype(p.np_dtype)
    txns, idx = _glob_index(w, a, m, itemsize)
    line = device.coalesce_line_bytes()
    w.mem_transactions += txns
    w.mem_bytes += txns * line
    w.issue_cycles += device.mem_issue_cost * np.maximum(txns, 1)
    mem = batch.gmem
    if mem._epoch is not None:
        mem.note_lanes(a, m, itemsize)
    fm = m.reshape(-1)
    fv = np.ascontiguousarray(v).reshape(-1)
    mem.view(p.np_dtype)[idx[fm]] = fv[fm]


def _srow_base(w, itemsize):
    """Per-member shared-row element offsets, cached on the warp.

    ``slots`` only changes when a fragment splits (which clears the
    cache), so every shared access after the first reuses the vector.
    """
    base = w._sbase.get(itemsize)
    if base is None:
        base = (w.slots * (w.batch.smem_row // itemsize))[:, None]
        w._sbase[itemsize] = base
    return base


def _srow_gidx(w, idx0, itemsize):
    """Whole-gang shared element indices into a per-warp scratch.

    The ``idx0 + base`` broadcast add runs thousands of times per
    launch; writing into one reused ``(M, 32)`` buffer skips the
    allocation.  Callers consume the result immediately (the gather
    copies, scatters read it once), so a single scratch per warp is
    safe; splits shrink ``M``, caught by the shape check.
    """
    buf = w._sbase.get(-1)
    if buf is None or buf.shape[0] != w.M:
        buf = np.empty((w.M, WARP), np.int64)
        w._sbase[-1] = buf
    return np.add(idx0, _srow_base(w, itemsize), out=buf)


#: Shared row-pattern memo entries per plan before the cache resets.
_SHROW_CAP = 8192

_ARANGE32 = np.arange(WARP, dtype=np.int64)


def _shared_row(w, arow, mrow, itemsize, device):
    """Single-row shared factor + element index, memoized per plan.

    Value-equivalent to ``_shared_factors``/``_shared_index`` on one
    member row: callers only take this path after proving every row of
    the gang carries identical addresses and mask, so the row-0 result
    (a scalar conflict factor, a ``(32,)`` index vector) stands for
    all members.  Shared access patterns are tid-derived and recur
    identically across gangs, launches, and sweep jobs, so results are
    cached on the plan keyed by the raw address/mask bytes (plus the
    per-launch shared size, which scales the bounds check).

    Returns ``(factor, idx0, start)``; *start* is the first element
    index when the row is a full-warp contiguous run (the coalesced
    common case, eligible for the row-slice fast path in
    ``_lds``/``_sts``), else ``None``.
    """
    size = w.ctxs[0].smem.size
    cache = w.batch.plan.shared_rows
    key = (itemsize, size, arow.tobytes(), mrow.tobytes())
    hit = cache.get(key)
    if hit is not None:
        return hit
    offs = arow.astype(np.int64)
    active = offs[mrow]
    if active.size:
        if (active < 0).any() or (active + itemsize > size).any():
            raise MemoryError_(
                f"shared access out of bounds (size {size})")
        if (active % itemsize).any():
            raise MemoryError_("misaligned shared access")
    idx0 = np.where(mrow, offs, 0) // itemsize
    banks = device.shared_banks
    words = offs // 4
    spans = device.shared_groups()
    if len(spans) == 1:
        groups = (mrow,)
    else:
        groups = []
        for lo, hi in spans:
            g = mrow.copy()
            g[:lo] = False
            g[hi:] = False
            groups.append(g)
    worst = 1
    for g in groups:
        act = words[g]
        if act.size:
            distinct = np.unique(act)
            counts = np.bincount(distinct % banks, minlength=banks)
            worst = max(worst, int(counts.max()))
    start = None
    if mrow.all() and (idx0 == idx0[0] + _ARANGE32).all():
        # Full-warp contiguous run: every element index was bounds-
        # checked above, so a 32-wide slice at ``start`` stays inside
        # the member's shared row.
        start = int(idx0[0])
    if len(cache) >= _SHROW_CAP:
        cache.clear()
    cache[key] = (worst, idx0, start)
    return worst, idx0, start


def _shared_cols(w, arow, itemsize, device):
    """Conflict/index kernel for one address row, any mask pattern.

    Divergent kernels (boundary tiles, data-dependent loops) keep the
    *addresses* row-uniform — they are tid-derived — while the active
    masks differ per member, defeating :func:`_shared_row`.  For that
    shape the per-row conflict factor is a fixed function of the mask:
    a lane→distinct-word one-hot matrix and a word→bank one-hot matrix
    turn the whole gang's factors into two small matmuls.  Memoized on
    the plan beside the single-row entries (disjoint key space).

    Returns ``(badlane, idx0, mats)``: lanes whose offsets would fault
    if active (``None`` when the row is fully valid), per-lane element
    indices (faulting lanes forced to 0, matching the general path's
    masked ``where``), and per-conflict-group ``(lo, hi, l2w, w2b)``
    matrices.
    """
    size = w.ctxs[0].smem.size
    cache = w.batch.plan.shared_rows
    key = (0, itemsize, size, arow.tobytes())
    hit = cache.get(key)
    if hit is not None:
        return hit
    offs = arow.astype(np.int64)
    bad = (offs < 0) | (offs + itemsize > size) | (offs % itemsize != 0)
    idx0 = np.where(bad, 0, offs) // itemsize
    banks = device.shared_banks
    words = offs // 4
    halves = device.shared_groups()
    mats = []
    for lo, hi in halves:
        uw, inv = np.unique(words[lo:hi], return_inverse=True)
        l2w = np.zeros((hi - lo, uw.size), np.int64)
        l2w[np.arange(hi - lo), inv] = 1
        w2b = np.zeros((uw.size, banks), np.int64)
        w2b[np.arange(uw.size), uw % banks] = 1
        mats.append((lo, hi, l2w, w2b))
    entry = (bad if bad.any() else None, idx0, mats)
    if len(cache) >= _SHROW_CAP:
        cache.clear()
    cache[key] = entry
    return entry


#: Whole-gang shared-pattern memo entries per plan before reset.
_SHPAT_CAP = 2048


def _pat_key(a, m, itemsize, size) -> tuple:
    """Whole-gang pattern memo key: raw address and packed mask bytes."""
    return (itemsize, size, a.tobytes(), np.packbits(m).tobytes())


def _shared_pattern(w, key, a, m, itemsize, size):
    """Compute and memoize general-path shared factors/indices.

    Divergent kernels with ctaid-derived shared addressing (the
    template matcher's per-shift area loads) produce per-member
    patterns no row canonicalisation can collapse — but the patterns
    are functions of launch geometry alone, so the same gang replays
    them unchanged on every launch of the plan.  A pattern that fails
    validation raises before it is cached.  Returns ``(factors,
    idx)`` with ``idx`` still missing the per-member slot offsets.
    """
    cache = w.batch.plan.shared_pats
    factors = w._shared_factors(a, m)
    offs = a.astype(np.int64)
    active = offs[m]
    if active.size:
        if (active < 0).any() or (active + itemsize > size).any():
            raise MemoryError_(
                f"shared access out of bounds (size {size})")
        if (active % itemsize).any():
            raise MemoryError_("misaligned shared access")
    idx = np.where(m, offs, 0) // itemsize
    if len(cache) >= _SHPAT_CAP:
        cache.clear()
    cache[key] = (factors, idx)
    return factors, idx


def _lane_ref(a, m):
    """Canonical per-lane addresses when active lanes agree across rows.

    Straight-line replay runs every instruction full-width but masks
    register writes, so *inactive* lanes carry stale, member-specific
    values — whole-row equality fails even though every active lane
    computes the same tid-derived address.  Pick each lane's first
    active row as its reference (never-active lanes canonicalise to 0)
    and verify every active occurrence matches.  Returns the ``(32,)``
    reference row, or ``None`` when some lane disagrees while active.
    """
    ref = a[m.argmax(axis=0), np.arange(WARP)]
    ref = np.where(m.any(axis=0), ref, 0)
    if (np.where(m, a, ref) == ref).all():
        return ref
    return None


def _shared_col_factors(w, m, mats):
    """Per-member conflict factors from memoized one-hot matrices.

    ``(m @ l2w) > 0`` marks, per member, which distinct words have at
    least one active lane; ``@ w2b`` counts them per bank.  Matches
    ``_shared_factors`` bit for bit (distinct active words, worst
    bank, floor of one).
    """
    worst = np.ones(w.M, np.int64)
    for lo, hi, l2w, w2b in mats:
        hit = (m[:, lo:hi].astype(np.int64) @ l2w) > 0
        counts = hit.astype(np.int64) @ w2b
        worst = np.maximum(worst, counts.max(axis=1))
    return worst


def _lds(w, p, a, m, rowsafe, auni):
    """Shared load with row-uniform fast paths.

    Shared addressing in SIMT kernels is usually a pure function of
    ``tid``, making every gang row identical; the full per-row
    bank-conflict sort then repeats one row's work M times.  When
    masks are uniform too, factor and indices come from row 0 alone
    (:func:`_shared_row`); when only the addresses are uniform —
    divergent code with data-dependent masks — the memoized matmul
    kernel (:func:`_shared_cols`) still vectorises the whole gang.
    ``rowsafe`` is compile-time True for ops running under the
    covering entry mask, whose rows are uniform by construction (one
    ``blockDim`` per launch).  ``auni`` is compile-time True when the
    compiler's dataflow analysis proved the address row-uniform
    (derived from tid/params/constants only), skipping the dynamic
    probe; False falls back to probing, so dynamically-uniform
    addresses still take the fast path.
    """
    batch = w.batch
    device = batch.device
    itemsize = p.itemsize
    uniform = auni or (a == a[0]).all()
    if uniform and (rowsafe or (m == m[0]).all()):
        f, idx0, start = _shared_row(w, a[0], m[0], itemsize, device)
        w.issue_cycles += device.issue_cost["shared"] * f
        if start is not None:
            # Contiguous full-warp row: one 32-element run per member
            # off a 2-D view, instead of materialising and gathering
            # 32*M scattered offsets.
            view2 = batch.smem_view2(p.np_dtype,
                                     batch.smem_row // itemsize)
            return view2[w.slots, start:start + WARP]
        gidx = _srow_gidx(w, idx0, itemsize)
        return batch.smem_view(p.np_dtype)[gidx]
    size = w.ctxs[0].smem.size
    pkey = _pat_key(a, m, itemsize, size)
    hit = batch.plan.shared_pats.get(pkey)
    if hit is None:
        ref = a[0] if uniform else _lane_ref(a, m)
        if ref is not None:
            badlane, idx0, mats = _shared_cols(w, ref, itemsize,
                                               device)
            if badlane is None or not (m & badlane).any():
                factors = _shared_col_factors(w, m, mats)
                gidx = (np.where(m, idx0, 0)
                        + _srow_base(w, itemsize))
                w.issue_cycles += device.issue_cost["shared"] * factors
                return batch.smem_view(p.np_dtype)[gidx]
            # An active lane faults: fall through so the general
            # path raises its exact diagnostic.
        hit = _shared_pattern(w, pkey, a, m, itemsize, size)
    factors, idx = hit
    gidx = _srow_gidx(w, idx, itemsize)
    w.issue_cycles += device.issue_cost["shared"] * factors
    return batch.smem_view(p.np_dtype)[gidx]


def _sts(w, p, a, v, m, rowsafe, auni):
    """Shared store with the same row-uniform fast paths as ``_lds``."""
    batch = w.batch
    device = batch.device
    itemsize = p.itemsize
    if v.dtype != p.np_dtype:
        v = v.astype(p.np_dtype)
    uniform = auni or (a == a[0]).all()
    if uniform and (rowsafe or (m == m[0]).all()):
        f, idx0, start = _shared_row(w, a[0], m[0], itemsize, device)
        if start is not None:
            # Contiguous full-warp row (rows uniform, mrow full, so
            # every lane is active): distinct slots, distinct
            # in-row offsets — no duplicate targets to order.
            view2 = batch.smem_view2(p.np_dtype,
                                     batch.smem_row // itemsize)
            view2[w.slots, start:start + WARP] = v
            w.issue_cycles += device.issue_cost["shared"] * f
            return
        gidx = _srow_gidx(w, idx0, itemsize)
        view = batch.smem_view(p.np_dtype)
        # Row-major flattening keeps lane order within each
        # member, so duplicate addresses resolve exactly as the
        # general path.
        if m.all():
            view[gidx] = v
        else:
            view[gidx[m]] = v[m]
        w.issue_cycles += device.issue_cost["shared"] * f
        return
    size = w.ctxs[0].smem.size
    pkey = _pat_key(a, m, itemsize, size)
    hit = batch.plan.shared_pats.get(pkey)
    if hit is None:
        ref = a[0] if uniform else _lane_ref(a, m)
        if ref is not None:
            badlane, idx0, mats = _shared_cols(w, ref, itemsize,
                                               device)
            if badlane is None or not (m & badlane).any():
                factors = _shared_col_factors(w, m, mats)
                gidx = (np.where(m, idx0, 0)
                        + _srow_base(w, itemsize))
                batch.smem_view(p.np_dtype)[gidx[m]] = v[m]
                w.issue_cycles += device.issue_cost["shared"] * factors
                return
        hit = _shared_pattern(w, pkey, a, m, itemsize, size)
    factors, idx = hit
    gidx = _srow_gidx(w, idx, itemsize)
    batch.smem_view(p.np_dtype)[gidx[m]] = v[m]
    w.issue_cycles += device.issue_cost["shared"] * factors


# ---------------------------------------------------------------------
# Compiler: event list -> GangTrace.
# ---------------------------------------------------------------------

class _Compiler:
    """Lowers a recorded event stream to compiled trace ops.

    Tracks a *symbolic* interpreter state alongside code emission: the
    reconvergence stack as ``[reconv, pc, covers]`` entries and the
    scoreboard ``outstanding`` dict.  Event program counters are
    checked against the symbolic walk — any mismatch means the model
    and the interpreter disagreed, and compilation aborts rather than
    risk an unfaithful trace.
    """

    def __init__(self, plan, device, key):
        self.plan = plan
        self.instrs = plan.instrs
        self.device = device
        self.ipdom = plan.ipdom
        self.n = plan.n
        if key[0] == "d":
            # Continuation trace: entry is a deopt snapshot — the
            # exact (reconv, pc, covers) stack and scoreboard a guard
            # restores, so chained fragments re-enter mid-kernel.
            entries, out = key[1]
            self.stack = [list(e) for e in entries]
            self.out: Dict[int, str] = dict(out)
        else:
            self.stack = [[plan.n, key[0], True]]
            self.out = {}
        self.ops: List[tuple] = []
        self.sources: List[str] = []
        # Per-segment emission state.
        self.pending: List[str] = []
        self.pend_instr = 0
        self.loaded: Dict[int, str] = {}
        self.casts: Dict[tuple, str] = {}
        self.preds: Dict[int, str] = {}
        self.ems: Dict[tuple, str] = {}
        self.specials: Dict[tuple, str] = {}
        self.ns = {"np": np, "P": plan.instrs, "_zeros": _reg_zeros,
                   "_ldg": _ldg, "_stg": _stg, "_lds": _lds,
                   "_sts": _sts}
        self.dtnames: Dict[str, str] = {}
        self.nseg = 0
        self.ntmp = 0
        #: Registers statically known to carry identical member rows:
        #: written unpredicated under a covering mask from operands
        #: that are themselves row-uniform (constants, kernel params,
        #: tid-derived specials — everything but ctaid and memory).
        #: Starts empty, so values live at trace entry (mid-kernel
        #: entry points, deopt chains) are never assumed uniform.
        self.rowuni: set = set()
        #: Mask row-uniformity, one flag per stack level.  Covering
        #: masks equal the warp's lane mask, whose rows are identical
        #: by construction (one ``blockDim`` per launch, and splits
        #: copy whole rows); forks stay uniform when the branch
        #: predicate is itself row-uniform.
        self.muni: List[bool] = [bool(e[2]) for e in self.stack]

    # -- small utilities ----------------------------------------------

    def _tmp(self) -> str:
        self.ntmp += 1
        return f"v{self.ntmp}"

    def _dt(self, dtype) -> str:
        dt = np.dtype(dtype)
        name = self.dtnames.get(dt.str)
        if name is None:
            name = f"D{len(self.dtnames)}"
            self.dtnames[dt.str] = name
            self.ns[name] = dt
        return name

    def _invalidate(self, reg: int) -> None:
        self.preds.pop(reg, None)
        for k in [k for k in self.casts if k[0] == reg]:
            del self.casts[k]
        for k in [k for k in self.ems if k[0] == reg]:
            del self.ems[k]

    def _snapshot(self) -> tuple:
        """Deopt state: stack (reconv, pc, covers) + scoreboard."""
        entries = tuple((e[0], e[1], e[2]) for e in self.stack)
        return (entries, tuple(self.out.items()))

    # -- static scoreboard --------------------------------------------

    def _score_classify(self, p) -> int:
        if not self.out:
            return 0
        waited_g = waited_s = False
        for idx in p.reg_srcs:
            kind = self.out.get(idx)
            if kind == "g":
                waited_g = True
            elif kind == "s":
                waited_s = True
        if waited_g:
            self.out.clear()
            return 1
        if waited_s:
            self.out.clear()
            return 2
        return 0

    def _score_emit(self, p) -> None:
        stall = self._score_classify(p)
        if stall == 1:
            self.pending.append("w.global_stalls += 1")
        elif stall == 2:
            self.pending.append("w.shared_stalls += 1")

    # -- segment flushing ---------------------------------------------

    def _flush(self) -> None:
        if not self.pending and not self.pend_instr:
            return
        lines = self.pending
        if self.pend_instr:
            lines.append(f"w.instructions += {self.pend_instr}")
        name = f"_seg{self.nseg}"
        body = "\n    ".join(lines)
        src = (f"def {name}(w, mask):\n"
               f"    R = w.regs\n"
               f"    MW = (w.M, {WARP})\n"
               f"    WV = ({WARP},)\n"
               f"    IC = w.issue_cycles\n"
               f"    {body}\n")
        code = compile(src, f"<gangtrace:{name}>", "exec")
        loc: Dict[str, object] = {}
        exec(code, self.ns, loc)
        self.ops.append((_OP_SEG, loc[name]))
        self.sources.append(src)
        self.nseg += 1
        self.pending = []
        self.pend_instr = 0
        self.loaded = {}
        self.casts = {}
        self.preds = {}
        self.ems = {}
        self.specials = {}
        self.ntmp = 0

    # -- operand emission ---------------------------------------------

    def _rd(self, desc, pc: int, slot: int) -> str:
        kind, payload, cast = desc
        if kind == "r":
            name = self.loaded.get(payload)
            if name is None:
                name = f"r{payload}"
                self.pending.append(f"{name} = R[{payload}]")
                self.pending.append(
                    f"if {name} is None: {name} = _zeros(w, {payload})")
                self.loaded[payload] = name
            if cast is None:
                return name
            if np.dtype(cast) == self.plan._reg_dtypes[payload]:
                # ``_read`` would astype to the dtype the register
                # already has — a pure copy; segments never mutate
                # operand arrays in place, so the alias is safe.
                return name
            ck = (payload, np.dtype(cast).str)
            cname = self.casts.get(ck)
            if cname is None:
                cname = self._tmp()
                self.pending.append(
                    f"{cname} = {name}.astype({self._dt(cast)})")
                self.casts[ck] = cname
            return cname
        if kind == "c":
            cn = f"K{pc}_{slot}"
            self.ns[cn] = payload
            return cn
        # Special register: always uint32 lane arrays on the warp.
        skey = (payload, None if cast is None else np.dtype(cast).str)
        sname = self.specials.get(skey)
        if sname is not None:
            return sname
        base = self.specials.get((payload, None))
        if base is None:
            base = "s_" + payload.replace(".", "_")
            self.pending.append(f"{base} = w.specials[{payload!r}]")
            self.specials[(payload, None)] = base
        if cast is not None and np.dtype(cast) != np.dtype(np.uint32):
            sname = self._tmp()
            self.pending.append(
                f"{sname} = {base}.astype({self._dt(cast)})")
            self.specials[skey] = sname
            return sname
        self.specials[skey] = base
        return base

    def _src_rowuni(self, desc) -> bool:
        """Is this operand row-uniform (identical across gang rows)?"""
        kind, payload, _ = desc
        if kind == "c":
            return True
        if kind == "r":
            return payload in self.rowuni
        # Specials: everything is one (WARP,) row broadcast to the
        # gang except the per-member block indices.
        return not payload.startswith("ctaid")

    def _src_dtype(self, desc) -> np.dtype:
        kind, payload, cast = desc
        if kind == "r":
            return (np.dtype(cast) if cast is not None
                    else self.plan._reg_dtypes[payload])
        if kind == "c":
            return payload.dtype
        return np.dtype(cast) if cast is not None else np.dtype(np.uint32)

    def _emask(self, p, covers: bool) -> Tuple[str, str]:
        """The (mask expr, covers literal) an op executes under."""
        if p.pred < 0:
            return "mask", ("True" if covers else "False")
        j = p.pred
        pn = self.preds.get(j)
        if pn is None:
            pn = f"q{j}"
            self.pending.append(f"{pn} = R[{j}]")
            self.pending.append(
                f"if {pn} is None: {pn} = np.zeros(MW, np.bool_)")
            self.preds[j] = pn
        ek = (j, p.pred_neg)
        em = self.ems.get(ek)
        if em is None:
            em = f"em{j}_{int(p.pred_neg)}"
            if p.pred_neg:
                # ``mask > q`` is ``mask & ~q`` for booleans, minus
                # the inversion temporary.
                self.pending.append(f"{em} = mask > {pn}")
            else:
                self.pending.append(f"{em} = mask & {pn}")
            self.ems[ek] = em
        return em, "False"

    # -- writes --------------------------------------------------------

    def _write(self, p, expr: str, covers: bool,
               uni: bool = False) -> None:
        v = self._tmp()
        self.pending.append(f"{v} = {expr}")
        self._write_value(p, v, covers, uni)

    def _write_value(self, p, v: str, covers: bool,
                     uni: bool = False) -> None:
        # Elementwise ops preserve row uniformity.  A full overwrite
        # of a uniform value always qualifies; a blend qualifies only
        # when mask, predicate, and the previous value are all
        # row-uniform too.
        narrow = False
        if uni and ((covers and p.pred < 0)
                    or (self.muni[-1]
                        and (p.pred < 0 or p.pred in self.rowuni)
                        and p.dst in self.rowuni)):
            self.rowuni.add(p.dst)
            narrow = covers and p.pred < 0
        else:
            self.rowuni.discard(p.dst)
        d = p.dst
        if d < 0:
            raise _CompileAbort(f"op {p.op} writes no register")
        dtn = self._dt(p.dst_dtype)
        self.pending.append(
            f"if {v}.dtype != {dtn}: {v} = {v}.astype({dtn})")
        if covers and p.pred < 0:
            if narrow:
                # Row-uniform full overwrite: keep the single-row
                # (WARP,) representation; consumers broadcast lazily.
                self.pending.append(
                    f"if {v}.ndim == 0: {v} = np.broadcast_to({v}, WV)")
            else:
                self.pending.append(
                    f"if {v}.shape != MW: {v} = np.broadcast_to({v}, MW)")
            self.pending.append(f"R[{d}] = r{d} = {v}")
        else:
            em, _ = self._emask(p, covers)
            old = self.loaded.get(d)
            if old is None:
                old = f"r{d}"
                self.pending.append(f"{old} = R[{d}]")
                self.pending.append(
                    f"if {old} is None: {old} = np.zeros(MW, {dtn})")
            self.pending.append(
                f"R[{d}] = r{d} = np.where({em}, {v}, {old})")
        self.loaded[d] = f"r{d}"
        self._invalidate(d)

    def _reload_dst(self, p) -> None:
        """Refresh the register alias after an interpreter-helper call."""
        d = p.dst
        if d < 0:
            return
        self.rowuni.discard(d)
        self.pending.append(f"r{d} = R[{d}]")
        self.loaded[d] = f"r{d}"
        self._invalidate(d)

    # -- per-op lowering ----------------------------------------------

    def _memory(self, pc: int, p, covers: bool) -> None:
        space = p.space
        if p.op in ("ld", "st") and space in ("global", "shared"):
            self._mem_inline(pc, p, covers, space)
            return
        em, ec = self._emask(p, covers)
        self.pending.append(f"w._memory(P[{pc}], {em}, {ec})")
        if p.op == "ld":
            if space in ("global", "local"):
                self.out[p.dst] = "g"
            elif space == "shared":
                self.out[p.dst] = "s"
            self._reload_dst(p)
            if space == "param" and covers and p.pred < 0:
                # Kernel parameters are launch-wide values: every
                # member row receives the same array.
                self.rowuni.add(p.dst)
        elif p.op == "atom":
            if space == "global":
                self.out.clear()
            self._reload_dst(p)

    def _local(self, desc, pc: int, slot: int) -> str:
        """Read an operand into a *local* name safe to rebind.

        Constant operands live in the generated function's globals;
        the broadcast guard lines assign to their operand name, which
        must therefore be function-local.
        """
        name = self._rd(desc, pc, slot)
        if desc[0] == "c":
            alias = self._tmp()
            self.pending.append(f"{alias} = {name}")
            name = alias
        return name

    def _addr(self, desc, pc: int) -> str:
        """Emit the address operand: ``_full(_read(src))`` as uint64."""
        name = self._local(desc, pc, 0)
        self.pending.append(
            f"if {name}.shape != MW: "
            f"{name} = np.broadcast_to({name}, MW)")
        if self._src_dtype(desc) == np.dtype(np.uint64):
            return name
        kind, payload, cast = desc
        u64 = self._dt(np.uint64)
        if kind == "r" and cast is None:
            ck = (payload, "<u8")
            cname = self.casts.get(ck)
            if cname is None:
                cname = self._tmp()
                self.pending.append(f"{cname} = {name}.astype({u64})")
                self.casts[ck] = cname
            return cname
        cname = self._tmp()
        self.pending.append(f"{cname} = {name}.astype({u64})")
        return cname

    def _mem_inline(self, pc: int, p, covers: bool,
                    space: str) -> None:
        """Lower a global/shared ld/st to a direct helper call.

        The helpers replicate the interpreter's ``_do_load`` /
        ``_do_store`` accounting statement for statement; shared ops
        additionally get the row-uniform fast path (``rowsafe`` is
        compile-time truth that the executing mask rows are uniform:
        the op runs unpredicated under the covering entry mask).
        """
        # Static address row-uniformity must be judged before _addr
        # emits (and before the store value is read): it is a property
        # of the *source* registers at this program point.
        auni = "True" if self._src_rowuni(p.srcs[0]) else "False"
        em, _ = self._emask(p, covers)
        a = self._addr(p.srcs[0], pc)
        # The execution mask is row-uniform when the stack mask is
        # and the predicate (if any) is too.
        emuni = self.muni[-1] and (p.pred < 0
                                   or p.pred in self.rowuni)
        rowsafe = "True" if emuni else "False"
        if p.op == "ld":
            v = self._tmp()
            if space == "global":
                self.pending.append(
                    f"{v} = _ldg(w, P[{pc}], {a}, {em})")
                self.out[p.dst] = "g"
            else:
                self.pending.append(
                    f"{v} = _lds(w, P[{pc}], {a}, {em}, {rowsafe}, "
                    f"{auni})")
                self.out[p.dst] = "s"
            self._write_value(p, v, covers)
            return
        val = self._local(p.srcs[1], pc, 1)
        self.pending.append(
            f"if {val}.shape != MW: "
            f"{val} = np.broadcast_to({val}, MW)")
        if space == "global":
            self.pending.append(
                f"_stg(w, P[{pc}], {a}, {val}, {em})")
        else:
            self.pending.append(
                f"_sts(w, P[{pc}], {a}, {val}, {em}, {rowsafe}, "
                f"{auni})")

    def _tex(self, pc: int, p, covers: bool) -> None:
        em, ec = self._emask(p, covers)
        self.pending.append(f"w._tex(P[{pc}], {em}, {ec})")
        self.out[p.dst] = "g"
        self._reload_dst(p)

    def _cvt(self, pc: int, p, covers: bool) -> None:
        desc = p.srcs[0]
        a = self._rd(desc, pc, 0)
        v = self._tmp()
        if p.ctype.is_integer and self._src_dtype(desc).kind == "f":
            fn = "np.rint" if (p.cmp or "").endswith(".rn") \
                else "np.trunc"
            self.pending.append(f"{v} = {fn}({a})")
            self.pending.append(
                f"{v} = np.where(np.isfinite({v}), {v}, 0.0)")
        else:
            self.pending.append(f"{v} = {a}")
        self.pending.append(
            f"{v} = {v}.astype({self._dt(p.np_dtype)})")
        self._write_value(p, v, covers, self._src_rowuni(desc))

    def _arith(self, pc: int, p, covers: bool) -> None:
        if p.cost != 0.0:
            self.pending.append(f"IC += {p.cost!r}")
        op = p.op
        srcs = p.srcs

        def rd(i):
            return self._rd(srcs[i], pc, i)

        if op == "mov":
            expr = rd(0)
        elif op == "add":
            expr = f"({rd(0)} + {rd(1)})"
        elif op == "mul":
            expr = f"({rd(0)} * {rd(1)})"
        elif op == "sub":
            expr = f"({rd(0)} - {rd(1)})"
        elif op == "setp":
            oper = _CMP_OPERATORS.get(p.cmp)
            if oper is None:
                raise _CompileAbort(f"comparison {p.cmp!r}")
            a, b = rd(0), rd(1)
            expr = f"({a} {oper} {b})"
        elif op == "selp":
            a, b = rd(0), rd(1)
            sel = rd(2)
            expr = f"np.where({sel}, {a}, {b})"
        elif op == "cvt":
            self._cvt(pc, p, covers)
            return
        elif op in ("mad", "fma"):
            a, b = rd(0), rd(1)
            c = rd(2)
            expr = f"({a} * {b} + {c})"
        elif op in ("shl", "shr"):
            a, b = rd(0), rd(1)
            adt = self._dt(self._src_dtype(srcs[0]))
            amt = (f"({b}.astype({self._dt(np.int64)}) "
                   f"& {p.ctype.bits - 1}).astype({adt})")
            expr = f"({a} {'<<' if op == 'shl' else '>>'} {amt})"
        elif op == "mulhi":
            a, b = rd(0), rd(1)
            wdt = self._dt(np.int64 if p.ctype.signed else np.uint64)
            expr = (f"(({a}.astype({wdt}) * {b}.astype({wdt})) >> 32)"
                    f".astype({self._dt(p.np_dtype)})")
        elif op in _BINARY:
            a, b = rd(0), rd(1)
            if p.is_bool and op in ("and", "or", "xor"):
                fn = {"and": "np.logical_and", "or": "np.logical_or",
                      "xor": "np.logical_xor"}[op]
                expr = f"{fn}({a}, {b})"
            elif op in _INLINE_BINARY:
                expr = _INLINE_BINARY[op].format(a=a, b=b)
            else:
                fname = f"F{pc}"
                self.ns[fname] = _BINARY[op]
                expr = f"{fname}({a}, {b}, P[{pc}])"
        elif op in _UNARY:
            a = rd(0)
            if op == "not" and p.is_bool:
                expr = f"np.logical_not({a})"
            else:
                expr = _INLINE_UNARY[op].format(a=a)
        else:
            raise _CompileAbort(f"opcode {op!r}")
        self._write(p, expr, covers,
                    all(map(self._src_rowuni, srcs)))

    # -- event handlers ------------------------------------------------

    def _check_pc(self, pc: int, what: str) -> None:
        if pc != self.stack[-1][1]:
            raise _CompileAbort(
                f"{what} at pc {pc} but symbolic pc is "
                f"{self.stack[-1][1]}")

    def on_exec(self, pc: int, covers: bool) -> None:
        self._check_pc(pc, "exec")
        p = self.instrs[pc]
        self._score_emit(p)
        op = p.op
        if op in ("ld", "st", "atom"):
            self._memory(pc, p, covers)
        elif op == "tex":
            self._tex(pc, p, covers)
        else:
            self._arith(pc, p, covers)
        self.pend_instr += 1
        self.stack[-1][1] = pc + 1

    def on_ubra(self, pc: int) -> None:
        self._check_pc(pc, "uniform branch")
        p = self.instrs[pc]
        self._score_emit(p)
        if p.cost != 0.0:
            self.pending.append(f"IC += {p.cost!r}")
        self.pend_instr += 1
        self.stack[-1][1] = p.target

    def on_bra(self, pc: int, kind: str) -> None:
        self._check_pc(pc, "branch")
        p = self.instrs[pc]
        state = self._snapshot()  # pre-stall scoreboard, pc at branch
        stall = self._score_classify(p)
        self._flush()
        # Guard on a statically row-uniform predicate under a
        # row-uniform mask: row 0 decides for every member at replay,
        # and failures are all-or-nothing.
        guni = self.muni[-1] and p.pred in self.rowuni
        top = self.stack[-1]
        reconv = -1
        if kind == "fall":
            top[1] = pc + 1
        elif kind == "taken":
            top[1] = p.target
        else:
            reconv = self.ipdom.get(pc, self.n)
            top[1] = reconv
            self.stack.append([reconv, pc + 1, False])
            self.stack.append([reconv, p.target, False])
            self.muni.append(guni)
            self.muni.append(guni)
        self.ops.append((_OP_BRA, p.pred, p.pred_neg, _KIND_CODE[kind],
                         reconv, pc + 1, p.target, stall, state,
                         guni))
        # Branch-retire stats open the next segment (they must only
        # apply once the guard has passed).
        if p.cost != 0.0:
            self.pending.append(f"IC += {p.cost!r}")
        self.pend_instr += 1
        if kind == "div":
            self.pending.append("w.divergent_branches += 1")

    def on_pop(self) -> None:
        top = self.stack[-1]
        if not (top[1] == top[0] or top[1] >= self.n):
            raise _CompileAbort(f"pop at non-reconvergence pc {top[1]}")
        if len(self.stack) < 2:
            raise _CompileAbort("pop would empty the stack")
        self._flush()
        self.ops.append((_OP_POP,))
        self.stack.pop()
        self.muni.pop()

    def on_bar(self, pc: int) -> None:
        self._check_pc(pc, "barrier")
        p = self.instrs[pc]
        self._score_emit(p)
        self._flush()
        cost = p.cost or self.device.issue_cost["bar"]
        self.ops.append((_OP_BAR, cost))
        self.out.clear()
        self.stack[-1][1] = pc + 1

    def on_exit(self, pc: int) -> None:
        self._check_pc(pc, "exit")
        p = self.instrs[pc]
        state = self._snapshot()
        stall = self._score_classify(p)
        self._flush()
        self.ops.append((_OP_EXIT, stall, state))

    def on_fin(self) -> None:
        top = self.stack[-1]
        if not (top[1] == top[0] or top[1] >= self.n):
            raise _CompileAbort(f"finish at non-reconvergence pc "
                                f"{top[1]}")
        if len(self.stack) != 1:
            raise _CompileAbort("finish with a deep stack")
        self._flush()
        self.ops.append((_OP_FIN,))


def _compile(rec: _Recorder, plan, device) -> GangTrace:
    comp = _Compiler(plan, device, rec.key)
    for ev in rec.events:
        tag = ev[0]
        if tag == "x":
            comp.on_exec(ev[1], ev[2])
        elif tag == "br":
            comp.on_bra(ev[1], ev[2])
        elif tag == "ub":
            comp.on_ubra(ev[1])
        elif tag == "pop":
            comp.on_pop()
        elif tag == "bar":
            comp.on_bar(ev[1])
        elif tag == "exit":
            comp.on_exit(ev[1])
        elif tag == "fin":
            comp.on_fin()
        else:  # pragma: no cover - recorder and compiler move together
            raise _CompileAbort(f"unknown event {tag!r}")
    if not comp.ops or comp.ops[-1][0] not in (_OP_FIN, _OP_EXIT):
        raise _CompileAbort("trace has no terminal op")
    trace = GangTrace()
    trace.key = rec.key
    trace.ops = comp.ops
    trace.n_events = len(rec.events)
    trace.n_segments = comp.nseg
    trace.sources = (comp.sources
                     if os.environ.get("REPRO_TRACE_DEBUG") else None)
    return trace


# ---------------------------------------------------------------------
# Replay.
# ---------------------------------------------------------------------

def _deopt(w, state, stats) -> str:
    """Restore interpreter state at a failed guard's program point."""
    entries, out = state
    stack = w.stack
    if len(stack) != len(entries):  # pragma: no cover - structural
        raise SimError("trace deopt with inconsistent stack depth")
    for entry, (reconv, pc, covers) in zip(stack, entries):
        entry[0] = reconv
        entry[2] = pc
        entry[3] = covers
    w.outstanding = dict(out)
    w._trace = None
    w._trace_pos = 0
    stats["deopts"] += 1
    return "deopt"


def _chain(w, state, mask, lane_take, stats) -> Optional[GangTrace]:
    """Continue past a failed BRA guard with a continuation trace.

    A deopt restores *state* with the failed branch still ahead, so
    the interpreter's next step is that branch — and every fragment
    restoring the same structural state with the same member-uniform
    branch class walks the same continuation.  Key those walks as
    ``("d", state, class)``: on a hit the trace is attached (its first
    guard passes by construction, so chains always make progress —
    data-dependent loops converge by self-chaining one recorded unroll
    at a time); on a miss a recorder captures the continuation for the
    next fragment.  Mixed-class gangs stay with the interpreter, which
    splits them.
    """
    t = (mask & lane_take).any(axis=1)
    f = (mask & ~lane_take).any(axis=1)
    if (t & f).all():
        cls = "div"
    elif (t & ~f).all():
        cls = "taken"
    elif not t.any():
        cls = "fall"
    else:
        return None
    plan = w.batch.plan
    key = ("d", state, cls)
    trace = plan.traces.get(key)
    if trace is not None:
        stats["hits"] += 1
        w._trace = trace
        w._trace_pos = 0
        return trace
    stats["misses"] += 1
    if key in plan.trace_pending \
            or plan.trace_aborts.get(key, 0) >= _MAX_ABORTS:
        return None
    plan.trace_pending.add(key)
    w._rec = _Recorder(key)
    return None


def _replay(w, spawned) -> str:
    """Drive *w* through its attached trace.

    Returns ``"bar"`` (barrier reached, trace position saved),
    ``"fin"`` (warp finished), or ``"deopt"`` (state restored; the
    interpreter must run this quantum).  When only *some* members
    fail a guard, the nonconforming rows are split off into a sibling
    fragment (appended to *spawned*, deoptimized to the interpreter)
    and the conforming majority keeps replaying.
    """
    ops = w._trace.ops
    i = w._trace_pos
    stack = w.stack
    regs = w.regs
    stats = w.batch.trace_stats
    mask = stack[-1][1]
    while True:
        op = ops[i]
        tag = op[0]
        if tag == _OP_SEG:
            op[1](w, mask)
            i += 1
        elif tag == _OP_BRA:
            (_, pidx, neg, kind, reconv, fall_pc, taken_pc, stall,
             state, uni) = op
            pred = regs[pidx]
            if pred is None:
                pred = np.zeros((w.M, WARP), bool)
            # ``bad`` stays None on the conforming fast path: for
            # kinds 0/1 one elementwise op and one scalar reduction
            # prove every member conforms — ``lane_take`` itself is
            # only materialised for forks and guard failures
            # (``mask > pred`` is ``mask & ~pred`` for booleans,
            # without the inversion temporary).  When the compiler
            # proved the predicate and mask row-uniform (``uni``),
            # row 0 stands for the whole gang: the guard touches 32
            # lanes instead of M*32 and fails all-or-nothing.
            bad = None
            lane_take = None
            if uni:
                m0 = mask[0]
                p0 = pred if pred.ndim == 1 else pred[0]
                if kind == 0:
                    allbad = ((m0 > p0) if neg else (m0 & p0)).any()
                elif kind == 1:
                    allbad = ((m0 & p0) if neg else (m0 > p0)).any()
                else:
                    lane_take = ~pred if neg else pred
                    lt0 = (lane_take if lane_take.ndim == 1
                           else lane_take[0])
                    allbad = not ((m0 & lt0).any()
                                  and (m0 > lt0).any())
                if allbad:
                    if lane_take is None:
                        lane_take = ~pred if neg else pred
                    status = _deopt(w, state, stats)
                    if _chain(w, state, mask, lane_take,
                              stats) is None:
                        return status
                    ops = w._trace.ops
                    i = 0
                    continue
                if kind == 2:
                    taken = mask & lane_take
                    fall = mask & ~lane_take
            elif kind == 0:
                v = (mask > pred) if neg else (mask & pred)
                if v.any():
                    bad = v.any(axis=1)
            elif kind == 1:
                v = (mask & pred) if neg else (mask > pred)
                if v.any():
                    bad = v.any(axis=1)
            else:
                lane_take = ~pred if neg else pred
                taken = mask & lane_take
                fall = mask & ~lane_take
                v = ~(taken.any(axis=1) & fall.any(axis=1))
                if v.any():
                    bad = v
            if bad is not None:
                if lane_take is None:
                    lane_take = ~pred if neg else pred
                if bad.all():
                    status = _deopt(w, state, stats)
                    if _chain(w, state, mask, lane_take, stats) is None:
                        return status
                    ops = w._trace.ops
                    i = 0
                    continue
                # Nonconforming members leave for the interpreter
                # (or a continuation trace); the conforming rows keep
                # replaying.  ``_narrow`` rebuilds ``w.regs`` and
                # narrows stack masks in place, so refresh the loop
                # locals.
                sib = w._take(bad)
                _deopt(sib, state, stats)
                _chain(sib, state, sib.stack[-1][1],
                       lane_take if lane_take.ndim == 1
                       else lane_take[bad],
                       stats)
                spawned.append(sib)
                w._narrow(~bad)
                regs = w.regs
                mask = stack[-1][1]
                if kind == 2:
                    pred = regs[pidx]
                    if pred is None:
                        pred = np.zeros((w.M, WARP), bool)
                    lane_take = ~pred if neg else pred
                    taken = mask & lane_take
                    fall = mask & ~lane_take
            if kind == 2:
                stack.append([reconv, fall, fall_pc, False])
                stack.append([reconv, taken, taken_pc, False])
                mask = taken
            if stall == 1:
                w.global_stalls += 1
            elif stall == 2:
                w.shared_stalls += 1
            i += 1
        elif tag == _OP_POP:
            stack.pop()
            mask = stack[-1][1]
            i += 1
        elif tag == _OP_BAR:
            w.issue_cycles += op[1]
            w.instructions += 1
            w.barriers += 1
            w.outstanding.clear()
            w.at_barrier = True
            w._trace_pos = i + 1
            return "bar"
        elif tag == _OP_EXIT:
            _, stall, state = op
            full = (mask == w.lane_mask).all(axis=1)
            if not full.all():
                if not full.any():
                    return _deopt(w, state, stats)
                sib = w._take(~full)
                _deopt(sib, state, stats)
                spawned.append(sib)
                w._narrow(full)
                mask = stack[-1][1]
            if stall == 1:
                w.global_stalls += 1
            elif stall == 2:
                w.shared_stalls += 1
            w.lane_mask = w.lane_mask & ~mask
            del stack[:]
            w.finished = True
            w._trace = None
            w._trace_pos = 0
            return "fin"
        else:  # _OP_FIN
            del stack[:]
            w.finished = True
            w._trace = None
            w._trace_pos = 0
            return "fin"


# ---------------------------------------------------------------------
# Engine hooks.
# ---------------------------------------------------------------------

def quantum_enter(w, spawned) -> Optional[str]:
    """Trace hook at the top of a gang-warp quantum.

    Returns ``"bar"``/``"fin"`` when a replayed trace consumed the
    quantum, or ``None`` when the interpreter must run it (a recorder
    may have been attached as a side effect).  Fragments split off by
    failed replay guards are appended to *spawned*.
    """
    if w._trace is not None:  # resuming a replay across a barrier
        status = _replay(w, spawned)
        return None if status == "deopt" else status
    if w._rec is not None:  # recording continues across barriers
        return None
    stack = w.stack
    # Canonical entry state: depth-1 covering stack and an empty
    # scoreboard (the compile-time stall simulation starts empty).
    if len(stack) != 1 or not stack[0][3] or w.outstanding:
        return None
    plan = w.batch.plan
    stats = w.batch.trace_stats
    key = (stack[0][2], w.lane_mask[0].tobytes())
    trace = plan.traces.get(key)
    if trace is not None:
        stats["hits"] += 1
        w._trace = trace
        w._trace_pos = 0
        status = _replay(w, spawned)
        return None if status == "deopt" else status
    stats["misses"] += 1
    if key in plan.trace_pending \
            or plan.trace_aborts.get(key, 0) >= _MAX_ABORTS:
        return None
    plan.trace_pending.add(key)
    w._rec = _Recorder(key)
    return None


def abort_recording(w) -> None:
    """Drop the attached recorder; too many aborts poison the key."""
    rec = w._rec
    w._rec = None
    plan = w.batch.plan
    plan.trace_pending.discard(rec.key)
    plan.trace_aborts[rec.key] = plan.trace_aborts.get(rec.key, 0) + 1
    w.batch.trace_stats["aborts"] += 1


def finish_recording(w) -> None:
    """Compile the recorded events and publish the trace."""
    rec = w._rec
    w._rec = None
    plan = w.batch.plan
    plan.trace_pending.discard(rec.key)
    stats = w.batch.trace_stats
    try:
        trace = _compile(rec, plan, w.batch.device)
    except _CompileAbort:
        if _strict():
            raise
        plan.trace_aborts[rec.key] = _MAX_ABORTS
        stats["aborts"] += 1
        return
    except Exception:
        # A codegen defect must never take down a launch the
        # interpreter could run; poison the key and carry on.
        if _strict():
            raise
        plan.trace_aborts[rec.key] = _MAX_ABORTS
        stats["aborts"] += 1
        return
    plan.traces[rec.key] = trace
    stats["records"] += 1

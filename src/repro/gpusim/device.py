"""Device models for the GPU generations the simulator can stand in for.

The parameters come from the dissertation's Tables 2.1/2.2 and NVIDIA's
published specifications.  Instruction issue costs are expressed as
*cycles the SM's issue pipeline is occupied per warp-instruction*; they
encode the architectural contrasts the dissertation calls out in §2.4:

* 32-bit integer multiply is slow on CC 1.3 (16 cycles — multi-
  instruction) while ``__mul24`` is fast (4); on CC 2.0 (Fermi) the
  relationship *inverts* (native 2-cycle 32-bit multiply, emulated
  mul24).
* Shared-memory throughput relative to the register file decreases from
  CC 1.3 to CC 2.0, "putting additional emphasis on effective use of the
  register file in newer GPUs".
* Integer division/modulus are expensive emulated sequences on both —
  which is what strength reduction buys its speedup from.

**Capability model.**  Every generation-conditional behavior the
engines used to re-derive from ``compute_capability`` comparisons lives
here, declaratively, as a :class:`DeviceCaps` on the spec: how global
accesses coalesce (per-half-warp segments vs full-warp cache lines, and
how many DRAM bytes one transaction charges), how shared-memory bank
conflicts group, and which multiply flavor is native.  Engines consult
``device.caps`` / ``device.coalesce_line_bytes()`` instead of branching
on the CC tuple — this module is the *only* place allowed to compare
compute capabilities (``tests/test_device.py`` grep-guards the rest of
the tree), which is what makes a new generation (the Kepler-class K20
below) expressible without touching any hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class DeviceCaps:
    """Generation-conditional behavior, declared once per device.

    Attributes:
        full_warp_coalescing: the memory controller services one
            coalesced request per *full warp* over aligned cache lines
            (CC 2.x+); False means the CC 1.2/1.3 rule — one request
            per *half-warp* over aligned segments.
        coalesce_line_bytes: DRAM bytes charged per coalesced
            transaction (the cache-line/segment size the timing model
            bills: 64 B on CC 1.x, 128 B on CC 2.x+).
        narrow_segment_bytes: itemsize -> segment size for the
            half-warp rule's narrow accesses (CC 1.x shrinks segments
            to 32 B/64 B for 1-/2-byte accesses); unused by full-warp
            devices.
        smem_half_warp: shared-memory bank conflicts resolve per
            half-warp (CC 1.x, 16 banks) instead of per full warp.
        native_mul24: ``__mul24`` is the fast multiply (CC 1.x); on
            CC 2.x+ the native 32-bit multiply wins (the inversion the
            paper's specialization tables turn on).
    """

    full_warp_coalescing: bool
    coalesce_line_bytes: int
    smem_half_warp: bool
    native_mul24: bool
    narrow_segment_bytes: Dict[int, int] = field(default_factory=dict)

    def segment_bytes(self, itemsize: int) -> int:
        """Aligned-segment size used to coalesce one access."""
        if self.full_warp_coalescing:
            return self.coalesce_line_bytes
        return self.narrow_segment_bytes.get(itemsize, 128)

    def groups(self, warp_size: int, half_warp: bool
               ) -> Tuple[Tuple[int, int], ...]:
        """Lane spans one coalescing/conflict group covers."""
        if half_warp:
            half = warp_size // 2
            return ((0, half), (half, warp_size))
        return ((0, warp_size),)


#: CC 1.2/1.3 (Tesla): half-warp segment coalescing with narrow
#: segments, 64-byte transaction billing, half-warp bank conflicts.
CAPS_TESLA = DeviceCaps(
    full_warp_coalescing=False,
    coalesce_line_bytes=64,
    smem_half_warp=True,
    native_mul24=True,
    narrow_segment_bytes={1: 32, 2: 64},
)

#: CC 2.x (Fermi): full-warp coalescing over 128-byte L1 lines,
#: full-warp bank conflicts, native 32-bit multiply.
CAPS_FERMI = DeviceCaps(
    full_warp_coalescing=True,
    coalesce_line_bytes=128,
    smem_half_warp=False,
    native_mul24=False,
)

#: CC 3.x (Kepler): global loads default through L2 but still coalesce
#: as full-warp 128-byte line requests (L1-or-L2); declared separately
#: from Fermi so the generations stay independently tunable.
CAPS_KEPLER = DeviceCaps(
    full_warp_coalescing=True,
    coalesce_line_bytes=128,
    smem_half_warp=False,
    native_mul24=False,
)


def default_caps(compute_capability: Tuple[int, int]) -> DeviceCaps:
    """The capability set a compute capability implies.

    The single sanctioned place to branch on the CC tuple; everywhere
    else reads the declarative result off ``device.caps``.
    """
    major = compute_capability[0]
    if major >= 3:
        return CAPS_KEPLER
    if major >= 2:
        return CAPS_FERMI
    return CAPS_TESLA


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a simulated CUDA device.

    Attributes:
        issue_cost: cycles per warp-instruction by cost class (see
            :func:`cost_class`).
        mem_latency: global-memory round-trip latency in cycles.
        bytes_per_cycle_per_sm: global-memory bandwidth share of one SM,
            in bytes per core clock.
        reg_alloc_unit: register-file allocation granularity
            (per-block on CC 1.x, per-warp on CC 2.x — the calculator
            handles both through :attr:`reg_alloc_per_warp`).
        caps: the generation-conditional behavior set (defaults from
            :func:`default_caps` for the spec's compute capability).
    """

    name: str
    compute_capability: Tuple[int, int]
    sm_count: int
    clock_ghz: float
    mem_bandwidth_gbs: float
    regs_per_sm: int
    smem_per_sm: int
    max_threads_per_block: int
    max_warps_per_sm: int
    max_blocks_per_sm: int
    shared_banks: int
    reg_alloc_unit: int
    reg_alloc_per_warp: bool
    smem_alloc_unit: int
    max_regs_per_thread: int
    const_bytes: int = 65536
    warp_size: int = 32
    mem_latency: int = 450
    issue_cost: Dict[str, float] = field(default_factory=dict)
    #: Cycles one global-memory transaction occupies the SM's LSU path.
    mem_issue_cost: float = 4.0
    #: Kernel launch overhead, microseconds.
    launch_overhead_us: float = 7.0
    caps: DeviceCaps = None

    def __post_init__(self):
        if self.caps is None:
            object.__setattr__(
                self, "caps", default_caps(self.compute_capability))

    @property
    def bytes_per_cycle_per_sm(self) -> float:
        return self.mem_bandwidth_gbs * 1e9 / (self.sm_count
                                               * self.clock_ghz * 1e9)

    @property
    def arch(self) -> str:
        major, minor = self.compute_capability
        return f"sm_{major}{minor}"

    # -- capability-model accessors (the engines' vocabulary) ----------

    def coalesce_line_bytes(self) -> int:
        """DRAM bytes one coalesced transaction charges."""
        return self.caps.coalesce_line_bytes

    def coalesce_segment_bytes(self, itemsize: int) -> int:
        """Aligned-segment size for coalescing an *itemsize* access."""
        return self.caps.segment_bytes(itemsize)

    def coalesce_groups(self) -> Tuple[Tuple[int, int], ...]:
        """Lane spans the coalescer services independently.

        ``((0, 32),)`` for full-warp devices; ``((0, 16), (16, 32))``
        under the CC 1.x half-warp rule.
        """
        return self.caps.groups(self.warp_size,
                                not self.caps.full_warp_coalescing)

    def shared_groups(self) -> Tuple[Tuple[int, int], ...]:
        """Lane spans shared-memory conflict resolution covers."""
        return self.caps.groups(self.warp_size,
                                self.caps.smem_half_warp)


#: Issue-cost classes (cycles per warp-instruction).
_COSTS_CC13 = {
    "alu": 4.0,        # fp32/int add, sub, logic, shift, mov, cvt, setp
    "fmul": 4.0,       # fp32 mul / mad / fma
    "imul": 16.0,      # 32-bit integer multiply: emulated, slow
    "mul24": 4.0,      # 24-bit multiply: native, fast
    "idiv": 140.0,     # integer divide/modulus: long emulated sequence
    "fdiv": 36.0,      # fp32 divide
    "fdiv_approx": 20.0,   # __fdividef
    "sfu": 16.0,       # sqrt, rsqrt, sin, cos, exp2, lg2
    "f64": 32.0,       # double precision at 1/8 rate
    "shared": 4.0,     # shared-memory access (per conflict-free access)
    "bar": 8.0,
    "atom": 64.0,
}

# Fermi SMs have 32 cores and dual warp schedulers: one warp-instruction
# per cycle for the common case, so costs are in units of 1.
_COSTS_CC20 = {
    "alu": 1.0,
    "fmul": 1.0,
    "imul": 2.0,       # native 32-bit multiply on Fermi
    "mul24": 4.0,      # emulated on Fermi — the inversion the paper notes
    "idiv": 60.0,
    "fdiv": 12.0,
    "fdiv_approx": 6.0,
    "sfu": 4.0,
    "f64": 2.0,        # 1/2 rate on Tesla-class Fermi
    "shared": 2.0,     # relatively slower vs registers than on CC 1.3
    "bar": 4.0,
    "atom": 20.0,
}

# Kepler SMX: 192 cores, four schedulers with dual issue — more ALU
# throughput per warp-slot, much faster global atomics (the K20's
# headline micro-arch change), shared memory again relatively slower
# versus the (doubled) register file.
_COSTS_CC35 = {
    "alu": 1.0,
    "fmul": 1.0,
    "imul": 2.0,
    "mul24": 4.0,      # still emulated post-Fermi
    "idiv": 40.0,
    "fdiv": 10.0,
    "fdiv_approx": 5.0,
    "sfu": 2.0,        # 32 SFUs per SMX
    "f64": 3.0,        # 1/3 rate on GK110 Tesla parts
    "shared": 2.0,
    "bar": 4.0,
    "atom": 8.0,       # Kepler's rewritten global atomics
}


TESLA_C1060 = DeviceSpec(
    name="Tesla C1060",
    compute_capability=(1, 3),
    sm_count=30,
    clock_ghz=1.296,
    mem_bandwidth_gbs=102.0,
    regs_per_sm=16384,
    smem_per_sm=16384,
    max_threads_per_block=512,
    max_warps_per_sm=32,
    max_blocks_per_sm=8,
    shared_banks=16,
    reg_alloc_unit=512,
    reg_alloc_per_warp=False,
    smem_alloc_unit=512,
    max_regs_per_thread=124,
    mem_latency=500,
    issue_cost=_COSTS_CC13,
    mem_issue_cost=4.0,
)

TESLA_C2070 = DeviceSpec(
    name="Tesla C2070",
    compute_capability=(2, 0),
    sm_count=14,
    clock_ghz=1.15,
    mem_bandwidth_gbs=144.0,
    regs_per_sm=32768,
    smem_per_sm=49152,
    max_threads_per_block=1024,
    max_warps_per_sm=48,
    max_blocks_per_sm=8,
    shared_banks=32,
    reg_alloc_unit=64,
    reg_alloc_per_warp=True,
    smem_alloc_unit=128,
    max_regs_per_thread=63,
    mem_latency=400,
    issue_cost=_COSTS_CC20,
    mem_issue_cost=1.0,
)

#: Kepler-class CC 3.5 (GK110): wider SMs (fewer of them), a doubled
#: register file with 255 regs/thread, 64 warps / 16 blocks per SM, and
#: full-warp 128-byte coalescing — everything generation-conditional is
#: expressed through :data:`CAPS_KEPLER`, never re-derived in engines.
TESLA_K20 = DeviceSpec(
    name="Tesla K20",
    compute_capability=(3, 5),
    sm_count=13,
    clock_ghz=0.706,
    mem_bandwidth_gbs=208.0,
    regs_per_sm=65536,
    smem_per_sm=49152,
    max_threads_per_block=1024,
    max_warps_per_sm=64,
    max_blocks_per_sm=16,
    shared_banks=32,
    reg_alloc_unit=256,
    reg_alloc_per_warp=True,
    smem_alloc_unit=256,
    max_regs_per_thread=255,
    mem_latency=350,
    issue_cost=_COSTS_CC35,
    mem_issue_cost=1.0,
    caps=CAPS_KEPLER,
)

DEVICES = {"c1060": TESLA_C1060, "c2070": TESLA_C2070,
           "k20": TESLA_K20}


def cost_class(op: str, dtype, cmp: str = "") -> str:
    """Map an IR instruction to its issue-cost class."""
    is_f64 = getattr(dtype, "kind", "") == "float" and dtype.bits == 64
    if is_f64 and op in ("add", "sub", "mul", "mad", "fma", "div", "neg",
                         "min", "max", "abs", "sqrt"):
        return "f64"
    if op in ("mul", "mad", "fma", "mulhi"):
        if getattr(dtype, "kind", "") == "float":
            return "fmul"
        return "imul"
    if op == "mul24":
        return "mul24"
    if op in ("div", "rem"):
        if getattr(dtype, "kind", "") == "float":
            return "fdiv_approx" if cmp == "approx" else "fdiv"
        return "idiv"
    if op in ("sqrt", "rsqrt", "rcp", "sin", "cos", "exp2", "lg2"):
        return "sfu"
    if op == "bar":
        return "bar"
    if op == "atom":
        return "atom"
    return "alu"

"""Device models for the two GPU generations the dissertation evaluates.

The parameters come from the dissertation's Tables 2.1/2.2 and NVIDIA's
published specifications.  Instruction issue costs are expressed as
*cycles the SM's issue pipeline is occupied per warp-instruction*; they
encode the architectural contrasts the dissertation calls out in §2.4:

* 32-bit integer multiply is slow on CC 1.3 (16 cycles — multi-
  instruction) while ``__mul24`` is fast (4); on CC 2.0 (Fermi) the
  relationship *inverts* (native 2-cycle 32-bit multiply, emulated
  mul24).
* Shared-memory throughput relative to the register file decreases from
  CC 1.3 to CC 2.0, "putting additional emphasis on effective use of the
  register file in newer GPUs".
* Integer division/modulus are expensive emulated sequences on both —
  which is what strength reduction buys its speedup from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a simulated CUDA device.

    Attributes:
        issue_cost: cycles per warp-instruction by cost class (see
            :func:`cost_class`).
        mem_latency: global-memory round-trip latency in cycles.
        bytes_per_cycle_per_sm: global-memory bandwidth share of one SM,
            in bytes per core clock.
        reg_alloc_unit: register-file allocation granularity
            (per-block on CC 1.x, per-warp on CC 2.x — the calculator
            handles both through :attr:`reg_alloc_per_warp`).
    """

    name: str
    compute_capability: Tuple[int, int]
    sm_count: int
    clock_ghz: float
    mem_bandwidth_gbs: float
    regs_per_sm: int
    smem_per_sm: int
    max_threads_per_block: int
    max_warps_per_sm: int
    max_blocks_per_sm: int
    shared_banks: int
    reg_alloc_unit: int
    reg_alloc_per_warp: bool
    smem_alloc_unit: int
    max_regs_per_thread: int
    const_bytes: int = 65536
    warp_size: int = 32
    mem_latency: int = 450
    issue_cost: Dict[str, float] = field(default_factory=dict)
    #: Cycles one global-memory transaction occupies the SM's LSU path.
    mem_issue_cost: float = 4.0
    #: Kernel launch overhead, microseconds.
    launch_overhead_us: float = 7.0

    @property
    def bytes_per_cycle_per_sm(self) -> float:
        return self.mem_bandwidth_gbs * 1e9 / (self.sm_count
                                               * self.clock_ghz * 1e9)

    @property
    def arch(self) -> str:
        major, minor = self.compute_capability
        return f"sm_{major}{minor}"


#: Issue-cost classes (cycles per warp-instruction).
_COSTS_CC13 = {
    "alu": 4.0,        # fp32/int add, sub, logic, shift, mov, cvt, setp
    "fmul": 4.0,       # fp32 mul / mad / fma
    "imul": 16.0,      # 32-bit integer multiply: emulated, slow
    "mul24": 4.0,      # 24-bit multiply: native, fast
    "idiv": 140.0,     # integer divide/modulus: long emulated sequence
    "fdiv": 36.0,      # fp32 divide
    "fdiv_approx": 20.0,   # __fdividef
    "sfu": 16.0,       # sqrt, rsqrt, sin, cos, exp2, lg2
    "f64": 32.0,       # double precision at 1/8 rate
    "shared": 4.0,     # shared-memory access (per conflict-free access)
    "bar": 8.0,
    "atom": 64.0,
}

# Fermi SMs have 32 cores and dual warp schedulers: one warp-instruction
# per cycle for the common case, so costs are in units of 1.
_COSTS_CC20 = {
    "alu": 1.0,
    "fmul": 1.0,
    "imul": 2.0,       # native 32-bit multiply on Fermi
    "mul24": 4.0,      # emulated on Fermi — the inversion the paper notes
    "idiv": 60.0,
    "fdiv": 12.0,
    "fdiv_approx": 6.0,
    "sfu": 4.0,
    "f64": 2.0,        # 1/2 rate on Tesla-class Fermi
    "shared": 2.0,     # relatively slower vs registers than on CC 1.3
    "bar": 4.0,
    "atom": 20.0,
}


TESLA_C1060 = DeviceSpec(
    name="Tesla C1060",
    compute_capability=(1, 3),
    sm_count=30,
    clock_ghz=1.296,
    mem_bandwidth_gbs=102.0,
    regs_per_sm=16384,
    smem_per_sm=16384,
    max_threads_per_block=512,
    max_warps_per_sm=32,
    max_blocks_per_sm=8,
    shared_banks=16,
    reg_alloc_unit=512,
    reg_alloc_per_warp=False,
    smem_alloc_unit=512,
    max_regs_per_thread=124,
    mem_latency=500,
    issue_cost=_COSTS_CC13,
    mem_issue_cost=4.0,
)

TESLA_C2070 = DeviceSpec(
    name="Tesla C2070",
    compute_capability=(2, 0),
    sm_count=14,
    clock_ghz=1.15,
    mem_bandwidth_gbs=144.0,
    regs_per_sm=32768,
    smem_per_sm=49152,
    max_threads_per_block=1024,
    max_warps_per_sm=48,
    max_blocks_per_sm=8,
    shared_banks=32,
    reg_alloc_unit=64,
    reg_alloc_per_warp=True,
    smem_alloc_unit=128,
    max_regs_per_thread=63,
    mem_latency=400,
    issue_cost=_COSTS_CC20,
    mem_issue_cost=1.0,
)

DEVICES = {"c1060": TESLA_C1060, "c2070": TESLA_C2070}


def cost_class(op: str, dtype, cmp: str = "") -> str:
    """Map an IR instruction to its issue-cost class."""
    is_f64 = getattr(dtype, "kind", "") == "float" and dtype.bits == 64
    if is_f64 and op in ("add", "sub", "mul", "mad", "fma", "div", "neg",
                         "min", "max", "abs", "sqrt"):
        return "f64"
    if op in ("mul", "mad", "fma", "mulhi"):
        if getattr(dtype, "kind", "") == "float":
            return "fmul"
        return "imul"
    if op == "mul24":
        return "mul24"
    if op in ("div", "rem"):
        if getattr(dtype, "kind", "") == "float":
            return "fdiv_approx" if cmp == "approx" else "fdiv"
        return "idiv"
    if op in ("sqrt", "rsqrt", "rcp", "sin", "cos", "exp2", "lg2"):
        return "sfu"
    if op == "bar":
        return "bar"
    if op == "atom":
        return "atom"
    return "alu"

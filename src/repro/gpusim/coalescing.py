"""Memory-transaction models: global coalescing and shared banks.

These per-compute-capability rules are the reason kernel configuration
matters so much on real hardware, and they drive the simulator's timing:

* **CC 1.2/1.3** coalesce per *half-warp*: the hardware issues one
  transaction per distinct aligned 128-byte segment touched (64 B for
  2-byte, 32 B for 1-byte accesses).
* **CC 2.x+** issues one transaction per distinct 128-byte cache line
  touched by the full warp.
* **Shared memory** has 16 banks serviced per half-warp on CC 1.x and
  32 banks per warp on CC 2.x+; the access replays once per additional
  distinct word mapped to the same bank (same-word access broadcasts).

Which rule applies is *not* decided here: every generation-conditional
(full-warp vs half-warp grouping, segment sizes, transaction billing)
is read off the device's declarative capability model
(:class:`~repro.gpusim.device.DeviceCaps`), so a new device generation
changes this module's behavior without changing its code.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.device import DeviceSpec


def global_transactions(addrs: np.ndarray, mask: np.ndarray,
                        itemsize: int, device: DeviceSpec) -> int:
    """Number of DRAM transactions for one warp-wide access.

    Args:
        addrs: per-lane byte addresses (device addresses).
        mask: active lanes.
        itemsize: access size in bytes.
        device: target device (selects the CC rule set).
    """
    if not mask.any():
        return 0
    segment = device.coalesce_segment_bytes(itemsize)
    if device.caps.full_warp_coalescing:
        active = addrs[mask].astype(np.int64)
        lines = active // segment
        if itemsize > 1:
            lines = np.concatenate([lines,
                                    (active + itemsize - 1) // segment])
        return int(np.unique(lines).size)
    # Half-warp rule (CC 1.x): independent segments per lane group.
    lanes = np.nonzero(mask)[0]
    total = 0
    for lo, hi in device.coalesce_groups():
        half = lanes[(lanes >= lo) & (lanes < hi)]
        if half.size == 0:
            continue
        a = addrs[half].astype(np.int64)
        segs = a // segment
        if itemsize > 1:
            segs = np.concatenate([segs, (a + itemsize - 1) // segment])
        total += int(np.unique(segs).size)
    return total


_SENTINEL = np.iinfo(np.int64).max


def _row_distinct(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Distinct masked values per row of a 2D array (sort + compare)."""
    v = np.where(mask, values, _SENTINEL)
    v.sort(axis=1)
    uniq = np.ones(v.shape, bool)
    uniq[:, 1:] = v[:, 1:] != v[:, :-1]
    uniq &= v != _SENTINEL
    return uniq.sum(axis=1).astype(np.int64)


def global_transactions_batch(addrs: np.ndarray, mask: np.ndarray,
                              itemsize: int,
                              device: DeviceSpec) -> np.ndarray:
    """Per-member DRAM transactions for a gang of warp accesses.

    The batched-engine form of :func:`global_transactions`: *addrs*
    and *mask* are ``(M, 32)`` arrays (one row per gang member), and
    the result is the ``(M,)`` vector of transaction counts the scalar
    oracle would return row by row.  Both compute-capability rules are
    evaluated with row-wise sorts — no Python loop over members.
    """
    a = addrs.astype(np.int64)
    segment = device.coalesce_segment_bytes(itemsize)
    if device.caps.full_warp_coalescing:
        # CC 2.x+: distinct cache lines per full warp.
        lines = a // segment
        if itemsize > 1:
            lines = np.concatenate(
                [lines, (a + itemsize - 1) // segment], axis=1)
            mask = np.concatenate([mask, mask], axis=1)
        return _row_distinct(lines, mask)
    # CC 1.x: per half-warp, one transaction per distinct aligned
    # segment (32 B for 1-byte, 64 B for 2-byte, 128 B otherwise).
    total = np.zeros(len(a), np.int64)
    for lo, hi in device.coalesce_groups():
        half = slice(lo, hi)
        segs = a[:, half] // segment
        m = mask[:, half]
        if itemsize > 1:
            segs = np.concatenate(
                [segs, (a[:, half] + itemsize - 1) // segment], axis=1)
            m = np.concatenate([m, m], axis=1)
        total += _row_distinct(segs, m)
    return total


def launch_transactions(stats) -> "tuple[int, int]":
    """Total (DRAM transactions, DRAM bytes) over a launch's blocks.

    Sums the coalescing model's per-warp counters across a sequence of
    :class:`~repro.gpusim.executor.BlockStats` — the aggregate a
    :class:`~repro.obs.profile.LaunchProfile` reports as the launch's
    coalesced-traffic totals.
    """
    transactions = 0
    nbytes = 0
    for block in stats:
        transactions += block.mem_transactions
        nbytes += block.mem_bytes
    return transactions, nbytes


def shared_conflict_factor(addrs: np.ndarray, mask: np.ndarray,
                           itemsize: int, device: DeviceSpec) -> int:
    """Replay factor for one warp-wide shared-memory access (≥ 1).

    The factor is the maximum, over banks, of the number of *distinct*
    32-bit words that the active lanes address within that bank; lanes
    reading the same word broadcast.  CC 1.x services half-warps
    against 16 banks; CC 2.x full warps against 32 banks.
    """
    if not mask.any():
        return 1
    banks = device.shared_banks
    worst = 1
    spans = device.shared_groups()
    if len(spans) == 1:
        groups = (addrs[mask],)
    else:
        lanes = np.nonzero(mask)[0]
        groups = tuple(addrs[lanes[(lanes >= lo) & (lanes < hi)]]
                       for lo, hi in spans)
    for group in groups:
        if group.size == 0:
            continue
        words = np.unique(group.astype(np.int64) // 4)
        counts = np.bincount(words % banks, minlength=1)
        worst = max(worst, int(counts.max()))
    return worst

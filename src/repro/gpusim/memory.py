"""Simulated device memories.

Global memory is one flat byte buffer with a bump allocator; addresses
handed to kernels are plain integers, so specialized kernels can bake
pointer values in as immediates exactly as the dissertation does
(``PTR_IN``/``PTR_OUT`` in Listing 4.2).  Shared, constant, and local
memories are separate small buffers with the same typed-view access
discipline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class MemoryError_(Exception):
    """Out-of-bounds, misaligned, or exhausted-memory access."""


class _Epoch:
    """Copy-on-write dirty-tracking state for one resilient launch."""

    __slots__ = ("intervals", "starts", "ends", "saved", "wild",
                 "cursor", "allocations")

    def __init__(self, intervals, cursor, allocations):
        self.intervals = intervals  # sorted (start, end, addr)
        self.starts = np.array([iv[0] for iv in intervals], np.int64)
        self.ends = np.array([iv[1] for iv in intervals], np.int64)
        #: Allocation pre-images, saved lazily at first touch.
        self.saved: Dict[int, np.ndarray] = {}
        #: Pre-images of touched bytes outside any allocation.
        self.wild: List[Tuple[int, np.ndarray]] = []
        self.cursor = cursor
        self.allocations = allocations


class GlobalMemory:
    """The device's DRAM.

    Addresses start at a non-zero base so that a stray zero pointer
    faults instead of silently reading allocation zero.
    """

    _BASE = 0x0200000000  # mirrors the 0x2xxxxxxxx pointers of Appendix D

    def __init__(self, size: int = 256 * 1024 * 1024):
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self._cursor = 0
        self._views: Dict[str, np.ndarray] = {}
        self.allocations: Dict[int, int] = {}
        #: Armed by :meth:`begin_epoch`; the engines consult this
        #: before every global store/atomic, so ``None`` keeps the
        #: common (non-resilient) path to one attribute test.
        self._epoch: Optional[_Epoch] = None

    def alloc(self, nbytes: int, align: int = 256) -> int:
        """cudaMalloc: returns a device address."""
        if nbytes <= 0:
            raise MemoryError_(f"bad allocation size {nbytes}")
        start = (self._cursor + align - 1) // align * align
        if start + nbytes > self.size:
            raise MemoryError_(
                f"device out of memory: wanted {nbytes} bytes, "
                f"{self.size - self._cursor} free")
        self._cursor = start + nbytes
        addr = self._BASE + start
        self.allocations[addr] = nbytes
        return addr

    def free(self, addr: int) -> None:
        """cudaFree.  The bump allocator does not reuse space."""
        self.allocations.pop(addr, None)

    @property
    def allocated_bytes(self) -> int:
        """Bytes under the bump cursor (the live device footprint)."""
        return self._cursor

    def snapshot(self):
        """Copy-out of every allocated byte plus allocator state.

        The resilience layer snapshots before a risky launch so a
        watchdog kill or detected ECC error mid-execution can be rolled
        back and the launch retried from a bit-identical starting
        state.
        """
        return (self.data[:self._cursor].copy(), self._cursor,
                dict(self.allocations))

    def restore(self, snap) -> None:
        """Roll back to a :meth:`snapshot` (never reallocates views)."""
        data, cursor, allocations = snap
        # Writes made past the snapshot's cursor (by allocations that
        # postdate it) are wiped along with the rollback.
        self.data[cursor:self._cursor] = 0
        self.data[:cursor] = data
        self._cursor = cursor
        self.allocations = dict(allocations)

    def reset(self) -> None:
        """Release everything (between benchmark problems)."""
        self._cursor = 0
        self.allocations.clear()
        self.data[:] = 0
        self._epoch = None

    # -- per-allocation dirty tracking -----------------------------

    def begin_epoch(self) -> None:
        """Arm copy-on-write dirty tracking for a resilient launch.

        While armed, the engines note every global store/atomic (and
        the fault injector notes ECC bit flips) *before* mutating
        DRAM; the first touch of each allocation saves that
        allocation's pre-image, and touches outside any allocation
        save just the touched byte range.  :meth:`rollback_epoch`
        then restores only what the kernel actually wrote, so launch
        retries stop paying a whole-heap :meth:`snapshot` copy.
        """
        intervals = sorted(
            (addr - self._BASE, addr - self._BASE + nbytes, addr)
            for addr, nbytes in self.allocations.items())
        self._epoch = _Epoch(intervals, self._cursor,
                             dict(self.allocations))

    def note_range(self, lo: int, hi: int) -> None:
        """Record that raw byte offsets ``[lo, hi)`` will change."""
        epoch = self._epoch
        if epoch is None or hi <= lo:
            return
        intervals = epoch.intervals
        idx = max(np.searchsorted(epoch.starts, lo, side="right") - 1,
                  0)
        pos = lo
        while pos < hi:
            if idx < len(intervals):
                start, end, addr = intervals[idx]
                if pos >= end:
                    idx += 1
                    continue
                if pos >= start:
                    if addr not in epoch.saved:
                        epoch.saved[addr] = self.data[start:end].copy()
                    pos = end
                    idx += 1
                    continue
                gap_hi = min(hi, start)
            else:
                gap_hi = hi
            epoch.wild.append((pos, self.data[pos:gap_hi].copy()))
            pos = gap_hi

    def note_lanes(self, addrs: np.ndarray, mask: np.ndarray,
                   itemsize: int) -> None:
        """Note a lane scatter (device-address array) before it lands.

        Exact per-allocation resolution: only allocations an active
        lane actually targets are saved, so a scatter touching two
        buffers does not drag everything between them into the epoch.
        """
        epoch = self._epoch
        if epoch is None:
            return
        offs = addrs[mask].astype(np.int64) - self._BASE
        if not offs.size:
            return
        if not epoch.starts.size:
            for off in np.unique(offs):
                self.note_range(int(off), int(off) + itemsize)
            return
        pos = np.searchsorted(epoch.starts, offs, side="right") - 1
        safe = np.maximum(pos, 0)
        inside = (pos >= 0) & (offs < epoch.ends[safe])
        for k in np.unique(safe[inside]):
            start, end, addr = epoch.intervals[k]
            if addr not in epoch.saved:
                epoch.saved[addr] = self.data[start:end].copy()
        # Lanes outside every allocation, or items straddling an
        # allocation's tail, fall back to exact byte ranges.
        loose = ~inside
        loose |= inside & (offs + itemsize > epoch.ends[safe])
        if loose.any():
            for off in np.unique(offs[loose]):
                self.note_range(int(off), int(off) + itemsize)

    def rollback_epoch(self) -> None:
        """Undo every noted write; the epoch stays armed for a retry."""
        epoch = self._epoch
        if epoch is None:
            raise MemoryError_("rollback_epoch without begin_epoch")
        for addr, pre in epoch.saved.items():
            off = addr - self._BASE
            self.data[off:off + pre.size] = pre
        # Wild ranges may overlap; reverse order lands the oldest
        # (pre-epoch) bytes last.
        for lo, pre in reversed(epoch.wild):
            self.data[lo:lo + pre.size] = pre
        # Allocations made since the epoch began roll back with it.
        self.data[epoch.cursor:self._cursor] = 0
        self._cursor = epoch.cursor
        self.allocations = dict(epoch.allocations)
        epoch.saved.clear()
        del epoch.wild[:]

    def end_epoch(self) -> Dict[str, int]:
        """Disarm dirty tracking; returns what the epoch dirtied."""
        epoch = self._epoch
        self._epoch = None
        if epoch is None:
            return {"allocs": 0, "wild": 0}
        return {"allocs": len(epoch.saved), "wild": len(epoch.wild)}

    def _offset(self, addr: int, nbytes: int) -> int:
        offset = addr - self._BASE
        if offset < 0 or offset + nbytes > self.size:
            raise MemoryError_(
                f"global access out of bounds: addr=0x{addr:x} "
                f"({nbytes} bytes)")
        return offset

    def write(self, addr: int, array: np.ndarray) -> None:
        """cudaMemcpy host→device."""
        raw = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
        offset = self._offset(addr, raw.size)
        self.data[offset : offset + raw.size] = raw

    def read(self, addr: int, dtype, count: int) -> np.ndarray:
        """cudaMemcpy device→host."""
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        offset = self._offset(addr, nbytes)
        return self.data[offset : offset + nbytes].view(dtype).copy()

    def view(self, dtype) -> np.ndarray:
        """A typed full-buffer view for gather/scatter lane access."""
        key = np.dtype(dtype).str
        if key not in self._views:
            self._views[key] = self.data.view(dtype)
        return self._views[key]

    def element_index(self, addrs: np.ndarray, itemsize: int,
                      mask: np.ndarray) -> np.ndarray:
        """Convert lane byte addresses to element indices, validated."""
        offsets = addrs.astype(np.int64) - self._BASE
        active = offsets[mask]
        if active.size:
            if (active < 0).any() or \
                    (active + itemsize > self.size).any():
                bad = int(addrs[mask][((active < 0)
                                       | (active + itemsize
                                          > self.size)).argmax()])
                raise MemoryError_(
                    f"global access out of bounds: addr=0x{bad:x}")
            if (active % itemsize).any():
                raise MemoryError_(
                    "misaligned global access "
                    f"(itemsize {itemsize})")
        safe = np.where(mask, offsets, 0)
        return safe // itemsize


class FlatMemory:
    """Shared / constant / local memory: a small flat byte buffer."""

    def __init__(self, size: int, label: str):
        self.size = size
        self.label = label
        self.data = np.zeros(size, dtype=np.uint8)
        self._views: Dict[str, np.ndarray] = {}

    def view(self, dtype) -> np.ndarray:
        key = np.dtype(dtype).str
        if key not in self._views:
            self._views[key] = self.data.view(dtype)
        return self._views[key]

    def write(self, offset: int, array: np.ndarray) -> None:
        raw = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
        if offset < 0 or offset + raw.size > self.size:
            raise MemoryError_(
                f"{self.label} write out of bounds at {offset}")
        self.data[offset : offset + raw.size] = raw

    def read(self, offset: int, dtype, count: int) -> np.ndarray:
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        if offset < 0 or offset + nbytes > self.size:
            raise MemoryError_(
                f"{self.label} read out of bounds at {offset}")
        return self.data[offset : offset + nbytes].view(dtype).copy()

    def element_index(self, addrs: np.ndarray, itemsize: int,
                      mask: np.ndarray) -> np.ndarray:
        offsets = addrs.astype(np.int64)
        active = offsets[mask]
        if active.size:
            if (active < 0).any() or \
                    (active + itemsize > self.size).any():
                raise MemoryError_(
                    f"{self.label} access out of bounds "
                    f"(size {self.size})")
            if (active % itemsize).any():
                raise MemoryError_(
                    f"misaligned {self.label} access")
        safe = np.where(mask, offsets, 0)
        return safe // itemsize

"""Simulated device memories.

Global memory is one flat byte buffer with a bump allocator; addresses
handed to kernels are plain integers, so specialized kernels can bake
pointer values in as immediates exactly as the dissertation does
(``PTR_IN``/``PTR_OUT`` in Listing 4.2).  Shared, constant, and local
memories are separate small buffers with the same typed-view access
discipline.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class MemoryError_(Exception):
    """Out-of-bounds, misaligned, or exhausted-memory access."""


class GlobalMemory:
    """The device's DRAM.

    Addresses start at a non-zero base so that a stray zero pointer
    faults instead of silently reading allocation zero.
    """

    _BASE = 0x0200000000  # mirrors the 0x2xxxxxxxx pointers of Appendix D

    def __init__(self, size: int = 256 * 1024 * 1024):
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self._cursor = 0
        self._views: Dict[str, np.ndarray] = {}
        self.allocations: Dict[int, int] = {}

    def alloc(self, nbytes: int, align: int = 256) -> int:
        """cudaMalloc: returns a device address."""
        if nbytes <= 0:
            raise MemoryError_(f"bad allocation size {nbytes}")
        start = (self._cursor + align - 1) // align * align
        if start + nbytes > self.size:
            raise MemoryError_(
                f"device out of memory: wanted {nbytes} bytes, "
                f"{self.size - self._cursor} free")
        self._cursor = start + nbytes
        addr = self._BASE + start
        self.allocations[addr] = nbytes
        return addr

    def free(self, addr: int) -> None:
        """cudaFree.  The bump allocator does not reuse space."""
        self.allocations.pop(addr, None)

    @property
    def allocated_bytes(self) -> int:
        """Bytes under the bump cursor (the live device footprint)."""
        return self._cursor

    def snapshot(self):
        """Copy-out of every allocated byte plus allocator state.

        The resilience layer snapshots before a risky launch so a
        watchdog kill or detected ECC error mid-execution can be rolled
        back and the launch retried from a bit-identical starting
        state.
        """
        return (self.data[:self._cursor].copy(), self._cursor,
                dict(self.allocations))

    def restore(self, snap) -> None:
        """Roll back to a :meth:`snapshot` (never reallocates views)."""
        data, cursor, allocations = snap
        # Writes made past the snapshot's cursor (by allocations that
        # postdate it) are wiped along with the rollback.
        self.data[cursor:self._cursor] = 0
        self.data[:cursor] = data
        self._cursor = cursor
        self.allocations = dict(allocations)

    def reset(self) -> None:
        """Release everything (between benchmark problems)."""
        self._cursor = 0
        self.allocations.clear()
        self.data[:] = 0

    def _offset(self, addr: int, nbytes: int) -> int:
        offset = addr - self._BASE
        if offset < 0 or offset + nbytes > self.size:
            raise MemoryError_(
                f"global access out of bounds: addr=0x{addr:x} "
                f"({nbytes} bytes)")
        return offset

    def write(self, addr: int, array: np.ndarray) -> None:
        """cudaMemcpy host→device."""
        raw = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
        offset = self._offset(addr, raw.size)
        self.data[offset : offset + raw.size] = raw

    def read(self, addr: int, dtype, count: int) -> np.ndarray:
        """cudaMemcpy device→host."""
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        offset = self._offset(addr, nbytes)
        return self.data[offset : offset + nbytes].view(dtype).copy()

    def view(self, dtype) -> np.ndarray:
        """A typed full-buffer view for gather/scatter lane access."""
        key = np.dtype(dtype).str
        if key not in self._views:
            self._views[key] = self.data.view(dtype)
        return self._views[key]

    def element_index(self, addrs: np.ndarray, itemsize: int,
                      mask: np.ndarray) -> np.ndarray:
        """Convert lane byte addresses to element indices, validated."""
        offsets = addrs.astype(np.int64) - self._BASE
        active = offsets[mask]
        if active.size:
            if (active < 0).any() or \
                    (active + itemsize > self.size).any():
                bad = int(addrs[mask][((active < 0)
                                       | (active + itemsize
                                          > self.size)).argmax()])
                raise MemoryError_(
                    f"global access out of bounds: addr=0x{bad:x}")
            if (active % itemsize).any():
                raise MemoryError_(
                    "misaligned global access "
                    f"(itemsize {itemsize})")
        safe = np.where(mask, offsets, 0)
        return safe // itemsize


class FlatMemory:
    """Shared / constant / local memory: a small flat byte buffer."""

    def __init__(self, size: int, label: str):
        self.size = size
        self.label = label
        self.data = np.zeros(size, dtype=np.uint8)
        self._views: Dict[str, np.ndarray] = {}

    def view(self, dtype) -> np.ndarray:
        key = np.dtype(dtype).str
        if key not in self._views:
            self._views[key] = self.data.view(dtype)
        return self._views[key]

    def write(self, offset: int, array: np.ndarray) -> None:
        raw = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
        if offset < 0 or offset + raw.size > self.size:
            raise MemoryError_(
                f"{self.label} write out of bounds at {offset}")
        self.data[offset : offset + raw.size] = raw

    def read(self, offset: int, dtype, count: int) -> np.ndarray:
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        if offset < 0 or offset + nbytes > self.size:
            raise MemoryError_(
                f"{self.label} read out of bounds at {offset}")
        return self.data[offset : offset + nbytes].view(dtype).copy()

    def element_index(self, addrs: np.ndarray, itemsize: int,
                      mask: np.ndarray) -> np.ndarray:
        offsets = addrs.astype(np.int64)
        active = offsets[mask]
        if active.size:
            if (active < 0).any() or \
                    (active + itemsize > self.size).any():
                raise MemoryError_(
                    f"{self.label} access out of bounds "
                    f"(size {self.size})")
            if (active % itemsize).any():
                raise MemoryError_(
                    f"misaligned {self.label} access")
        safe = np.where(mask, offsets, 0)
        return safe // itemsize

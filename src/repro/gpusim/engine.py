"""Block-batched SIMT execution engine.

The serial path in :mod:`repro.gpusim.executor` runs one
:class:`~repro.gpusim.executor.BlockExecutor` per block: every block
pays the full Python interpreter loop even though most blocks of a
launch execute the *same* instruction trace.  This module batches B
blocks into a *gang*: per-warp-position fragments whose lane state is
(B, 32) NumPy arrays, so one interpreter step retires a warp-instruction
for every block in the gang at once.

Exactness is the contract: batched execution produces bit-identical
device memory and identical per-warp statistics to the serial oracle.
The gang therefore mirrors the serial interpreter operation for
operation:

* All members of a fragment share one program counter and one SIMT
  reconvergence stack (stack masks are (B, 32)).  Whenever a decision
  the serial interpreter takes would differ *across* blocks — a branch
  that is uniformly taken in one block but divergent in another, or an
  ``exit`` that empties some blocks' masks only — the fragment *splits*
  into sub-fragments that continue independently.  A fragment of one
  member is exactly the serial per-block path, so per-block fallback is
  the degenerate case of splitting rather than a separate code path.
* Statistics accumulate in per-member arrays with the same sequence of
  additions the serial path performs, so floating-point issue-cycle
  totals match bit for bit.  Memory-transaction counts (coalescing,
  bank conflicts, constant broadcasts) are computed per member with the
  same :mod:`repro.gpusim.coalescing` routines.
* Barriers rendezvous per block: the round scheduler releases waiting
  fragments only once no fragment in the batch can run, which releases
  every block that has fully arrived (blocks in a batch are
  independent, so the extra wait cannot change results).

Cross-block memory ordering: within one warp-instruction, member side
effects apply in ascending block order (the serial order for that
instruction).  Blocks that communicate through global memory across
*different* instructions see an interleaving that may differ from the
serial block-at-a-time order — as on real hardware, where inter-block
ordering is undefined.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gpusim import coalescing
from repro.gpusim.executor import (WARP, BlockStats, KernelPlan,
                                   PlannedInstr, SimError, TextureBinding,
                                   WarpStats, _BINARY, _CMP_FN, _UNARY,
                                   _tex_address)
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import FlatMemory, GlobalMemory, MemoryError_
from repro.kernelc.ir import IRKernel

from repro.runtime.context import ENGINE_ENV, ENGINES, current_context

from repro.gpusim import trace as gang_trace

#: Blocks ganged per batch.  Bounds transient lane-state memory
#: (n_regs × batch × 32 × 8 bytes) while keeping the per-instruction
#: Python overhead amortized over many blocks.
DEFAULT_BATCH_BLOCKS = 128

_LANE_IDS = np.arange(WARP, dtype=np.int64)
_CTAID_KEYS = ("ctaid.x", "ctaid.y", "ctaid.z")


def default_engine() -> str:
    """The current context's engine, used when a launch names none."""
    return current_context().engine


def set_default_engine(name: str) -> str:
    """Set the current context's engine; returns the previous one.

    The name is stored as given (no ``REPRO_ENGINE`` upgrade — that
    applies when launches resolve), so a context reads back exactly
    the engine it was told to default to.
    """
    resolved = resolve_engine(name, upgrade=False)
    return current_context().set_engine(resolved)


def resolve_engine(name: Optional[str], ctx=None,
                   upgrade: bool = True) -> str:
    """Validate an ``engine=`` argument (None selects *ctx*'s default).

    The ``REPRO_ENGINE`` environment variable upgrades ``"batched"``
    resolutions to ``"traced"`` (the trace-JIT is a bit-exact superset
    of the gang interpreter); an explicit ``"serial"`` is never
    overridden so the oracle stays reachable for differential runs.
    """
    if name is None or name == "auto":
        name = (ctx or current_context()).engine
    env = os.environ.get(ENGINE_ENV) if upgrade else None
    if env:
        if env not in ENGINES:
            raise SimError(
                f"invalid {ENGINE_ENV}={env!r}; valid engines are "
                + ", ".join(repr(e) for e in ENGINES))
        if env == "traced" and name == "batched":
            name = "traced"
    if name not in ENGINES:
        raise SimError(
            f"unknown execution engine {name!r}; valid engines are "
            + ", ".join(repr(e) for e in ENGINES)
            + f" (pass engine=..., call set_default_engine(), or set "
            f"{ENGINE_ENV}=traced to upgrade batched launches)")
    return name


def run_blocks_batched(kernel: IRKernel, device: DeviceSpec,
                       gmem: GlobalMemory, cmem: FlatMemory,
                       args: Dict[str, object],
                       indices: Sequence[Tuple[int, int, int]],
                       block_dim: Tuple[int, int, int],
                       grid_dim: Tuple[int, int, int],
                       dynamic_smem: int = 0,
                       plan: Optional[KernelPlan] = None,
                       textures: Optional[Dict[str, TextureBinding]] = None,
                       batch_blocks: Optional[int] = None,
                       ctx=None,
                       traced: bool = False,
                       ) -> List[BlockStats]:
    """Execute *indices* blocks gang-batched; stats in index order.

    With ``traced=True`` gang warps record/replay compiled traces
    (:mod:`repro.gpusim.trace`); results stay bit-identical — the
    trace machinery deoptimizes to this interpreter on any guard
    failure.  Callers must not enable it while a fault injector is
    armed (the launcher enforces this).
    """
    if ctx is None:
        ctx = current_context()
    if plan is None:
        plan = KernelPlan(kernel, device)
    if batch_blocks is None:
        batch_blocks = int(os.environ.get("REPRO_SIM_BATCH",
                                          DEFAULT_BATCH_BLOCKS))
    batch_blocks = max(1, batch_blocks)
    stats: List[BlockStats] = []
    injector = ctx.injector
    tracer = ctx.tracer
    for start in range(0, len(indices), batch_blocks):
        if injector is not None:
            # Fault site: watchdog kill between gang batches.  Earlier
            # batches already wrote device memory — retrying callers
            # must snapshot/restore around the whole launch.
            injector.check("launch.watchdog",
                           detail=f"{kernel.name}@batch{start}")
        batch = _Batch(kernel, device, gmem, cmem, args,
                       indices[start:start + batch_blocks], block_dim,
                       grid_dim, dynamic_smem, plan, textures or {},
                       ctx=ctx, traced=traced)
        if tracer is not None:
            n = min(batch_blocks, len(indices) - start)
            with tracer.span(f"gang:{kernel.name}", "engine",
                             batch_start=start, blocks=n):
                stats.extend(batch.run())
        else:
            stats.extend(batch.run())
    return stats


class _GangProto:
    """Launch-shape state shared by every gang of a kernel launch.

    Everything a :class:`_GangWarp` needs that depends only on
    ``(block_dim, grid_dim)`` — the per-warp-position special-register
    lane arrays (all but ``ctaid.*``, which are member data) and each
    warp position's partial-block row mask.  Prototypes are cached on
    the :class:`~repro.gpusim.executor.KernelPlan`, so repeated
    launches of one kernel — a sweep's sampled launches in particular
    — reuse the gang fragments' lane layout instead of rebuilding it
    per launch.
    """

    __slots__ = ("nthreads", "nwarps", "warps")

    def __init__(self, device: DeviceSpec, block_dim, grid_dim):
        bx, by, bz = block_dim
        self.nthreads = bx * by * bz
        if self.nthreads > device.max_threads_per_block:
            raise SimError(
                f"block of {self.nthreads} threads exceeds device limit "
                f"{device.max_threads_per_block}")
        self.nwarps = (self.nthreads + WARP - 1) // WARP
        gx, gy, gz = grid_dim
        self.warps = []
        for wid in range(self.nwarps):
            tids = (wid * WARP
                    + np.arange(WARP, dtype=np.uint32)).astype(np.uint32)
            row_mask = tids < self.nthreads
            safe = np.where(row_mask, tids, 0)
            specials = {
                "tid.x": (safe % bx).astype(np.uint32),
                "tid.y": ((safe // bx) % by).astype(np.uint32),
                "tid.z": (safe // (bx * by)).astype(np.uint32),
                "ntid.x": np.full(WARP, bx, np.uint32),
                "ntid.y": np.full(WARP, by, np.uint32),
                "ntid.z": np.full(WARP, bz, np.uint32),
                "nctaid.x": np.full(WARP, gx, np.uint32),
                "nctaid.y": np.full(WARP, gy, np.uint32),
                "nctaid.z": np.full(WARP, gz, np.uint32),
            }
            for arr in specials.values():
                arr.flags.writeable = False
            row_mask.flags.writeable = False
            self.warps.append((specials, row_mask))


def _gang_proto(plan: KernelPlan, device: DeviceSpec, block_dim,
                grid_dim, ctx=None) -> _GangProto:
    stats = (ctx or current_context()).gang_stats
    key = (block_dim, grid_dim)
    proto = plan.gang_protos.get(key)
    if proto is None:
        stats["misses"] += 1
        proto = _GangProto(device, block_dim, grid_dim)
        plan.gang_protos[key] = proto
    else:
        stats["hits"] += 1
    return proto


def gang_cache_stats(ctx=None) -> Dict[str, int]:
    """Gang-prototype hit/miss counters for *ctx* (default current).

    Prototypes live on cached :class:`KernelPlan` objects, so
    :func:`repro.gpusim.clear_plan_cache` evicts them too.
    """
    return dict((ctx or current_context()).gang_stats)


def _segmented_prefix(values: np.ndarray, starts: np.ndarray,
                      lengths: np.ndarray,
                      init: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sequential prefix chains ``[init, after 1 add, ...]`` per segment.

    Returns ``(prefix, offsets)``: segment ``g``'s chain occupies
    ``prefix[offsets[g] : offsets[g] + lengths[g] + 1]``.  Chains fold
    strictly left to right (``np.add.accumulate``), so float rounding
    matches a one-value-at-a-time serial loop bit for bit.  Segments
    are bucketed by power-of-two chain length and accumulated as
    zero-padded rows — padding sits past each chain's end and never
    feeds a result, and total transient memory stays within ~2x the
    event count regardless of how skewed the segment sizes are.
    """
    out_len = lengths + 1
    offsets = np.zeros(starts.size, np.int64)
    np.cumsum(out_len[:-1], dtype=np.int64, out=offsets[1:])
    prefix = np.empty(int(out_len.sum()), values.dtype)
    maxlen = int(out_len.max())
    lower, upper = 0, 1
    while lower < maxlen:
        pick = (out_len > lower) & (out_len <= upper)
        lower, upper = upper, upper * 2
        if not pick.any():
            continue
        cols = lower
        seg_starts = starts[pick]
        seg_lens = lengths[pick]
        buf = np.zeros((seg_starts.size, cols), values.dtype)
        buf[:, 0] = init[pick]
        if cols > 1:
            ar = np.arange(cols - 1, dtype=np.int64)
            gather = ar[None, :] < seg_lens[:, None]
            buf[:, 1:][gather] = values[
                (seg_starts[:, None] + ar[None, :])[gather]]
        np.add.accumulate(buf, axis=1, out=buf)
        ar = np.arange(cols, dtype=np.int64)
        scatter = ar[None, :] < out_len[pick][:, None]
        prefix[(offsets[pick][:, None] + ar[None, :])[scatter]] = \
            buf[scatter]
    return prefix, offsets


def _ordered_atomic_add(view: np.ndarray, idx: np.ndarray,
                        mask: np.ndarray,
                        value: np.ndarray) -> np.ndarray:
    """Gang-wide atomic read-add-write in exact serial member order.

    Reproduces, bit for bit, the serial oracle's per-member loop

        for i in range(M):                        # ascending block order
            old[i] = view[idx[i]]                 # member snapshot
            np.add.at(view, idx[i][mask[i]], value[i][mask[i]])

    without iterating members in Python: additions are stably grouped
    by address (flattened row-major position == serial order), each
    address's chain is folded sequentially via :func:`_segmented_prefix`,
    and every lane's old value samples its address's chain at the
    position just before its own member's additions.  Inactive lanes
    read element 0 at their member's snapshot, exactly as
    ``element_index`` maps them in the serial path.
    """
    M, W = idx.shape
    S = M * W
    flat_idx = idx.reshape(-1)
    flat_mask = mask.reshape(-1)
    old = view[flat_idx]  # pre-instruction snapshot (fancy copy)
    w_pos = np.nonzero(flat_mask)[0]
    if w_pos.size:
        order = np.argsort(flat_idx[w_pos], kind="stable")
        w_pos = w_pos[order]
        w_idx = flat_idx[w_pos]
        w_val = value.reshape(-1)[w_pos]
        head = np.ones(w_idx.size, bool)
        head[1:] = w_idx[1:] != w_idx[:-1]
        starts = np.nonzero(head)[0]
        uaddr = w_idx[starts]
        lengths = np.diff(np.append(starts, w_idx.size))
        prefix, offsets = _segmented_prefix(w_val, starts, lengths,
                                            view[uaddr])
        # Per lane: how many additions to its address precede its
        # member?  Counted with one searchsorted over composite
        # (address, serial position) keys.
        group = np.searchsorted(uaddr, flat_idx)
        hit = np.zeros(S, bool)
        in_range = group < uaddr.size
        hit[in_range] = uaddr[group[in_range]] == flat_idx[in_range]
        member_first = (np.arange(S, dtype=np.int64) // W) * W
        before = np.searchsorted(w_idx * S + w_pos,
                                 flat_idx * S + member_first)
        k = before - starts[np.where(hit, group, 0)]
        old[hit] = prefix[offsets[group[hit]] + k[hit]]
        view[uaddr] = prefix[offsets + lengths]  # final chain values
    return old.reshape(M, W)


class _BlockCtx:
    """Per-block resources shared by that block's fragments."""

    __slots__ = ("block_idx", "slot", "smem", "warp_stats")

    def __init__(self, block_idx, slot, smem, nwarps):
        self.block_idx = block_idx
        self.slot = slot
        self.smem = smem
        self.warp_stats: List[Optional[WarpStats]] = [None] * nwarps


class _Batch:
    """One gang of blocks executing a launch chunk in lockstep."""

    def __init__(self, kernel, device, gmem, cmem, args, indices,
                 block_dim, grid_dim, dynamic_smem, plan, textures,
                 ctx=None, traced=False):
        self.traced = traced
        self.trace_stats = (ctx or current_context()).trace_stats
        self.kernel = kernel
        self.device = device
        self.gmem = gmem
        self.cmem = cmem
        self.args = args
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.plan = plan
        self.ipdom = plan.ipdom
        self.textures = textures
        self.proto = _gang_proto(plan, device, block_dim, grid_dim,
                                 ctx=ctx)
        self.nthreads = self.proto.nthreads
        self.nwarps = self.proto.nwarps
        smem_bytes = kernel.shared_bytes + dynamic_smem
        # All member blocks share one stacked byte buffer so gangs can
        # gather/scatter shared memory in a single fancy index; each
        # block still sees a private, serially-identical FlatMemory
        # whose .data is a row of the stack.  Rows are padded to 16
        # bytes so any element dtype tiles the stack exactly.
        self.smem_row = max((smem_bytes + 15) // 16 * 16, 16)
        self.smem_stack = np.zeros(len(indices) * self.smem_row,
                                   np.uint8)
        stack2d = self.smem_stack.reshape(len(indices), self.smem_row)
        self.ctxs = []
        for slot, bidx in enumerate(indices):
            smem = FlatMemory(smem_bytes, "shared")
            smem.data = stack2d[slot, :smem_bytes]
            self.ctxs.append(_BlockCtx(bidx, slot, smem, self.nwarps))
        self._smem_views: Dict = {}
        self._param_arrays: Dict[Tuple[str, str], np.ndarray] = {}

    def smem_view(self, dtype) -> np.ndarray:
        """A typed view of the whole shared-memory stack.

        Keyed by the dtype object itself: distinct spellings of one
        dtype just memoize separate (identical) views, and the
        ``np.dtype(...).str`` normalisation cost stays off the hot
        path.
        """
        view = self._smem_views.get(dtype)
        if view is None:
            view = self.smem_stack.view(dtype)
            self._smem_views[dtype] = view
        return view

    def smem_view2(self, dtype, row_elems: int) -> np.ndarray:
        """A 2-D (slot, element) view of the shared-memory stack.

        ``row_elems`` must be ``smem_row // itemsize``; rows are
        padded to 16 bytes, so any element dtype tiles exactly.
        """
        key = (dtype, 2)
        view = self._smem_views.get(key)
        if view is None:
            view = self.smem_stack.view(dtype).reshape(-1, row_elems)
            self._smem_views[key] = view
        return view

    # Shared lookups (identical values for every member).

    def texture_binding(self, name: str) -> TextureBinding:
        binding = self.textures.get(name)
        if binding is None:
            raise SimError(
                f"texture {name!r} is not bound — call "
                "GPU.bind_texture() before launching")
        return binding

    def param_array(self, name: str, dtype) -> np.ndarray:
        key = (name, np.dtype(dtype).str)
        arr = self._param_arrays.get(key)
        if arr is None:
            try:
                value = self.args[name]
            except KeyError:
                raise SimError(
                    f"kernel argument {name!r} was not supplied")
            arr = np.full(WARP, value, dtype=dtype)
            arr.flags.writeable = False
            self._param_arrays[key] = arr
        return arr

    def run(self) -> List[BlockStats]:
        pool: List[_GangWarp] = [
            _GangWarp(self, wid, list(self.ctxs))
            for wid in range(self.nwarps)]
        guard = 0
        limit = 10_000_000
        ctx = np.errstate(all="ignore")
        ctx.__enter__()
        try:
            # Round-robin with barrier rendezvous, mirroring the serial
            # scheduler: run every runnable fragment to its next stop,
            # then release barriers when nothing can run.
            while True:
                guard += 1
                if guard > limit:
                    raise SimError("block execution did not terminate "
                                   "(runaway loop in kernel?)")
                running = [f for f in pool
                           if not f.finished and not f.at_barrier]
                if not running:
                    waiting = [f for f in pool if f.at_barrier]
                    if not waiting:
                        break
                    for f in waiting:
                        f.at_barrier = False
                    continue
                running.sort(key=lambda f: f.wid)
                for frag in running:
                    work = [frag]
                    while work:
                        g = work.pop()
                        spawned = g.run_quantum()
                        pool.extend(spawned)
                        work.extend(spawned)
        finally:
            ctx.__exit__(None, None, None)
            # An aborted launch must not leave its trace key stuck in
            # trace_pending on the (cached, shared) plan.
            for frag in pool:
                if frag._rec is not None:
                    gang_trace.abort_recording(frag)
        for frag in pool:
            frag.finalize()
        return [BlockStats(warps=list(c.warp_stats)) for c in self.ctxs]


#: Per-member event-counter vectors a gang warp carries; one name per
#: :class:`~repro.gpusim.executor.WarpStats` field.  Any stat added to
#: WarpStats must be counted here AND in the serial executor's matching
#: path — the engines' bit-identity contract covers stats too.
_GANG_STAT_NAMES = ("issue_cycles", "instructions", "mem_transactions",
                    "mem_bytes", "global_stalls", "shared_stalls",
                    "barriers", "divergent_branches", "atomics")


class _GangWarp:
    """One warp position of M blocks executing in lockstep."""

    __slots__ = ("batch", "wid", "ctxs", "M", "slots", "lane_mask",
                 "regs", "stack", "specials", "outstanding", "locals_",
                 "finished", "at_barrier",
                 "_rec", "_trace", "_trace_pos",
                 "_sbase") + _GANG_STAT_NAMES

    def __init__(self, batch: _Batch, wid: int, ctxs: List[_BlockCtx]):
        self.batch = batch
        self.wid = wid
        self.ctxs = ctxs
        M = len(ctxs)
        self.M = M
        base_specials, row_mask = batch.proto.warps[wid]
        specials = dict(base_specials)
        for axis, key in enumerate(_CTAID_KEYS):
            specials[key] = np.array(
                [c.block_idx[axis] for c in ctxs],
                np.uint32).reshape(M, 1)
        self.specials = specials
        self.slots = np.array([c.slot for c in ctxs], np.int64)
        self.lane_mask = np.broadcast_to(row_mask, (M, WARP)).copy()
        self.regs: List[Optional[np.ndarray]] = [None] * batch.plan.n_regs
        self.stack: List[list] = [
            [batch.plan.n, self.lane_mask.copy(), 0, True]]
        self.outstanding: Dict[int, str] = {}
        self.finished = not row_mask.any()
        self.at_barrier = False
        self._rec = None
        self._trace = None
        self._trace_pos = 0
        #: Per-itemsize shared-memory row-base vectors (trace engine);
        #: derived from ``slots``, so splitting invalidates it.
        self._sbase: Dict[int, np.ndarray] = {}
        local_bytes = batch.kernel.local_bytes
        self.locals_ = ([FlatMemory(local_bytes * WARP, "local")
                         for _ in ctxs] if local_bytes else None)
        self.issue_cycles = np.zeros(M, np.float64)
        for name in _GANG_STAT_NAMES[1:]:
            setattr(self, name, np.zeros(M, np.int64))

    def finalize(self) -> None:
        for i, ctx in enumerate(self.ctxs):
            ctx.warp_stats[self.wid] = WarpStats(
                issue_cycles=float(self.issue_cycles[i]),
                **{name: int(getattr(self, name)[i])
                   for name in _GANG_STAT_NAMES[1:]})

    # -- gang splitting ------------------------------------------------

    def _take(self, sel: np.ndarray) -> "_GangWarp":
        """A new fragment holding the ``sel`` member rows (copies)."""
        sib = object.__new__(_GangWarp)
        sib.batch = self.batch
        sib.wid = self.wid
        sib.ctxs = [c for c, s in zip(self.ctxs, sel) if s]
        sib.M = len(sib.ctxs)
        sib.slots = self.slots[sel]
        sib.lane_mask = self.lane_mask[sel]
        # Row-uniform registers may be stored as single-row (WARP,)
        # arrays (see trace.py); row selection on those is identity.
        sib.regs = [r if r is None or r.ndim == 1 else r[sel]
                    for r in self.regs]
        sib.stack = [[e[0], e[1][sel], e[2], e[3]] for e in self.stack]
        specials = dict(self.specials)
        for key in _CTAID_KEYS:
            specials[key] = specials[key][sel]
        sib.specials = specials
        sib.outstanding = dict(self.outstanding)
        sib.locals_ = ([m for m, s in zip(self.locals_, sel) if s]
                       if self.locals_ else None)
        sib.finished = self.finished
        sib.at_barrier = self.at_barrier
        # Recordings follow the parent fragment, and a sibling split
        # off by a replay guard is deoptimized by its caller; either
        # way the sibling starts with clean trace state.
        sib._rec = None
        sib._trace = None
        sib._trace_pos = 0
        sib._sbase = {}
        for name in _GANG_STAT_NAMES:
            setattr(sib, name, getattr(self, name)[sel])
        return sib

    def _narrow(self, sel: np.ndarray) -> None:
        """Restrict this fragment to the ``sel`` member rows in place."""
        self.ctxs = [c for c, s in zip(self.ctxs, sel) if s]
        self.M = len(self.ctxs)
        self.slots = self.slots[sel]
        self.lane_mask = self.lane_mask[sel]
        self._sbase = {}
        self.regs = [r if r is None or r.ndim == 1 else r[sel]
                     for r in self.regs]
        for e in self.stack:
            e[1] = e[1][sel]
        for key in _CTAID_KEYS:
            self.specials[key] = self.specials[key][sel]
        if self.locals_:
            self.locals_ = [m for m, s in zip(self.locals_, sel) if s]
        for name in _GANG_STAT_NAMES:
            setattr(self, name, getattr(self, name)[sel])

    # -- operand plumbing ----------------------------------------------

    def _read(self, desc) -> np.ndarray:
        kind, payload, cast = desc
        if kind == "r":
            arr = self.regs[payload]
            if arr is None:
                arr = np.zeros((self.M, WARP),
                               dtype=self.batch.plan._reg_dtypes[payload])
                self.regs[payload] = arr
            if cast is not None:
                return arr.astype(cast)
            return arr
        if kind == "c":
            return payload
        arr = self.specials[payload]
        if cast is not None and arr.dtype != cast:
            return arr.astype(cast)
        return arr

    def _write(self, p: PlannedInstr, value: np.ndarray,
               mask: np.ndarray, covers: bool) -> None:
        if value.dtype != p.dst_dtype:
            value = value.astype(p.dst_dtype)
        if covers:
            if value.shape != (self.M, WARP):
                value = np.broadcast_to(value, (self.M, WARP))
            self.regs[p.dst] = value
        else:
            old = self.regs[p.dst]
            if old is None:
                old = np.zeros((self.M, WARP), dtype=p.dst_dtype)
            self.regs[p.dst] = np.where(mask, value, old)

    def _full(self, arr: np.ndarray) -> np.ndarray:
        """Broadcast a lane array to the gang's (M, 32) shape."""
        if arr.shape != (self.M, WARP):
            arr = np.broadcast_to(arr, (self.M, WARP))
        return arr

    # -- main loop -----------------------------------------------------

    def run_quantum(self) -> List["_GangWarp"]:
        """Execute until barrier or completion.

        Returns fragments split off along the way; each still needs its
        own ``run_quantum`` this scheduling round.
        """
        batch = self.batch
        spawned: List[_GangWarp] = []
        if batch.traced:
            # Replay guards may split nonconforming members into
            # ``spawned`` even when the remainder deoptimizes back to
            # the interpreter below.
            status = gang_trace.quantum_enter(self, spawned)
            if status is not None:
                return spawned
        plan = batch.plan
        instrs = plan.instrs
        n = plan.n
        while True:
            if not self.stack:
                self.finished = True
                return spawned
            top = self.stack[-1]
            reconv, mask, pc, covers = top[0], top[1], top[2], top[3]
            if not covers:
                any_rows = mask.any(axis=1)
                if not any_rows.all():
                    if self._rec is not None:
                        # Partial-exit splits have no straight-line form.
                        gang_trace.abort_recording(self)
                    if not any_rows.any():
                        self.stack.pop()
                        continue
                    # Some blocks' masks emptied (exit under
                    # divergence): they pop this entry, the rest do not.
                    sib = self._take(~any_rows)
                    self._narrow(any_rows)
                    spawned.append(sib)
                    continue
            if pc == reconv or pc >= n:
                self.stack.pop()
                if self.stack:
                    if self._rec is not None:
                        self._rec.events.append(("pop",))
                    continue
                if self._rec is not None:
                    self._rec.events.append(("fin",))
                    gang_trace.finish_recording(self)
                self.finished = True
                return spawned
            p = instrs[pc]
            op = p.op
            if self.outstanding:
                self._score_read(p)
            exec_mask = mask
            exec_covers = covers
            if p.pred >= 0 and op != "bra":
                pred = self.regs[p.pred]
                if pred is None:
                    pred = np.zeros((self.M, WARP), dtype=bool)
                exec_mask = mask & self._full(pred != p.pred_neg)
                exec_covers = False
            if op == "bra":
                self.issue_cycles += p.cost
                self.instructions += 1
                self._branch(p, top, mask, pc, spawned)
                continue
            if op == "bar":
                if not covers or not (mask == self.lane_mask).all():
                    raise SimError(
                        "__syncthreads() reached in divergent code — "
                        "undefined behaviour in CUDA, rejected here")
                self.issue_cycles += p.cost or \
                    batch.device.issue_cost["bar"]
                self.instructions += 1
                self.barriers += 1
                self.outstanding.clear()
                top[2] = pc + 1
                self.at_barrier = True
                if self._rec is not None:
                    self._rec.events.append(("bar", pc))
                return spawned
            if op == "exit":
                if self._rec is not None:
                    if (mask == self.lane_mask).all():
                        # Whole-warp exit: a clean trace terminator.
                        self._rec.events.append(("exit", pc))
                        gang_trace.finish_recording(self)
                    else:
                        gang_trace.abort_recording(self)
                self._terminate(mask)
                continue
            self._execute(p, exec_mask, exec_covers)
            top[2] = pc + 1
            if self._rec is not None:
                self._rec.events.append(("x", pc, covers))
                if len(self._rec.events) > gang_trace.MAX_EVENTS:
                    gang_trace.abort_recording(self)

    def _score_read(self, p: PlannedInstr) -> None:
        outstanding = self.outstanding
        waited_g = waited_s = False
        for idx in p.reg_srcs:
            kind = outstanding.get(idx)
            if kind is not None:
                waited_g |= kind == "g"
                waited_s |= kind == "s"
        if waited_g:
            self.global_stalls += 1
            outstanding.clear()
        elif waited_s:
            self.shared_stalls += 1
            outstanding.clear()

    def _terminate(self, mask: np.ndarray) -> None:
        self.lane_mask = self.lane_mask & ~mask
        for entry in self.stack:
            entry[1] = entry[1] & ~mask
            entry[3] = False

    def _branch(self, p: PlannedInstr, top, mask, pc,
                spawned: List["_GangWarp"]) -> None:
        if p.pred < 0:
            if self._rec is not None:
                self._rec.events.append(("ub", pc))
            top[2] = p.target
            return
        pred = self.regs[p.pred]
        if pred is None:
            pred = np.zeros((self.M, WARP), dtype=bool)
        lane_take = self._full(pred != p.pred_neg)
        taken = mask & lane_take
        fall = mask & ~lane_take
        t_any = taken.any(axis=1)
        f_any = fall.any(axis=1)
        # Per-member branch classes, mirroring the serial decisions:
        # no lane taken -> fall through; all active lanes taken ->
        # jump; otherwise diverge through the IPDOM stack.
        groups = [(sel, kind) for sel, kind in
                  ((~t_any, "fall"), (t_any & ~f_any, "taken"),
                   (t_any & f_any, "div"))
                  if sel.any()]
        if len(groups) == 1:
            if self._rec is not None:
                self._rec.events.append(("br", pc, groups[0][1]))
            self._apply_branch(groups[0][1], top, taken, fall, pc,
                               p.target)
            return
        # Blocks disagree: split the gang, largest class stays here.
        groups.sort(key=lambda g: int(g[0].sum()), reverse=True)
        keep_sel, keep_kind = groups[0]
        if self._rec is not None:
            # Members disagree on the branch class.  The recorder
            # follows the surviving (largest) fragment: the events so
            # far are common to every member, and from here the trace
            # records the survivor's straight-line path.  Replay
            # guards split nonconforming members off the same way.
            self._rec.events.append(("br", pc, keep_kind))
        for sel, kind in groups[1:]:
            sib = self._take(sel)
            sib._apply_branch(kind, sib.stack[-1], taken[sel],
                              fall[sel], pc, p.target)
            spawned.append(sib)
        self._narrow(keep_sel)
        self._apply_branch(keep_kind, self.stack[-1], taken[keep_sel],
                           fall[keep_sel], pc, p.target)

    def _apply_branch(self, kind: str, top, taken, fall, pc,
                      target) -> None:
        if kind == "fall":
            top[2] = pc + 1
            return
        if kind == "taken":
            top[2] = target
            return
        self.divergent_branches += 1
        reconv = self.batch.ipdom.get(pc, self.batch.plan.n)
        top[2] = reconv  # the join resumes here with the full mask
        self.stack.append([reconv, fall, pc + 1, False])
        self.stack.append([reconv, taken, target, False])

    # -- instruction semantics -----------------------------------------

    def _execute(self, p: PlannedInstr, mask: np.ndarray,
                 covers: bool) -> None:
        op = p.op
        self.instructions += 1
        if op in ("ld", "st", "atom"):
            self._memory(p, mask, covers)
            return
        if op == "tex":
            self._tex(p, mask, covers)
            return
        self.issue_cycles += p.cost
        if not covers and not mask.any():
            return
        srcs = p.srcs
        if op == "mov":
            self._write(p, self._read(srcs[0]), mask, covers)
            return
        if op == "add":
            self._write(p, self._read(srcs[0]) + self._read(srcs[1]),
                        mask, covers)
            return
        if op == "mul":
            self._write(p, self._read(srcs[0]) * self._read(srcs[1]),
                        mask, covers)
            return
        if op == "sub":
            self._write(p, self._read(srcs[0]) - self._read(srcs[1]),
                        mask, covers)
            return
        if op == "setp":
            a = self._read(srcs[0])
            b = self._read(srcs[1])
            self._write(p, _CMP_FN[p.cmp](a, b), mask, covers)
            return
        if op == "selp":
            a = self._read(srcs[0])
            b = self._read(srcs[1])
            sel = self._read(srcs[2])
            self._write(p, np.where(sel, a, b), mask, covers)
            return
        if op == "cvt":
            self._cvt(p, mask, covers)
            return
        if op in _BINARY:
            a = self._read(srcs[0])
            b = self._read(srcs[1])
            if p.is_bool and op in ("and", "or", "xor"):
                fn = {"and": np.logical_and, "or": np.logical_or,
                      "xor": np.logical_xor}[op]
                self._write(p, fn(a, b), mask, covers)
                return
            self._write(p, _BINARY[op](a, b, p), mask, covers)
            return
        if op in ("mad", "fma"):
            a = self._read(srcs[0])
            b = self._read(srcs[1])
            c = self._read(srcs[2])
            self._write(p, a * b + c, mask, covers)
            return
        if op in _UNARY:
            a = self._read(srcs[0])
            if op == "not" and p.is_bool:
                self._write(p, np.logical_not(a), mask, covers)
                return
            self._write(p, _UNARY[op](a, p), mask, covers)
            return
        raise SimError(f"unimplemented opcode {op!r}")

    def _cvt(self, p: PlannedInstr, mask, covers) -> None:
        value = self._read(p.srcs[0])
        if p.ctype.is_integer and value.dtype.kind == "f":
            if p.cmp.endswith(".rn"):
                value = np.rint(value)
            else:
                value = np.trunc(value)
            value = np.where(np.isfinite(value), value, 0.0)
        self._write(p, value.astype(p.np_dtype), mask, covers)

    # -- memory --------------------------------------------------------

    def _memory(self, p: PlannedInstr, mask: np.ndarray,
                covers: bool) -> None:
        batch = self.batch
        device = batch.device
        space = p.space
        if space == "param":
            self.issue_cycles += p.cost
            self._write(p, batch.param_array(p.param_name, p.np_dtype),
                        mask, covers)
            return
        itemsize = p.itemsize
        addrs = self._full(self._read(p.srcs[0]))
        if addrs.dtype != np.uint64:
            addrs = addrs.astype(np.uint64)
        if p.op == "ld":
            value = self._do_load(space, addrs, p, mask)
            self._write(p, value, mask, covers)
            if space in ("global", "local"):
                self.outstanding[p.dst] = "g"
            elif space == "shared":
                self.outstanding[p.dst] = "s"
            return
        if p.op == "st":
            value = self._full(self._read(p.srcs[1]))
            self._do_store(space, addrs, value, p, mask)
            return
        # atom (only .add is generated)
        if space not in ("global", "shared"):
            raise SimError(f"atomicAdd on {space} memory")
        value = self._full(self._read(p.srcs[1]))
        if space == "global":
            mem = batch.gmem
            if mem._epoch is not None:
                mem.note_lanes(addrs, mask, itemsize)
            idx = mem.element_index(
                addrs.reshape(-1), itemsize,
                mask.reshape(-1)).reshape(self.M, WARP)
            old = _ordered_atomic_add(mem.view(p.np_dtype), idx, mask,
                                      value)
        else:
            # Member rows are disjoint in the stack, so reading every
            # old value before any add matches the per-member order.
            gidx = self._shared_index(addrs, mask, itemsize)
            view = batch.smem_view(p.np_dtype)
            old = view[gidx]
            np.add.at(view, gidx[mask], value[mask])
        self._write(p, old, mask, covers)
        self.issue_cycles += device.issue_cost["atom"]
        self.atomics += 1
        if space == "global":
            txns = self._global_txns(addrs, mask, itemsize)
            self.mem_transactions += txns
            self.mem_bytes += txns * 32
            self.outstanding.clear()
            self.global_stalls += 1  # atomics round-trip

    def _global_txns(self, addrs, mask, itemsize) -> np.ndarray:
        return coalescing.global_transactions_batch(
            addrs, mask, itemsize, self.batch.device)

    def _shared_index(self, addrs, mask, itemsize) -> np.ndarray:
        """Element indices into the batch shared stack, validated.

        Mirrors :meth:`FlatMemory.element_index` for every member at
        once (sizes and labels are uniform across a launch), then
        offsets each row into that member's slot of the stack.
        """
        size = self.ctxs[0].smem.size
        offsets = addrs.astype(np.int64)
        active = offsets[mask]
        if active.size:
            if (active < 0).any() or (active + itemsize > size).any():
                raise MemoryError_(
                    f"shared access out of bounds (size {size})")
            if (active % itemsize).any():
                raise MemoryError_("misaligned shared access")
        idx = np.where(mask, offsets, 0) // itemsize
        row = self.batch.smem_row // itemsize
        return idx + (self.slots * row)[:, None]

    def _shared_factors(self, addrs, mask) -> np.ndarray:
        """Per-member bank-conflict replay factors, vectorised.

        Same model as :func:`coalescing.shared_conflict_factor`: the
        worst bank's count of distinct 32-bit words, per half-warp on
        CC 1.x and per full warp on CC 2.x.
        """
        device = self.batch.device
        banks = device.shared_banks
        words = addrs.astype(np.int64) // 4
        spans = device.shared_groups()
        if len(spans) == 1:
            groups = (mask,)
        else:
            groups = []
            for lo, hi in spans:
                m = mask.copy()
                m[:, :lo] = False
                m[:, hi:] = False
                groups.append(m)
        sentinel = np.iinfo(np.int64).max
        worst = np.ones(self.M, np.int64)
        for m in groups:
            w = np.where(m, words, sentinel)
            w.sort(axis=1)
            uniq = np.ones(w.shape, bool)
            uniq[:, 1:] = w[:, 1:] != w[:, :-1]
            uniq &= w != sentinel
            counts = np.zeros((self.M, banks), np.int64)
            np.add.at(counts, (np.nonzero(uniq)[0], w[uniq] % banks), 1)
            worst = np.maximum(worst, counts.max(axis=1))
        return worst

    def _do_load(self, space, addrs, p: PlannedInstr,
                 mask) -> np.ndarray:
        batch = self.batch
        device = batch.device
        itemsize = p.itemsize
        M = self.M
        if space == "global":
            txns = self._global_txns(addrs, mask, itemsize)
            line = device.coalesce_line_bytes()
            self.mem_transactions += txns
            self.mem_bytes += txns * line
            self.issue_cycles += device.mem_issue_cost * \
                np.maximum(txns, 1)
            mem = batch.gmem
            idx = mem.element_index(addrs.reshape(-1), itemsize,
                                    mask.reshape(-1))
            return mem.view(p.np_dtype)[idx].reshape(M, WARP)
        if space == "shared":
            factors = self._shared_factors(addrs, mask)
            gidx = self._shared_index(addrs, mask, itemsize)
            self.issue_cycles += device.issue_cost["shared"] * factors
            return batch.smem_view(p.np_dtype)[gidx]
        if space == "const":
            # Distinct addresses per member (broadcast model), counted
            # with a row sort; empty rows pay the single-broadcast cost.
            sentinel = np.iinfo(np.int64).max
            a = np.where(mask, addrs.astype(np.int64), sentinel)
            a.sort(axis=1)
            uniq = np.ones(a.shape, bool)
            uniq[:, 1:] = a[:, 1:] != a[:, :-1]
            uniq &= a != sentinel
            distinct = np.maximum(uniq.sum(axis=1), 1)
            self.issue_cycles += device.issue_cost["shared"] * distinct
            mem = batch.cmem
            idx = mem.element_index(addrs.reshape(-1), itemsize,
                                    mask.reshape(-1))
            return mem.view(p.np_dtype)[idx].reshape(M, WARP)
        if space == "local":
            return self._local_access(addrs, None, p, mask)
        raise SimError(f"bad load space {space!r}")

    def _do_store(self, space, addrs, value, p: PlannedInstr,
                  mask) -> None:
        batch = self.batch
        device = batch.device
        itemsize = p.itemsize
        if value.dtype != p.np_dtype:
            value = value.astype(p.np_dtype)
        if space == "global":
            txns = self._global_txns(addrs, mask, itemsize)
            line = device.coalesce_line_bytes()
            self.mem_transactions += txns
            self.mem_bytes += txns * line
            self.issue_cycles += device.mem_issue_cost * \
                np.maximum(txns, 1)
            mem = batch.gmem
            if mem._epoch is not None:
                mem.note_lanes(addrs, mask, itemsize)
            flat_mask = mask.reshape(-1)
            idx = mem.element_index(addrs.reshape(-1), itemsize,
                                    flat_mask)
            flat_value = np.ascontiguousarray(value).reshape(-1)
            # Fancy assignment applies rows in member (= block) order,
            # so duplicate addresses resolve as the serial path does.
            mem.view(p.np_dtype)[idx[flat_mask]] = flat_value[flat_mask]
            return
        if space == "shared":
            factors = self._shared_factors(addrs, mask)
            gidx = self._shared_index(addrs, mask, itemsize)
            # Row-major flattening keeps lane order within each member,
            # so duplicate addresses resolve exactly as serial does.
            batch.smem_view(p.np_dtype)[gidx[mask]] = value[mask]
            self.issue_cycles += device.issue_cost["shared"] * factors
            return
        if space == "local":
            self._local_access(addrs, value, p, mask)
            return
        if space == "const":
            raise SimError("stores to constant memory are illegal")
        raise SimError(f"bad store space {space!r}")

    def _tex(self, p: PlannedInstr, mask, covers) -> None:
        batch = self.batch
        binding = batch.texture_binding(p.param_name)
        itemsize = np.dtype(binding.np_dtype).itemsize
        base_elem = batch.gmem.element_index(
            np.full(WARP, binding.addr, np.uint64), itemsize,
            np.ones(WARP, bool))[0]
        view = batch.gmem.view(binding.np_dtype)

        def fetch(ix, iy):
            ixa, okx = _tex_address(ix, binding.width, binding.address)
            if binding.height > 1:
                iya, oky = _tex_address(iy, binding.height,
                                        binding.address)
            else:
                iya, oky = np.zeros_like(ixa), np.ones_like(okx)
            flat = base_elem + iya * binding.width + ixa
            value = view[flat]
            if binding.address == "border":
                value = np.where(okx & oky, value, 0)
            return value

        if p.cmp == "1d":
            idx = self._full(self._read(p.srcs[0])).astype(np.int64)
            value = fetch(idx, None)
        else:
            x = self._full(self._read(p.srcs[0])).astype(np.float64)
            y = self._full(self._read(p.srcs[1])).astype(np.float64)
            if binding.filter == "point":
                value = fetch(np.floor(x).astype(np.int64),
                              np.floor(y).astype(np.int64))
            else:
                xb = x - 0.5
                yb = y - 0.5
                ix0 = np.floor(xb).astype(np.int64)
                iy0 = np.floor(yb).astype(np.int64)
                fx = (xb - ix0).astype(np.float32)
                fy = (yb - iy0).astype(np.float32)
                v00 = fetch(ix0, iy0)
                v01 = fetch(ix0 + 1, iy0)
                v10 = fetch(ix0, iy0 + 1)
                v11 = fetch(ix0 + 1, iy0 + 1)
                row0 = v00 * (1 - fx) + v01 * fx
                row1 = v10 * (1 - fx) + v11 * fx
                value = (row0 * (1 - fy) + row1 * fy).astype(
                    binding.np_dtype)
        self._write(p, np.asarray(value), mask, covers)
        active = mask.sum(axis=1).astype(np.int64)
        txns = np.maximum(1, (active * itemsize + 127) // 128 // 2 + 1)
        self.mem_transactions += txns
        self.mem_bytes += txns * 32
        self.issue_cycles += batch.device.issue_cost["shared"]
        self.outstanding[p.dst] = "g"

    def _local_access(self, addrs, value, p: PlannedInstr, mask):
        if self.locals_ is None:
            raise SimError("kernel has no local memory but accesses it")
        device = self.batch.device
        itemsize = p.itemsize
        offsets = addrs.astype(np.int64) + _LANE_IDS * \
            (self.locals_[0].size // WARP)
        active = mask.sum(axis=1).astype(np.int64)
        txns = np.maximum(1, (active * itemsize + 127) // 128)
        self.mem_transactions += txns
        self.mem_bytes += txns * 128
        self.issue_cycles += device.mem_issue_cost * txns
        out = (np.empty((self.M, WARP), dtype=p.np_dtype)
               if value is None else None)
        off64 = offsets.astype(np.uint64)
        for i, local in enumerate(self.locals_):
            idx = local.element_index(off64[i], itemsize, mask[i])
            view = local.view(p.np_dtype)
            if value is None:
                out[i] = view[idx]
            else:
                view[idx[mask[i]]] = value[i][mask[i]]
        return out

"""CUDA occupancy calculator.

Given a kernel's per-thread register usage, per-block shared memory,
and thread count, compute how many blocks an SM can host concurrently —
the quantity that couples register blocking to latency hiding and gives
the dissertation's configuration space its interior optima (Tables 6.20
–6.22, §6.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec


class OccupancyError(Exception):
    """The configuration cannot launch at all on this device."""


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one (kernel, config)."""

    blocks_per_sm: int
    warps_per_block: int
    limited_by: str

    @property
    def warps_per_sm(self) -> int:
        return self.blocks_per_sm * self.warps_per_block

    def fraction(self, device: DeviceSpec) -> float:
        return self.warps_per_sm / device.max_warps_per_sm


def _round_up(value: int, unit: int) -> int:
    return (value + unit - 1) // unit * unit


def occupancy(device: DeviceSpec, threads_per_block: int,
              regs_per_thread: int, smem_per_block: int) -> Occupancy:
    """Compute achievable blocks/SM for a kernel configuration.

    Raises:
        OccupancyError: zero blocks fit (too many registers, too much
            shared memory, or too many threads).
    """
    if threads_per_block <= 0:
        raise OccupancyError("thread block must have at least one thread")
    if threads_per_block > device.max_threads_per_block:
        raise OccupancyError(
            f"{threads_per_block} threads/block exceeds the device "
            f"maximum of {device.max_threads_per_block}")
    if regs_per_thread > device.max_regs_per_thread:
        raise OccupancyError(
            f"{regs_per_thread} registers/thread exceeds the device "
            f"maximum of {device.max_regs_per_thread} — on real "
            "hardware nvcc would spill; re-structure or lower the "
            "register blocking factor")
    warps_per_block = (threads_per_block + device.warp_size - 1) \
        // device.warp_size

    by_warps = device.max_warps_per_sm // warps_per_block
    limits = {"warps": by_warps, "blocks": device.max_blocks_per_sm}

    if regs_per_thread > 0:
        if device.reg_alloc_per_warp:
            regs_per_warp = _round_up(
                regs_per_thread * device.warp_size, device.reg_alloc_unit)
            regs_per_block = regs_per_warp * warps_per_block
        else:
            regs_per_block = _round_up(
                regs_per_thread * device.warp_size * warps_per_block,
                device.reg_alloc_unit)
        limits["registers"] = device.regs_per_sm // regs_per_block \
            if regs_per_block else device.max_blocks_per_sm
    if smem_per_block > 0:
        smem = _round_up(smem_per_block, device.smem_alloc_unit)
        if smem > device.smem_per_sm:
            raise OccupancyError(
                f"{smem_per_block} bytes of shared memory per block "
                f"exceeds the {device.smem_per_sm} available per SM")
        limits["shared memory"] = device.smem_per_sm // smem

    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    if blocks < 1:
        raise OccupancyError(
            "configuration does not fit on an SM: "
            + ", ".join(f"{k}→{v} blocks" for k, v in limits.items()))
    return Occupancy(blocks_per_sm=blocks, warps_per_block=warps_per_block,
                     limited_by=limiter)

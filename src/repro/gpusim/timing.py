"""Analytical kernel timing model.

Converts per-block event counts into kernel execution time using a
three-bound model in the spirit of Hong & Kim's analytical GPU model
(ISCA'09), adapted to the event counters our executor collects:

* **Issue bound** — the SM issues one warp-instruction at a time; with
  ``N`` resident blocks a scheduling round occupies the issue pipeline
  for ``N × C`` cycles (``C`` = per-block issue cycles).
* **Bandwidth bound** — the block's DRAM traffic divided by the SM's
  bandwidth share.
* **Latency bound** — the slowest warp's serial time: its issue cycles
  plus one memory round-trip per scoreboard stall.  All resident warps
  overlap, so a round cannot finish faster than this.

``round = max(N·C, N·M, L)`` and the kernel runs
``ceil(blocks / (N · SMs))`` rounds.  The model produces the paper's
qualitative behaviours: low-occupancy/high-ILP configurations can
saturate the machine (Volkov), register pressure trades resident blocks
against per-thread work, and loop overhead shows up directly in the
issue bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.gpusim.device import DeviceSpec
from repro.gpusim.executor import BlockStats
from repro.gpusim.occupancy import Occupancy


@dataclass(frozen=True)
class Timing:
    """Kernel timing breakdown (cycles are core-clock cycles of one SM)."""

    cycles: float
    seconds: float
    rounds: int
    issue_bound: float
    bandwidth_bound: float
    latency_bound: float
    blocks_per_sm: int
    occupancy_fraction: float

    @property
    def bound(self) -> str:
        bounds = {"issue": self.issue_bound,
                  "bandwidth": self.bandwidth_bound,
                  "latency": self.latency_bound}
        return max(bounds, key=lambda k: bounds[k])


def kernel_timing(device: DeviceSpec, occ: Occupancy,
                  total_blocks: int,
                  sampled: Sequence[BlockStats]) -> Timing:
    """Estimate kernel time from sampled per-block statistics.

    Args:
        device: target device model.
        occ: occupancy for this kernel configuration.
        total_blocks: grid size in blocks.
        sampled: statistics of the executed (sampled) blocks; per-block
            means are extrapolated over the grid.
    """
    if not sampled:
        raise ValueError("no sampled blocks to derive timing from")
    n = len(sampled)
    issue_per_block = sum(b.issue_cycles for b in sampled) / n
    bytes_per_block = sum(b.mem_bytes for b in sampled) / n
    latency_per_block = sum(b.latency_bound(device) for b in sampled) / n

    # Blocks actually co-resident on one SM: the occupancy limit, or
    # fewer when the grid cannot fill every SM that deep.
    per_sm_demand = math.ceil(total_blocks / device.sm_count)
    resident = max(1, min(occ.blocks_per_sm, per_sm_demand))
    issue_bound = resident * issue_per_block
    bandwidth_bound = (resident * bytes_per_block
                       / device.bytes_per_cycle_per_sm)
    latency_bound = latency_per_block
    round_cycles = max(issue_bound, bandwidth_bound, latency_bound)
    rounds = math.ceil(total_blocks
                       / max(resident * device.sm_count, 1))
    cycles = rounds * round_cycles
    seconds = (cycles / (device.clock_ghz * 1e9)
               + device.launch_overhead_us * 1e-6)
    return Timing(cycles=cycles, seconds=seconds, rounds=rounds,
                  issue_bound=issue_bound,
                  bandwidth_bound=bandwidth_bound,
                  latency_bound=latency_bound,
                  blocks_per_sm=occ.blocks_per_sm,
                  occupancy_fraction=occ.fraction(device))

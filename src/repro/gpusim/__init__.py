"""gpusim — a SIMT GPU simulator standing in for the paper's hardware.

Executes :mod:`repro.kernelc` IR the way CUDA hardware executes SASS:
warps of 32 lanes in lockstep with IPDOM-stack divergence, block-shared
memory with bank-conflict accounting, global memory with per-compute-
capability coalescing rules, an occupancy calculator, and a cycle-level
analytical timing model.  Three device models span three hardware
generations: the Tesla C1060 (compute capability 1.3) and Tesla C2070
(CC 2.0) mirror the dissertation's testbeds, and the Kepler-class
Tesla K20 (CC 3.5) extends the study axis one generation past the
paper.  Generation-conditional rules live on each device's declarative
:class:`~repro.gpusim.device.DeviceCaps` capability model.
"""

from repro.gpusim.device import (DEVICES, DeviceCaps, DeviceSpec,
                                 TESLA_C1060, TESLA_C2070, TESLA_K20,
                                 default_caps)
from repro.gpusim.engine import (ENGINES, default_engine, gang_cache_stats,
                                 resolve_engine, set_default_engine)
from repro.gpusim.executor import (clear_plan_cache, plan_cache_stats,
                                   plan_for)
from repro.gpusim.launcher import GPU, LaunchResult
from repro.gpusim.occupancy import OccupancyError, occupancy
from repro.gpusim.trace import GangTrace, trace_cache_stats

__all__ = ["DeviceSpec", "DeviceCaps", "default_caps", "DEVICES",
           "TESLA_C1060", "TESLA_C2070", "TESLA_K20", "GPU",
           "LaunchResult", "occupancy", "OccupancyError",
           "ENGINES", "default_engine", "set_default_engine",
           "resolve_engine", "plan_for", "plan_cache_stats",
           "clear_plan_cache", "gang_cache_stats", "GangTrace",
           "trace_cache_stats"]

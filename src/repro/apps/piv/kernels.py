"""PIV kernel sources (§5.2.1/5.2.2).

One thread block processes one interrogation window.  Threads stripe
across the mask's pixels (Figure 5.11); each thread accumulates partial
sum-of-squared-differences scores for a *batch* of ``RB`` search
offsets held in per-thread registers — the register-blocking knob.
When ``RB`` (and the mask/search dimensions) are specialized the
batch loops unroll and the accumulator array scalarizes into registers;
run-time evaluated it falls to local memory, which is the measured
penalty of §6.2.2.2.

Two reduction strategies, the kernel variants of Table 6.14:

* ``pivScores`` — classic shared-memory tree reduction per offset
  (§2.2), with its log2(THREADS) barrier rounds;
* ``pivScoresWarpSpec`` — warp specialization (Figure 5.12): each warp
  reduces its own lanes warp-synchronously, then the first warp alone
  combines the per-warp partials, cutting the barrier count per batch
  from ``RB·log2(THREADS)`` to 2.

The per-batch offset decode (divide/modulo by the search width) sits
outside the pixel loop and strength-reduces under specialization.
"""

from repro.kernelc.templates import ctrt_block

_COMMON_TOGGLES = ctrt_block({
    "MASK_W": "maskW",
    "MASK_H": "maskH",
    "OFFS_W": "offsW",
    "OFFS_H": "offsH",
    "RB": "rb",
    "THREADS": "blockDim.x",
}) + """
#ifndef RB_MAX
#define RB_MAX 16
#endif

// RE compilations must allocate worst-case shared memory (the
// arbitrary ceiling of 2.6); SK sizes the buffers exactly.
#ifdef CT_THREADS
#define SMEM_THREADS THREADS
#else
#define SMEM_THREADS 512
#endif
"""

TREE_SRC = _COMMON_TOGGLES + """
__global__ void pivScores(const float* imgA, const float* imgB,
                          const int* winX, const int* winY,
                          float* scores, int imgW, int maskW, int maskH,
                          int offsW, int offsH, int centerX, int centerY,
                          int rb) {
    __shared__ float red[SMEM_THREADS];
    int w = blockIdx.x;
    int wx = winX[w];
    int wy = winY[w];
    int nOffsets = OFFS_W_VAL * OFFS_H_VAL;
    int maskPix = MASK_W_VAL * MASK_H_VAL;

    #pragma unroll 1
    for (int obase = 0; obase < nOffsets; obase += RB_VAL) {
        float acc[RB_MAX];
        int dy[RB_MAX];
        int dx[RB_MAX];
        for (int r = 0; r < RB_VAL; r++) {
            int o = obase + r;
            int oc = o < nOffsets ? o : nOffsets - 1;
            dy[r] = oc / OFFS_W_VAL - centerY;
            dx[r] = oc % OFFS_W_VAL - centerX;
            acc[r] = 0.0f;
        }
        #pragma unroll 1
        for (int i = threadIdx.x; i < maskPix; i += THREADS_VAL) {
            int py = i / MASK_W_VAL;
            int px = i % MASK_W_VAL;
            float a = imgA[(wy + py) * imgW + wx + px];
            for (int r = 0; r < RB_VAL; r++) {
                float b = imgB[(wy + py + dy[r]) * imgW
                               + wx + px + dx[r]];
                float d = a - b;
                acc[r] += d * d;
            }
        }
        for (int r = 0; r < RB_VAL; r++) {
            red[threadIdx.x] = acc[r];
            __syncthreads();
            #pragma unroll 1
            for (unsigned int s = THREADS_VAL / 2; s > 0; s >>= 1) {
                if (threadIdx.x < s) {
                    red[threadIdx.x] += red[threadIdx.x + s];
                }
                __syncthreads();
            }
            if (threadIdx.x == 0) {
                if (obase + r < nOffsets) {
                    scores[w * nOffsets + obase + r] = red[0];
                }
            }
            __syncthreads();
        }
    }
}
"""

WARPSPEC_SRC = _COMMON_TOGGLES + """
#ifdef CT_THREADS
#define NWARPS (THREADS / 32)
#else
#define NWARPS 16
#endif

__global__ void pivScoresWarpSpec(const float* imgA, const float* imgB,
                                  const int* winX, const int* winY,
                                  float* scores, int imgW, int maskW,
                                  int maskH, int offsW, int offsH,
                                  int centerX, int centerY, int rb) {
    __shared__ float lanes[SMEM_THREADS];
    __shared__ float warpSum[NWARPS * RB_MAX];
    int w = blockIdx.x;
    int wx = winX[w];
    int wy = winY[w];
    int nOffsets = OFFS_W_VAL * OFFS_H_VAL;
    int maskPix = MASK_W_VAL * MASK_H_VAL;
    int lane = threadIdx.x % 32;
    int warp = threadIdx.x / 32;
    int nWarps = THREADS_VAL / 32;

    #pragma unroll 1
    for (int obase = 0; obase < nOffsets; obase += RB_VAL) {
        float acc[RB_MAX];
        int dy[RB_MAX];
        int dx[RB_MAX];
        for (int r = 0; r < RB_VAL; r++) {
            int o = obase + r;
            int oc = o < nOffsets ? o : nOffsets - 1;
            dy[r] = oc / OFFS_W_VAL - centerY;
            dx[r] = oc % OFFS_W_VAL - centerX;
            acc[r] = 0.0f;
        }
        #pragma unroll 1
        for (int i = threadIdx.x; i < maskPix; i += THREADS_VAL) {
            int py = i / MASK_W_VAL;
            int px = i % MASK_W_VAL;
            float a = imgA[(wy + py) * imgW + wx + px];
            for (int r = 0; r < RB_VAL; r++) {
                float b = imgB[(wy + py + dy[r]) * imgW
                               + wx + px + dx[r]];
                float d = a - b;
                acc[r] += d * d;
            }
        }
        // Warp-synchronous lane reduction: no barriers below warp width.
        for (int r = 0; r < RB_VAL; r++) {
            lanes[threadIdx.x] = acc[r];
            if (lane < 16) lanes[threadIdx.x] += lanes[threadIdx.x + 16];
            if (lane < 8) lanes[threadIdx.x] += lanes[threadIdx.x + 8];
            if (lane < 4) lanes[threadIdx.x] += lanes[threadIdx.x + 4];
            if (lane < 2) lanes[threadIdx.x] += lanes[threadIdx.x + 2];
            if (lane < 1) {
                warpSum[warp * RB_MAX + r]
                    = lanes[threadIdx.x] + lanes[threadIdx.x + 1];
            }
        }
        __syncthreads();
        // The first warp alone combines per-warp partials: lane r owns
        // offset obase+r (RB <= 32 by construction).
        if (warp == 0 && lane < RB_VAL) {
            float total = 0.0f;
            #pragma unroll 1
            for (int v = 0; v < nWarps; v++) {
                total += warpSum[v * RB_MAX + lane];
            }
            if (obase + lane < nOffsets) {
                scores[w * nOffsets + obase + lane] = total;
            }
        }
        __syncthreads();
    }
}
"""

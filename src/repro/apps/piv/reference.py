"""Functional reference and window placement for PIV."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class PIVProblem:
    """One PIV problem instance (Tables 6.2-6.6 shape).

    ``mask`` is the interrogation-window (mask) edge in pixels;
    ``offs`` the number of search offsets per axis (so the search range
    is ±offs//2); ``overlap`` the window overlap in pixels.
    """

    name: str
    img_h: int
    img_w: int
    mask: int
    offs: int
    overlap: int = 0

    @property
    def n_offsets(self) -> int:
        return self.offs * self.offs

    @property
    def mask_pixels(self) -> int:
        return self.mask * self.mask

    @property
    def step(self) -> int:
        return max(self.mask - self.overlap, 1)

    def window_origins(self) -> Tuple[np.ndarray, np.ndarray]:
        """(xs, ys) of every window origin, int32, margin-safe."""
        margin = self.offs // 2 + 1
        ys: List[int] = []
        xs: List[int] = []
        y = margin
        while y + self.mask + margin <= self.img_h:
            x = margin
            while x + self.mask + margin <= self.img_w:
                ys.append(y)
                xs.append(x)
                x += self.step
            y += self.step
        return (np.asarray(xs, np.int32), np.asarray(ys, np.int32))

    @property
    def n_windows(self) -> int:
        return len(self.window_origins()[0])


def ssd_scores(img_a: np.ndarray, img_b: np.ndarray,
               problem: PIVProblem) -> np.ndarray:
    """Reference SSD score volume: (n_windows, offs*offs) float32.

    Figure 5.10: per mask and offset, the sum of squared differences
    between the mask in A and the displaced window in B.
    """
    xs, ys = problem.window_origins()
    m = problem.mask
    c = problem.offs // 2
    scores = np.zeros((len(xs), problem.n_offsets), np.float64)
    for w, (wx, wy) in enumerate(zip(xs, ys)):
        a = img_a[wy : wy + m, wx : wx + m].astype(np.float64)
        for o in range(problem.n_offsets):
            dy = o // problem.offs - c
            dx = o % problem.offs - c
            b = img_b[wy + dy : wy + dy + m,
                      wx + dx : wx + dx + m].astype(np.float64)
            scores[w, o] = ((a - b) ** 2).sum()
    return scores.astype(np.float32)


def displacement_field(scores: np.ndarray,
                       problem: PIVProblem) -> np.ndarray:
    """Per-window (dy, dx) at the SSD minimum: (n_windows, 2) int32."""
    c = problem.offs // 2
    best = np.argmin(scores, axis=1)
    dy = best // problem.offs - c
    dx = best % problem.offs - c
    return np.stack([dy, dx], axis=1).astype(np.int32)

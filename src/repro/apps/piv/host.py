"""PIV host driver.

Runs one PIV problem on the simulated GPU with a chosen kernel variant
(tree-reduction or warp-specialized), register blocking factor, and
thread count, in either RE or SK compilation regime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.apps.piv import kernels as K
from repro.apps.piv.reference import PIVProblem
from repro.gpupf.cache import KernelCache
from repro.gpusim import GPU, DeviceSpec
from repro.kernelc.templates import specialization_defines
from repro.runtime.context import ExecutionContext, current_context

RB_MAX = 16


@dataclass(frozen=True)
class PIVConfig:
    """Implementation parameters (Table 6.7)."""

    variant: str = "tree"  # 'tree' | 'warpspec'
    rb: int = 4            # data registers (register blocking factor)
    threads: int = 128
    specialize: bool = True
    functional: bool = True
    sample_blocks: int = 4
    engine: Optional[str] = None  # simulator engine (None = default)

    def __post_init__(self):
        if self.variant not in ("tree", "warpspec"):
            raise ValueError(f"unknown PIV variant {self.variant!r}")
        if not 1 <= self.rb <= RB_MAX:
            raise ValueError(f"rb must be in [1, {RB_MAX}]")
        if self.threads % 32:
            raise ValueError("threads must be a multiple of the warp")


@dataclass
class PIVResult:
    scores: Optional[np.ndarray]
    vectors: Optional[np.ndarray]
    kernel_seconds: float
    transfer_seconds: float
    reg_count: int
    occupancy: float

    @property
    def total_seconds(self) -> float:
        return self.kernel_seconds + self.transfer_seconds


class PIVProcessor:
    """Compile-and-run harness for the PIV kernels."""

    def __init__(self, problem: PIVProblem,
                 config: Optional[PIVConfig] = None,
                 device: Optional[DeviceSpec] = None,
                 gpu: Optional[GPU] = None,
                 cache: Optional[KernelCache] = None,
                 context: Optional[ExecutionContext] = None):
        self.ctx = (context or getattr(gpu, "ctx", None)
                    or current_context())
        self.problem = problem
        self.config = config or PIVConfig()
        self.gpu = gpu or GPU(device or self.ctx.device,
                              context=self.ctx)
        self.cache = cache or self.ctx.kernel_cache
        self.kernel = self._compile()

    def _compile(self):
        cfg, p = self.config, self.problem
        source = K.TREE_SRC if cfg.variant == "tree" else K.WARPSPEC_SRC
        entry = "pivScores" if cfg.variant == "tree" \
            else "pivScoresWarpSpec"
        defines: Dict[str, object] = {"RB_MAX": RB_MAX}
        if cfg.specialize:
            defines.update(specialization_defines({
                "MASK_W": p.mask, "MASK_H": p.mask,
                "OFFS_W": p.offs, "OFFS_H": p.offs,
                "RB": cfg.rb, "THREADS": cfg.threads,
            }))
        module = self.cache.compile(source, defines=defines,
                                    arch=self.gpu.spec.arch)
        return module.kernel(entry)

    def run(self, img_a: np.ndarray, img_b: np.ndarray) -> PIVResult:
        """Score every window; returns vectors when functional."""
        p, cfg = self.problem, self.config
        if img_a.shape != (p.img_h, p.img_w):
            raise ValueError("image shape does not match the problem")
        xs, ys = p.window_origins()
        n_windows = len(xs)
        if n_windows == 0:
            raise ValueError("problem yields no interrogation windows")
        gpu = self.gpu
        d_a = gpu.alloc_array(np.ascontiguousarray(img_a, np.float32))
        d_b = gpu.alloc_array(np.ascontiguousarray(img_b, np.float32))
        d_xs = gpu.alloc_array(xs)
        d_ys = gpu.alloc_array(ys)
        d_scores = gpu.zeros(n_windows * p.n_offsets, np.float32)
        center = p.offs // 2
        result = gpu.launch(
            self.kernel, grid=n_windows, block=cfg.threads,
            args=[d_a, d_b, d_xs, d_ys, d_scores, p.img_w, p.mask,
                  p.mask, p.offs, p.offs, center, center, cfg.rb],
            functional=cfg.functional,
            sample_blocks=cfg.sample_blocks,
            engine=cfg.engine)
        transfer = (img_a.nbytes + img_b.nbytes + xs.nbytes + ys.nbytes) \
            / 5.7e9 + 2e-5
        scores = vectors = None
        if cfg.functional:
            scores = gpu.memcpy_dtoh(d_scores, np.float32,
                                     n_windows * p.n_offsets) \
                .reshape(n_windows, p.n_offsets)
            from repro.apps.piv.reference import displacement_field
            vectors = displacement_field(scores, p)
            transfer += scores.nbytes / 5.7e9
        for addr in (d_a, d_b, d_xs, d_ys, d_scores):
            gpu.free(addr)
        return PIVResult(scores=scores, vectors=vectors,
                         kernel_seconds=result.seconds,
                         transfer_seconds=transfer,
                         reg_count=self.kernel.reg_count,
                         occupancy=result.timing.occupancy_fraction)


def run_piv(problem: PIVProblem, img_a, img_b,
            config: Optional[PIVConfig] = None,
            device: Optional[DeviceSpec] = None,
            cache: Optional[KernelCache] = None,
            context: Optional[ExecutionContext] = None) -> PIVResult:
    """One-shot convenience wrapper."""
    return PIVProcessor(problem, config, device, cache=cache,
                        context=context).run(img_a, img_b)

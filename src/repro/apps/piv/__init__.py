"""Particle image velocimetry (dissertation §5.2).

Sum-of-squared-differences matching of interrogation windows between an
image pair, with register blocking and warp-specialized reduction as
the headline specialization knobs.
"""

from repro.apps.piv.host import PIVConfig, PIVProcessor, PIVResult, run_piv
from repro.apps.piv.reference import (PIVProblem, displacement_field,
                                      ssd_scores)

__all__ = ["PIVProblem", "PIVConfig", "PIVProcessor", "PIVResult",
           "run_piv", "ssd_scores", "displacement_field"]

"""PIV problem sets (Tables 6.2-6.7), scaled.

The FPGA-comparison sets (Tables 6.2/6.3) pair interrogation-window and
image dimensions with mask/offset counts; the V1-V5 sets vary one axis
at a time: mask size (Table 6.4), search offsets (Table 6.5), and
window overlap (Table 6.6).  Linear dimensions are scaled to 1/4 of the
dissertation's (640×480 images → 160×120) so the pure-Python simulator
stays tractable; every bench prints SCALE_NOTE.
"""

from __future__ import annotations

from typing import List

from repro.apps.piv.reference import PIVProblem

SCALE_NOTE = ("PIV problems at 1/4 linear scale of Tables 6.2-6.6 "
              "(160x120 images); shape, not absolute rate, is the "
              "reproduction target")

#: FPGA benchmark set (Tables 6.2/6.3): window/offset combinations the
#: FPGA implementation was built for.
FPGA_SET: List[PIVProblem] = [
    PIVProblem("F1", 120, 160, mask=8, offs=5, overlap=0),
    PIVProblem("F2", 120, 160, mask=8, offs=9, overlap=0),
    PIVProblem("F3", 120, 160, mask=16, offs=5, overlap=0),
    PIVProblem("F4", 120, 160, mask=16, offs=9, overlap=8),
    PIVProblem("F5", 120, 160, mask=16, offs=13, overlap=8),
]

#: Table 6.4: impact of mask size (V1-V5 hold offsets/overlap fixed).
MASK_SET: List[PIVProblem] = [
    PIVProblem("V1", 120, 160, mask=8, offs=9, overlap=0),
    PIVProblem("V2", 120, 160, mask=12, offs=9, overlap=0),
    PIVProblem("V3", 120, 160, mask=16, offs=9, overlap=0),
    PIVProblem("V4", 120, 160, mask=20, offs=9, overlap=0),
    PIVProblem("V5", 120, 160, mask=24, offs=9, overlap=0),
]

#: Table 6.5: impact of the number of search offsets.
SEARCH_SET: List[PIVProblem] = [
    PIVProblem("S1", 120, 160, mask=16, offs=5, overlap=0),
    PIVProblem("S2", 120, 160, mask=16, offs=7, overlap=0),
    PIVProblem("S3", 120, 160, mask=16, offs=9, overlap=0),
    PIVProblem("S4", 120, 160, mask=16, offs=11, overlap=0),
    PIVProblem("S5", 120, 160, mask=16, offs=13, overlap=0),
]

#: Table 6.6: impact of interrogation-window overlap.
OVERLAP_SET: List[PIVProblem] = [
    PIVProblem("O1", 120, 160, mask=16, offs=9, overlap=0),
    PIVProblem("O2", 120, 160, mask=16, offs=9, overlap=4),
    PIVProblem("O3", 120, 160, mask=16, offs=9, overlap=8),
    PIVProblem("O4", 120, 160, mask=16, offs=9, overlap=12),
]

#: Table 6.7: implementation parameters benchmarked.
RB_VALUES = [1, 2, 4, 8, 16]
THREAD_COUNTS = [32, 64, 128, 256]

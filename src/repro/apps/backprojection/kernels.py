"""Cone-beam backprojection kernel (§5.3).

FDK-style voxel-driven backprojection over a circular trajectory
(Figure 5.13): each thread owns one (x, y) column and marches along z
in batches of ``ZB`` voxels, accumulating bilinearly-interpolated
detector samples across all projections.  Per-projection trigonometry
arrives pre-computed in constant memory, as real implementations do.

Specialization parameters (§5.3.1): the volume dimensions (``NX``/
``NY``/``NZ``), projection count (``NPROJ``), detector geometry, and
the per-thread z register-blocking factor ``ZB`` — with them fixed, the
projection loop unrolls, the voxel→detector index arithmetic constant-
folds, and the z-batch accumulators scalarize into registers.  Run-time
evaluated, everything stays in the loop-and-guard regime and the
accumulators spill to local memory.
"""

from repro.kernelc.templates import ctrt_block

BACKPROJECT_SRC = ctrt_block({
    "NX": "nx",
    "NY": "ny",
    "NZ": "nz",
    "NPROJ": "nProj",
    "DET_U": "detU",
    "DET_V": "detV",
    "ZB": "zb",
}) + """
#ifndef ZB_MAX
#define ZB_MAX 8
#endif
#ifndef MAX_PROJ
#define MAX_PROJ 128
#endif

__constant__ float cosTable[MAX_PROJ];
__constant__ float sinTable[MAX_PROJ];

// The projection stack, bound as one tall 2D texture of
// (NPROJ * DET_V) rows by DET_U columns, for the texture-path variant.
texture<float, 2> projTex;

__global__ void backproject(const float* proj, float* volume, int nx,
                            int ny, int nz, int nProj, int detU,
                            int detV, float srcDist, float sumDist,
                            float invDetSp, float halfU, float halfV,
                            int zb) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    int y = blockIdx.y * blockDim.y + threadIdx.y;
    if (x >= NX_VAL || y >= NY_VAL) return;

    float fx = 2.0f * (float)x / (float)(NX_VAL - 1) - 1.0f;
    float fy = 2.0f * (float)y / (float)(NY_VAL - 1) - 1.0f;

    #pragma unroll 1
    for (int zbase = 0; zbase < NZ_VAL; zbase += ZB_VAL) {
        float acc[ZB_MAX];
        for (int r = 0; r < ZB_VAL; r++) {
            acc[r] = 0.0f;
        }
        for (int p = 0; p < NPROJ_VAL; p++) {
            float cosT = cosTable[p];
            float sinT = sinTable[p];
            // Voxel in the rotated source frame.
            float s = fx * cosT + fy * sinT;
            float t = fy * cosT - fx * sinT;
            float depth = srcDist - s;
            float mag = sumDist / depth;
            float u = t * mag * invDetSp + halfU;
            float uf = floorf(u);
            int u0 = (int)uf;
            float fu = u - uf;
            if (u0 >= 0 && u0 < DET_U_VAL - 1) {
                float w = mag * mag;
                for (int r = 0; r < ZB_VAL; r++) {
                    int z = zbase + r;
                    float fz = 2.0f * (float)z / (float)(NZ_VAL - 1)
                             - 1.0f;
                    float v = fz * mag * invDetSp + halfV;
                    float vf = floorf(v);
                    int v0 = (int)vf;
                    float fv = v - vf;
                    if (v0 >= 0 && v0 < DET_V_VAL - 1) {
                        int base = (p * DET_V_VAL + v0) * DET_U_VAL + u0;
                        float s00 = proj[base];
                        float s01 = proj[base + 1];
                        float s10 = proj[base + DET_U_VAL];
                        float s11 = proj[base + DET_U_VAL + 1];
                        float row0 = s00 + fu * (s01 - s00);
                        float row1 = s10 + fu * (s11 - s10);
                        acc[r] += w * (row0 + fv * (row1 - row0));
                    }
                }
            }
        }
        for (int r = 0; r < ZB_VAL; r++) {
            int z = zbase + r;
            if (z < NZ_VAL) {
                volume[(z * NY_VAL + y) * NX_VAL + x] = acc[r];
            }
        }
    }
}
"""

BACKPROJECT_TEX_SRC = BACKPROJECT_SRC.replace(
    "__global__ void backproject(",
    "__global__ void backprojectTex(").replace("""                    if (v0 >= 0 && v0 < DET_V_VAL - 1) {
                        int base = (p * DET_V_VAL + v0) * DET_U_VAL + u0;
                        float s00 = proj[base];
                        float s01 = proj[base + 1];
                        float s10 = proj[base + DET_U_VAL];
                        float s11 = proj[base + DET_U_VAL + 1];
                        float row0 = s00 + fu * (s01 - s00);
                        float row1 = s10 + fu * (s11 - s10);
                        acc[r] += w * (row0 + fv * (row1 - row0));
                    }""", """                    if (v0 >= 0 && v0 < DET_V_VAL - 1) {
                        // One linearly-filtered fetch replaces the
                        // four loads + seven FLOPs of manual bilinear
                        // interpolation — the era's standard trick.
                        float ty = (float)(p * DET_V_VAL) + v + 0.5f;
                        acc[r] += w * tex2D(projTex, u + 0.5f, ty);
                    }""")

"""Backprojection problem/configuration sets (Tables 6.8/6.9), scaled.

The dissertation reconstructs clinical-scale volumes (hundreds of
projections onto 512-class grids); here volumes are 24-40 voxels per
edge with 24-48 projections so the pure-Python SIMT interpreter stays
tractable.  Per-voxel-per-projection work is identical.
"""

from __future__ import annotations

from typing import List

from repro.apps.backprojection.host import BPConfig, BPProblem

SCALE_NOTE = ("backprojection problems scaled to ~1/16 linear size of "
              "Table 6.8; per-voxel work is unchanged")

PROBLEMS: List[BPProblem] = [
    BPProblem("B1", nx=24, ny=24, nz=16, n_proj=24, det_u=36, det_v=24),
    BPProblem("B2", nx=32, ny=32, nz=24, n_proj=36, det_u=48, det_v=32),
]

#: Table 6.9: implementation parameters benchmarked.
BLOCK_SHAPES = [(8, 8), (16, 8), (32, 4), (16, 16)]
ZB_VALUES = [1, 2, 4, 8]

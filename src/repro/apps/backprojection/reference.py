"""Functional reference and OpenMP-CPU model for backprojection."""

from __future__ import annotations

import numpy as np

from repro.baselines.cpu import CPUSpec, XEON_2008, cpu_time
from repro.data.phantom import ConeBeamGeometry


def backproject_reference(projections: np.ndarray,
                          geom: ConeBeamGeometry, nx: int, ny: int,
                          nz: int) -> np.ndarray:
    """Vectorized NumPy backprojection, bit-identical math to the kernel.

    Returns the (nz, ny, nx) float32 volume.
    """
    xs = (2.0 * np.arange(nx) / (nx - 1) - 1.0).astype(np.float32)
    ys = (2.0 * np.arange(ny) / (ny - 1) - 1.0).astype(np.float32)
    zs = (2.0 * np.arange(nz) / (nz - 1) - 1.0).astype(np.float32)
    fy, fx = np.meshgrid(ys, xs, indexing="ij")
    volume = np.zeros((nz, ny, nx), np.float32)
    inv_sp = np.float32(1.0 / geom.det_spacing)
    half_u = np.float32((geom.det_u - 1) / 2.0)
    half_v = np.float32((geom.det_v - 1) / 2.0)
    sum_dist = np.float32(geom.source_dist + geom.det_dist)
    src = np.float32(geom.source_dist)
    for p, theta in enumerate(geom.angles()):
        cos_t = np.float32(np.cos(theta))
        sin_t = np.float32(np.sin(theta))
        s = fx * cos_t + fy * sin_t
        t = fy * cos_t - fx * sin_t
        mag = sum_dist / (src - s)
        u = t * mag * inv_sp + half_u
        uf = np.floor(u)
        u0 = uf.astype(np.int32)
        fu = u - uf
        u_ok = (u0 >= 0) & (u0 < geom.det_u - 1)
        u0c = np.clip(u0, 0, geom.det_u - 2)
        w = mag * mag
        sheet = projections[p]
        for zi, fz in enumerate(zs):
            v = fz * mag * inv_sp + half_v
            vf = np.floor(v)
            v0 = vf.astype(np.int32)
            fv = v - vf
            v_ok = u_ok & (v0 >= 0) & (v0 < geom.det_v - 1)
            v0c = np.clip(v0, 0, geom.det_v - 2)
            s00 = sheet[v0c, u0c]
            s01 = sheet[v0c, u0c + 1]
            s10 = sheet[v0c + 1, u0c]
            s11 = sheet[v0c + 1, u0c + 1]
            row0 = s00 + fu * (s01 - s00)
            row1 = s10 + fu * (s11 - s10)
            value = w * (row0 + fv * (row1 - row0))
            volume[zi] += np.where(v_ok, value, 0.0).astype(np.float32)
    return volume


def cpu_backproject_seconds(nx: int, ny: int, nz: int, n_proj: int,
                            spec: CPUSpec = XEON_2008,
                            threads: int = 4) -> float:
    """Modeled OpenMP CPU backprojection time (Table 6.12 baseline).

    Per voxel per projection: ~20 float ops (rotation, magnification,
    two bilinear interpolations) plus 4 detector reads that mostly miss
    cache at full volume sizes.
    """
    voxels = nx * ny * nz
    flops = 20.0 * voxels * n_proj
    bytes_moved = 4.0 * 4 * voxels * n_proj * 0.25  # partial locality
    return cpu_time(spec, flops, bytes_moved, threads)

"""Cone-beam backprojection (dissertation §5.3)."""

from repro.apps.backprojection.host import (Backprojector, BPConfig,
                                            BPProblem, BPResult)
from repro.apps.backprojection.reference import (backproject_reference,
                                                 cpu_backproject_seconds)

__all__ = ["Backprojector", "BPProblem", "BPConfig", "BPResult",
           "backproject_reference", "cpu_backproject_seconds"]

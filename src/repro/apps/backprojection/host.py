"""Backprojection host driver."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.backprojection import kernels as K
from repro.data.phantom import ConeBeamGeometry
from repro.gpupf.cache import KernelCache
from repro.gpusim import GPU, DeviceSpec
from repro.kernelc.templates import specialization_defines
from repro.runtime.context import ExecutionContext, current_context

ZB_MAX = 8
MAX_PROJ = 128


@dataclass(frozen=True)
class BPProblem:
    """Volume + scan geometry (Table 6.8 shape)."""

    name: str
    nx: int
    ny: int
    nz: int
    n_proj: int
    det_u: int
    det_v: int

    def geometry(self) -> ConeBeamGeometry:
        return ConeBeamGeometry(n_proj=self.n_proj, det_u=self.det_u,
                                det_v=self.det_v)

    @property
    def voxels(self) -> int:
        return self.nx * self.ny * self.nz


@dataclass(frozen=True)
class BPConfig:
    """Implementation parameters (Table 6.9).

    ``use_texture`` selects the texture-path kernel: the projection
    stack is bound as a linearly-filtered 2D texture and the manual
    bilinear interpolation collapses to one ``tex2D`` per sample.
    """

    block_x: int = 16
    block_y: int = 8
    zb: int = 4
    specialize: bool = True
    use_texture: bool = False
    functional: bool = True
    sample_blocks: int = 4
    engine: Optional[str] = None  # simulator engine (None = default)

    def __post_init__(self):
        if not 1 <= self.zb <= ZB_MAX:
            raise ValueError(f"zb must be in [1, {ZB_MAX}]")


@dataclass
class BPResult:
    volume: Optional[np.ndarray]
    kernel_seconds: float
    transfer_seconds: float
    reg_count: int
    occupancy: float

    @property
    def total_seconds(self) -> float:
        return self.kernel_seconds + self.transfer_seconds


class Backprojector:
    """Compile-and-run harness for the backprojection kernel."""

    def __init__(self, problem: BPProblem,
                 config: Optional[BPConfig] = None,
                 device: Optional[DeviceSpec] = None,
                 gpu: Optional[GPU] = None,
                 cache: Optional[KernelCache] = None,
                 context: Optional[ExecutionContext] = None):
        if problem.n_proj > MAX_PROJ:
            raise ValueError(f"n_proj exceeds MAX_PROJ={MAX_PROJ}")
        self.ctx = (context or getattr(gpu, "ctx", None)
                    or current_context())
        self.problem = problem
        self.config = config or BPConfig()
        self.gpu = gpu or GPU(device or self.ctx.device,
                              context=self.ctx)
        self.cache = cache or self.ctx.kernel_cache
        self.module, self.kernel = self._compile()

    def _compile(self):
        p, cfg = self.problem, self.config
        defines = {"ZB_MAX": ZB_MAX, "MAX_PROJ": MAX_PROJ}
        if cfg.specialize:
            defines.update(specialization_defines({
                "NX": p.nx, "NY": p.ny, "NZ": p.nz, "NPROJ": p.n_proj,
                "DET_U": p.det_u, "DET_V": p.det_v, "ZB": cfg.zb,
            }))
        source = K.BACKPROJECT_TEX_SRC if cfg.use_texture \
            else K.BACKPROJECT_SRC
        entry = "backprojectTex" if cfg.use_texture else "backproject"
        module = self.cache.compile(source, defines=defines,
                                    arch=self.gpu.spec.arch)
        return module, module.kernel(entry)

    def run(self, projections: np.ndarray) -> BPResult:
        p, cfg = self.problem, self.config
        geom = p.geometry()
        if projections.shape != (p.n_proj, p.det_v, p.det_u):
            raise ValueError("projection stack shape mismatch")
        gpu = self.gpu
        angles = geom.angles()
        gpu.memcpy_to_symbol(self.module, "cosTable",
                             np.cos(angles).astype(np.float32))
        gpu.memcpy_to_symbol(self.module, "sinTable",
                             np.sin(angles).astype(np.float32))
        d_proj = gpu.alloc_array(
            np.ascontiguousarray(projections, np.float32))
        if cfg.use_texture:
            gpu.bind_texture(self.module, "projTex", d_proj,
                             width=p.det_u,
                             height=p.n_proj * p.det_v,
                             filter="linear", address="clamp")
        d_vol = gpu.zeros(p.voxels, np.float32)
        grid = (math.ceil(p.nx / cfg.block_x),
                math.ceil(p.ny / cfg.block_y))
        result = gpu.launch(
            self.kernel, grid=grid, block=(cfg.block_x, cfg.block_y),
            args=[d_proj, d_vol, p.nx, p.ny, p.nz, p.n_proj, p.det_u,
                  p.det_v, geom.source_dist,
                  geom.source_dist + geom.det_dist,
                  1.0 / geom.det_spacing, (p.det_u - 1) / 2.0,
                  (p.det_v - 1) / 2.0, cfg.zb],
            functional=cfg.functional, sample_blocks=cfg.sample_blocks,
            engine=cfg.engine)
        transfer = projections.nbytes / 5.7e9 + 2e-5
        volume = None
        if cfg.functional:
            volume = gpu.memcpy_dtoh(d_vol, np.float32, p.voxels) \
                .reshape(p.nz, p.ny, p.nx)
            transfer += volume.nbytes / 5.7e9
        gpu.free(d_proj)
        gpu.free(d_vol)
        return BPResult(volume=volume, kernel_seconds=result.seconds,
                        transfer_seconds=transfer,
                        reg_count=self.kernel.reg_count,
                        occupancy=result.timing.occupancy_fraction)

"""Shared declarative run protocol for the three paper applications.

Every app host (PIV, template matching, backprojection) is wrapped in
an :class:`AppHarness` that speaks one picklable vocabulary:

* :class:`ProblemSpec` — *what* to run: the app id, the app's frozen
  problem dataclass, a device registry key, and the RNG seed from
  which the harness regenerates the input arrays deterministically.
  Shipping seeds instead of arrays keeps payloads tiny and process
  workers bit-identical to inline runs.
* :class:`RunRequest` — a spec plus the app's frozen config dataclass
  and an optional :class:`~repro.faults.FaultPlan`; everything a
  worker needs to reproduce one evaluation from scratch.
* :class:`RunResult` — timing, register/occupancy metadata, the
  functional output array (when requested), the run context's cache
  counters, and the fault-injector summary.

:func:`run_request` is the single entry point: it builds a fresh
:class:`~repro.runtime.context.ExecutionContext` for the request's
device, re-installs the seeded fault injector from the shipped plan
(the chaos-under-process-pool contract — hooks are context state and
never survive into a spawned worker by themselves), and executes under
that context.  Identical requests therefore produce bit-identical
results whether evaluated inline, on a thread, or in a spawned
subprocess.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.apps.backprojection import Backprojector, BPConfig, BPProblem
from repro.apps.piv import PIVConfig, PIVProblem, PIVProcessor
from repro.apps.template_matching import (MatchConfig, MatchProblem,
                                          TemplateMatcher)
from repro.data import particle_image_pair, template_sequence
from repro.faults.errors import DeadlineExceeded
from repro.faults.plan import FaultPlan
from repro.gpusim import DEVICES, GPU
from repro.obs.trace import TraceContext
from repro.runtime.context import (ExecutionContext, current_context,
                                   using_context)

APP_IDS = ("piv", "template_matching", "backprojection")


@dataclass(frozen=True)
class ProblemSpec:
    """What to run: app id + problem shape + input seed + device.

    ``problem`` is the app's own frozen problem dataclass
    (:class:`PIVProblem` / :class:`MatchProblem` / :class:`BPProblem`);
    ``device`` is a key of :data:`repro.gpusim.DEVICES`.  The spec is
    fully picklable and carries no arrays: inputs regenerate from
    ``seed``.
    """

    app: str
    problem: object
    seed: int = 0
    device: str = "c2070"
    memory_bytes: int = 64 * 1024 * 1024

    def __post_init__(self):
        if self.app not in APP_IDS:
            raise ValueError(f"unknown app {self.app!r}; "
                             f"expected one of {APP_IDS}")
        if self.device not in DEVICES:
            raise ValueError(f"unknown device {self.device!r}; "
                             f"expected one of {tuple(sorted(DEVICES))}")

    def device_spec(self):
        return DEVICES[self.device]


@dataclass(frozen=True)
class RunRequest:
    """One evaluation, self-contained and picklable.

    ``config`` is the app's frozen config dataclass.  ``fault_plan``
    (not an injector — injectors hold locks and are process-local) is
    re-installed inside whatever worker executes the request.
    ``trace`` enables the worker context's :class:`~repro.obs.Tracer`
    for this evaluation; the recorded spans, metrics snapshot, and
    per-launch profiles ride the :class:`RunResult` back across the
    pickle boundary (a tracer itself never crosses processes — like
    the fault injector, it is rebuilt where the work runs).
    """

    spec: ProblemSpec
    config: object
    fault_plan: Optional[FaultPlan] = None
    trace: bool = False
    #: Absolute ``time.monotonic()`` deadline for this evaluation, or
    #: None (unbounded).  An already-expired deadline raises
    #: :class:`~repro.faults.errors.DeadlineExceeded` *before* any
    #: compile or launch happens; mid-run, the deadline rides
    #: ``ctx.deadline`` into the compile/launch retry paths, which
    #: abort (with device state rolled back) rather than back off past
    #: it.  Monotonic clocks are comparable across processes on one
    #: machine, so the serve daemon's workers honor client deadlines.
    deadline: Optional[float] = None
    #: Pre-degrade to the runtime-evaluated (RE) regime: strip kernel
    #: specialization from the config before running.  Per DESIGN.md §7
    #: the RE variant is bit-identical in results; the serve circuit
    #: breaker sets this while open so a poisoned SK compile path is
    #: skipped entirely instead of re-failing per request.
    degrade: bool = False
    #: Cross-process trace propagation (see
    #: :class:`~repro.obs.trace.TraceContext`): when set, the request
    #: is traced regardless of ``trace`` and the worker tracer is named
    #: after ``trace_ctx.trace_id``, so the supervisor can graft the
    #: shipped span tree under its own span for this request.
    trace_ctx: Optional[TraceContext] = None


@dataclass
class RunResult:
    """What one evaluation produced (picklable; arrays ship verbatim)."""

    app: str
    seconds: float
    transfer_seconds: float = 0.0
    reg_count: int = 0
    occupancy: float = 0.0
    output: Optional[np.ndarray] = None
    #: The run context's plan/gang cache counters (exact, per-run).
    counters: Dict[str, int] = field(default_factory=dict)
    #: site -> fired count from the run's injector (empty: no faults).
    faults: Dict[str, int] = field(default_factory=dict)
    #: Tracer export (``{"name", "spans"}``) for traced requests;
    #: None when the request did not set ``trace=True``.
    trace: Optional[Dict[str, object]] = None
    #: The run context's ``metrics_snapshot()`` (traced requests only).
    metrics: Optional[Dict[str, object]] = None
    #: Per-launch :class:`~repro.obs.LaunchProfile` records in launch
    #: order (traced requests only) — frozen scalar dataclasses, so
    #: they survive pickling back from process-pool workers.
    profiles: List[object] = field(default_factory=list)
    #: True when the evaluation ran pre-degraded to RE
    #: (``RunRequest.degrade`` — e.g. dispatched under an open serve
    #: circuit breaker).  Results stay bit-identical; performance
    #: metadata reflects the unspecialized variant.
    degraded: bool = False
    #: Serve bookkeeping: which worker evaluated the request, and on
    #: which dispatch attempt (1 = no redispatch).  Empty/1 outside the
    #: service.
    worker: str = ""
    attempts: int = 1
    #: Host wall-clock seconds spent inside the evaluation (as opposed
    #: to ``seconds``, the *simulated* kernel time) — what the serve
    #: supervisor's latency histograms and span grafting need.
    wall_seconds: float = 0.0
    #: Flight-recorder events recorded *during* this evaluation (traced
    #: requests only): the delta of the run context's
    #: :class:`~repro.obs.FlightRecorder` stream, shipped as plain
    #: dicts so the supervisor can fold them into its own recorder.
    events: List[Dict[str, object]] = field(default_factory=list)

    def same_output(self, other: "RunResult") -> bool:
        """Bit-identical functional output (both-None counts)."""
        if self.output is None or other.output is None:
            return self.output is None and other.output is None
        return (self.output.shape == other.output.shape
                and self.output.dtype == other.output.dtype
                and bool(np.array_equal(self.output, other.output)))


class AppHarness:
    """Declarative adapter from the run protocol onto one app host.

    Subclasses define ``app`` and the three hooks; everything above
    (context setup, fault installation, pickling) is shared.
    """

    app: str = ""

    def make_inputs(self, spec: ProblemSpec):
        """Regenerate the input arrays for *spec* (pure in the seed)."""
        raise NotImplementedError

    def sweep_config(self, axes: Mapping[str, object], *,
                     specialize: bool = True, sample_blocks: int = 2,
                     functional: bool = False,
                     engine: Optional[str] = None):
        """Translate one sweep-grid point into the app's config."""
        raise NotImplementedError

    def execute(self, spec: ProblemSpec, config,
                context: Optional[ExecutionContext] = None) -> RunResult:
        """Run one (spec, config) evaluation under *context*."""
        raise NotImplementedError

    def _gpu(self, spec: ProblemSpec,
             ctx: ExecutionContext) -> GPU:
        return GPU(spec.device_spec(), memory_bytes=spec.memory_bytes,
                   context=ctx)


class PIVHarness(AppHarness):
    app = "piv"

    def make_inputs(self, spec: ProblemSpec):
        return particle_image_pair(spec.problem.img_h,
                                   spec.problem.img_w, seed=spec.seed)

    def sweep_config(self, axes, *, specialize=True, sample_blocks=2,
                     functional=False, engine=None) -> PIVConfig:
        return PIVConfig(variant=axes.get("variant", "tree"),
                         rb=axes["rb"], threads=axes["threads"],
                         specialize=specialize, functional=functional,
                         sample_blocks=sample_blocks, engine=engine)

    def execute(self, spec, config, context=None) -> RunResult:
        ctx = context or current_context()
        img_a, img_b = self.make_inputs(spec)
        proc = PIVProcessor(spec.problem, config,
                            gpu=self._gpu(spec, ctx), context=ctx)
        r = proc.run(img_a, img_b)
        return RunResult(app=self.app, seconds=r.kernel_seconds,
                         transfer_seconds=r.transfer_seconds,
                         reg_count=r.reg_count, occupancy=r.occupancy,
                         output=r.scores)


class TemplateMatchingHarness(AppHarness):
    app = "template_matching"

    def make_inputs(self, spec: ProblemSpec):
        p = spec.problem
        frames, template, _ = template_sequence(
            p.frame_h, p.frame_w, p.tmpl_h, p.tmpl_w, p.shift_h,
            p.shift_w, n_frames=1, seed=spec.seed)
        return frames[0], template

    def sweep_config(self, axes, *, specialize=True, sample_blocks=2,
                     functional=False, engine=None) -> MatchConfig:
        tile_w, tile_h = axes["tile"]
        return MatchConfig(tile_w=tile_w, tile_h=tile_h,
                           threads=axes["threads"],
                           specialize=specialize, functional=functional,
                           sample_blocks=sample_blocks, engine=engine)

    def execute(self, spec, config, context=None) -> RunResult:
        ctx = context or current_context()
        frame, template = self.make_inputs(spec)
        matcher = TemplateMatcher(spec.problem, template, config,
                                  gpu=self._gpu(spec, ctx), context=ctx)
        r = matcher.match(frame)
        return RunResult(app=self.app, seconds=r.kernel_seconds,
                         transfer_seconds=r.transfer_seconds,
                         reg_count=matcher.numerator_reg_count(),
                         output=r.ncc if config.functional else None)


class BackprojectionHarness(AppHarness):
    app = "backprojection"

    def make_inputs(self, spec: ProblemSpec):
        p = spec.problem
        rng = np.random.default_rng(spec.seed)
        return rng.random((p.n_proj, p.det_v,
                           p.det_u)).astype(np.float32)

    def sweep_config(self, axes, *, specialize=True, sample_blocks=2,
                     functional=False, engine=None) -> BPConfig:
        block_x, block_y = axes["block"]
        return BPConfig(block_x=block_x, block_y=block_y,
                        zb=axes["zb"], specialize=specialize,
                        functional=functional,
                        sample_blocks=sample_blocks, engine=engine)

    def execute(self, spec, config, context=None) -> RunResult:
        ctx = context or current_context()
        projections = self.make_inputs(spec)
        bp = Backprojector(spec.problem, config,
                           gpu=self._gpu(spec, ctx), context=ctx)
        r = bp.run(projections)
        return RunResult(app=self.app, seconds=r.kernel_seconds,
                         transfer_seconds=r.transfer_seconds,
                         reg_count=r.reg_count, occupancy=r.occupancy,
                         output=r.volume)


HARNESSES: Dict[str, AppHarness] = {
    h.app: h for h in (PIVHarness(), TemplateMatchingHarness(),
                       BackprojectionHarness())}


def get_harness(app: str) -> AppHarness:
    try:
        return HARNESSES[app]
    except KeyError:
        raise ValueError(f"unknown app {app!r}; expected one of "
                         f"{tuple(HARNESSES)}") from None


def degrade_config(config):
    """Strip specialization from an app config: the RE regime.

    Every app config carries the ``specialize`` toggle; flipping it off
    compiles the runtime-evaluated variant, which is bit-identical in
    results (DESIGN.md §7) at unspecialized performance.  Configs
    without the toggle come back unchanged.
    """
    if getattr(config, "specialize", False):
        return dataclasses.replace(config, specialize=False)
    return config


def run_request(request: RunRequest,
                context: Optional[ExecutionContext] = None) -> RunResult:
    """Evaluate one :class:`RunRequest`; cold by default, warm on reuse.

    With ``context=None`` (the process-pool path) a fresh private
    context — kernel cache, plan/gang caches, re-seeded fault injector
    — is rebuilt from the request alone, so the result cannot depend on
    which process or thread ran it.

    Passing a *context* reuses it across requests: this is the serve
    worker's warm path, where the whole point is that the second
    identical spec hits the compiled-binary, launch-plan, gang, and
    trace caches instead of rebuilding them (§4.3's amortization
    argument, finally realized).  Warm runs are bit-identical to cold
    ones — cache hits return the exact artifacts a miss would build —
    and per-request state (fault injector, tracer, deadline) is scoped
    to the call:  ``result.counters`` always reports this request's
    cache-counter *delta*, so accounting is identical either way.
    """
    spec = request.spec
    harness = get_harness(spec.app)
    if request.deadline is not None \
            and time.monotonic() >= request.deadline:
        raise DeadlineExceeded(
            f"request deadline expired before launch "
            f"(app={spec.app})", site="before-launch")
    config = request.config
    degraded = False
    if request.degrade:
        config = degrade_config(config)
        degraded = config is not request.config
    ctx = context
    if ctx is None:
        ctx = ExecutionContext(device=spec.device_spec(),
                               name=f"run:{spec.app}")
    before = ctx.cache_counters() if context is not None else None
    injector = None
    if request.fault_plan is not None:
        injector = ctx.install_faults(request.fault_plan)
    had_tracer = ctx.tracer is not None
    tracer = None
    if request.trace or request.trace_ctx is not None:
        name = request.trace_ctx.trace_id if request.trace_ctx \
            else f"run:{spec.app}"
        tracer = ctx.enable_tracing(name)
    events_before = ctx.events.last_seq
    wall_start = time.perf_counter()
    try:
        with using_context(ctx), ctx.deadline_scope(request.deadline):
            if tracer is None:
                result = harness.execute(spec, config, context=ctx)
            else:
                attrs = {"app": spec.app, "device": spec.device,
                         "seed": spec.seed}
                if request.trace_ctx is not None:
                    attrs["trace_id"] = request.trace_ctx.trace_id
                    if request.trace_ctx.client:
                        attrs["client"] = request.trace_ctx.client
                with tracer.span(f"request:{spec.app}", "harness",
                                 **attrs) as span:
                    result = harness.execute(spec, config, context=ctx)
                    span.attrs["sim_seconds"] = result.seconds
    finally:
        if injector is not None:
            ctx.clear_faults()
        if tracer is not None and not had_tracer:
            ctx.disable_tracing()
    result.wall_seconds = time.perf_counter() - wall_start
    result.counters = ctx.cache_counters()
    if before is not None:
        result.counters = {k: result.counters[k] - before[k]
                           for k in result.counters}
    result.degraded = degraded
    if injector is not None:
        result.faults = injector.summary()
    if tracer is not None:
        result.trace = tracer.to_dict()
        result.metrics = ctx.metrics_snapshot()
        result.profiles = list(tracer.profiles)
        result.events = ctx.events.since(events_before)
    return result

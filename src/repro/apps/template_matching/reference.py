"""Functional and CPU-baseline references for template matching.

``corr2_map`` is the MATLAB-equivalent validation oracle (§4.4.2,
Listing 5.1); ``cpu_match_seconds`` models the four-thread C
implementation of §5.1.4 (Figure 5.7: each CPU thread scans a strip of
shift offsets, accumulating the full-template correlation per offset).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.baselines.cpu import CPUSpec, XEON_2008, cpu_time
from repro.data.frames import roi_origin


def corr2_map(frame: np.ndarray, template: np.ndarray, shift_h: int,
              shift_w: int) -> np.ndarray:
    """Normalized cross-correlation over the centered search ROI.

    Equivalent to MATLAB ``corr2(A, B_window)`` per shift (Figure 5.1).

    Returns:
        (shift_h, shift_w) float32 NCC map.
    """
    th, tw = template.shape
    ry0, rx0 = roi_origin(frame.shape[0], frame.shape[1], th, tw,
                          shift_h, shift_w)
    a = template.astype(np.float64)
    a_c = a - a.mean()
    sum_a2 = (a_c * a_c).sum()
    out = np.zeros((shift_h, shift_w), np.float64)
    n = th * tw
    for sy in range(shift_h):
        for sx in range(shift_w):
            b = frame[ry0 + sy : ry0 + sy + th,
                      rx0 + sx : rx0 + sx + tw].astype(np.float64)
            num = (a_c * b).sum()
            var_b = (b * b).sum() - b.sum() ** 2 / n
            denom = np.sqrt(var_b * sum_a2)
            out[sy, sx] = num / denom if denom > 1e-12 else 0.0
    return out.astype(np.float32)


def best_shift(ncc: np.ndarray) -> Tuple[int, int]:
    """(sy, sx) of the correlation peak."""
    flat = int(np.argmax(ncc))
    return flat // ncc.shape[1], flat % ncc.shape[1]


def cpu_match_seconds(tmpl_h: int, tmpl_w: int, shift_h: int,
                      shift_w: int, n_calls: int = 1,
                      spec: CPUSpec = XEON_2008,
                      threads: int = 4) -> float:
    """Modeled time of the multithreaded C matcher for n corr2 calls.

    Per shift the CPU recomputes the full numerator and window
    statistics over the template area (Figure 5.7): ~5 float ops per
    template pixel.  The frame ROI stays cache-resident; the stream of
    template-window reads dominates DRAM traffic.
    """
    n_shifts = shift_h * shift_w
    pixels = tmpl_h * tmpl_w
    flops = 5.0 * pixels * n_shifts * n_calls
    bytes_moved = 4.0 * pixels * n_calls  # template streamed once/call
    return cpu_time(spec, flops, bytes_moved, threads)

"""Template-matching problem and configuration sets.

Table 5.1 of the dissertation lists per-patient frame counts, template
sizes (e.g. 156×116 for Patient 4) and vertical/horizontal shifts.
The patient data is not redistributable and full-size problems are
beyond a pure-Python interpreter, so each patient here keeps the
*aspect and relative ordering* of the original at 1/4 linear scale
(1/16 area; SCALE_NOTE records this for every bench header).
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.template_matching.host import MatchConfig, MatchProblem

SCALE_NOTE = ("problems scaled to 1/4 linear size of Table 5.1 "
              "(pure-Python SIMT interpreter); shapes, not absolutes, "
              "are the reproduction target")

#: Scaled stand-ins for the four patients of Table 5.1 — used by
#: functional tests (every block executes and validates).
PATIENTS: List[MatchProblem] = [
    MatchProblem("P1", frame_h=120, frame_w=160, tmpl_h=30, tmpl_w=22,
                 shift_h=9, shift_w=9, n_frames=3),
    MatchProblem("P2", frame_h=120, frame_w=160, tmpl_h=32, tmpl_w=28,
                 shift_h=7, shift_w=11, n_frames=3),
    MatchProblem("P3", frame_h=120, frame_w=160, tmpl_h=26, tmpl_w=36,
                 shift_h=11, shift_w=7, n_frames=3),
    MatchProblem("P4", frame_h=120, frame_w=160, tmpl_h=39, tmpl_w=29,
                 shift_h=9, shift_w=11, n_frames=3),
]

#: Full-size patients for the performance benches (timed via sampled
#: launches, so the interpreter only executes representative blocks).
#: Patient 4's 156x116 template is the one dimension Table 5.1 states
#: verbatim; the rest are reconstructed to the echo study's ranges and
#: marked as approximations.
PATIENTS_FULL: List[MatchProblem] = [
    MatchProblem("P1", frame_h=480, frame_w=640, tmpl_h=120, tmpl_w=88,
                 shift_h=21, shift_w=21, n_frames=30),
    MatchProblem("P2", frame_h=480, frame_w=640, tmpl_h=128, tmpl_w=112,
                 shift_h=15, shift_w=27, n_frames=40),
    MatchProblem("P3", frame_h=480, frame_w=640, tmpl_h=104, tmpl_w=144,
                 shift_h=27, shift_w=15, n_frames=35),
    MatchProblem("P4", frame_h=480, frame_w=640, tmpl_h=156, tmpl_w=116,
                 shift_h=21, shift_w=31, n_frames=45),
]

#: Implementation parameters benchmarked (Table 6.1): main tile sizes
#: and threads per block.
TILE_SIZES = [(8, 8), (16, 8), (8, 16), (16, 16), (32, 8), (16, 32)]
THREAD_COUNTS = [32, 64, 128, 256]


def sweep_configs(specialize: bool = True,
                  functional: bool = False) -> List[MatchConfig]:
    """The Table 6.1 configuration grid."""
    return [MatchConfig(tile_w=tw, tile_h=th, threads=t,
                        specialize=specialize, functional=functional)
            for (tw, th) in TILE_SIZES for t in THREAD_COUNTS]

"""Large template matching (dissertation §5.1).

Normalized cross-correlation of an echo-frame template against every
shift offset of a search ROI, implemented as a four-stage GPU pipeline
with a tiled, specializable numerator kernel.
"""

from repro.apps.template_matching.host import (MatchConfig, MatchProblem,
                                               MatchResult,
                                               TemplateMatcher,
                                               TileRegion, tile_regions)
from repro.apps.template_matching.reference import (best_shift, corr2_map,
                                                    cpu_match_seconds)

__all__ = ["TemplateMatcher", "MatchProblem", "MatchConfig",
           "MatchResult", "TileRegion", "tile_regions", "corr2_map",
           "best_shift", "cpu_match_seconds"]

"""Host pipeline for template matching, built on GPU-PF.

:class:`TemplateMatcher` assembles a GPU-PF pipeline for one
(problem, configuration) pair:

* upload the ROI crop and mean-subtracted template,
* one ``numeratorPartial`` launch per template tile region
  (main / right / bottom / corner — Figure 5.4), each with its own
  specialized module when ``config.specialize`` is on,
* ``combinePartials``, the separable window sums, ``normalizeNcc``,
* download of the NCC map.

Runtime operation (§5.1.3.4): new frames stream through the same
realized pipeline; only the host array changes between iterations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.template_matching import kernels as K
from repro.data.frames import roi_origin
from repro.gpupf import KernelCache, Pipeline
from repro.gpusim import GPU, DeviceSpec
from repro.kernelc.templates import specialization_defines
from repro.runtime.context import ExecutionContext, current_context


@dataclass(frozen=True)
class MatchProblem:
    """One patient-style problem instance (Table 5.1 shape)."""

    name: str
    frame_h: int
    frame_w: int
    tmpl_h: int
    tmpl_w: int
    shift_h: int
    shift_w: int
    n_frames: int = 2

    @property
    def n_shifts(self) -> int:
        return self.shift_h * self.shift_w

    @property
    def span(self) -> Tuple[int, int]:
        return (self.shift_h + self.tmpl_h - 1,
                self.shift_w + self.tmpl_w - 1)

    @property
    def corr2_calls(self) -> int:
        return self.n_frames


@dataclass(frozen=True)
class MatchConfig:
    """Implementation parameters (Table 6.1)."""

    tile_w: int = 16
    tile_h: int = 16
    threads: int = 128
    specialize: bool = True
    functional: bool = True
    sample_blocks: int = 4
    engine: Optional[str] = None  # simulator engine (None = default)


@dataclass(frozen=True)
class TileRegion:
    """One uniform-tile region of the template decomposition."""

    x0: int
    y0: int
    tile_w: int
    tile_h: int
    tiles_x: int
    tiles_y: int

    @property
    def count(self) -> int:
        return self.tiles_x * self.tiles_y


def tile_regions(tmpl_w: int, tmpl_h: int, tile_w: int,
                 tile_h: int) -> List[TileRegion]:
    """Decompose the template into main + edge regions (Figure 5.4)."""
    tile_w = min(tile_w, tmpl_w)
    tile_h = min(tile_h, tmpl_h)
    main_x = tmpl_w // tile_w
    main_y = tmpl_h // tile_h
    rem_w = tmpl_w - main_x * tile_w
    rem_h = tmpl_h - main_y * tile_h
    regions = [TileRegion(0, 0, tile_w, tile_h, main_x, main_y)]
    if rem_w:
        regions.append(TileRegion(main_x * tile_w, 0, rem_w, tile_h,
                                  1, main_y))
    if rem_h:
        regions.append(TileRegion(0, main_y * tile_h, tile_w, rem_h,
                                  main_x, 1))
    if rem_w and rem_h:
        regions.append(TileRegion(main_x * tile_w, main_y * tile_h,
                                  rem_w, rem_h, 1, 1))
    return [r for r in regions if r.count > 0]


@dataclass
class MatchResult:
    """Output of matching one frame."""

    ncc: np.ndarray
    shift: Tuple[int, int]
    kernel_seconds: float
    transfer_seconds: float
    reg_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.kernel_seconds + self.transfer_seconds


class TemplateMatcher:
    """GPU template matcher for one problem and configuration."""

    def __init__(self, problem: MatchProblem, template: np.ndarray,
                 config: Optional[MatchConfig] = None,
                 device: Optional[DeviceSpec] = None,
                 gpu: Optional[GPU] = None,
                 cache: Optional[KernelCache] = None,
                 context: Optional[ExecutionContext] = None):
        self.ctx = (context or getattr(gpu, "ctx", None)
                    or current_context())
        self.problem = problem
        self.config = config or MatchConfig()
        self.gpu = gpu or GPU(device or self.ctx.device,
                              context=self.ctx)
        if template.shape != (problem.tmpl_h, problem.tmpl_w):
            raise ValueError("template shape does not match the problem")
        self.template_c = (template
                           - template.mean()).astype(np.float32)
        self.sum_a2 = float((self.template_c.astype(np.float64) ** 2)
                            .sum())
        self.regions = tile_regions(problem.tmpl_w, problem.tmpl_h,
                                    self.config.tile_w,
                                    self.config.tile_h)
        self.num_tiles = sum(r.count for r in self.regions)
        self.pipe = Pipeline(self.gpu, f"match-{problem.name}",
                             cache=cache, engine=self.config.engine,
                             context=self.ctx)
        self._build()

    # -- pipeline construction ---------------------------------------

    def _specialize(self, values: Dict[str, int]) -> Dict[str, object]:
        if self.config.specialize:
            return specialization_defines(values)
        return {}

    def _build(self) -> None:
        p, cfg, pipe = self.problem, self.config, self.pipe
        span_h, span_w = p.span
        max_tile = max(r.tile_w * r.tile_h for r in self.regions)
        max_area = max((r.tile_w + p.shift_w - 1)
                       * (r.tile_h + p.shift_h - 1)
                       for r in self.regions)

        roi_ext = pipe.extent_param("roi", (span_h, span_w), 4)
        tmpl_ext = pipe.extent_param("tmpl", (p.tmpl_h, p.tmpl_w), 4)
        partial_ext = pipe.extent_param(
            "partials", (self.num_tiles, p.n_shifts), 4)
        shifts_ext = pipe.extent_param("shifts", (p.n_shifts,), 4)
        col_ext = pipe.extent_param("cols", (p.shift_h, span_w), 4)

        self.h_roi = pipe.host_memory("h_roi", roi_ext,
                                      dtype=np.float32)
        self.h_tmpl = pipe.host_memory("h_tmpl", tmpl_ext,
                                       dtype=np.float32)
        self.h_ncc = pipe.host_memory("h_ncc", shifts_ext,
                                      dtype=np.float32)
        d_roi = pipe.global_memory("d_roi", roi_ext)
        d_tmpl = pipe.global_memory("d_tmpl", tmpl_ext)
        d_partial = pipe.global_memory("d_partial", partial_ext)
        d_num = pipe.global_memory("d_num", shifts_ext)
        d_col = pipe.global_memory("d_col", col_ext)
        d_col2 = pipe.global_memory("d_col2", col_ext)
        d_win = pipe.global_memory("d_win", shifts_ext)
        d_win2 = pipe.global_memory("d_win2", shifts_ext)
        d_ncc = pipe.global_memory("d_ncc", shifts_ext)

        pipe.copy("up_roi", self.h_roi, d_roi)
        pipe.copy("up_tmpl", self.h_tmpl, d_tmpl)

        # Numerator: one module/launch per tile region.
        shift_blocks = math.ceil(p.n_shifts / cfg.threads)
        tile_base = 0
        self.numerator_kernels = []
        for ri, region in enumerate(self.regions):
            defines = dict(self._specialize({
                "TILE_W": region.tile_w, "TILE_H": region.tile_h,
                "SHIFT_W": p.shift_w, "SHIFT_H": p.shift_h,
                "THREADS": cfg.threads,
            }))
            defines["MAX_TILE_PIXELS"] = max_tile
            defines["MAX_AREA_PIXELS"] = max_area
            mod = pipe.module(f"num_mod_{ri}", K.NUMERATOR_SRC,
                              defines=defines)
            kern = pipe.kernel(f"numeratorPartial_{ri}", mod,
                               "numeratorPartial")
            self.numerator_kernels.append(kern)
            pipe.kernel_exec(
                f"exec_num_{ri}", kern,
                grid=(shift_blocks, region.count), block=cfg.threads,
                args=[d_roi, d_tmpl, d_partial, span_w, p.tmpl_w,
                      region.x0, region.y0, region.tile_w,
                      region.tile_h, region.tiles_x, tile_base,
                      p.shift_w, p.shift_h],
                functional=cfg.functional,
                sample_blocks=cfg.sample_blocks)
            tile_base += region.count

        comb_mod = pipe.module(
            "comb_mod", K.COMBINE_SRC,
            defines=self._specialize({"NUM_TILES": self.num_tiles}))
        comb_kern = pipe.kernel("combinePartials", comb_mod)
        pipe.kernel_exec("exec_combine", comb_kern,
                         grid=shift_blocks, block=cfg.threads,
                         args=[d_partial, d_num, self.num_tiles,
                               p.n_shifts],
                         functional=cfg.functional,
                         sample_blocks=cfg.sample_blocks)

        win_mod = pipe.module(
            "win_mod", K.WINDOW_SUMS_SRC,
            defines=self._specialize({
                "TMPL_W": p.tmpl_w, "TMPL_H": p.tmpl_h,
                "SHIFT_W": p.shift_w}))
        col_kern = pipe.kernel("colSums", win_mod)
        win_kern = pipe.kernel("windowSums", win_mod)
        col_blocks = math.ceil(span_w / cfg.threads)
        pipe.kernel_exec("exec_colsums", col_kern,
                         grid=(col_blocks, p.shift_h),
                         block=cfg.threads,
                         args=[d_roi, d_col, d_col2, span_w, span_w,
                               p.tmpl_h],
                         functional=cfg.functional,
                         sample_blocks=cfg.sample_blocks)
        sx_blocks = math.ceil(p.shift_w / cfg.threads)
        pipe.kernel_exec("exec_winsums", win_kern,
                         grid=(sx_blocks, p.shift_h),
                         block=cfg.threads,
                         args=[d_col, d_col2, d_win, d_win2, span_w,
                               p.shift_w, p.tmpl_w],
                         functional=cfg.functional,
                         sample_blocks=cfg.sample_blocks)

        norm_mod = pipe.module("norm_mod", K.NORMALIZE_SRC)
        norm_kern = pipe.kernel("normalizeNcc", norm_mod)
        inv_n = 1.0 / (p.tmpl_h * p.tmpl_w)
        pipe.kernel_exec("exec_normalize", norm_kern,
                         grid=shift_blocks, block=cfg.threads,
                         args=[d_num, d_win, d_win2, d_ncc, p.n_shifts,
                               self.sum_a2, inv_n],
                         functional=cfg.functional,
                         sample_blocks=cfg.sample_blocks)
        pipe.copy("down_ncc", d_ncc, self.h_ncc)

    # -- execution ------------------------------------------------------

    def match(self, frame: np.ndarray) -> MatchResult:
        """Match the template against one frame; returns the NCC map."""
        p = self.problem
        ry0, rx0 = roi_origin(p.frame_h, p.frame_w, p.tmpl_h, p.tmpl_w,
                              p.shift_h, p.shift_w)
        span_h, span_w = p.span
        self.pipe.refresh()
        self.h_roi.array[:] = frame[ry0 : ry0 + span_h,
                                    rx0 : rx0 + span_w]
        self.h_tmpl.array[:] = self.template_c
        before = {name: a.simulated_seconds
                  for name, a in self.pipe.actions.items()}
        self.pipe.run(1)
        kernel_s = transfer_s = 0.0
        for name, action in self.pipe.actions.items():
            delta = action.simulated_seconds - before[name]
            if name.startswith("exec_"):
                kernel_s += delta
            else:
                transfer_s += delta
        ncc = self.h_ncc.array.reshape(p.shift_h, p.shift_w).copy()
        flat = int(np.argmax(ncc))
        regs = {k.name: k.reg_count for k in self.numerator_kernels}
        return MatchResult(
            ncc=ncc,
            shift=(flat // p.shift_w, flat % p.shift_w),
            kernel_seconds=kernel_s,
            transfer_seconds=transfer_s,
            reg_counts=regs)

    def numerator_reg_count(self) -> int:
        """Main-region numerator kernel register footprint."""
        self.pipe.refresh()
        return self.numerator_kernels[0].reg_count

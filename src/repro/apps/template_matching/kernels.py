"""Template-matching kernel sources (§5.1.3).

The pipeline has four stages:

1. **Numerator partials** (`numeratorPartial`) — the tiled kernel of
   §5.1.3.1/5.1.3.2.  The mean-subtracted template is decomposed into a
   main-tile grid plus right/bottom/corner edge regions (Figure 5.4);
   one launch per region, one block column per tile, each thread
   accumulating the tile's contribution to one shift offset
   (Figures 5.5/5.6).  With kernel specialization each region compiles
   its own kernel with the exact tile dimensions baked in; the RE
   variant takes them as arguments and must allocate worst-case shared
   memory (`MAX_TILE_PIXELS`) — the "arbitrary ceiling" §2.6 criticizes.
2. **Partial combination** (`combinePartials`) — sums tile partials per
   shift (the summation kernel of Table 6.13).
3. **Window statistics** (`colSums` + `windowSums`) — separable sliding
   sums of B and B² for the denominator (§5.1.3.3, Figure 5.2).
4. **Normalization** (`normalizeNcc`) — Figure 5.1's corr2 quotient.

Every specialization parameter follows the Appendix-B ``CT_``-toggle
pattern, so each kernel compiles both fully run-time evaluated and
specialized from the same source.
"""

from repro.kernelc.templates import ctrt_block

NUMERATOR_SRC = ctrt_block({
    "TILE_W": "tileW",
    "TILE_H": "tileH",
    "SHIFT_W": "shiftW",
    "SHIFT_H": "shiftH",
    "THREADS": "blockDim.x",
}) + """
// Shared-memory footprints.  Specialized kernels size both buffers
// exactly; the RE variant falls back to host-supplied ceilings —
// standing in for CUDA's launch-time dynamic shared memory, which is
// what an adaptable kernel must use (and which §2.5 notes is "more
// complicated and error prone"; specialization restores the simple
// static syntax, §4.1).
#ifndef MAX_TILE_PIXELS
#define MAX_TILE_PIXELS 1024
#endif
#ifndef MAX_AREA_PIXELS
#define MAX_AREA_PIXELS 4096
#endif

#ifdef CT_TILE_W
#define TILE_SMEM (TILE_W * TILE_H)
#define AREA_SMEM ((TILE_W + SHIFT_W - 1) * (TILE_H + SHIFT_H - 1))
#else
#define TILE_SMEM MAX_TILE_PIXELS
#define AREA_SMEM MAX_AREA_PIXELS
#endif

__global__ void numeratorPartial(const float* frame, const float* tmplC,
                                 float* partial, int frameW, int tmplW,
                                 int tileX0, int tileY0, int tileW,
                                 int tileH, int tilesX, int tileBase,
                                 int shiftW, int shiftH) {
    __shared__ float tile[TILE_SMEM];
    __shared__ float area[AREA_SMEM];
    int nShifts = SHIFT_W_VAL * SHIFT_H_VAL;
    int tIdx = blockIdx.y;
    int tx = tIdx % tilesX;
    int ty = tIdx / tilesX;
    int px0 = tileX0 + tx * TILE_W_VAL;
    int py0 = tileY0 + ty * TILE_H_VAL;

    // Cooperative loads: the tile's template values and its shift area
    // of the frame (Figure 5.5) both live in shared memory.
    int tpix = TILE_W_VAL * TILE_H_VAL;
    for (int i = threadIdx.x; i < tpix; i += THREADS_VAL) {
        tile[i] = tmplC[(py0 + i / TILE_W_VAL) * tmplW
                        + px0 + i % TILE_W_VAL];
    }
    int areaW = TILE_W_VAL + SHIFT_W_VAL - 1;
    int areaH = TILE_H_VAL + SHIFT_H_VAL - 1;
    int apix = areaW * areaH;
    for (int i = threadIdx.x; i < apix; i += THREADS_VAL) {
        area[i] = frame[(py0 + i / areaW) * frameW + px0 + i % areaW];
    }
    __syncthreads();

    // One thread per shift offset (Figure 5.6).
    int s = blockIdx.x * THREADS_VAL + threadIdx.x;
    if (s < nShifts) {
        int sx = s % SHIFT_W_VAL;
        int sy = s / SHIFT_W_VAL;
        float acc = 0.0f;
        for (int py = 0; py < TILE_H_VAL; py++) {
            for (int px = 0; px < TILE_W_VAL; px++) {
                acc += tile[py * TILE_W_VAL + px]
                     * area[(sy + py) * areaW + (sx + px)];
            }
        }
        partial[(tileBase + tIdx) * nShifts + s] = acc;
    }
}
"""

COMBINE_SRC = ctrt_block({
    "NUM_TILES": "numTiles",
}) + """
__global__ void combinePartials(const float* partial, float* numerator,
                                int numTiles, int nShifts) {
    int s = blockIdx.x * blockDim.x + threadIdx.x;
    if (s < nShifts) {
        float acc = 0.0f;
        for (int t = 0; t < NUM_TILES_VAL; t++) {
            acc += partial[t * nShifts + s];
        }
        numerator[s] = acc;
    }
}
"""

WINDOW_SUMS_SRC = ctrt_block({
    "TMPL_W": "tmplW",
    "TMPL_H": "tmplH",
    "SHIFT_W": "shiftW",
}) + """
__global__ void colSums(const float* frame, float* colSum,
                        float* colSum2, int frameW, int spanW,
                        int tmplH) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    int sy = blockIdx.y;
    if (x < spanW) {
        float s = 0.0f;
        float s2 = 0.0f;
        for (int dy = 0; dy < TMPL_H_VAL; dy++) {
            float v = frame[(sy + dy) * frameW + x];
            s += v;
            s2 += v * v;
        }
        colSum[sy * spanW + x] = s;
        colSum2[sy * spanW + x] = s2;
    }
}

__global__ void windowSums(const float* colSum, const float* colSum2,
                           float* winSum, float* winSum2, int spanW,
                           int shiftW, int tmplW) {
    int sx = blockIdx.x * blockDim.x + threadIdx.x;
    int sy = blockIdx.y;
    if (sx < SHIFT_W_VAL) {
        float s = 0.0f;
        float s2 = 0.0f;
        for (int dx = 0; dx < TMPL_W_VAL; dx++) {
            s += colSum[sy * spanW + sx + dx];
            s2 += colSum2[sy * spanW + sx + dx];
        }
        winSum[sy * SHIFT_W_VAL + sx] = s;
        winSum2[sy * SHIFT_W_VAL + sx] = s2;
    }
}
"""

NORMALIZE_SRC = """
__global__ void normalizeNcc(const float* numerator, const float* winSum,
                             const float* winSum2, float* ncc,
                             int nShifts, float sumA2, float invN) {
    int s = blockIdx.x * blockDim.x + threadIdx.x;
    if (s < nShifts) {
        float varB = winSum2[s] - winSum[s] * winSum[s] * invN;
        float denom = sqrtf(varB * sumA2);
        ncc[s] = denom > 1e-12f ? numerator[s] / denom : 0.0f;
    }
}
"""

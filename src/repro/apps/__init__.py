"""The three application case studies of Chapter 5.

* :mod:`repro.apps.template_matching` — large template matching (§5.1)
* :mod:`repro.apps.piv` — particle image velocimetry (§5.2)
* :mod:`repro.apps.backprojection` — cone-beam backprojection (§5.3)
"""

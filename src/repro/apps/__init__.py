"""The three application case studies of Chapter 5.

* :mod:`repro.apps.template_matching` — large template matching (§5.1)
* :mod:`repro.apps.piv` — particle image velocimetry (§5.2)
* :mod:`repro.apps.backprojection` — cone-beam backprojection (§5.3)

:mod:`repro.apps.harness` wraps all three in one picklable run
protocol (:class:`ProblemSpec` / :class:`RunRequest` /
:class:`RunResult`) for process-based sweeps.
"""

from repro.apps.harness import (APP_IDS, AppHarness, HARNESSES,
                                ProblemSpec, RunRequest, RunResult,
                                get_harness, run_request)

__all__ = ["APP_IDS", "AppHarness", "HARNESSES", "ProblemSpec",
           "RunRequest", "RunResult", "get_harness", "run_request"]

"""Command-line entry points: ``python -m repro <command>``.

Small drivers over the library for exploration without writing a
script: compile-and-inspect a kernel, run each application demo
end-to-end, and sweep a PIV configuration space.
"""

from __future__ import annotations

import argparse
import sys


def cmd_compile(args) -> int:
    """Compile a kernel file and print its PTX + resource metadata."""
    from repro.kernelc import nvcc

    with open(args.source) as fh:
        source = fh.read()
    defines = {}
    for item in args.define or []:
        if "=" in item:
            name, value = item.split("=", 1)
            try:
                defines[name] = int(value, 0)
            except ValueError:
                try:
                    defines[name] = float(value)
                except ValueError:
                    defines[name] = value
        else:
            defines[item] = 1
    module = nvcc(source, defines=defines, arch=args.arch,
                  opt_level=args.opt)
    for name, kernel in module.kernels.items():
        print(kernel.to_ptx())
        print(f"// {name}: {kernel.reg_count} registers/thread, "
              f"{kernel.shared_bytes} B shared, "
              f"{kernel.static_instructions} instructions")
    return 0


def cmd_demo(args) -> int:
    """Run one of the bundled application demos."""
    import runpy
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent.parent / "examples"
    scripts = {
        "quickstart": "quickstart.py",
        "match": "template_matching_demo.py",
        "piv": "piv_demo.py",
        "backproject": "backprojection_demo.py",
        "rowfilter": "opencv_row_filter.py",
    }
    path = root / scripts[args.name]
    runpy.run_path(str(path), run_name="__main__")
    return 0


def cmd_sweep(args) -> int:
    """Sweep the PIV (rb, threads) space and print the optimum."""
    from repro.apps.piv import PIVProblem
    from repro.data.piv import particle_image_pair
    from repro.gpusim.device import DEVICES
    from repro.reporting import format_table
    from repro.tuning import best_record, peak_grid_text, piv_sweep

    device = DEVICES[args.device]
    problem = PIVProblem("cli", args.height, args.width,
                         mask=args.mask, offs=args.offs)
    img_a, img_b = particle_image_pair(args.height, args.width, seed=0)
    records = piv_sweep(problem, device, img_a, img_b,
                        rb_values=[1, 2, 4, 8],
                        thread_values=[32, 64, 128])
    headers, rows = peak_grid_text(records, "rb", "threads")
    print(format_table(headers, rows,
                       title=f"% of peak on {device.name} "
                             f"(mask {args.mask}, offsets {args.offs})"))
    best = best_record(records)
    print(f"\noptimum: rb={best.config['rb']} "
          f"threads={best.config['threads']} "
          f"({best.seconds * 1e6:.1f} us simulated, "
          f"{best.reg_count} regs, occupancy {best.occupancy:.2f})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kernel-specialization reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    # Enumerated dynamically so a new DeviceSpec/arch registers itself
    # everywhere: the CLI, its --help text, and the error messages.
    from repro.gpusim.device import DEVICES
    from repro.kernelc.compiler import ARCH_MACROS

    p = sub.add_parser("compile",
                       help="compile a kernel file, print PTX")
    p.add_argument("source")
    p.add_argument("-D", "--define", action="append", metavar="N[=V]",
                   help="specialization macro (repeatable)")
    p.add_argument("--arch", default="sm_20",
                   choices=sorted(ARCH_MACROS))
    p.add_argument("-O", "--opt", type=int, default=3)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("demo", help="run a bundled demo")
    p.add_argument("name", choices=["quickstart", "match", "piv",
                                    "backproject", "rowfilter"])
    p.set_defaults(fn=cmd_demo)

    p = sub.add_parser("sweep", help="sweep PIV configurations")
    p.add_argument("--device", default="c2070",
                   choices=sorted(DEVICES))
    p.add_argument("--mask", type=int, default=16)
    p.add_argument("--offs", type=int, default=9)
    p.add_argument("--width", type=int, default=160)
    p.add_argument("--height", type=int, default=120)
    p.set_defaults(fn=cmd_sweep)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

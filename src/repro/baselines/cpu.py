"""Multicore CPU timing model for the reference implementations.

The dissertation compares against a multithreaded C template matcher
(§5.1.4, four worker threads) and an OpenMP backprojector (Table 6.12).
Functional results come from NumPy (checked against the GPU output);
timing comes from an operation-count model of a paper-era Xeon:

    time = max(compute bound, memory bound) / parallel efficiency

with compute throughput = cores × SIMD lanes × ops/cycle × clock.
This keeps the CPU-vs-GPU *ratios* in the regime the dissertation
reports (one to two orders of magnitude for these streaming kernels)
without pretending to cycle accuracy — the substitution is documented
in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUSpec:
    """A simple multicore CPU throughput model."""

    name: str
    cores: int
    clock_ghz: float
    #: Sustained scalar-equivalent float ops per cycle per core (SIMD
    #: utilization already discounted — echo kernels are not peak-FLOPS
    #: friendly).
    flops_per_cycle: float
    mem_bandwidth_gbs: float
    #: Fraction of linear speedup actually achieved by threading.
    parallel_efficiency: float = 0.85


#: The reference host of the dissertation era (Harpertown-class Xeon).
#: flops_per_cycle reflects the dissertation's baselines — plain
#: multithreaded C / OpenMP without hand-vectorization — at roughly one
#: sustained scalar float op per cycle per core.
XEON_2008 = CPUSpec(name="Xeon E5420 (4 threads)", cores=4,
                    clock_ghz=2.5, flops_per_cycle=1.0,
                    mem_bandwidth_gbs=10.0)


def cpu_time(spec: CPUSpec, flops: float, bytes_moved: float,
             threads: int = 0) -> float:
    """Estimated seconds for a data-parallel loop nest.

    Args:
        spec: CPU model.
        flops: arithmetic operations (adds+muls counted separately).
        bytes_moved: DRAM traffic (reads + writes, after cache reuse —
            callers pass their working-set-aware estimate).
        threads: worker threads (0 = all cores).
    """
    threads = threads or spec.cores
    used = min(threads, spec.cores)
    compute = flops / (used * spec.flops_per_cycle
                       * spec.clock_ghz * 1e9)
    memory = bytes_moved / (spec.mem_bandwidth_gbs * 1e9)
    return max(compute, memory) / spec.parallel_efficiency

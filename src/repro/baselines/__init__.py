"""Reference baselines: the non-GPU comparators of Chapter 6.

* :mod:`repro.baselines.cpu` — multithreaded C / OpenMP CPU model.
* :mod:`repro.baselines.fpga` — the PIV FPGA pipeline model.
"""

from repro.baselines.cpu import CPUSpec, XEON_2008, cpu_time
from repro.baselines.fpga import FPGASpec, PIV_FPGA, fpga_piv_time

__all__ = ["CPUSpec", "XEON_2008", "cpu_time", "FPGASpec", "PIV_FPGA",
           "fpga_piv_time"]

"""FPGA PIV pipeline model (the Bennis implementation of §5.2).

The dissertation's FPGA comparator is a fixed-function deep pipeline
that evaluates sum-of-squared-differences similarity scores.  Its
throughput is deterministic in the problem dimensions: a bank of
processing elements each consumes one mask pixel per cycle, one PE per
concurrently-evaluated search offset, plus a fixed per-window fill and
per-frame configuration overhead.  That makes it straightforward to
model faithfully — the FPGA's time never depends on pixel values.

The default parameters describe a mid-2000s Virtex-class part clocked
at 100 MHz with 16 offset PEs, which lands the FPGA-vs-GPU ratios in
the regime of Table 6.11 (GPUs ahead on most sets, FPGA competitive on
the smallest masks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class FPGASpec:
    """Fixed-function PIV pipeline parameters."""

    name: str
    clock_mhz: float
    #: Search offsets evaluated in parallel (one PE each).
    offset_pes: int
    #: Pipeline fill/drain cycles per interrogation window.
    window_overhead: int
    #: One-time configuration per image pair, seconds.
    frame_overhead: float


PIV_FPGA = FPGASpec(name="Virtex-4 PIV pipeline", clock_mhz=100.0,
                    offset_pes=16, window_overhead=64,
                    frame_overhead=2e-3)


def fpga_piv_time(spec: FPGASpec, n_windows: int, mask_pixels: int,
                  n_offsets: int) -> float:
    """Seconds to process one image pair on the FPGA pipeline.

    Each window requires ``ceil(n_offsets / offset_pes)`` passes over
    its mask, one pixel per cycle, plus the fill overhead.
    """
    passes = math.ceil(n_offsets / spec.offset_pes)
    cycles_per_window = passes * mask_pixels + spec.window_overhead
    cycles = n_windows * cycles_per_window
    return spec.frame_overhead + cycles / (spec.clock_mhz * 1e6)

"""Shepp-Logan-style phantom and cone-beam forward projector.

Generates the input data for the backprojection application: a 3D
ellipsoid phantom and its cone-beam projections over a circular source
trajectory (the Figure 5.13 geometry).  The forward projector is
host-side NumPy; only backprojection runs on the (simulated) GPU, as in
the dissertation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

# (x0, y0, z0, a, b, c, density) — a compact 3D Shepp-Logan variant,
# coordinates in [-1, 1].
_ELLIPSOIDS = [
    (0.0, 0.0, 0.0, 0.69, 0.92, 0.81, 1.0),
    (0.0, -0.0184, 0.0, 0.6624, 0.874, 0.78, -0.8),
    (0.22, 0.0, 0.0, 0.11, 0.31, 0.22, -0.2),
    (-0.22, 0.0, 0.0, 0.16, 0.41, 0.28, -0.2),
    (0.0, 0.35, -0.15, 0.21, 0.25, 0.41, 0.1),
    (0.0, 0.1, 0.25, 0.046, 0.046, 0.05, 0.1),
    (-0.08, -0.605, 0.0, 0.046, 0.023, 0.05, 0.1),
    (0.06, -0.605, 0.0, 0.023, 0.046, 0.02, 0.1),
]


def shepp_logan_phantom(n: int) -> np.ndarray:
    """An (n, n, n) float32 phantom volume, indexed [z, y, x]."""
    coords = np.linspace(-1.0, 1.0, n, dtype=np.float32)
    z, y, x = np.meshgrid(coords, coords, coords, indexing="ij")
    vol = np.zeros((n, n, n), np.float32)
    for (x0, y0, z0, a, b, c, rho) in _ELLIPSOIDS:
        inside = (((x - x0) / a) ** 2 + ((y - y0) / b) ** 2
                  + ((z - z0) / c) ** 2) <= 1.0
        vol[inside] += rho
    return vol


@dataclass(frozen=True)
class ConeBeamGeometry:
    """Circular cone-beam scan geometry (Figure 5.13).

    Distances are in units of the volume half-width (=1).
    """

    n_proj: int
    det_u: int
    det_v: int
    source_dist: float = 3.0
    det_dist: float = 3.0

    @property
    def magnification(self) -> float:
        return (self.source_dist + self.det_dist) / self.source_dist

    @property
    def det_spacing(self) -> float:
        # Detector sized to cover the volume with margin.
        return 2.4 * self.magnification / self.det_u

    def angles(self) -> np.ndarray:
        return np.linspace(0, 2 * np.pi, self.n_proj,
                           endpoint=False).astype(np.float32)


def forward_project(volume: np.ndarray,
                    geom: ConeBeamGeometry) -> np.ndarray:
    """Cone-beam forward projection by ray sampling.

    Returns (n_proj, det_v, det_u) float32 line integrals.  Accuracy is
    modest (trilinear sampling along rays) but self-consistent with the
    backprojector's geometry, which is what validation needs.
    """
    n = volume.shape[0]
    projections = np.zeros((geom.n_proj, geom.det_v, geom.det_u),
                           np.float32)
    du = geom.det_spacing
    us = (np.arange(geom.det_u) - (geom.det_u - 1) / 2.0) * du
    vs = (np.arange(geom.det_v) - (geom.det_v - 1) / 2.0) * du
    n_steps = int(n * 1.5)
    ts = np.linspace(geom.source_dist - 1.4,
                     geom.source_dist + 1.4, n_steps)
    step = float(ts[1] - ts[0])
    for pi, theta in enumerate(geom.angles()):
        cos_t, sin_t = np.cos(theta), np.sin(theta)
        src = np.array([geom.source_dist * cos_t,
                        geom.source_dist * sin_t, 0.0])
        # Detector center opposite the source; u axis tangential,
        # v axis along z.
        det_center = -np.array([geom.det_dist * cos_t,
                                geom.det_dist * sin_t, 0.0])
        u_axis = np.array([-sin_t, cos_t, 0.0])
        v_axis = np.array([0.0, 0.0, 1.0])
        uu, vv = np.meshgrid(us, vs)
        targets = (det_center[None, None, :]
                   + uu[..., None] * u_axis[None, None, :]
                   + vv[..., None] * v_axis[None, None, :])
        dirs = targets - src[None, None, :]
        dirs /= np.linalg.norm(dirs, axis=2, keepdims=True)
        acc = np.zeros((geom.det_v, geom.det_u), np.float32)
        for t in ts:
            pts = src[None, None, :] + dirs * t
            # Map [-1,1] -> voxel index.
            idx = (pts + 1.0) * (n - 1) / 2.0
            xi = np.clip(idx[..., 0], 0, n - 1.001)
            yi = np.clip(idx[..., 1], 0, n - 1.001)
            zi = np.clip(idx[..., 2], 0, n - 1.001)
            inside = ((np.abs(pts) <= 1.0).all(axis=2))
            x0 = xi.astype(int)
            y0 = yi.astype(int)
            z0 = zi.astype(int)
            fx, fy, fz = xi - x0, yi - y0, zi - z0
            x1 = np.minimum(x0 + 1, n - 1)
            y1 = np.minimum(y0 + 1, n - 1)
            z1 = np.minimum(z0 + 1, n - 1)
            v000 = volume[z0, y0, x0]
            v001 = volume[z0, y0, x1]
            v010 = volume[z0, y1, x0]
            v011 = volume[z0, y1, x1]
            v100 = volume[z1, y0, x0]
            v101 = volume[z1, y0, x1]
            v110 = volume[z1, y1, x0]
            v111 = volume[z1, y1, x1]
            interp = ((v000 * (1 - fx) + v001 * fx) * (1 - fy)
                      + (v010 * (1 - fx) + v011 * fx) * fy) * (1 - fz) \
                + ((v100 * (1 - fx) + v101 * fx) * (1 - fy)
                   + (v110 * (1 - fx) + v111 * fx) * fy) * fz
            acc += np.where(inside, interp, 0.0).astype(np.float32)
        projections[pi] = acc * step
    return projections

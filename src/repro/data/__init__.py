"""Synthetic workload generators.

The dissertation's inputs (patient echocardiogram frames, PIV particle
image pairs, cone-beam CT projections) are not redistributable; these
generators produce inputs with the same *dimensional* structure — which
is all the kernels' control flow and memory behaviour depend on — plus
known ground truth for validation, which the real data lacks.
"""

from repro.data.frames import textured_frame, template_sequence
from repro.data.piv import particle_image_pair
from repro.data.phantom import shepp_logan_phantom, forward_project

__all__ = ["textured_frame", "template_sequence", "particle_image_pair",
           "shepp_logan_phantom", "forward_project"]

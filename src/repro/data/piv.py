"""Particle image pairs for the PIV application.

Generates a particle-seeded frame and a second frame displaced by a
known per-region flow field, giving the SSD matcher a ground truth.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def particle_image_pair(height: int, width: int,
                        displacement: Tuple[int, int] = (3, 2),
                        particles_per_kpx: float = 40.0,
                        seed: int = 0):
    """A PIV image pair with a uniform integer displacement.

    Particles are Gaussian blobs of ~2 px diameter, the standard PIV
    seeding model.  ``frame_b`` shifts the particle field by
    ``displacement`` (dy, dx); integer so the SSD minimum is exact.

    Returns:
        (frame_a, frame_b): float32 images in [0, 1].
    """
    rng = np.random.default_rng(seed)
    n = int(height * width * particles_per_kpx / 1000.0)
    pad = max(abs(displacement[0]), abs(displacement[1])) + 6
    big_h, big_w = height + 2 * pad, width + 2 * pad
    ys = rng.uniform(0, big_h, n)
    xs = rng.uniform(0, big_w, n)
    amps = rng.uniform(0.5, 1.0, n)

    def render(dy: float, dx: float) -> np.ndarray:
        img = np.zeros((big_h, big_w), np.float32)
        yy = ys + dy
        xx = xs + dx
        iy = np.round(yy).astype(int)
        ix = np.round(xx).astype(int)
        for oy in (-1, 0, 1):
            for ox in (-1, 0, 1):
                py = iy + oy
                px = ix + ox
                ok = (py >= 0) & (py < big_h) & (px >= 0) & (px < big_w)
                d2 = (yy - py) ** 2 + (xx - px) ** 2
                w = amps * np.exp(-d2 / 0.8)
                np.add.at(img, (py[ok], px[ok]), w[ok].astype(np.float32))
        return np.clip(img, 0.0, 1.0)

    frame_a = render(0.0, 0.0)[pad : pad + height, pad : pad + width]
    frame_b = render(displacement[0], displacement[1])[
        pad : pad + height, pad : pad + width]
    return frame_a.astype(np.float32), frame_b.astype(np.float32)

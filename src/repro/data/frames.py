"""Textured frame sequences for the template-matching application.

Frames are smooth band-limited noise (echo-like speckle), and each
subsequent frame is the previous one translated by a known sub-ROI
shift — so the matcher's argmax has a ground truth to hit.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def _smooth_noise(shape: Tuple[int, int], rng: np.random.Generator,
                  passes: int = 3) -> np.ndarray:
    """Band-limited noise via repeated box blurs of white noise."""
    img = rng.random(shape).astype(np.float32)
    for _ in range(passes):
        img = (img + np.roll(img, 1, 0) + np.roll(img, -1, 0)
               + np.roll(img, 1, 1) + np.roll(img, -1, 1)) / 5.0
    img -= img.min()
    peak = img.max()
    if peak > 0:
        img /= peak
    return img.astype(np.float32)


def textured_frame(height: int, width: int, seed: int = 0) -> np.ndarray:
    """One float32 frame with speckle-like texture in [0, 1]."""
    rng = np.random.default_rng(seed)
    return _smooth_noise((height, width), rng)


def roi_origin(frame_h: int, frame_w: int, tmpl_h: int, tmpl_w: int,
               shift_h: int, shift_w: int) -> Tuple[int, int]:
    """Top-left of the centered search ROI used by all matchers.

    Window (sy, sx) covers ``frame[ry0+sy : ry0+sy+tmpl_h, ...]`` for
    shifts in ``[0, shift_h) × [0, shift_w)``.
    """
    ry0 = (frame_h - tmpl_h - shift_h + 1) // 2
    rx0 = (frame_w - tmpl_w - shift_w + 1) // 2
    if ry0 < 0 or rx0 < 0:
        raise ValueError("template + shift range exceed the frame")
    return ry0, rx0


def template_sequence(frame_h: int, frame_w: int, tmpl_h: int,
                      tmpl_w: int, shift_h: int, shift_w: int,
                      n_frames: int = 2, seed: int = 0):
    """Build (frames, template, true_shifts) for a matching problem.

    Each frame translates a common scene so that the template content
    lands at a known shift within the search ROI, giving ``corr2`` a
    ground-truth peak at ``true_shifts[i]``.

    Returns:
        frames: list of (frame_h, frame_w) float32 arrays.
        template: (tmpl_h, tmpl_w) float32 array.
        true_shifts: list of (sy, sx) per frame, in [0, shift) ranges.
    """
    rng = np.random.default_rng(seed)
    pad = shift_h + shift_w + 8
    scene = _smooth_noise((frame_h + 2 * pad, frame_w + 2 * pad), rng)
    ry0, rx0 = roi_origin(frame_h, frame_w, tmpl_h, tmpl_w, shift_h,
                          shift_w)
    # Scene coordinates of the template content.
    y0 = pad + ry0 + shift_h // 2
    x0 = pad + rx0 + shift_w // 2
    template = scene[y0 : y0 + tmpl_h, x0 : x0 + tmpl_w].copy()
    frames: List[np.ndarray] = []
    true_shifts: List[Tuple[int, int]] = []
    for i in range(n_frames):
        if i == 0:
            sy, sx = shift_h // 2, shift_w // 2
        else:
            sy = int(rng.integers(0, shift_h))
            sx = int(rng.integers(0, shift_w))
        # Template must appear at frame position (ry0+sy, rx0+sx):
        # frame[y, x] = scene[y + top, x + left] with
        # top = y0 - (ry0 + sy).
        top = y0 - (ry0 + sy)
        left = x0 - (rx0 + sx)
        frame = scene[top : top + frame_h, left : left + frame_w].copy()
        noise = rng.normal(0, 0.005, frame.shape).astype(np.float32)
        frames.append((frame + noise).astype(np.float32))
        true_shifts.append((sy, sx))
    return frames, template, true_shifts

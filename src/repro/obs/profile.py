"""Per-launch kernel profiles.

A :class:`LaunchProfile` is the micro-profiling record the dissertation
uses to justify each specialization: launch geometry, occupancy and its
limiter, register/shared-memory pressure, the engine's event counters
(coalesced DRAM transactions, shared/global stalls, divergence, atomic
traffic), and the Hong-&-Kim-style modeled time from
:mod:`repro.gpusim.timing`.  One is built per traced launch by
:meth:`repro.gpusim.GPU.launch` and attached both to the launch span
(``attrs``) and to ``tracer.profiles``.

Profiles are frozen dataclasses of plain scalars: picklable (they ride
:class:`~repro.apps.harness.RunResult` back from process-pool workers)
and JSON-friendly via :meth:`attrs`.  This module deliberately imports
nothing from the rest of :mod:`repro`; the launch result and kernel are
consumed duck-typed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Tuple

__all__ = ["LaunchProfile"]


@dataclass(frozen=True)
class LaunchProfile:
    """Everything the timing model knew about one kernel launch."""

    kernel: str
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    blocks_executed: int
    total_blocks: int
    #: Static kernel pressure (what the occupancy calculator consumed).
    reg_count: int
    shared_bytes: int
    #: Achieved occupancy and what capped it.
    occupancy: float
    blocks_per_sm: int
    occupancy_limit: str
    #: Event counters summed over the executed blocks' warps.
    instructions: int
    mem_transactions: int
    mem_bytes: int
    divergent_branches: int
    global_stalls: int
    shared_stalls: int
    barriers: int
    atomics: int
    #: Modeled time (extrapolated over the grid when sampled).
    cycles: float
    seconds: float
    bound: str
    engine: str
    #: Trace-JIT activity (zero unless the launch ran ``"traced"``).
    trace_hits: int = 0
    trace_deopts: int = 0
    trace_records: int = 0

    @classmethod
    def from_launch(cls, kernel: Any, result: Any,
                    engine: str) -> "LaunchProfile":
        """Build a profile from a :class:`CompiledKernel` and its
        :class:`~repro.gpusim.launcher.LaunchResult`."""
        timing = result.timing
        occ = result.occupancy
        total = result.grid[0] * result.grid[1] * result.grid[2]
        counts = {"instructions": 0, "mem_transactions": 0,
                  "mem_bytes": 0, "divergent_branches": 0,
                  "global_stalls": 0, "shared_stalls": 0,
                  "barriers": 0, "atomics": 0}
        for block in result.stats:
            for warp in block.warps:
                for name in counts:
                    counts[name] += getattr(warp, name)
        return cls(kernel=kernel.name, grid=tuple(result.grid),
                   block=tuple(result.block),
                   blocks_executed=result.blocks_executed,
                   total_blocks=total,
                   reg_count=kernel.reg_count,
                   shared_bytes=kernel.shared_bytes,
                   occupancy=timing.occupancy_fraction,
                   blocks_per_sm=timing.blocks_per_sm,
                   occupancy_limit=occ.limited_by,
                   cycles=timing.cycles, seconds=timing.seconds,
                   bound=timing.bound, engine=engine,
                   trace_hits=getattr(result, "trace_hits", 0),
                   trace_deopts=getattr(result, "trace_deopts", 0),
                   trace_records=getattr(result, "trace_records", 0),
                   **counts)

    def attrs(self) -> Dict[str, Any]:
        """Flat JSON-scalar dict for span attrs / metrics export."""
        d = asdict(self)
        d["grid"] = "x".join(str(v) for v in self.grid)
        d["block"] = "x".join(str(v) for v in self.block)
        return d

"""Flight recorder: a bounded ring buffer of typed structured events.

Traces answer "where did the time go"; the flight recorder answers
"what happened" — the discrete state changes (a worker was killed, the
breaker opened, a cache entry was quarantined) that surround an
incident.  It is deliberately tiny: a :class:`collections.deque` with a
``maxlen``, so recording is O(1), memory is bounded, and the newest
``capacity`` events survive for forensics.

Events are plain dicts so they pickle across the serve/fleet process
boundary and serialize to JSON for ``python -m repro.obs.tail``::

    {"seq": 7, "id": "e5a3c9f01", "t": 123.4, "kind": "worker.kill",
     "origin": "supervisor", "attrs": {"worker": "w0g2", "why": "hang"}}

* ``seq`` increases monotonically per recorder — ``since(seq)`` gives
  the delta stream that workers ship back with each result.
* ``id`` is **seeded-deterministic**: ``crc32(f"{seed}:{seq}")``, so two
  runs with the same seed and event order produce identical ids and
  dumps diff cleanly.
* ``kind`` is drawn from :data:`EVENT_KINDS`, which maps each kind to
  the attr keys it must carry; :func:`validate_events` enforces the
  schema (used by ``repro.obs.report --check`` and ``tail --check``).

``install_crash_dump(path)`` chains onto ``sys.excepthook`` so an
uncaught exception leaves a JSON dump of the recorder's final state
behind — the "read the flight recorder after the crash" workflow.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import zlib
from collections import deque
from typing import (Any, Callable, Deque, Dict, Iterable, List, Mapping,
                    Optional)

__all__ = ["EVENT_KINDS", "FlightRecorder", "validate_events"]

#: Event schema: kind -> attr keys every event of that kind must carry.
#: Extra attrs are always allowed; missing ones fail validation.
EVENT_KINDS: Dict[str, tuple] = {
    # serve admission / circuit breaking
    "admission.shed": ("client", "why"),
    "breaker.transition": ("from_state", "to_state"),
    # serve worker lifecycle
    "worker.spawn": ("worker",),
    "worker.exit": ("worker", "why"),
    "worker.kill": ("worker", "why"),
    "redispatch": ("request", "attempts"),
    "deadline.kill": ("request", "worker"),
    # fleet
    "fleet.place": ("member", "policy"),
    "fleet.worker_crash": ("member",),
    "fleet.redispatch": ("member", "request"),
    # engine / cache
    "trace.deopt": ("kernel", "deopts"),
    "cache.quarantine": ("path",),
    # free-form marker (demo dumps, tests)
    "note": ("text",),
}


def _event_id(seed: int, seq: int) -> str:
    return f"e{zlib.crc32(f'{seed}:{seq}'.encode()) & 0xFFFFFFFF:08x}"


class FlightRecorder:
    """Bounded, seeded-deterministic ring buffer of typed events."""

    def __init__(self, capacity: int = 256, seed: int = 0,
                 origin: str = "local",
                 clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        self.origin = origin
        self._clock = clock
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0  # events rotated out of the ring
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------

    def record(self, kind: str, **attrs: Any) -> Dict[str, Any]:
        """Append one event; unknown kinds raise (schema is closed)."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        with self._lock:
            self._seq += 1
            event = {"seq": self._seq, "id": _event_id(self.seed, self._seq),
                     "t": self._clock(), "kind": kind,
                     "origin": self.origin, "attrs": attrs}
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
            return event

    def extend(self, events: Iterable[Mapping[str, Any]],
               origin: Optional[str] = None) -> int:
        """Fold shipped events in (e.g. a worker's delta stream).

        Each event keeps its kind/attrs/timestamp but is re-sequenced
        into this recorder (new ``seq``/``id``); *origin* overrides the
        shipped origin so the dump says which process saw it.  Returns
        the number folded.
        """
        n = 0
        with self._lock:
            for src in events:
                self._seq += 1
                event = dict(src)
                event["seq"] = self._seq
                event["id"] = _event_id(self.seed, self._seq)
                if origin is not None:
                    event["origin"] = origin
                if len(self._events) == self.capacity:
                    self.dropped += 1
                self._events.append(event)
                n += 1
        return n

    # -- reading -------------------------------------------------------

    @property
    def last_seq(self) -> int:
        return self._seq

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first (copies of the dicts)."""
        with self._lock:
            return [dict(e) for e in self._events]

    def since(self, seq: int) -> List[Dict[str, Any]]:
        """Events recorded after sequence number *seq* (the delta)."""
        with self._lock:
            return [dict(e) for e in self._events if e["seq"] > seq]

    # -- dumping -------------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """A JSON-ready snapshot: config + retained events."""
        with self._lock:
            return {"origin": self.origin, "seed": self.seed,
                    "capacity": self.capacity, "dropped": self.dropped,
                    "last_seq": self._seq, "now": self._clock(),
                    "events": [dict(e) for e in self._events]}

    def dump_json(self, path: str) -> str:
        """Write :meth:`dump` to *path*; returns the path."""
        with open(path, "w") as fh:
            json.dump(self.dump(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def install_crash_dump(self, path: str) -> None:
        """Dump to *path* when an uncaught exception kills the process.

        Chains onto the previous ``sys.excepthook`` so stack traces
        still print.
        """
        previous = sys.excepthook

        def _hook(exc_type, exc, tb):
            try:
                self.record("note", text=f"crash: {exc_type.__name__}: "
                                         f"{exc}")
                self.dump_json(path)
            except Exception:
                pass  # the crash report must never mask the crash
            previous(exc_type, exc, tb)

        sys.excepthook = _hook


def validate_events(events: Iterable[Mapping[str, Any]]) -> List[str]:
    """Check events against :data:`EVENT_KINDS`; returns problem strings.

    Accepts a list of event dicts (as found in a dump's ``events`` key
    or a trace file's ``otherData.events``).  An empty return means the
    stream is well-formed.
    """
    problems: List[str] = []
    prev_seq = 0
    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, Mapping):
            problems.append(f"{where}: not a mapping")
            continue
        for key in ("seq", "id", "t", "kind", "origin", "attrs"):
            if key not in event:
                problems.append(f"{where}: missing key {key!r}")
        kind = event.get("kind")
        if kind is not None and kind not in EVENT_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
        attrs = event.get("attrs")
        if kind in EVENT_KINDS and isinstance(attrs, Mapping):
            for req in EVENT_KINDS[kind]:
                if req not in attrs:
                    problems.append(
                        f"{where}: kind {kind!r} missing attr {req!r}")
        elif attrs is not None and not isinstance(attrs, Mapping):
            problems.append(f"{where}: attrs is not a mapping")
        seq = event.get("seq")
        if isinstance(seq, int):
            if seq <= prev_seq:
                problems.append(
                    f"{where}: seq {seq} not increasing (prev {prev_seq})")
            prev_seq = seq
    return problems

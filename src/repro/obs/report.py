"""CLI over exported traces: summarize, validate, demo.

::

    python -m repro.obs.report trace.json           # span tree + metrics
    python -m repro.obs.report --check trace.json   # schema validation
    python -m repro.obs.report --metrics trace.json # metrics table only
    python -m repro.obs.report --prom trace.json    # embedded metrics in
        # Prometheus text exposition format (validated before printing)
    python -m repro.obs.report --demo trace.json    # trace a small
        # template-matching run and write its Chrome-trace JSON

The input is the Chrome-trace document written by
:func:`repro.obs.export.write_trace` (open it in ``chrome://tracing``
or https://ui.perfetto.dev); ``--check`` exits non-zero and lists the
problems when the document does not conform — including any
flight-recorder events embedded under ``otherData.events``, which are
checked against the :data:`~repro.obs.events.EVENT_KINDS` schema.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.obs.events import validate_events
from repro.obs.export import (metrics_table, summary_tree,
                              validate_chrome, write_trace)
from repro.obs.prom import prom_exposition, validate_prom


def _spans_from_chrome(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Reverse :func:`chrome_trace` into a tracer-export dict."""
    spans = []
    for ev in doc.get("traceEvents", []):
        args = dict(ev.get("args") or {})
        sid = args.pop("sid", None)
        parent = args.pop("parent", None)
        if sid is None:
            continue
        spans.append({"sid": sid, "parent": parent,
                      "name": ev.get("name", "?"),
                      "cat": ev.get("cat", "default"),
                      "start": ev.get("ts", 0.0) / 1e6,
                      "dur": ev.get("dur", 0.0) / 1e6,
                      "tid": ev.get("tid", 0), "attrs": args})
    name = (doc.get("otherData") or {}).get("trace_name", "trace")
    return {"name": name, "spans": spans}


def _run_demo(path: str) -> None:
    """Trace one small template-matching run and write it to *path*."""
    from repro.apps.harness import (ProblemSpec, RunRequest,
                                    run_request)
    from repro.apps.template_matching import MatchConfig, MatchProblem

    problem = MatchProblem("obs-demo", frame_h=60, frame_w=80,
                           tmpl_h=16, tmpl_w=12, shift_h=5, shift_w=5,
                           n_frames=1)
    spec = ProblemSpec("template_matching", problem, seed=11,
                       memory_bytes=8 << 20)
    config = MatchConfig(tile_w=8, tile_h=8, threads=32)
    result = run_request(RunRequest(spec, config, trace=True))
    write_trace(path, result.trace, metrics=result.metrics,
                events=result.events)
    launches = len(result.profiles)
    print(f"wrote {path}: {len(result.trace['spans'])} spans, "
          f"{launches} kernel launches profiled, "
          f"{len(result.events)} flight events, "
          f"{result.seconds * 1e3:.3f} ms simulated")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Inspect / validate exported Chrome-trace JSON.")
    parser.add_argument("trace", help="path to the trace JSON file")
    parser.add_argument("--check", action="store_true",
                        help="validate the document schema (and any "
                             "embedded flight-recorder events); exit 1 "
                             "with a problem list if invalid")
    parser.add_argument("--metrics", action="store_true",
                        help="print only the embedded metrics table")
    parser.add_argument("--prom", action="store_true",
                        help="print the embedded metrics in Prometheus "
                             "text exposition format (validated; exit "
                             "1 if the rendering fails its checker)")
    parser.add_argument("--demo", action="store_true",
                        help="run a small traced template-matching "
                             "pipeline and write its trace to TRACE")
    opts = parser.parse_args(argv)

    if opts.demo:
        _run_demo(opts.trace)
        return 0

    try:
        with open(opts.trace) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read {opts.trace}: {exc}", file=sys.stderr)
        return 2

    if opts.check:
        problems = validate_chrome(doc)
        embedded = (doc.get("otherData") or {}).get("events")
        if embedded is not None:
            problems += [f"otherData.events: {p}"
                         for p in validate_events(embedded)]
        if problems:
            print(f"{opts.trace}: INVALID "
                  f"({len(problems)} problems)")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        events = doc.get("traceEvents", [])
        n_flight = len(embedded) if embedded is not None else 0
        print(f"{opts.trace}: ok ({len(events)} events, "
              f"{n_flight} flight events)")
        return 0

    metrics = (doc.get("otherData") or {}).get("metrics")
    if opts.prom:
        if not metrics:
            print("(no metrics embedded in this trace)",
                  file=sys.stderr)
            return 1
        text = prom_exposition(metrics)
        problems = validate_prom(text)
        if problems:
            print(f"{opts.trace}: exposition INVALID", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        sys.stdout.write(text)
        return 0

    if not opts.metrics:
        print(summary_tree(_spans_from_chrome(doc)))
    if metrics:
        if not opts.metrics:
            print()
        print(metrics_table(metrics))
    elif opts.metrics:
        print("(no metrics embedded in this trace)")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())

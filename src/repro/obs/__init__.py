"""Observability: tracing, metrics, flight recorder, launch profiles.

The subsystem the dissertation's timing/occupancy tables imply: every
:class:`~repro.runtime.context.ExecutionContext` owns a
:class:`MetricsRegistry` (always on — counters are cheap and exact), a
:class:`FlightRecorder` (bounded ring of structured events, also always
on), and an optional :class:`Tracer` (off by default; ``trace=True``
switches on :class:`~repro.gpupf.pipeline.Pipeline`,
:class:`~repro.apps.harness.RunRequest`, and
:class:`~repro.tuning.sweep.Sweeper` enable it).  Traced launches emit
:class:`LaunchProfile` records; registry histograms are log-bucketed
:class:`LatencyHistogram` instances with p50/p95/p99 estimation and SLO
breach counters.

Cross-process: a :class:`TraceContext` on a
:class:`~repro.apps.harness.RunRequest` makes serve workers and fleet
members ship their span trees, metrics, profiles, and flight events
back with each result, and the supervisor grafts them into one
end-to-end tree.  Exporters render Chrome/Perfetto JSON, text
summaries, metric tables, and Prometheus text exposition
(:func:`prom_exposition`); ``python -m repro.obs.report`` inspects and
validates exported traces, ``python -m repro.obs.tail`` reads flight-
recorder dumps.

See DESIGN.md §8 for the span taxonomy and metric namespace, §13 for
the distributed telemetry plane.
"""

from repro.obs.events import EVENT_KINDS, FlightRecorder, validate_events
from repro.obs.export import (chrome_trace, metrics_table, summary_tree,
                              validate_chrome, write_trace)
from repro.obs.hist import GROWTH, LatencyHistogram
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import LaunchProfile
from repro.obs.prom import prom_exposition, validate_prom
from repro.obs.trace import Span, TraceContext, Tracer, current_tracer

__all__ = [
    "Tracer", "Span", "TraceContext", "current_tracer",
    "MetricsRegistry", "LaunchProfile",
    "GROWTH", "LatencyHistogram",
    "FlightRecorder", "EVENT_KINDS", "validate_events",
    "prom_exposition", "validate_prom",
    "chrome_trace", "write_trace", "validate_chrome",
    "summary_tree", "metrics_table",
]

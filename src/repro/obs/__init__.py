"""Observability: context-scoped tracing, metrics, launch profiles.

The subsystem the dissertation's timing/occupancy tables imply: every
:class:`~repro.runtime.context.ExecutionContext` owns a
:class:`MetricsRegistry` (always on — counters are cheap and exact) and
an optional :class:`Tracer` (off by default; ``trace=True`` switches on
:class:`~repro.gpupf.pipeline.Pipeline`,
:class:`~repro.apps.harness.RunRequest`, and
:class:`~repro.tuning.sweep.Sweeper` enable it).  Traced launches emit
:class:`LaunchProfile` records; exporters render Chrome/Perfetto JSON,
text summaries, and metric tables; ``python -m repro.obs.report``
inspects and validates exported traces.

See DESIGN.md §8 for the span taxonomy and metric namespace.
"""

from repro.obs.export import (chrome_trace, metrics_table, summary_tree,
                              validate_chrome, write_trace)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import LaunchProfile
from repro.obs.trace import Span, Tracer, current_tracer

__all__ = [
    "Tracer", "Span", "current_tracer",
    "MetricsRegistry", "LaunchProfile",
    "chrome_trace", "write_trace", "validate_chrome",
    "summary_tree", "metrics_table",
]

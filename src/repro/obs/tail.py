"""``python -m repro.obs.tail`` — read flight-recorder dumps.

The console half of :mod:`repro.obs.events`: point it at a JSON dump
(written by :meth:`FlightRecorder.dump_json`, a crash hook, or the
serve daemon's ``--flight-recorder`` flag) and it prints the retained
events newest-last, one line each::

    $ python -m repro.obs.tail flight.json
      +0.012s e5a3c9f0 supervisor  worker.spawn        worker=w0g1
      +1.204s e91b20aa supervisor  breaker.transition  from_state=closed to_state=open
      ...

Options:

* ``--last N`` — only the newest N events;
* ``--kind K`` — filter by event kind (repeatable);
* ``--check`` — validate the dump against the
  :data:`~repro.obs.events.EVENT_KINDS` schema and exit non-zero on
  problems (CI runs this);
* ``--demo PATH`` — write a small deterministic dump to PATH and read
  it back, so CI can smoke-test the pipeline with no daemon running.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List

from repro.obs.events import FlightRecorder, validate_events

__all__ = ["main"]


def _demo_dump(path: str) -> str:
    """A deterministic sample dump exercising several event kinds."""
    tick = iter(range(100))
    rec = FlightRecorder(capacity=32, seed=7, origin="demo",
                         clock=lambda: float(next(tick)))
    rec.record("worker.spawn", worker="w0g1")
    rec.record("admission.shed", client="alice", why="queue_full")
    rec.record("breaker.transition", from_state="closed", to_state="open")
    rec.record("worker.kill", worker="w0g1", why="hang")
    rec.record("redispatch", request="r3", attempts=2)
    rec.record("fleet.place", member="gtx680:0", policy="cache_affinity")
    rec.record("trace.deopt", kernel="matmul", deopts=1)
    rec.record("cache.quarantine", path="plan-1f3.bin")
    rec.record("note", text="demo dump for repro.obs.tail")
    return rec.dump_json(path)


def _format_event(event: Dict[str, Any], now: float) -> str:
    attrs = event.get("attrs") or {}
    flat = " ".join(f"{k}={v}" for k, v in attrs.items())
    age = now - float(event.get("t", now))
    return (f"  -{age:8.3f}s {event.get('id', '?'):>9} "
            f"{event.get('origin', '?'):<12} "
            f"{event.get('kind', '?'):<20} {flat}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.tail",
        description="Read a flight-recorder JSON dump.")
    parser.add_argument("dump", help="path to a FlightRecorder dump")
    parser.add_argument("--last", type=int, default=0, metavar="N",
                        help="only the newest N events")
    parser.add_argument("--kind", action="append", default=[],
                        help="filter by event kind (repeatable)")
    parser.add_argument("--check", action="store_true",
                        help="validate against the event schema; "
                             "exit 1 on problems")
    parser.add_argument("--demo", action="store_true",
                        help="write a deterministic demo dump to DUMP "
                             "first, then read it back")
    args = parser.parse_args(argv)

    if args.demo:
        _demo_dump(args.dump)
        print(f"wrote demo dump: {args.dump}")

    try:
        with open(args.dump) as fh:
            dump = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.dump}: {exc}", file=sys.stderr)
        return 2

    events: List[Dict[str, Any]] = dump.get("events") or []

    if args.check:
        problems = validate_events(events)
        if problems:
            for problem in problems:
                print(f"PROBLEM: {problem}")
            print(f"{len(problems)} problem(s) in {args.dump}")
            return 1
        print(f"ok: {len(events)} events, schema valid "
              f"(dropped={dump.get('dropped', 0)})")
        return 0

    shown = events
    if args.kind:
        shown = [e for e in shown if e.get("kind") in args.kind]
    if args.last > 0:
        shown = shown[-args.last:]

    now = float(dump.get("now", 0.0))
    print(f"flight recorder: origin={dump.get('origin', '?')} "
          f"retained={len(events)} dropped={dump.get('dropped', 0)} "
          f"capacity={dump.get('capacity', '?')}")
    for event in shown:
        print(_format_event(event, now))
    if not shown:
        print("  (no events match)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())

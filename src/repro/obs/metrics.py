"""Named counters, gauges, and histograms with one ``snapshot()``.

`MetricsRegistry` generalizes the stack's ad-hoc counter dicts —
`ExecutionContext.bump()`, `Pipeline.health`'s per-site Counters,
`Sweeper`'s error taxonomy — into one taxonomy of named instruments:

* **counters** — monotonically increasing ints (`inc`), e.g.
  ``fault.launch``, ``retry.compile``, ``sweep.cells``;
* **gauges** — last-written values (`gauge`), e.g.
  ``pipeline.iterations``;
* **histograms** — log-bucketed :class:`~repro.obs.hist.LatencyHistogram`
  instances (`observe`), e.g. ``launch.cycles`` or
  ``client.alice.latency_s``, carrying both the classic
  (count, sum, min, max) summary and sparse buckets for
  p50/p95/p99 estimation via :meth:`quantile`.

Histograms can carry **SLO thresholds** (:meth:`set_slo`): every
observation above the threshold bumps the ``slo.breach.{name}``
counter, which the serve daemon surfaces per client in ``/health``.

Metric names follow the context counter convention documented in
:mod:`repro.runtime.context`: dotted ``subsystem.event`` (see
GLOSSARY.md).  The registry is thread-safe; a registry lives on each
:class:`~repro.runtime.context.ExecutionContext` (``ctx.metrics``) so
concurrent sweeps with private contexts never share instruments.
Unlike the tracer, the registry is always present — incrementing a
Counter under a lock is cheap enough that counters stay exact whether
or not tracing is enabled.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.obs.hist import LatencyHistogram

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Thread-safe registry of named counters/gauges/histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Counter = Counter()
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, LatencyHistogram] = {}
        self._slos: Dict[str, float] = {}

    # -- instruments ---------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount* (default 1)."""
        with self._lock:
            self._counters[name] += amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name* (and check its SLO)."""
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                h = self._hists[name] = LatencyHistogram()
            h.record(value)
            slo = self._slos.get(name)
            if slo is not None and value > slo:
                self._counters[f"slo.breach.{name}"] += 1

    def time(self, name: str):
        """``with registry.time("serve.exec_s"):`` — observe wall time.

        Records the block's elapsed ``time.perf_counter()`` seconds
        into histogram *name*; the serve daemon uses it for queue-wait
        and execution latency summaries.
        """
        return _Timer(self, name)

    # -- SLOs ----------------------------------------------------------

    def set_slo(self, name: str, threshold: float) -> None:
        """Declare an SLO: observations of *name* above *threshold*
        seconds (or whatever unit the histogram records) increment the
        ``slo.breach.{name}`` counter.  Last write wins."""
        with self._lock:
            self._slos[name] = float(threshold)

    def slos(self) -> Dict[str, float]:
        """The declared SLO thresholds (histogram name -> threshold)."""
        with self._lock:
            return dict(self._slos)

    # -- reading -------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """Counters as a plain dict, optionally filtered by *prefix*."""
        with self._lock:
            if not prefix:
                return dict(self._counters)
            return {k: v for k, v in self._counters.items()
                    if k.startswith(prefix)}

    def quantile(self, name: str, q: float) -> Optional[float]:
        """The *q*-quantile estimate for histogram *name*.

        ``None`` when the histogram doesn't exist or has no bucket
        detail; otherwise accurate to one log-bucket (see
        :mod:`repro.obs.hist`).
        """
        with self._lock:
            h = self._hists.get(name)
            return h.quantile(q) if h is not None else None

    def quantiles(self, name: str,
                  qs: Iterable[float] = (0.5, 0.95, 0.99)
                  ) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` for histogram *name*
        (empty dict when unknown/empty)."""
        with self._lock:
            h = self._hists.get(name)
            return h.quantiles(qs) if h is not None else {}

    def snapshot(self) -> Dict[str, Any]:
        """One coherent view of every instrument.

        Returns ``{"counters": {name: int}, "gauges": {name: float},
        "histograms": {name: {"count","sum","mean","min","max"}},
        "buckets": {name: {bucket_index: count}}}``.  The summary shape
        under ``histograms`` is unchanged from the pre-bucket registry;
        the sparse log-bucket detail rides in the separate ``buckets``
        section so consumers that only want summaries ignore it.  All
        values are plain JSON types (JSON stringifies the int bucket
        keys; :func:`~repro.obs.hist.LatencyHistogram.from_parts`
        accepts both); the dict is safe to pickle, merge, or dump.
        """
        with self._lock:
            hists = {name: h.summary() for name, h in self._hists.items()}
            buckets = {name: dict(h.buckets)
                       for name, h in self._hists.items() if h.buckets}
            return {"counters": dict(self._counters),
                    "gauges": dict(self._gauges),
                    "histograms": hists,
                    "buckets": buckets}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add; gauges last-write-win; histograms combine their
        (count, sum, min, max) summaries and add bucket counts (when
        the snapshot carries a ``buckets`` section — pre-bucket
        snapshots merge summaries only).  Used to aggregate metrics
        shipped back from process-pool workers.
        """
        with self._lock:
            for name, v in (snapshot.get("counters") or {}).items():
                self._counters[name] += v
            self._gauges.update(snapshot.get("gauges") or {})
            all_buckets = snapshot.get("buckets") or {}
            for name, h in (snapshot.get("histograms") or {}).items():
                other = LatencyHistogram.from_parts(
                    h, all_buckets.get(name))
                mine = self._hists.get(name)
                if mine is None:
                    self._hists[name] = other
                else:
                    mine.merge(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (f"<MetricsRegistry counters={len(self._counters)} "
                    f"gauges={len(self._gauges)} "
                    f"hists={len(self._hists)}>")


class _Timer:
    """Context manager behind :meth:`MetricsRegistry.time`."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        import time
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        import time
        self._registry.observe(self._name,
                               time.perf_counter() - self._start)

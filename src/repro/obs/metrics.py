"""Named counters, gauges, and histograms with one ``snapshot()``.

`MetricsRegistry` generalizes the stack's ad-hoc counter dicts —
`ExecutionContext.bump()`, `Pipeline.health`'s per-site Counters,
`Sweeper`'s error taxonomy — into one taxonomy of named instruments:

* **counters** — monotonically increasing ints (`inc`), e.g.
  ``fault.launch``, ``retry.compile``, ``sweep.cells``;
* **gauges** — last-written values (`gauge`), e.g.
  ``pipeline.iterations``;
* **histograms** — running (count, sum, min, max) summaries
  (`observe`), e.g. ``launch.cycles``.

Metric names follow the context counter convention documented in
:mod:`repro.runtime.context`: dotted ``subsystem.event`` (see
GLOSSARY.md).  The registry is thread-safe; a registry lives on each
:class:`~repro.runtime.context.ExecutionContext` (``ctx.metrics``) so
concurrent sweeps with private contexts never share instruments.
Unlike the tracer, the registry is always present — incrementing a
Counter under a lock is cheap enough that counters stay exact whether
or not tracing is enabled.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Any, Dict, Iterable, Optional, Tuple

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Thread-safe registry of named counters/gauges/histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Counter = Counter()
        self._gauges: Dict[str, float] = {}
        # name -> [count, sum, min, max]
        self._hists: Dict[str, list] = {}

    # -- instruments ---------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount* (default 1)."""
        with self._lock:
            self._counters[name] += amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name*."""
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                self._hists[name] = [1, value, value, value]
            else:
                h[0] += 1
                h[1] += value
                if value < h[2]:
                    h[2] = value
                if value > h[3]:
                    h[3] = value

    def time(self, name: str):
        """``with registry.time("serve.exec_s"):`` — observe wall time.

        Records the block's elapsed ``time.perf_counter()`` seconds
        into histogram *name*; the serve daemon uses it for queue-wait
        and execution latency summaries.
        """
        return _Timer(self, name)

    # -- reading -------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """Counters as a plain dict, optionally filtered by *prefix*."""
        with self._lock:
            if not prefix:
                return dict(self._counters)
            return {k: v for k, v in self._counters.items()
                    if k.startswith(prefix)}

    def snapshot(self) -> Dict[str, Any]:
        """One coherent view of every instrument.

        Returns ``{"counters": {name: int}, "gauges": {name: float},
        "histograms": {name: {"count","sum","mean","min","max"}}}``.
        All values are plain JSON types; the dict is safe to pickle,
        merge, or dump.
        """
        with self._lock:
            hists = {
                name: {"count": h[0], "sum": h[1],
                       "mean": h[1] / h[0], "min": h[2], "max": h[3]}
                for name, h in self._hists.items()
            }
            return {"counters": dict(self._counters),
                    "gauges": dict(self._gauges),
                    "histograms": hists}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add; gauges last-write-win; histograms combine their
        (count, sum, min, max) summaries.  Used to aggregate metrics
        shipped back from process-pool workers.
        """
        with self._lock:
            for name, v in (snapshot.get("counters") or {}).items():
                self._counters[name] += v
            self._gauges.update(snapshot.get("gauges") or {})
            for name, h in (snapshot.get("histograms") or {}).items():
                mine = self._hists.get(name)
                if mine is None:
                    self._hists[name] = [h["count"], h["sum"],
                                         h["min"], h["max"]]
                else:
                    mine[0] += h["count"]
                    mine[1] += h["sum"]
                    if h["min"] < mine[2]:
                        mine[2] = h["min"]
                    if h["max"] > mine[3]:
                        mine[3] = h["max"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (f"<MetricsRegistry counters={len(self._counters)} "
                    f"gauges={len(self._gauges)} "
                    f"hists={len(self._hists)}>")


class _Timer:
    """Context manager behind :meth:`MetricsRegistry.time`."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        import time
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        import time
        self._registry.observe(self._name,
                               time.perf_counter() - self._start)

"""Prometheus text exposition for MetricsRegistry snapshots.

:func:`prom_exposition` renders the snapshot dict produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` in the Prometheus
text format (version 0.0.4) — the format every scrape endpoint speaks:

* counters → ``# TYPE name counter`` + one sample;
* gauges → ``# TYPE name gauge`` + one sample;
* histograms → the full ``_bucket{le=...}`` ladder (cumulative counts
  over the log-spaced buckets recorded by
  :class:`~repro.obs.hist.LatencyHistogram`) plus ``_sum`` / ``_count``.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): dots and other punctuation become
underscores, and a collision after sanitization (``a.b`` vs ``a_b``)
raises rather than silently merging two series.

:func:`validate_prom` is a lightweight checker for the rendered text —
it verifies the line grammar, that every sample is preceded by a
``# TYPE`` for its family, that bucket ladders are cumulative and end
at ``+Inf`` agreeing with ``_count``.  CI runs it over the serve
daemon's ``metrics`` wire op and ``repro.obs.report --prom`` output.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.hist import bucket_bounds

__all__ = ["prom_exposition", "validate_prom"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")


def _sanitize(name: str, seen: Dict[str, str]) -> str:
    out = _SANITIZE.sub("_", name)
    if not _NAME_OK.match(out):
        out = "_" + out
    clash = seen.get(out)
    if clash is not None and clash != name:
        raise ValueError(
            f"metric names {clash!r} and {name!r} both sanitize to {out!r}")
    seen[out] = name
    return out


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prom_exposition(snapshot: Mapping[str, Any],
                    prefix: str = "repro") -> str:
    """Render a metrics snapshot in Prometheus text format.

    *snapshot* is the dict from ``MetricsRegistry.snapshot()`` — its
    ``counters`` / ``gauges`` / ``histograms`` sections plus, when
    present, the ``buckets`` section holding each histogram's sparse
    log-bucket counts (keys may be ints, or strings after a JSON round
    trip).  Histograms without bucket detail still get ``_sum`` /
    ``_count`` and a single ``+Inf`` bucket.
    """
    seen: Dict[str, str] = {}
    lines: List[str] = []

    def family(name: str) -> str:
        base = f"{prefix}_{name}" if prefix else name
        return _sanitize(base, seen)

    for name in sorted(snapshot.get("counters", {})):
        pname = family(name)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_fmt(snapshot['counters'][name])}")

    for name in sorted(snapshot.get("gauges", {})):
        pname = family(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_fmt(snapshot['gauges'][name])}")

    all_buckets = snapshot.get("buckets", {})
    for name in sorted(snapshot.get("histograms", {})):
        stats = snapshot["histograms"][name]
        pname = family(name)
        lines.append(f"# TYPE {pname} histogram")
        sparse = all_buckets.get(name) or {}
        cum = 0
        for idx in sorted(int(k) for k in sparse):
            cum += int(sparse[idx] if idx in sparse else sparse[str(idx)])
            _lo, hi = bucket_bounds(idx)
            lines.append(f'{pname}_bucket{{le="{_fmt(hi)}"}} {cum}')
        lines.append(f'{pname}_bucket{{le="+Inf"}} '
                     f"{_fmt(stats['count'])}")
        lines.append(f"{pname}_sum {_fmt(stats['sum'])}")
        lines.append(f"{pname}_count {_fmt(stats['count'])}")

    return "\n".join(lines) + "\n" if lines else ""


def validate_prom(text: str) -> List[str]:
    """Check exposition text; returns a list of problem strings.

    Verifies: every non-comment line parses as ``name[{labels}] value``;
    every sample's family was declared with ``# TYPE``; histogram
    bucket ladders are cumulative, end with ``le="+Inf"``, and the
    ``+Inf`` count equals the family's ``_count`` sample.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    ladders: Dict[str, List[float]] = {}  # family -> cumulative counts
    inf_counts: Dict[str, float] = {}
    counts: Dict[str, float] = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                    problems.append(
                        f"line {lineno}: bad TYPE {parts[3]!r}")
                types[parts[2]] = parts[3]
            elif len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                pass
            else:
                problems.append(f"line {lineno}: malformed comment")
            continue
        m = _SAMPLE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                family = name[:-len(suffix)]
                break
        if family not in types:
            problems.append(f"line {lineno}: sample {name!r} has no # TYPE")
            continue
        try:
            value = float(m.group("value"))
        except ValueError:
            problems.append(f"line {lineno}: bad value {m.group('value')!r}")
            continue
        if name.endswith("_bucket") and types.get(family) == "histogram":
            labels = m.group("labels") or ""
            le = None
            for part in labels.split(","):
                if part.startswith("le="):
                    le = part[3:].strip('"')
            if le is None:
                problems.append(f"line {lineno}: bucket without le label")
                continue
            if le == "+Inf":
                inf_counts[family] = value
            ladder = ladders.setdefault(family, [])
            if ladder and value < ladder[-1]:
                problems.append(
                    f"line {lineno}: non-cumulative bucket in {family}")
            ladder.append(value)
        elif name.endswith("_count") and types.get(family) == "histogram":
            counts[family] = value

    for family, typ in types.items():
        if typ != "histogram":
            continue
        if family not in inf_counts:
            problems.append(f"histogram {family}: missing +Inf bucket")
        elif family in counts and inf_counts[family] != counts[family]:
            problems.append(
                f"histogram {family}: +Inf bucket {inf_counts[family]} "
                f"!= _count {counts[family]}")
    return problems

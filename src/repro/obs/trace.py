"""Context-scoped structured tracing.

A :class:`Tracer` records :class:`Span` objects — named, categorised
intervals with monotonic start/duration, free-form attributes, and a
parent link — around the stack's phases: ``nvcc`` compiles, kernel-cache
lookups, launch-plan builds, kernel launches, engine gang batches, and
pipeline actions.  Instantaneous :meth:`Tracer.event` marks record
fault/retry/degradation moments from the resilience ladder.

Ownership and overhead follow the fault-hook pattern
(:mod:`repro.faults.hooks`): the tracer lives on the
:class:`~repro.runtime.context.ExecutionContext` as ``ctx.tracer`` and
is ``None`` unless a caller opted in via
:meth:`~repro.runtime.context.ExecutionContext.enable_tracing` (or a
``trace=True`` switch on :class:`~repro.gpupf.pipeline.Pipeline`,
:class:`~repro.apps.harness.RunRequest`, or
:class:`~repro.tuning.sweep.Sweeper`).  Instrumented hot paths pay one
attribute load and a ``None`` test when tracing is off — no tracer or
span objects are ever allocated on the disabled path (asserted by
``tests/test_obs.py``).

Parenting is per-thread: each thread of a traced context nests its own
spans, so ``Sweeper(jobs=N)`` worker threads produce disjoint,
well-formed subtrees.  :meth:`Tracer.to_dict` exports a picklable form
that survives the process-pool boundary; :meth:`Tracer.graft` folds
such an export back in as a child subtree (per-cell sweep aggregation).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["Span", "TraceContext", "Tracer", "current_tracer"]


@dataclass(frozen=True)
class TraceContext:
    """Cross-process trace propagation token.

    A supervisor stamps one onto each dispatched
    :class:`~repro.apps.harness.RunRequest` (``request.trace_ctx``);
    the worker-side :func:`~repro.apps.harness.run_request` sees it,
    enables tracing, names the worker tracer after ``trace_id``, and
    ships the span tree back on the result — where the supervisor
    grafts it under its own span for the request, yielding one
    end-to-end tree (admission → queue → worker → launch) in a single
    Chrome/Perfetto export.

    ``trace_id`` identifies the distributed trace (the supervisor's
    request id works); ``parent`` labels the supervisor-side span the
    shipped subtree will be grafted under; ``client`` carries the
    requesting client's name for attribution attrs.
    """

    trace_id: str
    parent: str = ""
    client: str = ""


class Span:
    """One traced interval (or instantaneous event, ``duration == 0``).

    ``start`` is seconds since the owning tracer's epoch
    (``time.perf_counter`` based, monotonic); ``duration`` is ``None``
    while the span is open and seconds once closed.  ``parent`` is the
    ``sid`` of the enclosing span on the same thread, or ``None`` for
    roots.  ``attrs`` values should stay JSON-scalar so every exporter
    can carry them verbatim.
    """

    __slots__ = ("sid", "parent", "name", "cat", "start", "duration",
                 "tid", "attrs")

    def __init__(self, sid: int, parent: Optional[int], name: str,
                 cat: str, start: float, tid: int,
                 attrs: Dict[str, Any]):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.cat = cat
        self.start = start
        self.duration: Optional[float] = None
        self.tid = tid
        self.attrs = attrs

    def to_dict(self) -> Dict[str, Any]:
        return {"sid": self.sid, "parent": self.parent,
                "name": self.name, "cat": self.cat,
                "start": self.start,
                "dur": 0.0 if self.duration is None else self.duration,
                "tid": self.tid, "attrs": dict(self.attrs)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.name!r} cat={self.cat} sid={self.sid} "
                f"parent={self.parent} dur={self.duration}>")


class _SpanContext:
    """``with tracer.span(...)`` helper: closes + unwinds on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.span.attrs.setdefault("error",
                                       f"{type(exc).__name__}: {exc}")
        self._tracer.end(self.span)


class Tracer:
    """Records a span tree for one :class:`ExecutionContext`.

    Thread-safe: spans may begin/end concurrently from sweep worker
    threads; each thread parents its own spans.  The span list is
    append-only in *begin* order, so a parent always precedes its
    children in :attr:`spans` and in every export.
    """

    def __init__(self, name: str = "trace"):
        self.name = name
        self.epoch = time.perf_counter()
        self.spans: List[Span] = []
        #: Every LaunchProfile captured while this tracer was active,
        #: in launch order (also present on the launch spans' attrs).
        self.profiles: List[object] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._tls = threading.local()

    # -- recording -----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def begin(self, name: str, cat: str = "default",
              **attrs: Any) -> Span:
        """Open a span; pair with :meth:`end` (prefer :meth:`span`)."""
        stack = self._stack()
        parent = stack[-1].sid if stack else None
        span = Span(next(self._ids), parent, name, cat,
                    time.perf_counter() - self.epoch,
                    threading.get_ident(), attrs)
        with self._lock:
            self.spans.append(span)
        stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close *span*, fixing its duration and unwinding the stack."""
        if span.duration is None:
            span.duration = max(
                0.0, time.perf_counter() - self.epoch - span.start)
        stack = self._stack()
        while stack:
            popped = stack.pop()
            if popped is span:
                break
        return span

    def span(self, name: str, cat: str = "default",
             **attrs: Any) -> _SpanContext:
        """``with tracer.span("launch:k", "launch", grid="8x8"):``"""
        return _SpanContext(self, self.begin(name, cat, **attrs))

    def event(self, name: str, cat: str = "event",
              **attrs: Any) -> Span:
        """Record an instantaneous (zero-duration) span."""
        span = self.begin(name, cat, **attrs)
        span.duration = 0.0
        self._stack().pop()
        return span

    # -- export / import -----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Picklable export (closed spans keep durations; open -> 0)."""
        with self._lock:
            spans = [s.to_dict() for s in self.spans]
        return {"name": self.name, "spans": spans}

    def graft(self, exported: Dict[str, Any], label: str,
              cat: str = "sweep", **attrs: Any) -> Optional[Span]:
        """Fold an exported trace in as a child subtree of a new span.

        Used for per-cell sweep aggregation: a process worker's trace
        (shipped back through a pickled
        :class:`~repro.apps.harness.RunResult`) is re-rooted under a
        synthetic *label* span.  The import is re-timed: the subtree
        keeps its internal relative timing but is laid out *ending* at
        this tracer's "now" — the grafted work happened strictly
        before the graft call, and placing it in the past keeps it
        nested inside whatever still-open span the wrapper parents
        under (grafts laid out forward would escape any parent that
        closes right after grafting).  Returns the wrapper span
        (``None`` for an empty export).
        """
        spans = exported.get("spans") or []
        if not spans:
            return None
        base = min(s["start"] for s in spans)
        extent = max(s["start"] + s["dur"] for s in spans) - base
        stack = self._stack()
        floor = stack[-1].start if stack else 0.0
        wrapper = self.begin(label, cat, **attrs)
        wrapper.start = max(floor, wrapper.start - extent)
        shift = wrapper.start - base
        remap: Dict[int, int] = {}
        grafted: List[Span] = []
        for s in spans:
            sid = next(self._ids)
            remap[s["sid"]] = sid
            child = Span(sid, None, s["name"], s["cat"],
                         s["start"] + shift, s["tid"],
                         dict(s["attrs"]))
            child.duration = s["dur"]
            child.parent = s["parent"]  # remapped below
            grafted.append(child)
        for child in grafted:
            child.parent = remap.get(child.parent, wrapper.sid)
        with self._lock:
            self.spans.extend(grafted)
        wrapper.duration = extent
        self._stack().pop()  # close the wrapper without re-timing it
        return wrapper

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    def roots(self) -> List[Span]:
        with self._lock:
            return [s for s in self.spans if s.parent is None]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer {self.name!r} spans={len(self)}>"


def current_tracer() -> Optional[Tracer]:
    """The current context's tracer, or None when tracing is off.

    The analogue of :func:`repro.faults.hooks.active` for tracing:
    call sites that do not already hold an
    :class:`~repro.runtime.context.ExecutionContext` (the compiler,
    the kernel cache) resolve through the current context.
    """
    from repro.runtime.context import current_context
    return current_context().tracer

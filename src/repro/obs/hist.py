"""Log-bucketed latency histograms with bounded-error quantiles.

A :class:`LatencyHistogram` records positive samples (latencies in
seconds, modeled cycles, byte counts...) into geometrically-spaced
buckets: bucket *i* covers ``[GROWTH**i, GROWTH**(i+1))``.  Buckets are
sparse (a dict of index -> count), so a histogram costs memory only for
the value ranges it actually saw, and two histograms merge by adding
bucket counts — the property that lets per-worker observations ship
across process boundaries and aggregate exactly.

**Quantile error bound.**  :meth:`quantile` locates the bucket holding
the requested rank and geometrically interpolates inside it, so the
estimate and the true order statistic lie in the same bucket: the
relative error is bounded by one bucket's width, a factor of
:data:`GROWTH` (~9% with the default ``2**(1/8)`` spacing).  The
``tests/test_obs_plane.py`` quantile suite asserts exactly this bound
against :func:`numpy.percentile` on random workloads.

The summary fields (count/sum/min/max) match what
:class:`~repro.obs.metrics.MetricsRegistry` historically kept, so the
registry now backs every ``observe()`` with one of these at the cost of
a ``math.log`` and a dict bump per sample (measured in
``BENCH_obs.json`` as ``hist_observe_ns``).  Instances are not locked —
the registry serializes access; standalone users on multiple threads
must bring their own lock.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = ["GROWTH", "LatencyHistogram", "bucket_index", "bucket_bounds"]

#: Geometric bucket growth factor: 8 buckets per octave (~9.05% wide).
GROWTH = 2.0 ** 0.125

_LOG_GROWTH = math.log(GROWTH)

#: Values at or below this clamp into the bottom bucket (log of zero or
#: a negative latency is a caller bug we degrade gracefully on).
_TINY = 1e-12

_TINY_INDEX = math.floor(math.log(_TINY) / _LOG_GROWTH)


def bucket_index(value: float) -> int:
    """The bucket index covering *value* (clamped below at ``_TINY``)."""
    if value <= _TINY:
        return _TINY_INDEX
    return math.floor(math.log(value) / _LOG_GROWTH)


def bucket_bounds(index: int) -> Tuple[float, float]:
    """The ``[lo, hi)`` value range of bucket *index*."""
    return GROWTH ** index, GROWTH ** (index + 1)


class LatencyHistogram:
    """Sparse log-bucketed histogram with (count, sum, min, max)."""

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}

    # -- recording -----------------------------------------------------

    def record(self, value: float) -> None:
        """Fold one sample in (one log, one dict bump)."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    # -- reading -------------------------------------------------------

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the *q*-quantile (0 < q <= 1) of the recorded values.

        Returns ``None`` on an empty histogram (or one rebuilt from a
        pre-bucket summary, which has counts but no bucket detail).
        The estimate lies in the same bucket as the true order
        statistic, so its relative error is at most one bucket width
        (a factor of :data:`GROWTH`); it is additionally clamped into
        ``[min, max]``, which tightens small samples.
        """
        if self.count <= 0 or not self.buckets:
            return None
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile q must be in (0, 1], got {q}")
        target = q * self.count
        cum = 0
        for idx in sorted(self.buckets):
            n = self.buckets[idx]
            if cum + n >= target:
                lo, _hi = bucket_bounds(idx)
                # Geometric interpolation by rank fraction inside the
                # bucket: stays within the bucket's bounds.
                frac = (target - cum) / n
                estimate = lo * GROWTH ** frac
                return min(max(estimate, self.min), self.max)
            cum += n
        return self.max

    def quantiles(self, qs: Iterable[float] = (0.5, 0.95, 0.99)
                  ) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` (empty when empty)."""
        out: Dict[str, float] = {}
        for q in qs:
            value = self.quantile(q)
            if value is not None:
                out[f"p{round(q * 100)}"] = value
        return out

    def summary(self) -> Dict[str, float]:
        """The registry's historical summary dict (no bucket detail)."""
        return {"count": self.count, "sum": self.sum,
                "mean": self.sum / self.count if self.count else 0.0,
                "min": self.min, "max": self.max}

    # -- merge / rebuild ----------------------------------------------

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold *other* in: summaries combine, bucket counts add."""
        if other.count == 0:
            return
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    @classmethod
    def from_parts(cls, summary: Mapping[str, float],
                   buckets: Optional[Mapping] = None
                   ) -> "LatencyHistogram":
        """Rebuild from a snapshot's summary + optional bucket dict.

        Bucket keys may be ints or strings (a snapshot that round-
        tripped through JSON stringifies them).
        """
        h = cls()
        h.count = int(summary["count"])
        h.sum = float(summary["sum"])
        h.min = float(summary["min"])
        h.max = float(summary["max"])
        if buckets:
            h.buckets = {int(k): int(v) for k, v in buckets.items()}
        return h

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LatencyHistogram n={self.count} "
                f"buckets={len(self.buckets)}>")

"""Trace exporters: Chrome/Perfetto JSON, text summaries, validation.

Three renderings of a :meth:`Tracer.to_dict` export (the picklable
``{"name", "spans"}`` form — every function here consumes that dict,
never a live :class:`~repro.obs.trace.Tracer`):

* :func:`chrome_trace` / :func:`write_trace` — the Chrome Trace Event
  JSON format (``chrome://tracing``, https://ui.perfetto.dev): one
  complete (``"ph": "X"``) event per span with microsecond
  timestamps, plus instantaneous (``"ph": "i"``) events for
  zero-duration fault/retry marks.  Span ``sid``/``parent`` ride in
  ``args`` so the tree can be reconstructed from the JSON alone.
* :func:`summary_tree` — plain-text hierarchical summary via
  :func:`repro.reporting.format_table`.
* :func:`metrics_table` — a :meth:`MetricsRegistry.snapshot` rendered
  as text.

:func:`validate_chrome` checks an exported document against the schema
the other tools rely on and returns a list of problems (empty = valid);
``python -m repro.obs.report --check`` is a thin CLI over it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.reporting import format_table

__all__ = ["chrome_trace", "write_trace", "validate_chrome",
           "summary_tree", "metrics_table"]

#: Span categories with zero duration exported as instant events.
_INSTANT_CATS = frozenset({"event", "fault", "cache"})


def chrome_trace(exported: Dict[str, Any],
                 metrics: Optional[Dict[str, Any]] = None,
                 events: Optional[List[Dict[str, Any]]] = None,
                 pid: int = 1) -> Dict[str, Any]:
    """Render a tracer export as a Chrome Trace Event document.

    *metrics* (a :meth:`MetricsRegistry.snapshot`) is embedded under
    ``otherData.metrics`` and *events* (a flight-recorder event list,
    see :mod:`repro.obs.events`) under ``otherData.events``, so one
    file carries the whole run.
    """
    trace_events: List[Dict[str, Any]] = []
    for span in exported.get("spans", []):
        args = dict(span["attrs"])
        args["sid"] = span["sid"]
        if span["parent"] is not None:
            args["parent"] = span["parent"]
        event = {"name": span["name"], "cat": span["cat"],
                 "ts": span["start"] * 1e6, "pid": pid,
                 "tid": span["tid"], "args": args}
        if span["dur"] == 0.0 and span["cat"] in _INSTANT_CATS:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = span["dur"] * 1e6
        trace_events.append(event)
    other: Dict[str, Any] = {"trace_name": exported.get("name", "trace")}
    if metrics is not None:
        other["metrics"] = metrics
    if events is not None:
        other["events"] = list(events)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": other}


def write_trace(path: str, exported: Dict[str, Any],
                metrics: Optional[Dict[str, Any]] = None,
                events: Optional[List[Dict[str, Any]]] = None) -> None:
    """Write the Chrome-trace JSON for *exported* to *path*."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(exported, metrics=metrics, events=events),
                  fh, indent=1)
        fh.write("\n")


def validate_chrome(doc: Any) -> List[str]:
    """Schema-check a Chrome-trace document; return problems found.

    Validates the envelope, the per-event required fields, phase-
    specific fields (``dur`` for ``X``, ``s`` for ``i``), and — for
    events carrying ``args.sid``/``args.parent`` — that parents exist
    and every child interval nests inside its parent (an sid is never
    reused).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    spans_by_sid: Dict[int, Dict[str, Any]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key, types in (("name", str), ("cat", str),
                           ("ph", str), ("ts", (int, float)),
                           ("pid", int), ("tid", int)):
            if not isinstance(ev.get(key), types):
                problems.append(f"{where}: bad or missing {key!r}")
        ph = ev.get("ph")
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)) \
                    or ev.get("dur", 0) < 0:
                problems.append(f"{where}: complete event needs "
                                f"non-negative 'dur'")
        elif ph == "i":
            if ev.get("s") not in ("g", "p", "t"):
                problems.append(f"{where}: instant event needs scope "
                                f"'s' in g/p/t")
        elif isinstance(ph, str):
            problems.append(f"{where}: unsupported phase {ph!r}")
        args = ev.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: 'args' must be an object")
            continue
        sid = (args or {}).get("sid")
        if sid is not None:
            if sid in spans_by_sid:
                problems.append(f"{where}: duplicate sid {sid}")
            else:
                spans_by_sid[sid] = ev
    for sid, ev in spans_by_sid.items():
        parent = ev["args"].get("parent")
        if parent is None:
            continue
        pev = spans_by_sid.get(parent)
        if pev is None:
            problems.append(f"sid {sid}: orphan parent {parent}")
            continue
        if pev.get("ph") != "X":
            continue
        p0, p1 = pev["ts"], pev["ts"] + pev.get("dur", 0)
        c0 = ev["ts"]
        c1 = c0 + (ev.get("dur", 0) if ev.get("ph") == "X" else 0)
        # Timestamps come from float subtraction; allow 1 µs slack.
        if c0 < p0 - 1 or c1 > p1 + 1:
            problems.append(
                f"sid {sid}: interval [{c0:.1f}, {c1:.1f}] escapes "
                f"parent {parent} [{p0:.1f}, {p1:.1f}]")
    return problems


def summary_tree(exported: Dict[str, Any],
                 title: Optional[str] = None) -> str:
    """Plain-text hierarchical span summary (indent = tree depth)."""
    spans = exported.get("spans", [])
    children: Dict[Any, List[Dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span)
    rows: List[List[Any]] = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        ms = span["dur"] * 1e3
        rows.append(["  " * depth + span["name"], span["cat"],
                     f"{ms:.3f}", _attr_note(span["attrs"])])
        for child in children.get(span["sid"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return format_table(
        ["span", "cat", "ms", "attrs"], rows,
        title=title or f"trace: {exported.get('name', 'trace')} "
                       f"({len(spans)} spans)")


def _attr_note(attrs: Dict[str, Any], limit: int = 56) -> str:
    parts = []
    for key, value in attrs.items():
        if key in ("sid", "parent"):
            continue
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    note = " ".join(parts)
    return note if len(note) <= limit else note[:limit - 1] + "…"


def metrics_table(snapshot: Dict[str, Any],
                  title: str = "metrics") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as aligned text."""
    rows: List[List[Any]] = []
    for name in sorted(snapshot.get("counters", {})):
        rows.append([name, "counter",
                     snapshot["counters"][name], ""])
    for name in sorted(snapshot.get("gauges", {})):
        rows.append([name, "gauge", snapshot["gauges"][name], ""])
    all_buckets = snapshot.get("buckets", {})
    for name in sorted(snapshot.get("histograms", {})):
        h = snapshot["histograms"][name]
        detail = (f"mean={h['mean']:.4g} min={h['min']:.4g} "
                  f"max={h['max']:.4g}")
        sparse = all_buckets.get(name)
        if sparse:
            from repro.obs.hist import LatencyHistogram
            qs = LatencyHistogram.from_parts(h, sparse).quantiles()
            detail += " " + " ".join(f"{k}={v:.4g}"
                                     for k, v in qs.items())
        rows.append([name, "histogram", h["count"], detail])
    return format_table(["metric", "kind", "value", "detail"], rows,
                        title=title)

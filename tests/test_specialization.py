"""The paper's core claims, as tests.

RE (run-time-evaluated) and SK (specialized) compilations of the same
source must be functionally identical, while SK must never be worse in
per-thread registers and must win on simulated time for the kernels the
paper's argument rests on.  Property-based tests drive randomized
parameter combinations through both regimes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import GPU, TESLA_C1060, TESLA_C2070
from repro.kernelc import nvcc
from repro.kernelc.templates import (FLEXIBLE_MATHTEST, ctrt_block,
                                     specialization_defines)

rng = np.random.default_rng(3)


def run_mathtest(arch, spec, loop, a, b, bdx, grid, defines=None):
    gpu = GPU(spec)
    nthreads = grid * bdx
    # Deterministic data per problem shape so RE and SK runs compare.
    local_rng = np.random.default_rng(loop * 1000 + a * 100 + b * 10 + bdx)
    data = local_rng.integers(-50, 50, nthreads + max(loop, 1) * a * b + 8,
                              dtype=np.int32)
    d_in = gpu.alloc_array(data)
    d_out = gpu.zeros(nthreads, np.int32)
    mod = nvcc(FLEXIBLE_MATHTEST, defines=defines, arch=arch)
    res = gpu.launch(mod.kernel("mathTest"), grid, bdx,
                     [d_in, d_out, a, b, loop])
    out = gpu.memcpy_dtoh(d_out, np.int32, nthreads)
    stride = a * b
    ref = np.array([data[t : t + loop * stride : stride].sum()
                    if loop else 0 for t in range(nthreads)],
                   dtype=np.int32)
    return out, ref, res, mod.kernel("mathTest")


class TestEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(loop=st.integers(0, 12), a=st.integers(1, 5),
           b=st.integers(1, 5), bdx=st.sampled_from([32, 64, 128]))
    def test_re_equals_sk_equals_reference(self, loop, a, b, bdx):
        out_re, ref, _, _ = run_mathtest("sm_20", TESLA_C2070, loop, a,
                                         b, bdx, 2)
        defines = specialization_defines(
            {"LOOP_COUNT": loop, "ARG_A": a, "ARG_B": b,
             "BLOCK_DIM_X": bdx})
        out_sk, _, _, _ = run_mathtest("sm_20", TESLA_C2070, loop, a, b,
                                       bdx, 2, defines)
        np.testing.assert_array_equal(out_re, ref)
        np.testing.assert_array_equal(out_sk, ref)

    @settings(max_examples=10, deadline=None)
    @given(subset=st.sets(st.sampled_from(
        ["LOOP_COUNT", "ARG_A", "ARG_B", "BLOCK_DIM_X"])))
    def test_partial_specialization(self, subset):
        """Appendix B: each parameter toggles independently."""
        values = {"LOOP_COUNT": 4, "ARG_A": 2, "ARG_B": 3,
                  "BLOCK_DIM_X": 64}
        defines = specialization_defines(values, enable=subset)
        out, ref, _, _ = run_mathtest("sm_13", TESLA_C1060, 4, 2, 3, 64,
                                      2, defines)
        np.testing.assert_array_equal(out, ref)


class TestSpecializationWins:
    @pytest.mark.parametrize("arch,spec", [("sm_13", TESLA_C1060),
                                           ("sm_20", TESLA_C2070)])
    def test_sk_faster_and_leaner(self, arch, spec):
        loop, a, b, bdx = 16, 3, 7, 128
        _, _, res_re, k_re = run_mathtest(arch, spec, loop, a, b, bdx, 4)
        defines = specialization_defines(
            {"LOOP_COUNT": loop, "ARG_A": a, "ARG_B": b,
             "BLOCK_DIM_X": bdx})
        _, _, res_sk, k_sk = run_mathtest(arch, spec, loop, a, b, bdx, 4,
                                          defines)
        # SK always issues fewer instructions; its *time* win saturates
        # when the kernel is memory-bandwidth bound (as this streaming
        # kernel is on the C2070) — never a loss either way.
        assert res_sk.cycles <= res_re.cycles
        assert res_sk.timing.issue_bound < res_re.timing.issue_bound
        assert k_sk.reg_count <= k_re.reg_count

    def test_sk_ptx_has_no_control_flow(self):
        """Appendix D: the fully specialized kernel unrolls completely."""
        defines = specialization_defines(
            {"LOOP_COUNT": 5, "ARG_A": 3, "ARG_B": 7, "BLOCK_DIM_X": 128})
        mod = nvcc(FLEXIBLE_MATHTEST, defines=defines)
        ptx = mod.kernel("mathTest").to_ptx()
        assert "bra" not in ptx
        assert "setp" not in ptx

    def test_re_ptx_keeps_loop(self):
        """Appendix C: the RE kernel keeps setup/branch instructions."""
        ptx = nvcc(FLEXIBLE_MATHTEST).kernel("mathTest").to_ptx()
        assert "bra" in ptx
        assert "setp" in ptx

    def test_strength_reduction_only_with_constants(self):
        src = ctrt_block({"N": "n"}) + """
        __global__ void k(const unsigned int* x, unsigned int* out,
                          unsigned int n) {
            unsigned int i = threadIdx.x;
            out[i] = x[i] / N_VAL + x[i] % N_VAL;
        }
        """
        re_ptx = nvcc(src).kernel("k").to_ptx()
        sk_ptx = nvcc(src, defines={"CT_N": 1, "N": "64u"}) \
            .kernel("k").to_ptx()
        assert "div" in re_ptx and "rem" in re_ptx
        assert "div" not in sk_ptx and "rem" not in sk_ptx
        assert "shr" in sk_ptx and "and" in sk_ptx

    def test_pointer_value_specialization(self):
        """§4 footnote: pointers can be baked in as immediates."""
        src = """
        __global__ void k(float* out) {
            float* in = (float*)PTR_IN;
            out[threadIdx.x] = in[threadIdx.x] * 2.0f;
        }
        """
        gpu = GPU(TESLA_C2070)
        x = rng.random(32).astype(np.float32)
        d_in = gpu.alloc_array(x)
        d_out = gpu.zeros(32, np.float32)
        mod = nvcc(src, defines={"PTR_IN": d_in})
        gpu.launch(mod.kernel("k"), 1, 32, [d_out])
        out = gpu.memcpy_dtoh(d_out, np.float32, 32)
        np.testing.assert_allclose(out, x * 2.0, rtol=1e-6)
        assert hex(d_in).lstrip("0x") in mod.kernel("k").to_ptx().replace(
            str(d_in), hex(d_in).lstrip("0x"))


class TestRegisterBlocking:
    SRC = ctrt_block({"RB": "rb"}) + """
    __global__ void rblock(const float* in, float* out, int n, int rb) {
        float acc[MAX_RB];
        int base = (blockIdx.x * blockDim.x + threadIdx.x) * RB_VAL;
        for (int r = 0; r < RB_VAL; r++) acc[r] = 0.0f;
        for (int k = 0; k < n; k++) {
            for (int r = 0; r < RB_VAL; r++)
                acc[r] += in[base + r + k];
        }
        for (int r = 0; r < RB_VAL; r++) out[base + r] = acc[r];
    }
    """

    def _run(self, defines, rb, n=5, threads=32):
        gpu = GPU(TESLA_C2070)
        total = threads * rb
        x = rng.random(total + n + 8).astype(np.float32)
        d_in = gpu.alloc_array(x)
        d_out = gpu.zeros(total, np.float32)
        mod = nvcc(self.SRC, defines=dict(defines, MAX_RB=16))
        res = gpu.launch(mod.kernel("rblock"), 1, threads,
                         [d_in, d_out, n, rb])
        out = gpu.memcpy_dtoh(d_out, np.float32, total)
        expected = np.zeros(total, np.float32)
        for t in range(threads):
            for r in range(rb):
                expected[t * rb + r] = x[t * rb + r : t * rb + r + n].sum()
        return out, expected, res, mod.kernel("rblock")

    def test_specialized_array_lives_in_registers(self):
        out, expected, _, kernel = self._run({"CT_RB": 1, "RB": 4}, 4)
        np.testing.assert_allclose(out, expected, rtol=1e-5)
        assert not kernel.ir.local_arrays  # scalarized away

    def test_runtime_array_spills_to_local(self):
        out, expected, _, kernel = self._run({}, 4)
        np.testing.assert_allclose(out, expected, rtol=1e-5)
        assert kernel.ir.local_arrays  # stuck in local memory

    def test_scalarized_version_is_faster(self):
        _, _, res_sk, k_sk = self._run({"CT_RB": 1, "RB": 4}, 4)
        _, _, res_re, k_re = self._run({}, 4)
        assert res_sk.cycles < res_re.cycles
        # More data registers per thread is the *point* of blocking.
        assert k_sk.reg_count > 4


class TestBinarySizeClaim:
    def test_one_source_many_variants(self):
        """§4.1: variants are generated on demand, not precompiled.

        Every (tile, dtype) combination compiles from one source; the
        OpenCV approach would carry all 800 in the binary.
        """
        src = ctrt_block({"TILE": "tile"}) + """
        __global__ void k(const float* in, float* out, int tile) {
            int i = blockIdx.x * TILE_VAL + threadIdx.x;
            out[i] = in[i];
        }
        """
        kernels = [nvcc(src, defines={"CT_TILE": 1, "TILE": t})
                   for t in (16, 32, 64, 128)]
        counts = {k.kernel("k").static_instructions for k in kernels}
        assert len(kernels) == 4
        assert all(len(k.kernels) == 1 for k in kernels)

"""Unit tests for the parser (AST construction)."""

import pytest

from repro.kernelc import ast_nodes as A
from repro.kernelc import typesys as T
from repro.kernelc.lexer import tokenize
from repro.kernelc.parser import ParseError, Parser, parse


def parse_src(src):
    return parse(tokenize(src))


def first_kernel(src):
    unit = parse_src(src)
    return unit.functions[0]


class TestTopLevel:
    def test_kernel_signature(self):
        fn = first_kernel("__global__ void k(int* in, float s) {}")
        assert fn.is_kernel
        assert fn.name == "k"
        assert [p.name for p in fn.params] == ["in", "s"]
        assert T.is_pointer(fn.params[0].ctype)
        assert fn.params[1].ctype is T.F32

    def test_device_function(self):
        unit = parse_src("__device__ float f(float x) { return x; }")
        assert not unit.functions[0].is_kernel
        assert unit.functions[0].return_type is T.F32

    def test_restrict_and_const_param(self):
        fn = first_kernel(
            "__global__ void k(const float* __restrict__ p) {}")
        assert fn.params[0].restrict
        assert fn.params[0].const

    def test_constant_global(self):
        unit = parse_src("__constant__ float coeffs[32];")
        g = unit.globals[0]
        assert g.name == "coeffs"
        assert g.array_size == 32
        assert g.constant

    def test_constant_global_size_expression(self):
        unit = parse_src("__constant__ int lut[4 * 8];")
        assert unit.globals[0].array_size == 32

    def test_launch_bounds(self):
        fn = first_kernel(
            "__global__ void __launch_bounds__(256, 2) k() {}")
        assert fn.launch_bounds == (256, 2)

    def test_typedef(self):
        unit = parse_src("typedef unsigned int uint32; "
                         "__global__ void k(uint32 x) {}")
        assert unit.functions[0].params[0].ctype is T.U32

    def test_multiword_types(self):
        fn = first_kernel(
            "__global__ void k(unsigned long long a, long long b) {}")
        assert fn.params[0].ctype is T.U64
        assert fn.params[1].ctype is T.S64

    def test_forceinline(self):
        unit = parse_src(
            "__device__ __forceinline__ int f(int x) { return x; }")
        assert unit.functions[0].force_inline


class TestStatements:
    def body(self, stmts):
        return first_kernel("__global__ void k(int* p, int n) {%s}"
                            % stmts).body

    def test_declaration(self):
        body = self.body("int x = 1; float y;")
        assert isinstance(body[0], A.DeclStmt)
        assert body[0].decls[0][0] == "x"

    def test_multi_declarator(self):
        body = self.body("int a = 1, b = 2;")
        assert len(body[0].decls) == 2

    def test_shared_array(self):
        body = self.body("__shared__ float tile[64];")
        assert body[0].shared
        name, ctype, size, init = body[0].decls[0]
        assert name == "tile" and ctype is T.F32 and size is not None

    def test_local_array(self):
        body = self.body("float acc[8];")
        assert not body[0].shared

    def test_if_else(self):
        body = self.body("if (n > 0) { p[0] = 1; } else p[0] = 2;")
        node = body[0]
        assert isinstance(node, A.If)
        assert len(node.then) == 1 and len(node.other) == 1

    def test_for_loop(self):
        body = self.body("for (int i = 0; i < n; i++) p[i] = i;")
        node = body[0]
        assert isinstance(node, A.For)
        assert isinstance(node.init, A.DeclStmt)
        assert isinstance(node.cond, A.Binary)
        assert isinstance(node.step, A.IncDec)

    def test_for_empty_clauses(self):
        body = self.body("for (;;) break;")
        node = body[0]
        assert node.init is None and node.cond is None and node.step is None

    def test_while(self):
        assert isinstance(self.body("while (n) n = n - 1;")[0], A.While)

    def test_do_while(self):
        assert isinstance(self.body("do n--; while (n);")[0], A.DoWhile)

    def test_break_continue(self):
        body = self.body("for(;;) { if (n) break; continue; }")
        loop = body[0]
        assert isinstance(loop.body[0].then[0], A.Break)
        assert isinstance(loop.body[1], A.Continue)

    def test_syncthreads(self):
        assert isinstance(self.body("__syncthreads();")[0], A.SyncThreads)

    def test_return(self):
        assert isinstance(self.body("return;")[0], A.Return)

    def test_nested_blocks(self):
        body = self.body("{ int x = 1; { int y = 2; } }")
        assert isinstance(body[0], A.Block)


class TestExpressions:
    def expr(self, text):
        body = first_kernel(
            "__global__ void k(int* p, int a, int b, float f) "
            "{ p[0] = %s; }" % text).body
        return body[0].expr.value

    def test_precedence_mul_over_add(self):
        e = self.expr("a + b * 2")
        assert e.op == "+" and e.right.op == "*"

    def test_precedence_shift(self):
        e = self.expr("a << 2 + 1")  # + binds tighter than <<
        assert e.op == "<<"

    def test_parentheses(self):
        e = self.expr("(a + b) * 2")
        assert e.op == "*" and e.left.op == "+"

    def test_ternary(self):
        assert isinstance(self.expr("a ? b : 0"), A.Ternary)

    def test_unary_ops(self):
        assert self.expr("-a").op == "-"
        assert self.expr("!a").op == "!"
        assert self.expr("~a").op == "~"

    def test_cast(self):
        e = self.expr("(float)a")
        assert isinstance(e, A.Cast) and e.ctype is T.F32

    def test_pointer_cast(self):
        e = self.expr("*((int*)0x100)")
        assert isinstance(e, A.Unary) and e.op == "*"
        assert T.is_pointer(e.operand.ctype)

    def test_function_style_cast(self):
        e = self.expr("float(a)")
        assert isinstance(e, A.Cast)

    def test_builtin_vars(self):
        e = self.expr("threadIdx.x + blockIdx.y * blockDim.z")
        assert isinstance(e.left, A.BuiltinVar)
        assert e.left.name == "tid.x"

    def test_bad_builtin_member(self):
        with pytest.raises(ParseError):
            self.expr("threadIdx.w")

    def test_call(self):
        e = self.expr("min(a, b)")
        assert isinstance(e, A.Call) and len(e.args) == 2

    def test_index_chain(self):
        e = self.expr("p[a + 1]")
        assert isinstance(e, A.Index)

    def test_compound_assignment(self):
        body = first_kernel(
            "__global__ void k(int a) { a += 2; }").body
        assert body[0].expr.op == "+"

    def test_comma_expression(self):
        body = first_kernel(
            "__global__ void k(int a, int b) { a = 1, b = 2; }").body
        assert isinstance(body[0].expr, A.Comma)

    def test_template_call_vs_less_than(self):
        # f<8>(x) is a template call; a < b stays a comparison.
        unit = parse_src(
            "__device__ int f(int x) { return x; }"
            "__global__ void k(int a, int b, int* p) "
            "{ p[0] = f<8>(a); p[1] = a < b; }")
        stmts = unit.functions[1].body
        call = stmts[0].expr.value
        assert isinstance(call, A.Call) and call.template_args
        cmp = stmts[1].expr.value
        assert isinstance(cmp, A.Binary) and cmp.op == "<"

    def test_sizeof_type(self):
        e = self.expr("sizeof(float)")
        assert isinstance(e, A.IntLit) and e.value == 4

    def test_hex_literal(self):
        e = self.expr("0xFF")
        assert e.value == 255


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises((ParseError, Exception)):
            parse_src("__global__ void k() { int x = 1 }")

    def test_unknown_type(self):
        with pytest.raises(ParseError):
            parse_src("__global__ void k(floatx4 v) {}")

    def test_unterminated_block(self):
        with pytest.raises(Exception):
            parse_src("__global__ void k() { if (1) {")
